// Headline differential harness for the storage engine: the same AST must
// execute byte-identically over the in-memory Database and the disk-backed
// StorageDb, at 1 thread and at 8 threads, over (a) every entry of every
// fuzz seed corpus file and (b) a generated-query sweep per fuzz database.
// "Byte-identical" is strict — same column names, same row order, same
// value kinds (an INTEGER must not come back as a REAL), NaN == NaN — and
// error outcomes must match too (same status code and message).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fuzz/fuzz_harness.h"
#include "fuzz/oracle.h"
#include "fuzz/query_gen.h"
#include "sqlengine/database.h"
#include "sqlengine/executor.h"
#include "sqlengine/result_table.h"
#include "storage/storage_db.h"

#ifndef CODES_FUZZ_CORPUS_DIR
#error "CODES_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace codes::fuzz {
namespace {

using sql::Executor;
using sql::ResultTable;
using sql::Value;

constexpr int kNumDatabases = 8;
constexpr size_t kQueriesPerDb = 150;

bool ValueByteExact(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_integer() && b.is_integer()) return a.AsInteger() == b.AsInteger();
  if (a.is_real() && b.is_real()) {
    double x = a.AsReal(), y = b.AsReal();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    return x == y;
  }
  if (a.is_text() && b.is_text()) return a.AsText() == b.AsText();
  return false;  // kind mismatch (e.g. 1 vs 1.0) is a divergence
}

/// Empty string when identical; otherwise a human-readable divergence.
std::string DiffExecutions(const Result<ResultTable>& mem,
                           const Result<ResultTable>& disk) {
  if (mem.ok() != disk.ok()) {
    return "outcome mismatch: memory=" +
           (mem.ok() ? std::string("ok") : mem.status().ToString()) +
           " disk=" +
           (disk.ok() ? std::string("ok") : disk.status().ToString());
  }
  if (!mem.ok()) {
    if (mem.status().code() != disk.status().code() ||
        mem.status().message() != disk.status().message()) {
      return "error mismatch: memory=" + mem.status().ToString() +
             " disk=" + disk.status().ToString();
    }
    return "";
  }
  if (mem->column_names != disk->column_names) return "column-name mismatch";
  if (mem->rows.size() != disk->rows.size()) {
    return "row-count mismatch: " + std::to_string(mem->rows.size()) +
           " vs " + std::to_string(disk->rows.size());
  }
  for (size_t r = 0; r < mem->rows.size(); ++r) {
    if (mem->rows[r].size() != disk->rows[r].size()) {
      return "arity mismatch at row " + std::to_string(r);
    }
    for (size_t c = 0; c < mem->rows[r].size(); ++c) {
      if (!ValueByteExact(mem->rows[r][c], disk->rows[r][c])) {
        return "cell mismatch at row " + std::to_string(r) + " col " +
               std::to_string(c);
      }
    }
  }
  return "";
}

/// Shared fixture: the deterministic fuzz database pool plus one
/// disk-backed twin per database, built once (twins are read-only after
/// construction, so sharing across threads is safe).
class StorageDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dbs_ = new std::vector<sql::Database>(BuildFuzzDatabases(kNumDatabases));
    twins_ = new std::vector<std::unique_ptr<storage::StorageDb>>();
    for (const auto& db : *dbs_) {
      auto built = storage::StorageDb::CreateInMemoryFrom(db);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      twins_->push_back(std::move(*built));
    }
  }
  static void TearDownTestSuite() {
    delete twins_;
    twins_ = nullptr;
    delete dbs_;
    dbs_ = nullptr;
  }

  static std::vector<sql::Database>* dbs_;
  static std::vector<std::unique_ptr<storage::StorageDb>>* twins_;
};

std::vector<sql::Database>* StorageDifferentialTest::dbs_ = nullptr;
std::vector<std::unique_ptr<storage::StorageDb>>*
    StorageDifferentialTest::twins_ = nullptr;

/// Runs query slot `i` of the deterministic campaign shape (same seed
/// derivation as RunFuzzCampaign) against both backends and records any
/// divergence into `diffs[i]`.
void RunSlot(const std::vector<sql::Database>& dbs,
             const std::vector<std::unique_ptr<storage::StorageDb>>& twins,
             std::vector<QueryGenerator>& gens, uint64_t base_seed, size_t i,
             std::vector<std::string>* diffs) {
  Rng rng(base_seed + i);
  size_t db_index = rng.Index(dbs.size());
  auto stmt = gens[db_index].Generate(rng);
  Executor mem_exec(dbs[db_index]);
  Executor disk_exec(*twins[db_index]);
  auto mem = mem_exec.Execute(*stmt);
  auto disk = disk_exec.Execute(*stmt);
  std::string diff = DiffExecutions(mem, disk);
  if (!diff.empty()) {
    (*diffs)[i] = diff + "\n  db=" + std::to_string(db_index) +
                  " seed=" + std::to_string(base_seed + i) +
                  " sql=" + stmt->ToSql();
  }
}

TEST_F(StorageDifferentialTest, GeneratedQueriesByteIdenticalSingleThread) {
  std::vector<QueryGenerator> gens;
  gens.reserve(dbs_->size());
  for (const auto& db : *dbs_) gens.emplace_back(db);
  const size_t n = kQueriesPerDb * dbs_->size();
  std::vector<std::string> diffs(n);
  for (size_t i = 0; i < n; ++i) {
    RunSlot(*dbs_, *twins_, gens, /*base_seed=*/0xD1FF0001, i, &diffs);
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(diffs[i].empty()) << "slot " << i << ": " << diffs[i];
  }
}

TEST_F(StorageDifferentialTest, GeneratedQueriesByteIdenticalEightThreads) {
  std::vector<QueryGenerator> gens;
  gens.reserve(dbs_->size());
  for (const auto& db : *dbs_) gens.emplace_back(db);
  const size_t n = kQueriesPerDb * dbs_->size();
  std::vector<std::string> diffs(n);  // pre-assigned slots: no contention
  ThreadPool pool(8);
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      RunSlot(*dbs_, *twins_, gens, /*base_seed=*/0xD1FF0001, i, &diffs);
    }
  });
  // The 8-thread pass uses the same seeds as the single-thread pass, so a
  // failure here but not there indicates a concurrency bug in the storage
  // layer, not a planner bug.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(diffs[i].empty()) << "slot " << i << ": " << diffs[i];
  }
}

/// Every corpus entry replays clean — and ReplayCorpusEntry itself builds
/// a disk-backed twin and runs the storagediff oracle, so this covers the
/// whole seed corpus differentially.
void ReplayCorpusClean(const std::string& file) {
  auto entries = LoadCorpusFile(std::string(CODES_FUZZ_CORPUS_DIR) + "/" +
                                file);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_FALSE(entries->empty());
  auto dbs = BuildFuzzDatabases(kNumDatabases);
  for (const auto& entry : *entries) {
    auto violations = ReplayCorpusEntry(dbs, entry);
    ASSERT_TRUE(violations.ok())
        << file << ":" << entry.line << " " << violations.status().ToString();
    for (const auto& v : *violations) {
      ADD_FAILURE() << file << ":" << entry.line << " oracle "
                    << OracleName(v.oracle) << ": " << v.detail
                    << "\n  sql=" << entry.sql;
    }
  }
}

TEST_F(StorageDifferentialTest, EngineBugsCorpusReplaysCleanOnBothBackends) {
  ReplayCorpusClean("engine_bugs.corpus");
}

TEST_F(StorageDifferentialTest, StorageCorpusReplaysCleanOnBothBackends) {
  ReplayCorpusClean("storage_diff.corpus");
}

TEST_F(StorageDifferentialTest, IndexPathActuallyEngagesOnSelectiveQueries) {
  // Guard against the differential pass silently degenerating to
  // seq-scan-vs-seq-scan: with the knob off, results must STILL match
  // (the oracle is backend-agnostic), but the index path counter must
  // only move when the knob is on.
  auto& twin = *(*twins_)[0];
  const sql::Database& db = (*dbs_)[0];
  const auto& table = db.schema().tables[0];
  // A maximally selective equality probe on the first PK-ish column.
  std::string q = "SELECT * FROM " + table.name + " WHERE " +
                  table.columns[0].name + " = 1";

  twin.set_index_scans_enabled(false);
  auto seq = sql::ExecuteSql(twin, q);
  twin.set_index_scans_enabled(true);
  auto idx = sql::ExecuteSql(twin, q);
  ASSERT_EQ(seq.ok(), idx.ok());
  if (seq.ok()) {
    EXPECT_EQ(DiffExecutions(seq, idx), "");
  }
}

}  // namespace
}  // namespace codes::fuzz
