// Tier-1 coverage for the serving-robustness layer: ExecGuard budgets
// (deadline, cancellation, rows/bytes/depth), the deterministic failpoint
// framework, the parser's nesting-depth cap (with on-disk reproducers),
// and the pipeline's degradation ladder (classifier fallback, value
// fallback, bounded repair, emergency SQL) including its clean-path
// equivalence with the historical unguarded Predict.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_guard.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/storage_db.h"

namespace codes {
namespace {

// ------------------------------------------------------------ status layer

Status FailWith(StatusCode code) { return Status(code, "boom"); }

Status PropagatesViaMacro(StatusCode code) {
  CODES_RETURN_IF_ERROR(FailWith(code));
  return Status::Ok();
}

Result<int> HalfOf(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2;
}

Result<int> QuarterViaMacro(int n) {
  CODES_ASSIGN_OR_RETURN(int half, HalfOf(n));
  CODES_ASSIGN_OR_RETURN(auto quarter, HalfOf(half));
  return quarter;
}

TEST(StatusGuardCodesTest, NewCodesHaveNamesAndFactories) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_EQ(Status::Timeout("t").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesAndPassesOk) {
  EXPECT_TRUE(PropagatesViaMacro(StatusCode::kOk).ok());
  EXPECT_EQ(PropagatesViaMacro(StatusCode::kTimeout).code(),
            StatusCode::kTimeout);
  EXPECT_EQ(PropagatesViaMacro(StatusCode::kParseError).code(),
            StatusCode::kParseError);
}

TEST(StatusMacroTest, AssignOrReturnAssignsAndPropagates) {
  auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto outer_odd = QuarterViaMacro(7);
  ASSERT_FALSE(outer_odd.ok());
  EXPECT_EQ(outer_odd.status().code(), StatusCode::kInvalidArgument);
  auto inner_odd = QuarterViaMacro(6);  // 6/2 = 3, 3 is odd
  ASSERT_FALSE(inner_odd.ok());
}

// -------------------------------------------------------------- exec guard

/// One-table database with `rows` integer rows and a text label per row.
sql::Database MakeWideDb(int rows) {
  sql::DatabaseSchema schema;
  schema.name = "wide";
  sql::TableDef nums;
  nums.name = "nums";
  nums.columns = {
      {"n", sql::DataType::kInteger, "value", true},
      {"label", sql::DataType::kText, "text payload", false},
  };
  schema.tables = {nums};
  sql::Database db(std::move(schema));
  for (int i = 0; i < rows; ++i) {
    CODES_CHECK(db.Insert("nums", {sql::Value(static_cast<int64_t>(i)),
                                   sql::Value("row-" + std::to_string(i))})
                    .ok());
  }
  return db;
}

TEST(ExecGuardTest, InactiveGuardChecksNothing) {
  ExecGuard guard;
  EXPECT_FALSE(guard.active());
  EXPECT_TRUE(guard.Check().ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(guard.ChargeRow(1 << 20).ok());
  }
  EXPECT_TRUE(guard.EnterNested().ok());
  guard.LeaveNested();
}

TEST(ExecGuardTest, RowBudgetExhaustsMidScan) {
  auto db = MakeWideDb(500);
  ExecLimits limits;
  limits.max_rows = 10;
  ExecGuard guard(limits);
  auto result = sql::ExecuteSql(db, "SELECT n FROM nums", &guard);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The same query without a guard (and via the unguarded default) works.
  EXPECT_TRUE(sql::ExecuteSql(db, "SELECT n FROM nums").ok());
}

TEST(ExecGuardTest, ByteBudgetExhausts) {
  auto db = MakeWideDb(500);
  ExecLimits limits;
  limits.max_bytes = 256;  // a handful of rows of Value + text payload
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.tracks_bytes());
  auto result = sql::ExecuteSql(db, "SELECT label FROM nums", &guard);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(guard.bytes_charged(), 256u);
}

TEST(ExecGuardTest, DeadlineFiresMidScan) {
  auto db = MakeWideDb(2000);
  ExecLimits limits;
  limits.deadline_seconds = 1e-4;
  ExecGuard guard(limits);
  // Let the deadline lapse, then scan enough rows that the throttled
  // clock check (every kTimeCheckStride charges) must observe it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto result = sql::ExecuteSql(db, "SELECT n FROM nums", &guard);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(ExecGuardTest, PreCancelledTokenAbortsImmediately) {
  auto db = MakeWideDb(50);
  CancelToken token;
  token.Cancel();
  ExecGuard guard(ExecLimits{}, &token);
  auto result = sql::ExecuteSql(db, "SELECT n FROM nums", &guard);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Reset makes the token reusable.
  token.Reset();
  ExecGuard fresh(ExecLimits{}, &token);
  EXPECT_TRUE(sql::ExecuteSql(db, "SELECT n FROM nums", &fresh).ok());
}

TEST(ExecGuardTest, CancellationFromAnotherThread) {
  // Best-effort concurrent variant (the deterministic one is above): a
  // second thread cancels while a large cross join runs. The join either
  // finishes before the cancel lands (fine) or unwinds with kCancelled;
  // under TSan this exercises the cross-thread token path.
  auto db = MakeWideDb(1200);
  CancelToken token;
  ExecGuard guard(ExecLimits{}, &token);
  std::thread canceller([&token]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  auto result = sql::ExecuteSql(
      db, "SELECT T1.n FROM nums AS T1 JOIN nums AS T2 ON T1.n < T2.n",
      &guard);
  canceller.join();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(ExecGuardTest, ConcurrentCancellersAndPollersAreRaceFree) {
  // Hammer the cross-thread token path the serving front end relies on:
  // several threads cancel the same token while several others poll it
  // through ExecGuard::Check. Run under the TSan CI leg; the assertions
  // here are about the protocol (no poller may observe OK after it has
  // once seen kCancelled, and all must see the cancel eventually).
  constexpr int kCancellers = 4;
  constexpr int kPollers = 4;
  CancelToken token;
  std::vector<std::thread> threads;
  std::atomic<int> saw_cancel{0};
  std::atomic<bool> protocol_violated{false};
  threads.reserve(kCancellers + kPollers);
  for (int p = 0; p < kPollers; ++p) {
    threads.emplace_back([&token, &saw_cancel, &protocol_violated]() {
      ExecGuard guard(ExecLimits{}, &token);
      // Poll until the cancel is observed (the cancellers fire within
      // microseconds; this terminates fast), then keep checking that it
      // stays observed — cancellation must be sticky.
      while (true) {
        Status status = guard.Check();
        if (status.ok()) continue;
        if (status.code() != StatusCode::kCancelled) {
          protocol_violated.store(true);
        }
        break;
      }
      for (int i = 0; i < 1'000; ++i) {
        if (guard.Check().ok()) protocol_violated.store(true);
      }
      saw_cancel.fetch_add(1);
    });
  }
  for (int c = 0; c < kCancellers; ++c) {
    threads.emplace_back([&token, c]() {
      std::this_thread::sleep_for(std::chrono::microseconds(100 * (c + 1)));
      token.Cancel();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(protocol_violated.load());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(saw_cancel.load(), kPollers)
      << "200k polls span the cancel point; every poller must observe it";
}

TEST(ExecGuardTest, DepthBudgetBoundsSubqueryNesting) {
  auto db = MakeWideDb(20);
  const std::string nested =
      "SELECT n FROM nums WHERE n IN (SELECT n FROM nums WHERE n IN "
      "(SELECT n FROM nums))";
  ExecLimits tight;
  tight.max_depth = 1;
  ExecGuard guard_tight(tight);
  auto too_deep = sql::ExecuteSql(db, nested, &guard_tight);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kResourceExhausted);

  ExecLimits loose;
  loose.max_depth = 4;
  ExecGuard guard_loose(loose);
  EXPECT_TRUE(sql::ExecuteSql(db, nested, &guard_loose).ok());
}

TEST(ExecGuardTest, FailedEnterDoesNotLeakDepth) {
  ExecLimits limits;
  limits.max_depth = 1;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.EnterNested().ok());
  EXPECT_FALSE(guard.EnterNested().ok());  // would be depth 2
  EXPECT_FALSE(guard.EnterNested().ok());  // still depth 1, still refused
  guard.LeaveNested();
  EXPECT_TRUE(guard.EnterNested().ok());  // back to depth 0, re-enterable
  guard.LeaveNested();
}

TEST(ExecGuardTest, ResetUsageAllowsCandidateReuse) {
  auto db = MakeWideDb(100);
  ExecLimits limits;
  // One run of the scan charges ~200 rows (seed scan + projected output
  // both count); the budget fits one run but not two without a reset.
  limits.max_rows = 250;
  ExecGuard guard(limits);
  EXPECT_TRUE(sql::ExecuteSql(db, "SELECT n FROM nums", &guard).ok());
  // Without a reset the second candidate would inherit the first one's
  // row usage and trip the budget.
  guard.ResetUsage();
  EXPECT_TRUE(sql::ExecuteSql(db, "SELECT n FROM nums", &guard).ok());
}

// -------------------------------------------------------------- failpoints

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Clear(); }
};

TEST_F(FailpointTest, DisabledRegistryNeverFires) {
  Failpoints::Clear();
  EXPECT_FALSE(Failpoints::Enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
  }
}

TEST_F(FailpointTest, SiteNamesRoundTrip) {
  for (int i = 0; i < kNumFailpointSites; ++i) {
    auto site = static_cast<FailpointSite>(i);
    EXPECT_EQ(FailpointSiteByName(FailpointSiteName(site)), site);
  }
  EXPECT_EQ(FailpointSiteByName("no.such.site"), FailpointSite::kNumSites);
}

TEST_F(FailpointTest, ConfigureGrammar) {
  EXPECT_TRUE(Failpoints::Configure("classifier.score=prob:0.5", 1).ok());
  EXPECT_TRUE(Failpoints::Configure("executor.step=nth:3", 1).ok());
  EXPECT_TRUE(Failpoints::Configure("lm.decode=oneshot", 1).ok());
  EXPECT_TRUE(
      Failpoints::Configure("*=prob:0.1; bm25.lookup=oneshot", 7).ok());
  EXPECT_FALSE(Failpoints::Configure("bogus.site=prob:0.5", 1).ok());
  EXPECT_FALSE(Failpoints::Configure("classifier.score=prob:2.0", 1).ok());
  EXPECT_FALSE(Failpoints::Configure("classifier.score=nth:0", 1).ok());
  EXPECT_FALSE(Failpoints::Configure("classifier.score", 1).ok());
  EXPECT_FALSE(Failpoints::Configure("classifier.score=maybe", 1).ok());
  Failpoints::Clear();
  EXPECT_FALSE(Failpoints::Enabled());
}

TEST_F(FailpointTest, MalformedSpecCorpusAllRejectedWithDiagnostics) {
  // Every spec here once either crashed nothing but silently armed half a
  // campaign, or mapped to "no faults" via atoi-style parsing. Each must
  // now fail with a non-empty diagnostic and leave the registry disabled.
  const char* corpus[] = {
      "classifier.score",            // no trigger at all
      "classifier.score=",           // empty trigger
      "classifier.score=maybe",      // unknown trigger
      "classifier.score=prob",       // prob without argument
      "classifier.score=prob:",      // empty probability
      "classifier.score=prob:2.0",   // out of range
      "classifier.score=prob:-0.1",  // negative
      "classifier.score=prob:nan",   // NaN compares false to everything
      "classifier.score=prob:inf",   // non-finite
      "classifier.score=prob:0.5x",  // trailing garbage
      "classifier.score=nth:0",      // nth must be >= 1
      "classifier.score=nth:-3",     // negative count
      "classifier.score=nth:3.5",    // non-integer
      "classifier.score=oneshot:1",  // oneshot takes no argument
      "bogus.site=prob:0.5",         // unknown site
      "=prob:0.5",                   // empty site name
      "classifier.score=oneshot;;lm.decode=oneshot",  // doubled ';'
      ";classifier.score=oneshot",   // leading ';'
  };
  for (const char* spec : corpus) {
    Status status = Failpoints::Configure(spec, 1);
    EXPECT_FALSE(status.ok()) << "accepted malformed spec: " << spec;
    EXPECT_FALSE(status.message().empty()) << spec;
    EXPECT_FALSE(Failpoints::Enabled())
        << "malformed spec left the registry armed: " << spec;
  }
}

TEST_F(FailpointTest, MalformedSpecLeavesNoPartialState) {
  // The first entry of this spec is valid, the second is not: nothing may
  // be armed (the old in-place parse installed the valid prefix).
  Status status =
      Failpoints::Configure("executor.step=oneshot;bogus=oneshot", 3);
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(Failpoints::Enabled());
  FailpointScope scope(1);
  EXPECT_FALSE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
  // A subsequent valid configure works normally.
  ASSERT_TRUE(Failpoints::Configure("executor.step=oneshot", 3).ok());
  FailpointScope scope2(2);
  EXPECT_TRUE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
}

TEST_F(FailpointTest, TrailingSemicolonAndBlankSpecsAreAccepted) {
  EXPECT_TRUE(Failpoints::Configure("executor.step=oneshot;", 1).ok());
  EXPECT_TRUE(Failpoints::Enabled());
  Failpoints::Clear();
  EXPECT_TRUE(Failpoints::Configure("", 1).ok());
  EXPECT_FALSE(Failpoints::Enabled());
  EXPECT_TRUE(Failpoints::Configure("   ", 1).ok());
  EXPECT_FALSE(Failpoints::Enabled());
}

TEST_F(FailpointTest, ConfigureFromEnvSurfacesBadSpecsAndSeeds) {
  ::setenv("CODES_FAILPOINTS", "classifier.score=prob:0.5", 1);
  ::setenv("CODES_FAILPOINT_SEED", "not-a-number", 1);
  Status bad_seed = Failpoints::ConfigureFromEnv();
  EXPECT_FALSE(bad_seed.ok());
  EXPECT_NE(bad_seed.message().find("CODES_FAILPOINT_SEED"),
            std::string::npos);

  ::setenv("CODES_FAILPOINT_SEED", "42", 1);
  EXPECT_TRUE(Failpoints::ConfigureFromEnv().ok());
  EXPECT_TRUE(Failpoints::Enabled());
  Failpoints::Clear();

  ::setenv("CODES_FAILPOINTS", "classifier.score=prob:nan", 1);
  Status bad_spec = Failpoints::ConfigureFromEnv();
  EXPECT_FALSE(bad_spec.ok());
  EXPECT_FALSE(Failpoints::Enabled());

  ::unsetenv("CODES_FAILPOINTS");
  ::unsetenv("CODES_FAILPOINT_SEED");
  EXPECT_TRUE(Failpoints::ConfigureFromEnv().ok()) << "unset env is a no-op";
  EXPECT_FALSE(Failpoints::Enabled());
}

TEST_F(FailpointTest, OneShotFiresOncePerScope) {
  ASSERT_TRUE(Failpoints::Configure("executor.step=oneshot", 3).ok());
  {
    FailpointScope scope(111);
    EXPECT_TRUE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
    EXPECT_FALSE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
    EXPECT_FALSE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
  }
  {
    FailpointScope scope(222);  // fresh scope, counter resets
    EXPECT_TRUE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
    EXPECT_FALSE(Failpoints::ShouldFail(FailpointSite::kExecutorStep));
  }
}

TEST_F(FailpointTest, EveryNthFiresOnSchedule) {
  ASSERT_TRUE(Failpoints::Configure("lm.decode=nth:3", 3).ok());
  FailpointScope scope(5);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(Failpoints::ShouldFail(FailpointSite::kLmDecode));
  }
  std::vector<bool> expected = {false, false, true, false, false,
                                true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(Failpoints::FiredCount(FailpointSite::kLmDecode), 3u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeedAndSlot) {
  ASSERT_TRUE(Failpoints::Configure("bm25.lookup=prob:0.5", 42).ok());
  auto draw = [](uint64_t slot) {
    FailpointScope scope(slot);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(Failpoints::ShouldFail(FailpointSite::kBm25Lookup));
    }
    return decisions;
  };
  auto a = draw(1234);
  auto b = draw(1234);
  EXPECT_EQ(a, b) << "same slot must replay identical decisions";
  auto c = draw(9999);
  EXPECT_NE(a, c) << "different slots should diverge at p=0.5 over 200 draws";
  int fires = 0;
  for (bool d : a) fires += d ? 1 : 0;
  EXPECT_GT(fires, 50);
  EXPECT_LT(fires, 150);
}

TEST_F(FailpointTest, SeedChangesDecisions) {
  auto draw_with_seed = [](uint64_t seed) {
    CODES_CHECK(Failpoints::Configure("bm25.lookup=prob:0.5", seed).ok());
    FailpointScope scope(77);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(Failpoints::ShouldFail(FailpointSite::kBm25Lookup));
    }
    return decisions;
  };
  EXPECT_NE(draw_with_seed(1), draw_with_seed(2));
}

TEST_F(FailpointTest, FailStatusNamesTheSite) {
  Status s = Failpoints::FailStatus(FailpointSite::kClassifierScore);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("classifier.score"), std::string::npos);
}

// ------------------------------------------------------ storage failpoints

class StorageFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Clear(); }
};

TEST_F(StorageFailpointTest, PageReadFaultSurfacesAsCleanQueryError) {
  // A tiny pool and a multi-page heap guarantee the scan reaches the disk
  // layer (a pool large enough to cache every page would never evaluate
  // the page-read failpoint).
  auto db = MakeWideDb(2000);
  auto built = storage::StorageDb::CreateInMemoryFrom(db, /*pool_frames=*/2);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_GT((*built)->disk().page_count(), 2u);
  ASSERT_TRUE(Failpoints::Configure("storage.page_read=prob:1", 9).ok());
  {
    FailpointScope scope(1);
    auto result = sql::ExecuteSql(**built, "SELECT n FROM nums");
    ASSERT_FALSE(result.ok()) << "every page read faulted; query cannot run";
    EXPECT_NE(result.status().message().find("storage.page_read"),
              std::string::npos);
  }
  // Disarmed, the same StorageDb serves the query normally — a faulted
  // read corrupts nothing.
  Failpoints::Clear();
  auto retry = sql::ExecuteSql(**built, "SELECT n FROM nums");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->NumRows(), 2000u);
}

TEST_F(StorageFailpointTest, EvictionWriteBackFaultNeverDropsDirtyPage) {
  auto disk = storage::DiskManager::CreateInMemory();
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(disk->Allocate().ok());
  storage::BufferPool pool(disk.get(), 1);
  {
    auto g = pool.Fetch(0);
    ASSERT_TRUE(g.ok());
    g->data()[7] = std::byte{0x42};
    g->MarkDirty();
  }
  ASSERT_TRUE(Failpoints::Configure("storage.evict=oneshot", 9).ok());
  FailpointScope scope(2);
  // Evicting the dirty page 0 needs a write-back, which faults: the fetch
  // of page 1 fails and the victim must stay resident, still dirty.
  auto blocked = pool.Fetch(1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.status().message().find("storage.evict"),
            std::string::npos);
  {
    auto back = pool.Fetch(0);
    ASSERT_TRUE(back.ok()) << "victim was dropped after failed write-back";
    EXPECT_EQ(back->data()[7], std::byte{0x42});
  }
  // The oneshot is consumed: eviction now succeeds and the dirty bytes
  // reach disk.
  auto unblocked = pool.Fetch(1);
  ASSERT_TRUE(unblocked.ok());
  std::byte page[storage::kPageSize];
  ASSERT_TRUE(disk->ReadPage(0, page).ok());
  EXPECT_EQ(page[7], std::byte{0x42});
}

TEST_F(StorageFailpointTest, MidSplitFaultLeavesTreeConsistent) {
  auto disk = storage::DiskManager::CreateInMemory();
  storage::BufferPool pool(disk.get(), 16);
  storage::BPlusTree tree(&pool);
  // Fill one leaf close to overflow with fat text keys, fault-free.
  int inserted = 0;
  for (; inserted < 60; ++inserted) {
    sql::Value key("k" + std::string(100, 'p') + std::to_string(inserted));
    ASSERT_TRUE(tree.Insert(key, storage::Rid{0, 0}).ok());
  }
  ASSERT_TRUE(Failpoints::Configure("storage.split=prob:1", 9).ok());
  FailpointScope scope(3);
  // Keep inserting until a split is needed; that insert must fail with the
  // injected error BEFORE any page is mutated.
  int failed_at = -1;
  for (int i = inserted; i < 200; ++i) {
    sql::Value key("k" + std::string(100, 'p') + std::to_string(i));
    Status s = tree.Insert(key, storage::Rid{0, 0});
    if (!s.ok()) {
      EXPECT_NE(s.message().find("storage.split"), std::string::npos);
      failed_at = i;
      break;
    }
    ++inserted;
  }
  ASSERT_GE(failed_at, 0) << "no split triggered within 200 inserts";
  Failpoints::Clear();

  // Error-before-mutation: the tree holds exactly the successful inserts,
  // iterates cleanly, and the failed key is absent — and can be inserted
  // now that the fault is gone.
  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(inserted));
  sql::Value failed_key("k" + std::string(100, 'p') +
                        std::to_string(failed_at));
  auto contains = tree.Contains(failed_key, storage::Rid{0, 0});
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(*contains);
  ASSERT_TRUE(tree.Insert(failed_key, storage::Rid{0, 0}).ok());
  auto after = tree.CountEntries();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, static_cast<uint64_t>(inserted + 1));
}

// ------------------------------------------------------------ parser depth

TEST(ParserDepthTest, DeeplyNestedParensRejectedShallowAccepted) {
  auto wrap = [](int depth) {
    std::string sql = "SELECT ";
    for (int i = 0; i < depth; ++i) sql += "(";
    sql += "1";
    for (int i = 0; i < depth; ++i) sql += ")";
    sql += " FROM t";
    return sql;
  };
  EXPECT_TRUE(sql::ParseSql(wrap(50)).ok());
  auto deep = sql::ParseSql(wrap(300));
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kParseError);
  EXPECT_NE(deep.status().message().find("depth"), std::string::npos);
}

TEST(ParserDepthTest, SubqueryChainsAndUnaryChainsBounded) {
  std::string subquery_chain = "SELECT a FROM t";
  for (int i = 0; i < 250; ++i) {
    subquery_chain = "SELECT a FROM t WHERE a IN (" + subquery_chain + ")";
  }
  auto sub = sql::ParseSql(subquery_chain);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kParseError);

  std::string nots = "SELECT 1 FROM t WHERE ";
  for (int i = 0; i < 300; ++i) nots += "NOT ";
  nots += "1";
  auto notres = sql::ParseSql(nots);
  ASSERT_FALSE(notres.ok());
  EXPECT_EQ(notres.status().code(), StatusCode::kParseError);
}

TEST(ParserDepthTest, CorpusReproducersAllRejectedWithoutCrashing) {
  std::ifstream in(std::string(CODES_FUZZ_CORPUS_DIR) +
                   "/parser_depth.corpus");
  ASSERT_TRUE(in.is_open());
  std::string line;
  int checked = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto result = sql::ParseSql(line);
    ASSERT_FALSE(result.ok()) << "depth bomb unexpectedly parsed: "
                              << line.substr(0, 80);
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    EXPECT_NE(result.status().message().find("depth"), std::string::npos);
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

// ------------------------------------------------------- degradation ladder

/// FNV-1a, mirroring the pipeline's per-sample seed derivation so the test
/// can reconstruct the legacy (pre-ladder) selection rule exactly.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

class LadderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
    PipelineConfig config;
    config.size = ModelSize::k7B;
    config_ = config;
    pipeline_ = new CodesPipeline(config, zoo_->CodesFor(config.size));
    pipeline_->TrainClassifier(*bench_);
    pipeline_->FineTune(*bench_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete zoo_;
    delete bench_;
    pipeline_ = nullptr;
    zoo_ = nullptr;
    bench_ = nullptr;
  }
  void TearDown() override { Failpoints::Clear(); }

  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
  static CodesPipeline* pipeline_;
  static PipelineConfig config_;
};
Text2SqlBenchmark* LadderTest::bench_ = nullptr;
LmZoo* LadderTest::zoo_ = nullptr;
CodesPipeline* LadderTest::pipeline_ = nullptr;
PipelineConfig LadderTest::config_;

TEST_F(LadderTest, CleanPathMatchesLegacyFirstExecutableSelection) {
  // The repair loop with no faults and no budgets must reproduce the
  // paper's rule verbatim: first executable beam candidate, else beam[0].
  int compared = 0;
  for (const auto& sample : bench_->dev) {
    if (compared >= 25) break;
    DatabasePrompt prompt = pipeline_->BuildPrompt(*bench_, sample);
    GenerationInput input;
    input.db = &bench_->DbOf(sample);
    input.prompt = &prompt;
    input.question = sample.question;
    uint64_t seed = pipeline_->config().seed ^ Fnv1a(sample.question);
    auto beam = pipeline_->model().GenerateBeam(input, seed);
    ASSERT_FALSE(beam.empty());
    std::string expected = beam[0].sql;
    for (const auto& cand : beam) {
      if (cand.executable) {
        expected = cand.sql;
        break;
      }
    }
    EXPECT_EQ(pipeline_->Predict(*bench_, sample), expected)
        << "diverged on: " << sample.question;
    ++compared;
  }
  EXPECT_EQ(compared,
            static_cast<int>(std::min<size_t>(25, bench_->dev.size())));
  EXPECT_GT(compared, 0);
}

TEST_F(LadderTest, GuardedDefaultReportIsCleanAndDeterministic) {
  const auto& sample = bench_->dev.front();
  ServeReport a, b;
  std::string sql_a =
      pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &a);
  std::string sql_b =
      pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &b);
  EXPECT_EQ(sql_a, sql_b);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_FALSE(sql_a.empty());
  EXPECT_FALSE(a.Fired(ServeRung::kClassifierFallback));
  EXPECT_FALSE(a.Fired(ServeRung::kValueFallback));
  EXPECT_FALSE(a.Fired(ServeRung::kEmergencySql));
  if (a.execution_verified) {
    EXPECT_TRUE(a.final_status.ok());
    EXPECT_GE(a.candidate_rank, 0);
  }
}

TEST_F(LadderTest, UntrainedClassifierFallsBackToFullSchema) {
  CodesPipeline bare(config_, zoo_->CodesFor(config_.size));
  // No TrainClassifier: rung 1 must fire and the prediction still flows.
  ServeReport report;
  std::string sql =
      bare.PredictGuarded(*bench_, bench_->dev.front(), ServeOptions(),
                          &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.Fired(ServeRung::kClassifierFallback));
}

TEST_F(LadderTest, InjectedClassifierFaultFiresRungOne) {
  ASSERT_TRUE(Failpoints::Configure("classifier.score=prob:1", 5).ok());
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              ServeOptions(), &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.Fired(ServeRung::kClassifierFallback));
}

TEST_F(LadderTest, InjectedIndexFaultFiresValueFallback) {
  ASSERT_TRUE(
      Failpoints::Configure("value_retriever.build_index=prob:1", 5).ok());
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              ServeOptions(), &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.Fired(ServeRung::kValueFallback));
  EXPECT_FALSE(report.Fired(ServeRung::kClassifierFallback));
}

TEST_F(LadderTest, DecodeFaultsExhaustRepairsAndServeUnverified) {
  ASSERT_TRUE(Failpoints::Configure("lm.decode=prob:1", 5).ok());
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              ServeOptions(), &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.Fired(ServeRung::kRepair));
  EXPECT_FALSE(report.execution_verified);
  EXPECT_GT(report.repair_attempts, 0);
  // The unverified fallback is the highest-ranked candidate.
  EXPECT_EQ(report.candidate_rank, 0);
  EXPECT_FALSE(report.final_status.ok());
}

TEST_F(LadderTest, OneShotDecodeFaultRepairsToLowerRankedCandidate) {
  // Find a dev sample whose beam has an executable candidate below rank 0,
  // so a single injected decode failure must repair downward to it.
  const Text2SqlSample* target = nullptr;
  for (const auto& sample : bench_->dev) {
    DatabasePrompt prompt = pipeline_->BuildPrompt(*bench_, sample);
    GenerationInput input;
    input.db = &bench_->DbOf(sample);
    input.prompt = &prompt;
    input.question = sample.question;
    uint64_t seed = pipeline_->config().seed ^ Fnv1a(sample.question);
    auto beam = pipeline_->model().GenerateBeam(input, seed);
    for (size_t i = 1; i < beam.size(); ++i) {
      if (beam[i].executable) {
        target = &sample;
        break;
      }
    }
    if (target != nullptr) break;
  }
  ASSERT_NE(target, nullptr) << "no dev sample with a rank>0 executable";

  ASSERT_TRUE(Failpoints::Configure("lm.decode=oneshot", 5).ok());
  ServeReport report;
  std::string sql =
      pipeline_->PredictGuarded(*bench_, *target, ServeOptions(), &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.Fired(ServeRung::kRepair));
  EXPECT_EQ(report.repair_attempts, 1);
  if (report.execution_verified) {
    EXPECT_GE(report.candidate_rank, 1);
  }
}

TEST_F(LadderTest, ExecutorFaultsServeUnverifiedFallback) {
  ASSERT_TRUE(Failpoints::Configure("executor.step=prob:1", 5).ok());
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              ServeOptions(), &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_FALSE(report.execution_verified);
  EXPECT_TRUE(report.Fired(ServeRung::kRepair));
}

TEST_F(LadderTest, RowBudgetDegradesButStillServes) {
  ServeOptions options;
  options.limits.max_rows = 1;
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              options, &report);
  EXPECT_FALSE(sql.empty());
  if (!report.execution_verified) {
    EXPECT_EQ(report.final_status.code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(LadderTest, ChaosAtEverySiteNeverServesEmptySql) {
  ASSERT_TRUE(Failpoints::Configure("*=prob:0.3", 20240806).ok());
  std::vector<std::string> first_run;
  for (const auto& sample : bench_->dev) {
    ServeReport report;
    std::string sql =
        pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &report);
    EXPECT_FALSE(sql.empty()) << "empty SQL for: " << sample.question;
    first_run.push_back(sql + " | " + report.ToString());
  }
  // Same seed, same faults, same outputs.
  size_t i = 0;
  for (const auto& sample : bench_->dev) {
    ServeReport report;
    std::string sql =
        pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &report);
    EXPECT_EQ(first_run[i], sql + " | " + report.ToString())
        << "chaos rerun diverged at sample " << i;
    ++i;
  }
}

TEST_F(LadderTest, ChaosReportsAreThreadCountInvariant) {
  ASSERT_TRUE(Failpoints::Configure("*=prob:0.25", 77).ok());
  const auto& dev = bench_->dev;
  auto run = [this, &dev](int threads) {
    std::vector<std::string> out(dev.size());
    ThreadPool pool(threads);
    pool.ParallelFor(dev.size(), [this, &dev, &out](size_t begin,
                                                    size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ServeReport report;
        std::string sql = pipeline_->PredictGuarded(*bench_, dev[i],
                                                    ServeOptions(), &report);
        out[i] = sql + " | " + report.ToString();
      }
    });
    return out;
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "diverged at dev sample " << i;
  }
}

TEST_F(LadderTest, StorageFaultsDoNotPerturbServing) {
  // The serving path executes against the in-memory Database, so armed
  // storage.* sites must not fire, degrade, or change the served SQL —
  // storage faults stay confined to the storage layer.
  const auto& sample = bench_->dev.front();
  ServeReport clean;
  std::string clean_sql =
      pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &clean);
  ASSERT_TRUE(Failpoints::Configure(
                  "storage.page_read=prob:1;storage.evict=prob:1;"
                  "storage.split=prob:1",
                  9)
                  .ok());
  ServeReport faulted;
  std::string faulted_sql =
      pipeline_->PredictGuarded(*bench_, sample, ServeOptions(), &faulted);
  EXPECT_EQ(clean_sql, faulted_sql);
  EXPECT_EQ(clean.ToString(), faulted.ToString());
  EXPECT_EQ(Failpoints::FiredCount(FailpointSite::kStoragePageRead), 0u);
  EXPECT_EQ(Failpoints::FiredCount(FailpointSite::kStorageEvict), 0u);
  EXPECT_EQ(Failpoints::FiredCount(FailpointSite::kStorageSplit), 0u);
}

TEST_F(LadderTest, BackoffScheduleIsCappedExponential) {
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(1, 0.0, 8.0), 0.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(3, -1.0, 8.0), 0.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(0, 1.0, 8.0), 0.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(1, 1.0, 8.0), 1.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(2, 1.0, 8.0), 2.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(3, 1.0, 8.0), 4.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(4, 1.0, 8.0), 8.0);
  EXPECT_EQ(CodesPipeline::ComputeBackoffMs(10, 1.0, 8.0), 8.0);
}

TEST_F(LadderTest, VerifySourceTwinVerifiesCleanly) {
  // A healthy disk-backed twin plugged in via verify_source must behave
  // exactly like the in-memory backend: the served SQL verifies.
  const auto& sample = bench_->dev.front();
  auto twin = storage::StorageDb::CreateInMemoryFrom(bench_->DbOf(sample),
                                                     /*pool_frames=*/4);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  ServeOptions options;
  options.verify_source = twin->get();
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, sample, options,
                                              &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(report.execution_verified) << report.ToString();
}

TEST_F(LadderTest, DataLossReadsLandOnALadderRung) {
  // Corrupt every non-catalog page of the disk-backed twin. A tiny pool
  // forces candidate execution to fault pages back in from the corrupted
  // store, so every scan surfaces a checksum failure as kDataLoss — which
  // must land on a degradation-ladder rung (failed candidates walk the
  // repair loop, the answer ships unverified), never in the response as
  // garbage rows and never as a crash.
  const auto& sample = bench_->dev.front();
  auto twin = storage::StorageDb::CreateInMemoryFrom(bench_->DbOf(sample),
                                                     /*pool_frames=*/4);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  storage::StorageDb& twin_db = **twin;
  // Drop cached frames so reads hit the (about to be corrupted) pages.
  ASSERT_TRUE(twin_db.Flush().ok());
  for (storage::PageId p = 1; p < twin_db.disk().page_count(); ++p) {
    ASSERT_TRUE(twin_db.mutable_disk()
                    .CorruptPageForTest(p, storage::kPageHeaderBytes + 3)
                    .ok());
  }
  uint64_t failures0 = MetricsRegistry::Global()
                           .GetCounter("storage.checksum_failures")
                           .Value();
  ServeOptions options;
  options.verify_source = &twin_db;
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, sample, options,
                                              &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_FALSE(report.execution_verified);
  EXPECT_TRUE(report.Fired(ServeRung::kRepair) ||
              report.Fired(ServeRung::kEmergencySql))
      << report.ToString();
  EXPECT_FALSE(report.final_status.ok());
  EXPECT_GT(MetricsRegistry::Global()
                .GetCounter("storage.checksum_failures")
                .Value(),
            failures0);
}

TEST_F(LadderTest, ServeReportRendersRungNames) {
  ServeReport report;
  report.AddRung(ServeRung::kClassifierFallback);
  report.AddRung(ServeRung::kRepair);
  report.AddRung(ServeRung::kRepair);  // deduplicated
  report.repair_attempts = 2;
  report.candidate_rank = 1;
  report.final_status = Status::Timeout("late");
  std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("classifier_fallback"), std::string::npos);
  EXPECT_NE(rendered.find("repair"), std::string::npos);
  EXPECT_NE(rendered.find("Timeout"), std::string::npos);
  EXPECT_EQ(report.rungs.size(), 2u);
}

}  // namespace
}  // namespace codes
