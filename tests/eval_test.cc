#include <gtest/gtest.h>

#include <atomic>

#include "common/string_util.h"
#include "dataset/benchmark_builder.h"
#include "eval/metrics.h"
#include "sqlengine/executor.h"

namespace codes {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(111));
  }
  static void TearDownTestSuite() { delete bench_; }
  static Text2SqlBenchmark* bench_;
};
Text2SqlBenchmark* EvalTest::bench_ = nullptr;

TEST_F(EvalTest, GoldPredictorScoresHundred) {
  EvalOptions options;
  options.compute_ts = true;
  options.ts_instances = 2;
  auto m = EvaluateDevSet(
      *bench_, [](const Text2SqlSample& s) { return s.sql; }, options);
  EXPECT_DOUBLE_EQ(m.ex, 100.0);
  EXPECT_DOUBLE_EQ(m.ts, 100.0);
  EXPECT_EQ(m.n, static_cast<int>(bench_->dev.size()));
}

TEST_F(EvalTest, GarbagePredictorScoresZero) {
  EvalOptions options;
  auto m = EvaluateDevSet(
      *bench_, [](const Text2SqlSample&) { return std::string("not sql"); },
      options);
  EXPECT_DOUBLE_EQ(m.ex, 0.0);
}

TEST_F(EvalTest, SemanticallyEquivalentSqlPasses) {
  // OR over two equalities == IN list.
  const auto& db = bench_->databases[0];
  const auto& schema = db.schema();
  // Find a text column with at least two distinct values.
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    for (size_t c = 0; c < schema.tables[t].columns.size(); ++c) {
      if (schema.tables[t].columns[c].type != sql::DataType::kText) continue;
      auto values = db.DistinctValues(schema.tables[t].name,
                                      schema.tables[t].columns[c].name, 2);
      if (values.size() < 2) continue;
      std::string col = schema.tables[t].columns[c].name;
      std::string tab = schema.tables[t].name;
      std::string v1 = values[0].ToSqlLiteral();
      std::string v2 = values[1].ToSqlLiteral();
      std::string gold = "SELECT " + col + " FROM " + tab + " WHERE " + col +
                         " IN (" + v1 + ", " + v2 + ")";
      std::string pred = "SELECT " + col + " FROM " + tab + " WHERE " + col +
                         " = " + v1 + " OR " + col + " = " + v2;
      EXPECT_TRUE(ExecutionMatch(db, pred, gold));
      return;
    }
  }
  FAIL() << "no suitable column found";
}

TEST_F(EvalTest, OrderSensitivityFollowsGold) {
  const auto& db = bench_->databases[0];
  const auto& table = db.schema().tables[0];
  std::string tab = table.name;
  std::string pk = table.columns[0].name;
  // Unordered gold: any order matches.
  EXPECT_TRUE(ExecutionMatch(db, "SELECT " + pk + " FROM " + tab,
                             "SELECT " + pk + " FROM " + tab));
  // Ordered gold vs reversed prediction: must fail (unless trivially tiny).
  if (db.TableAt(0).rows.size() > 2) {
    EXPECT_FALSE(ExecutionMatch(
        db, "SELECT " + pk + " FROM " + tab + " ORDER BY " + pk + " DESC",
        "SELECT " + pk + " FROM " + tab + " ORDER BY " + pk + " ASC"));
  }
}

TEST_F(EvalTest, TsIsStricterThanEx) {
  // A predicate on a value that exists only in the original instance can
  // pass EX but fail TS. Use a wrong-but-coincidental query: gold COUNT
  // over an empty filter vs predicted COUNT over a different empty filter
  // can tie on one instance and differ on regenerated data. Instead verify
  // the weaker structural property: TS <= EX for a noisy predictor.
  EvalOptions options;
  options.compute_ts = true;
  options.ts_instances = 3;
  // Atomic: EvaluateDevSet calls the predictor from several threads.
  std::atomic<int> flip{0};
  auto m = EvaluateDevSet(
      *bench_,
      [&flip](const Text2SqlSample& s) {
        // Every third prediction is garbage.
        return (flip.fetch_add(1) % 3 == 2) ? std::string("SELECT") : s.sql;
      },
      options);
  EXPECT_LE(m.ts, m.ex);
  EXPECT_LT(m.ex, 100.0);
}

TEST_F(EvalTest, VesNearHundredForGold) {
  EvalOptions options;
  options.compute_ves = true;
  options.max_samples = 10;
  auto m = EvaluateDevSet(
      *bench_, [](const Text2SqlSample& s) { return s.sql; }, options);
  EXPECT_GT(m.ves, 60.0);
  EXPECT_LT(m.ves, 160.0);
}

TEST_F(EvalTest, MaxSamplesCapsEvaluation) {
  EvalOptions options;
  options.max_samples = 3;
  auto m = EvaluateDevSet(
      *bench_, [](const Text2SqlSample& s) { return s.sql; }, options);
  EXPECT_EQ(m.n, 3);
}

TEST_F(EvalTest, LenientMatchAcceptsExtraColumns) {
  const auto& db = bench_->databases[0];
  const auto& table = db.schema().tables[0];
  std::string tab = table.name;
  ASSERT_GE(table.columns.size(), 3u);
  std::string c1 = table.columns[1].name;
  std::string c2 = table.columns[2].name;
  std::string gold = "SELECT " + c1 + " FROM " + tab;
  std::string pred = "SELECT " + c2 + ", " + c1 + " FROM " + tab;
  EXPECT_FALSE(ExecutionMatch(db, pred, gold));
  EXPECT_TRUE(LenientExecutionMatch(db, pred, gold));
  // But a prediction missing the requested data still fails.
  std::string wrong = "SELECT " + c2 + " FROM " + tab + " LIMIT 1";
  EXPECT_FALSE(LenientExecutionMatch(db, wrong, gold));
}

}  // namespace
}  // namespace codes
