// Regression tests for the metamorphic SQL-engine fuzzing subsystem.
//
// The seed corpus under tests/fuzz_corpus/ holds one reproducer line per
// engine bug the fuzzer has caught; every entry must replay clean against
// the fixed engine forever. The campaign tests pin the harness's own
// guarantees: determinism across thread counts and a clean small campaign.

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fuzz/fuzz_harness.h"
#include "fuzz/oracle.h"
#include "fuzz/query_gen.h"
#include "sqlengine/parser.h"

namespace codes::fuzz {
namespace {

std::string CorpusPath(const std::string& file) {
  return std::string(CODES_FUZZ_CORPUS_DIR) + "/" + file;
}

TEST(FuzzCorpusTest, EngineBugCorpusReplaysClean) {
  auto entries = LoadCorpusFile(CorpusPath("engine_bugs.corpus"));
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_FALSE(entries->empty());

  int max_db = 0;
  for (const auto& entry : *entries) max_db = std::max(max_db, entry.db_index);
  auto dbs = BuildFuzzDatabases(max_db + 1);

  for (const auto& entry : *entries) {
    auto violations = ReplayCorpusEntry(dbs, entry);
    ASSERT_TRUE(violations.ok())
        << "line " << entry.line << ": " << violations.status().ToString();
    for (const auto& v : *violations) {
      ADD_FAILURE() << "line " << entry.line << " [" << entry.sql << "] "
                    << OracleName(v.oracle) << ": " << v.detail;
    }
  }
}

TEST(FuzzCorpusTest, StorageDiffCorpusReplaysClean) {
  // Each entry replays against the in-memory engine AND a freshly built
  // disk-backed StorageDb twin (ReplayCorpusEntry wires the storagediff
  // oracle automatically), pinning backend equivalence on the curated
  // index-scan/seq-scan workloads.
  auto entries = LoadCorpusFile(CorpusPath("storage_diff.corpus"));
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_FALSE(entries->empty());

  int max_db = 0;
  for (const auto& entry : *entries) max_db = std::max(max_db, entry.db_index);
  auto dbs = BuildFuzzDatabases(max_db + 1);

  std::set<std::string> oracles;
  for (const auto& entry : *entries) {
    oracles.insert(entry.oracle);
    auto violations = ReplayCorpusEntry(dbs, entry);
    ASSERT_TRUE(violations.ok())
        << "line " << entry.line << ": " << violations.status().ToString();
    for (const auto& v : *violations) {
      ADD_FAILURE() << "line " << entry.line << " [" << entry.sql << "] "
                    << OracleName(v.oracle) << ": " << v.detail;
    }
  }
  EXPECT_TRUE(oracles.count("storagediff"));
}

TEST(FuzzCorpusTest, CorpusCoversEveryFixedBugOracle) {
  // The corpus must keep exercising each oracle family that has caught a
  // real bug, so an accidental truncation of the file is loud.
  auto entries = LoadCorpusFile(CorpusPath("engine_bugs.corpus"));
  ASSERT_TRUE(entries.ok());
  std::set<std::string> oracles;
  for (const auto& entry : *entries) oracles.insert(entry.oracle);
  EXPECT_TRUE(oracles.count("rerun"));
  EXPECT_TRUE(oracles.count("roundtrip"));
  EXPECT_TRUE(oracles.count("exec"));
  EXPECT_TRUE(oracles.count("tlp"));
}

TEST(FuzzCorpusTest, LoadRejectsMalformedLines) {
  std::string path = ::testing::TempDir() + "/bad.corpus";
  std::ofstream out(path);
  out << "db=0 seed=1 oracle=exec\n";  // missing sql=
  out.close();
  auto entries = LoadCorpusFile(path);
  EXPECT_FALSE(entries.ok());
}

TEST(FuzzCorpusTest, ReplayFailsOnOutOfRangeDatabase) {
  auto dbs = BuildFuzzDatabases(1);
  CorpusEntry entry;
  entry.db_index = 5;
  entry.sql = "SELECT 1 FROM singer AS T1";
  auto violations = ReplayCorpusEntry(dbs, entry);
  EXPECT_FALSE(violations.ok());
}

TEST(FuzzCampaignTest, SmallCampaignIsClean) {
  FuzzConfig config;
  config.base_seed = 20240805;
  config.num_queries = 300;
  FuzzReport report = RunFuzzCampaign(config, nullptr);
  EXPECT_EQ(report.queries, 300u);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << f.ReproLine() << "\n  detail: " << f.detail;
  }
}

TEST(FuzzCampaignTest, ReportIdenticalAcrossThreadCounts) {
  FuzzConfig config;
  config.base_seed = 99;
  config.num_queries = 200;

  FuzzReport serial = RunFuzzCampaign(config, nullptr);
  ThreadPool pool(4);
  FuzzReport threaded = RunFuzzCampaign(config, &pool);

  EXPECT_EQ(serial.Summary(), threaded.Summary());
  ASSERT_EQ(serial.failures.size(), threaded.failures.size());
  for (size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].ReproLine(), threaded.failures[i].ReproLine());
  }
}

TEST(FuzzCampaignTest, GeneratorIsDeterministicPerSeed) {
  auto dbs = BuildFuzzDatabases(2);
  QueryGenerator gen(dbs[0]);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng a(seed), b(seed);
    auto first = gen.Generate(a);
    auto second = gen.Generate(b);
    EXPECT_EQ(first->ToSql(), second->ToSql()) << "seed " << seed;
  }
}

TEST(FuzzCampaignTest, GeneratedQueriesReparse) {
  // Everything the generator emits must be within the parser's dialect —
  // the generator-support policy (DESIGN.md) hinges on this invariant.
  auto dbs = BuildFuzzDatabases(4);
  for (size_t d = 0; d < dbs.size(); ++d) {
    QueryGenerator gen(dbs[d]);
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      Rng rng(seed * 31 + d);
      auto stmt = gen.Generate(rng);
      std::string sql = stmt->ToSql();
      auto reparsed = sql::ParseSql(sql);
      ASSERT_TRUE(reparsed.ok()) << sql << "\n" << reparsed.status().ToString();
      EXPECT_EQ((*reparsed)->ToSql(), sql);
    }
  }
}

TEST(FuzzReportTest, ReproLinePrefersShrunkSql)  {
  FuzzFailure f;
  f.db_index = 3;
  f.seed = 42;
  f.oracle = OracleId::kTlp;
  f.sql = "SELECT a, b FROM t AS T1 WHERE x ORDER BY a";
  EXPECT_EQ(f.ReproLine(),
            "db=3 seed=42 oracle=tlp sql=" + f.sql);
  f.shrunk_sql = "SELECT a FROM t AS T1 WHERE x";
  EXPECT_EQ(f.ReproLine(),
            "db=3 seed=42 oracle=tlp sql=" + f.shrunk_sql);
}

}  // namespace
}  // namespace codes::fuzz
