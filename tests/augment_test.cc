#include <gtest/gtest.h>

#include "augment/augmentation.h"
#include "dataset/domains.h"
#include "dataset/templates.h"
#include "sqlengine/executor.h"

namespace codes {
namespace {

class AugmentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AugmentOptions options;
    options.seed_pairs = 12;
    options.question_to_sql_pairs = 40;
    options.sql_to_question_pairs = 40;
    dataset_ = new NewDomainDataset(
        BuildNewDomainDataset(BankFinancialsDomain(), 25, options));
  }
  static void TearDownTestSuite() { delete dataset_; }
  static NewDomainDataset* dataset_;
};
NewDomainDataset* AugmentTest::dataset_ = nullptr;

TEST_F(AugmentTest, BuildsRequestedSizes) {
  EXPECT_EQ(dataset_->seeds.size(), 12u);
  EXPECT_EQ(dataset_->bench.dev.size(), 25u);
  EXPECT_EQ(dataset_->bench.train.size(), 80u);
  ASSERT_EQ(dataset_->bench.databases.size(), 1u);
}

TEST_F(AugmentTest, AllSqlExecutes) {
  const auto& db = dataset_->bench.databases[0];
  for (const auto& s : dataset_->bench.train) {
    EXPECT_TRUE(sql::IsExecutable(db, s.sql)) << s.sql;
  }
  for (const auto& s : dataset_->bench.dev) {
    EXPECT_TRUE(sql::IsExecutable(db, s.sql)) << s.sql;
  }
}

TEST_F(AugmentTest, QuestionToSqlFollowsSeedIntents) {
  const auto& db = dataset_->bench.databases[0];
  const auto& lib = GlobalTemplates();
  std::set<int> seed_templates;
  for (const auto& seed : dataset_->seeds) {
    seed_templates.insert(lib.IdentifyTemplate(seed.sql));
  }
  Rng rng(3);
  auto expanded = AugmentQuestionToSql(db, dataset_->seeds, 30, rng);
  ASSERT_FALSE(expanded.empty());
  for (const auto& s : expanded) {
    EXPECT_TRUE(seed_templates.count(lib.IdentifyTemplate(s.sql)))
        << s.sql;
  }
}

TEST_F(AugmentTest, SqlToQuestionCoversManyTemplates) {
  const auto& db = dataset_->bench.databases[0];
  const auto& lib = GlobalTemplates();
  Rng rng(4);
  auto generated = AugmentSqlToQuestion(db, 120, rng);
  std::set<int> templates;
  for (const auto& s : generated) {
    templates.insert(lib.IdentifyTemplate(s.sql));
  }
  // The SQL-to-question direction is about breadth: far more template
  // coverage than the handful of seed intents.
  EXPECT_GT(templates.size(), 20u);
}

TEST_F(AugmentTest, ParaphraserChangesSurfaceNotValues) {
  Rng rng(5);
  std::string q = "Show the name of the client whose city is 'Jesenik'.";
  bool changed = false;
  for (int i = 0; i < 20; ++i) {
    std::string p = ParaphraseQuestion(q, rng);
    EXPECT_NE(p.find("'Jesenik'"), std::string::npos) << p;
    if (p != q) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST_F(AugmentTest, NewDomainUsesSpecialDomainsOnly) {
  // The Bank-Financials domain must not be in the general catalog (no
  // benchmark ever trains on it by accident).
  for (const auto& domain : AllDomains()) {
    EXPECT_NE(domain.name, BankFinancialsDomain().name);
    EXPECT_NE(domain.name, AminerSimplifiedDomain().name);
  }
}

TEST_F(AugmentTest, BankFinancialsHasWideAbbreviatedReportTable) {
  const auto& db = dataset_->bench.databases[0];
  auto t = db.schema().FindTable("financial_report");
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(db.schema().tables[*t].columns.size(), 15u);
  // Abbreviated metric columns carry their meaning as comments.
  auto roe = db.schema().tables[*t].FindColumn("roe");
  ASSERT_TRUE(roe.has_value());
  EXPECT_EQ(db.schema().tables[*t].columns[*roe].comment,
            "return on equity");
}

}  // namespace
}  // namespace codes
