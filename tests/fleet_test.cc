// Tier-1 coverage for multi-tenant serving (ISSUE 9): the bounded
// per-database retriever cache inside CodesPipeline (the original
// unbounded-growth bugfix), and the fleet manager that owns per-tenant
// artifact bundles — lazy attach, snapshot persist/reload with
// corruption fallback, LRU eviction under a global memory budget, and
// the evict-then-reattach determinism contract at 1 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "fleet/fleet_manager.h"
#include "serve/admission.h"

namespace codes {
namespace {

uint64_t CounterDelta(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
    PipelineConfig config;
    config.size = ModelSize::k7B;
    pipeline_ = new CodesPipeline(config, zoo_->CodesFor(config.size));
    pipeline_->TrainClassifier(*bench_);
    pipeline_->FineTune(*bench_);
    // Tenant databases: the dev databases, in order of first appearance.
    for (const auto& sample : bench_->dev) {
      bool seen = false;
      for (int db : *dev_dbs_) seen = seen || db == sample.db_index;
      if (!seen) dev_dbs_->push_back(sample.db_index);
    }
    ASSERT_GE(dev_dbs_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete zoo_;
    delete bench_;
    pipeline_ = nullptr;
    zoo_ = nullptr;
    bench_ = nullptr;
    dev_dbs_->clear();
  }
  void SetUp() override { MetricsRegistry::Global().Reset(); }

  /// A two-tenant fleet over the first two dev databases, persistence in
  /// `dir` ("" disables), LRU under `budget` bytes (0 = unbounded).
  static std::unique_ptr<fleet::FleetManager> MakeFleet(
      const std::string& dir, size_t budget) {
    fleet::FleetManager::Options options;
    options.memory_budget_bytes = budget;
    options.snapshot_dir = dir;
    auto fleet = std::make_unique<fleet::FleetManager>(options);
    static const char* kNames[2] = {"rivers", "concerts"};
    for (int t = 0; t < 2; ++t) {
      fleet::FleetManager::TenantDesc desc;
      desc.name = kNames[t];
      desc.db = &bench_->databases[static_cast<size_t>((*dev_dbs_)[t])];
      desc.classifier_source = bench_;
      for (int j = 0; j < 4; ++j) {
        desc.demo_pool.push_back(bench_->train[static_cast<size_t>(
            (t * 4 + j) % static_cast<int>(bench_->train.size()))]);
      }
      fleet->AddTenant(std::move(desc));
    }
    return fleet;
  }

  /// Index of the tenant (0 or 1) owning `sample`'s database; -1 if it
  /// belongs to neither fleet tenant.
  static int TenantOf(const Text2SqlSample& sample) {
    for (int t = 0; t < 2; ++t) {
      if (sample.db_index == (*dev_dbs_)[t]) return t;
    }
    return -1;
  }

  static std::string TempDirFor(const char* name) {
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir.string();
  }

  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
  static CodesPipeline* pipeline_;
  static std::vector<int>* dev_dbs_;
};
Text2SqlBenchmark* FleetTest::bench_ = nullptr;
LmZoo* FleetTest::zoo_ = nullptr;
CodesPipeline* FleetTest::pipeline_ = nullptr;
std::vector<int>* FleetTest::dev_dbs_ = new std::vector<int>();

// ------------------------------------------------- bounded retriever cache

// The ISSUE 9 bugfix regression: the per-database retriever cache must
// hold a bounded number of entries (and bytes) no matter how many
// distinct databases flow through it, and its memory must stay flat over
// a 100k-request question flood.
TEST_F(FleetTest, RetrieverCacheStaysBoundedUnderDistinctDatabaseFlood) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  config.retriever_cache_max_entries = 4;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));

  // Flood phase: more distinct databases than the cache may hold, each
  // visited repeatedly. Before the cap, entries grew one per database
  // forever; now the count must stay bounded with evictions counted.
  size_t max_entries_seen = 0;
  size_t lookups = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& db : bench_->databases) {
      ASSERT_NE(pipeline.RetrieverFor(db), nullptr);
      ++lookups;
      auto stats = pipeline.retriever_cache_stats();
      max_entries_seen = std::max(max_entries_seen, stats.entries);
    }
  }
  ASSERT_GT(bench_->databases.size(), 4u);
  EXPECT_LE(max_entries_seen, 4u);

  MetricsSnapshot flood = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(CounterDelta(flood, "pipeline.retriever_cache.evictions"), 0u);
  EXPECT_EQ(CounterDelta(flood, "pipeline.retriever_cache.hits") +
                CounterDelta(flood, "pipeline.retriever_cache.misses"),
            lookups);

  // Flat phase: 100k requests alternating over two databases. Every
  // request after the warm-up is a cache hit; entries and bytes must not
  // move at all — the "flat memory over 100k distinct questions" claim,
  // with the cache keyed per database.
  const auto& db_a = bench_->databases[0];
  const auto& db_b = bench_->databases[1];
  ASSERT_NE(pipeline.RetrieverFor(db_a), nullptr);
  ASSERT_NE(pipeline.RetrieverFor(db_b), nullptr);
  auto before = pipeline.retriever_cache_stats();
  uint64_t hits_before = CounterDelta(MetricsRegistry::Global().Snapshot(),
                                      "pipeline.retriever_cache.hits");
  for (int i = 0; i < 100'000; ++i) {
    const auto& db = (i & 1) ? db_b : db_a;
    ASSERT_NE(pipeline.RetrieverFor(db), nullptr);
  }
  auto after = pipeline.retriever_cache_stats();
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.bytes, before.bytes) << "cache memory grew under flood";
  EXPECT_LE(after.entries, 4u);
  uint64_t hits_after = CounterDelta(MetricsRegistry::Global().Snapshot(),
                                     "pipeline.retriever_cache.hits");
  EXPECT_EQ(hits_after - hits_before, 100'000u);
}

TEST_F(FleetTest, RetrieverCacheByteBudgetEvictsDownToOne) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  config.retriever_cache_max_bytes = 1;  // any real entry is over budget
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));

  auto first = pipeline.RetrieverFor(bench_->databases[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(pipeline.retriever_cache_stats().entries, 1u);

  // The newest entry is exempt from its own eviction pass, so the cache
  // keeps exactly one entry alive; the lease handed out above stays
  // valid after its entry is evicted.
  auto second = pipeline.RetrieverFor(bench_->databases[1]);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(pipeline.retriever_cache_stats().entries, 1u);
  EXPECT_GT(first->NumIndexedValues(), 0u);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "pipeline.retriever_cache.evictions"),
            1u);
}

// ------------------------------------------------------------ fleet manager

TEST_F(FleetTest, AttachBuildsOnceAndSnapshotReloadsByteIdentically) {
  std::string dir = TempDirFor("fleet_roundtrip");
  const Text2SqlSample* sample = nullptr;
  for (const auto& s : bench_->dev) {
    if (TenantOf(s) == 0) sample = &s;
  }
  ASSERT_NE(sample, nullptr);

  std::string built_sql;
  size_t built_bytes = 0;
  std::string snapshot_path;
  {
    auto fleet = MakeFleet(dir, 0);
    auto artifacts = fleet->Attach(0);
    ASSERT_NE(artifacts, nullptr);
    ASSERT_NE(artifacts->retriever, nullptr);
    EXPECT_GT(artifacts->bytes, 0u);
    built_bytes = artifacts->bytes;
    snapshot_path = fleet->SnapshotPath(0);

    // Resident re-attach is free: same bundle, no second build.
    EXPECT_EQ(fleet->Attach(0).get(), artifacts.get());
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.build"), 1u);
    EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.snapshot"), 0u);
    EXPECT_TRUE(std::filesystem::exists(snapshot_path));

    ServeOptions options;
    options.value_retriever = artifacts->retriever.get();
    built_sql = pipeline_->PredictGuarded(*bench_, *sample, options);
    ASSERT_FALSE(built_sql.empty());
  }

  // A fresh manager over the same snapshot directory must reload the
  // bundle from disk (no build) and predict byte-identically.
  MetricsRegistry::Global().Reset();
  {
    auto fleet = MakeFleet(dir, 0);
    auto artifacts = fleet->Attach(0);
    ASSERT_NE(artifacts, nullptr);
    EXPECT_EQ(artifacts->bytes, built_bytes);
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.build"), 0u);
    EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.snapshot"), 1u);

    ServeOptions options;
    options.value_retriever = artifacts->retriever.get();
    EXPECT_EQ(pipeline_->PredictGuarded(*bench_, *sample, options),
              built_sql);
  }

  // A corrupted snapshot is a cache miss, not an error: attach falls
  // back to the source build and still serves the same predictions.
  {
    std::fstream file(snapshot_path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(24);
    char garbage = '\x5a';
    file.write(&garbage, 1);
  }
  MetricsRegistry::Global().Reset();
  {
    auto fleet = MakeFleet(dir, 0);
    auto artifacts = fleet->Attach(0);
    ASSERT_NE(artifacts, nullptr);
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.build"), 1u)
        << "corrupted snapshot should fall back to a source build";

    ServeOptions options;
    options.value_retriever = artifacts->retriever.get();
    EXPECT_EQ(pipeline_->PredictGuarded(*bench_, *sample, options),
              built_sql);
  }
}

TEST_F(FleetTest, WarmAllPersistsEverythingThenEvicts) {
  std::string dir = TempDirFor("fleet_warm");
  auto fleet = MakeFleet(dir, 0);
  fleet->WarmAll();
  EXPECT_EQ(fleet->NumResident(), 0u);
  EXPECT_EQ(fleet->ResidentBytes(), 0u);
  EXPECT_GT(fleet->PeakResidentBytes(), 0u);
  for (int t = 0; t < fleet->NumTenants(); ++t) {
    EXPECT_TRUE(std::filesystem::exists(fleet->SnapshotPath(t)))
        << fleet->TenantName(t);
  }

  // Every post-warm attach is a snapshot load: the expensive build ran
  // exactly once, in WarmAll.
  MetricsRegistry::Global().Reset();
  for (int t = 0; t < fleet->NumTenants(); ++t) {
    EXPECT_NE(fleet->Attach(t), nullptr);
  }
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.build"), 0u);
  EXPECT_EQ(CounterDelta(snapshot, "fleet.attach.snapshot"),
            static_cast<uint64_t>(fleet->NumTenants()));
}

TEST_F(FleetTest, MemoryBudgetEvictsLruAndKeepsNewest) {
  // A budget of one byte can hold no bundle: every attach evicts the
  // previous tenant, but the newest bundle always stays resident (a
  // fleet that can hold nothing serves nothing).
  auto fleet = MakeFleet("", 1);
  auto first = fleet->Attach(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(fleet->NumResident(), 1u);

  auto second = fleet->Attach(1);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(fleet->NumResident(), 1u);

  // The evicted lease stays fully usable — eviction drops the fleet's
  // reference, never the artifacts under an in-flight request.
  ASSERT_NE(first->retriever, nullptr);
  EXPECT_GT(first->retriever->NumIndexedValues(), 0u);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "fleet.evict"), 1u);
  EXPECT_EQ(fleet->Attach(-1), nullptr);
  EXPECT_EQ(fleet->Attach(99), nullptr);
}

TEST_F(FleetTest, EvictThenReattachPredictsByteIdenticallyAt1And8Threads) {
  std::string dir = TempDirFor("fleet_determinism");

  // The samples owned by the two fleet tenants, in dev order.
  std::vector<const Text2SqlSample*> samples;
  for (const auto& s : bench_->dev) {
    if (TenantOf(s) >= 0) samples.push_back(&s);
  }
  ASSERT_GE(samples.size(), 4u);

  // Reference: a fleet that never evicts (no budget) — every sample
  // predicted with its tenant's resident bundle.
  std::vector<std::string> reference(samples.size());
  {
    auto fleet = MakeFleet(dir, 0);
    for (size_t i = 0; i < samples.size(); ++i) {
      auto artifacts = fleet->Attach(TenantOf(*samples[i]));
      ASSERT_NE(artifacts, nullptr);
      ServeOptions options;
      options.value_retriever = artifacts->retriever.get();
      reference[i] =
          pipeline_->PredictGuarded(*bench_, *samples[i], options);
      ASSERT_FALSE(reference[i].empty());
    }
  }

  // Thrash: a one-byte budget evicts on every tenant switch, so most
  // attaches are evict-then-reattach snapshot reloads. Predictions must
  // not change — eviction is a memory decision, never a quality one.
  {
    auto fleet = MakeFleet(dir, 1);
    for (size_t i = 0; i < samples.size(); ++i) {
      auto artifacts = fleet->Attach(TenantOf(*samples[i]));
      ASSERT_NE(artifacts, nullptr);
      ServeOptions options;
      options.value_retriever = artifacts->retriever.get();
      EXPECT_EQ(pipeline_->PredictGuarded(*bench_, *samples[i], options),
                reference[i])
          << "sample " << i << " diverged after evict-then-reattach";
    }
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    EXPECT_GT(CounterDelta(snapshot, "fleet.evict"), 0u);
  }

  // Same thrashing fleet hammered from 8 real threads: attach is
  // serialized inside the fleet, leases are immutable, and every
  // prediction must still land byte-identical to the serial reference.
  {
    auto fleet = MakeFleet(dir, 1);
    std::vector<std::string> threaded(samples.size());
    std::vector<std::future<void>> done;
    ThreadPool pool(8);
    for (size_t i = 0; i < samples.size(); ++i) {
      auto promise = std::make_shared<std::promise<void>>();
      done.push_back(promise->get_future());
      pool.Submit([&, i, promise] {
        auto artifacts = fleet->Attach(TenantOf(*samples[i]));
        ServeOptions options;
        options.value_retriever =
            artifacts == nullptr ? nullptr : artifacts->retriever.get();
        threaded[i] =
            pipeline_->PredictGuarded(*bench_, *samples[i], options);
        promise->set_value();
      });
    }
    for (auto& f : done) f.wait();
    for (size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(threaded[i], reference[i]) << "sample " << i;
    }
  }
}

TEST_F(FleetTest, AdmissionSpecsAndNamesLineUpWithTenantIds) {
  auto fleet = MakeFleet("", 0);
  auto specs = fleet->AdmissionSpecs();
  auto names = fleet->TenantNames();
  ASSERT_EQ(specs.size(), 2u);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], fleet->TenantName(0));
  EXPECT_EQ(names[1], fleet->TenantName(1));
  EXPECT_DOUBLE_EQ(specs[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(specs[0].burst, 8.0);
  EXPECT_EQ(fleet->SnapshotPath(0), "") << "persistence disabled";
}

}  // namespace
}  // namespace codes
