#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace codes {
namespace {

// Every test uses metric names under "test." and resets the registry up
// front: the registry is process-global and other suites (thread pool,
// pipeline) feed it too.

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge.Set(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST_F(MetricsTest, HistogramBucketizationAndPercentiles) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test.hist");
  // Bucket k counts values < 2^k us: 0.5 -> bucket 0, 3 -> bucket 2,
  // 100 -> bucket 7, 100000 -> bucket 17.
  hist.Observe(0.5);
  hist.Observe(3.0);
  hist.Observe(100.0);
  hist.Observe(100000.0);
  EXPECT_EQ(hist.TotalCount(), 4u);
  EXPECT_EQ(hist.MaxUs(), 100000u);
  std::vector<uint64_t> buckets = hist.BucketCounts();
  ASSERT_EQ(buckets.size(), static_cast<size_t>(Histogram::kNumBuckets));
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[7], 1u);
  EXPECT_EQ(buckets[17], 1u);
  // Nearest-rank percentiles report the containing bucket's upper bound:
  // p50 covers ranks 1-2 (bucket 2 -> 4 us), p99 lands on the last
  // observation (bucket 17 -> 131072 us).
  EXPECT_DOUBLE_EQ(hist.PercentileUs(0.50), 4.0);
  EXPECT_DOUBLE_EQ(hist.PercentileUs(0.99), 131072.0);
  EXPECT_DOUBLE_EQ(hist.PercentileUs(0.0), 1.0);  // rank clamps to 1
}

TEST_F(MetricsTest, HistogramEmptyAndNegativeObservations) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test.hist_edge");
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(hist.PercentileUs(0.5), 0.0);
  hist.Observe(-10.0);  // clamps to 0 -> first bucket
  EXPECT_EQ(hist.TotalCount(), 1u);
  EXPECT_EQ(hist.BucketCounts()[0], 1u);
  EXPECT_EQ(hist.SumUs(), 0u);
}

/// The observability layer's order-independence contract: the same logical
/// workload run on 1 thread and on 8 threads must produce identical
/// counter totals and identical histogram bucket counts, because every
/// update is a commutative increment keyed only on the work item.
TEST_F(MetricsTest, CountersAndBucketsIdenticalAcrossThreadCounts) {
  constexpr size_t kItems = 20000;
  auto run_workload = [](int threads) {
    Counter& counter =
        MetricsRegistry::Global().GetCounter("test.order_independent.count");
    Histogram& hist =
        MetricsRegistry::Global().GetHistogram("test.order_independent.us");
    ThreadPool pool(threads);
    pool.ParallelFor(kItems, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        // Deterministic synthetic observations (a function of the item
        // index, never of the clock or the thread), so the two runs are
        // logically identical.
        counter.Increment(i % 3 + 1);
        hist.Observe(static_cast<double>((i * 2654435761u) % 1000000u));
      }
    });
  };

  run_workload(1);
  MetricsSnapshot serial = MetricsRegistry::Global().Snapshot();

  MetricsRegistry::Global().Reset();
  run_workload(8);
  MetricsSnapshot parallel = MetricsRegistry::Global().Snapshot();

  uint64_t serial_count =
      serial.counters.at("test.order_independent.count");
  EXPECT_GT(serial_count, 0u);
  EXPECT_EQ(serial_count,
            parallel.counters.at("test.order_independent.count"));

  const auto& serial_hist =
      serial.histograms.at("test.order_independent.us");
  const auto& parallel_hist =
      parallel.histograms.at("test.order_independent.us");
  EXPECT_EQ(serial_hist.count, kItems);
  EXPECT_EQ(serial_hist.count, parallel_hist.count);
  EXPECT_EQ(serial_hist.sum_us, parallel_hist.sum_us);
  EXPECT_EQ(serial_hist.max_us, parallel_hist.max_us);
  EXPECT_EQ(serial_hist.buckets, parallel_hist.buckets);
  EXPECT_DOUBLE_EQ(serial_hist.p50_us, parallel_hist.p50_us);
  EXPECT_DOUBLE_EQ(serial_hist.p95_us, parallel_hist.p95_us);
  EXPECT_DOUBLE_EQ(serial_hist.p99_us, parallel_hist.p99_us);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsReferences) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test.reset");
  counter.Increment(7);
  EXPECT_EQ(counter.Value(), 7u);
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(counter.Value(), 0u);
  // The cached reference survives and keeps feeding the same metric.
  counter.Increment(2);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.reset").Value(), 2u);
  EXPECT_EQ(&MetricsRegistry::Global().GetCounter("test.reset"), &counter);
}

TEST_F(MetricsTest, SnapshotJsonRendersAllFamilies) {
  MetricsRegistry::Global().GetCounter("test.json_counter").Increment(3);
  MetricsRegistry::Global().GetGauge("test.json_gauge").Set(-4);
  MetricsRegistry::Global().GetHistogram("test.json_hist").Observe(10.0);
  std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_gauge\": -4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  // Two snapshots of the same state must render byte-identically.
  EXPECT_EQ(json, MetricsRegistry::Global().Snapshot().ToJson());
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(TraceTest, SpanFeedsNamedHistogram) {
  {
    CODES_TRACE_SPAN(span, "test.trace_feed");
  }
  Histogram& hist =
      MetricsRegistry::Global().GetHistogram("span.test.trace_feed");
  EXPECT_EQ(hist.TotalCount(), 1u);
  {
    CODES_TRACE_SPAN(span, "test.trace_feed");
  }
  EXPECT_EQ(hist.TotalCount(), 2u);
}

TEST_F(TraceTest, RecorderCapturesPreOrderTreeWithDepths) {
  TraceRecorder recorder;
  {
    TraceSpan root("request");
    {
      TraceSpan child_a("stage_a");
      { TraceSpan grandchild("stage_a_inner"); }
    }
    { TraceSpan child_b("stage_b"); }
  }
  const auto& events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Pre-order: a parent precedes its children; depth tracks nesting.
  EXPECT_STREQ(events[0].name, "request");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_STREQ(events[1].name, "stage_a");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "stage_a_inner");
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_STREQ(events[3].name, "stage_b");
  EXPECT_EQ(events[3].depth, 1);
  // The root's duration covers its children.
  EXPECT_GE(events[0].duration_us, events[1].duration_us);
  EXPECT_GE(events[1].duration_us, events[2].duration_us);

  std::string rendered = recorder.ToString();
  EXPECT_NE(rendered.find("request"), std::string::npos);
  EXPECT_NE(rendered.find("stage_a_inner"), std::string::npos);
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"name\": \"stage_b\""), std::string::npos) << json;
}

TEST_F(TraceTest, RecordersNestAndRestore) {
  TraceRecorder outer;
  { TraceSpan span("outer_only"); }
  {
    TraceRecorder inner;
    { TraceSpan span("inner_only"); }
    ASSERT_EQ(inner.events().size(), 1u);
    EXPECT_STREQ(inner.events()[0].name, "inner_only");
  }
  { TraceSpan span("outer_again"); }
  ASSERT_EQ(outer.events().size(), 2u);
  EXPECT_STREQ(outer.events()[0].name, "outer_only");
  EXPECT_STREQ(outer.events()[1].name, "outer_again");
}

TEST_F(TraceTest, DisabledRegistrySkipsHistogramButRecorderStillWorks) {
  MetricsRegistry::SetEnabled(false);
  {
    TraceRecorder recorder;
    {
      CODES_TRACE_SPAN(span, "test.trace_disabled");
    }
    // The recorder still sees the span (an installed recorder arms it)...
    EXPECT_EQ(recorder.events().size(), 1u);
  }
  {
    CODES_TRACE_SPAN(span, "test.trace_disabled");
  }
  MetricsRegistry::SetEnabled(true);
  // ...but the histogram was never fed while disabled.
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("span.test.trace_disabled")
                .TotalCount(),
            0u);
}

}  // namespace
}  // namespace codes
