// End-to-end integration tests: the complete pipeline (corpus -> LMs ->
// classifier -> prompt -> generation -> execution-based metrics) on the
// tiny benchmark, exercising the claims the benches measure at scale.

#include <gtest/gtest.h>

#include "augment/augmentation.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/perturb.h"
#include "eval/metrics.h"

namespace codes {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
  }
  static void TearDownTestSuite() {
    delete zoo_;
    delete bench_;
  }
  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
};
Text2SqlBenchmark* IntegrationTest::bench_ = nullptr;
LmZoo* IntegrationTest::zoo_ = nullptr;

TEST_F(IntegrationTest, SftPipelineBeatsChance) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.FineTune(*bench_);
  EvalOptions options;
  auto m = EvaluateDevSet(*bench_, pipeline.PredictorFor(*bench_), options);
  EXPECT_GT(m.ex, 40.0);  // tiny bench; the full bench reaches ~80
}

TEST_F(IntegrationTest, IclPipelineWorksWithoutFineTuning) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  config.icl_shots = 3;
  config.prompt.top_k1 = 5;
  config.prompt.top_k2 = 6;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.SetDemonstrationPool(bench_->train);
  EXPECT_FALSE(pipeline.model().fine_tuned());
  EvalOptions options;
  auto m = EvaluateDevSet(*bench_, pipeline.PredictorFor(*bench_), options);
  EXPECT_GT(m.ex, 30.0);
}

TEST_F(IntegrationTest, IncrementalPretrainingHelpsDownstream) {
  // The C1 claim end-to-end: same pipeline, base LM vs CodeS LM, averaged
  // over both ICL and SFT settings on the tiny bench.
  double base_total = 0, codes_total = 0;
  for (bool sft : {false, true}) {
    for (bool codes_lm : {false, true}) {
      PipelineConfig config;
      config.size = ModelSize::k1B;  // small models show the largest gap
      if (!sft) config.icl_shots = 3;
      CodesPipeline pipeline(config, codes_lm
                                         ? zoo_->CodesFor(config.size)
                                         : zoo_->BaseFor(config.size));
      pipeline.TrainClassifier(*bench_);
      if (sft) {
        pipeline.FineTune(*bench_);
      } else {
        pipeline.SetDemonstrationPool(bench_->train);
      }
      EvalOptions options;
      auto m =
          EvaluateDevSet(*bench_, pipeline.PredictorFor(*bench_), options);
      (codes_lm ? codes_total : base_total) += m.ex;
    }
  }
  EXPECT_GE(codes_total, base_total);
}

TEST_F(IntegrationTest, ExternalKnowledgeLiftsHiddenSchemaAccuracy) {
  auto bird = BuildBirdLike(31);
  PipelineConfig config;
  config.size = ModelSize::k7B;
  EvalOptions options;
  options.max_samples = 120;

  config.use_external_knowledge = false;
  CodesPipeline without(config, zoo_->CodesFor(config.size));
  without.TrainClassifier(bird);
  without.FineTune(bird);
  auto m_without = EvaluateDevSet(bird, without.PredictorFor(bird), options);

  config.use_external_knowledge = true;
  CodesPipeline with(config, zoo_->CodesFor(config.size));
  with.TrainClassifier(bird);
  with.FineTune(bird);
  auto m_with = EvaluateDevSet(bird, with.PredictorFor(bird), options);
  EXPECT_GE(m_with.ex, m_without.ex + 2.0);
}

TEST_F(IntegrationTest, ClassifierSharingTransfersAcrossDomains) {
  // Section 9.6: reuse a trained classifier on an unseen domain.
  AugmentOptions aug;
  aug.seed_pairs = 10;
  aug.question_to_sql_pairs = 30;
  aug.sql_to_question_pairs = 30;
  auto bank = BuildNewDomainDataset(BankFinancialsDomain(), 15, aug);

  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline source(config, zoo_->CodesFor(config.size));
  source.TrainClassifier(*bench_);

  CodesPipeline target(config, zoo_->CodesFor(config.size));
  target.ShareClassifier(
      std::make_shared<SchemaItemClassifier>(*source.classifier()));
  target.FineTune(bank.bench);
  EvalOptions options;
  auto m = EvaluateDevSet(bank.bench, target.PredictorFor(bank.bench),
                          options);
  EXPECT_GT(m.ex, 25.0);
}

TEST_F(IntegrationTest, RobustnessDropsButSurvivesPerturbation) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.FineTune(*bench_);
  EvalOptions options;
  auto clean = EvaluateDevSet(*bench_, pipeline.PredictorFor(*bench_),
                              options);
  auto syn = BuildSpiderSyn(*bench_, 1);
  auto m_syn = EvaluateDevSet(syn, pipeline.PredictorFor(syn), options);
  EXPECT_GT(m_syn.ex, 0.0);
  EXPECT_LE(m_syn.ex, clean.ex + 10.0);  // no spurious gains
}

TEST_F(IntegrationTest, AugmentedSftBeatsZeroShotTransferOnNewDomain) {
  AugmentOptions aug;
  aug.seed_pairs = 16;
  aug.question_to_sql_pairs = 160;
  aug.sql_to_question_pairs = 160;
  auto bank = BuildNewDomainDataset(BankFinancialsDomain(), 40, aug);

  PipelineConfig config;
  config.size = ModelSize::k7B;

  // Zero-shot transfer from the tiny Spider-like model.
  CodesPipeline transfer(config, zoo_->CodesFor(config.size));
  transfer.TrainClassifier(*bench_);
  transfer.FineTune(*bench_);
  EvalOptions options;
  auto m_transfer =
      EvaluateDevSet(bank.bench, transfer.PredictorFor(bank.bench), options);

  // SFT on augmented in-domain data.
  CodesPipeline adapted(config, zoo_->CodesFor(config.size));
  adapted.TrainClassifier(*bench_);
  adapted.FineTune(bank.bench);
  auto m_adapted =
      EvaluateDevSet(bank.bench, adapted.PredictorFor(bank.bench), options);
  EXPECT_GT(m_adapted.ex, m_transfer.ex);
}

}  // namespace
}  // namespace codes
