#include <gtest/gtest.h>

#include "text/pattern.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace codes {
namespace {

TEST(TokenizeTest, WordTokensLowercaseAndSplit) {
  auto tokens = WordTokens("List the singer's Name, age!");
  std::vector<std::string> expected{"list", "the", "singer", "s",
                                    "name", "age"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, WordTokensSplitUnderscores) {
  auto tokens = WordTokens("stu_id equals loan_amount");
  std::vector<std::string> expected{"stu", "id", "equals", "loan", "amount"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, CodeTokensKeepOperators) {
  auto tokens = CodeTokens("SELECT a.b, x <= 3");
  std::vector<std::string> expected{"select", "a", ".", "b", ",",
                                    "x",      "<=", "3"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, CharNgrams) {
  auto grams = CharNgrams("abcd", 3);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "abc");
  EXPECT_EQ(grams[1], "bcd");
  EXPECT_TRUE(CharNgrams("ab", 3).empty());
}

TEST(TokenizeTest, IsNumberToken) {
  EXPECT_TRUE(IsNumberToken("1948"));
  EXPECT_TRUE(IsNumberToken("3.5"));
  EXPECT_TRUE(IsNumberToken("-12"));
  EXPECT_FALSE(IsNumberToken("12a"));
  EXPECT_FALSE(IsNumberToken("."));
  EXPECT_FALSE(IsNumberToken(""));
}

TEST(TokenizeTest, StopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("show"));
  EXPECT_FALSE(IsStopWord("singer"));
}

TEST(TokenizeTest, Stemming) {
  EXPECT_EQ(StemToken("singers"), "singer");
  EXPECT_EQ(StemToken("cities"), "city");
  EXPECT_EQ(StemToken("opened"), "open");
  EXPECT_EQ(StemToken("opening"), "open");
  EXPECT_EQ(StemToken("class"), "class");
  EXPECT_EQ(StemToken("status"), "status");
}

TEST(SimilarityTest, LongestCommonSubstring) {
  EXPECT_EQ(LongestCommonSubstringLength("Jesenik", "the Jesenik branch"), 7);
  EXPECT_EQ(LongestCommonSubstringLength("abc", "xyz"), 0);
  EXPECT_EQ(LongestCommonSubstringLength("", "abc"), 0);
  // Case-insensitive.
  EXPECT_EQ(LongestCommonSubstringLength("SARAH", "sarah martinez"), 5);
}

TEST(SimilarityTest, LcsMatchDegreeNormalized) {
  EXPECT_DOUBLE_EQ(LcsMatchDegree("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsMatchDegree("ab", "abcd"), 1.0);
  EXPECT_NEAR(LcsMatchDegree("abcd", "abxy"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(LcsMatchDegree("", "x"), 0.0);
}

TEST(SimilarityTest, LongestCommonSubsequence) {
  EXPECT_EQ(LongestCommonSubsequenceLength("abcde", "ace"), 3);
  EXPECT_EQ(LongestCommonSubsequenceLength("abc", ""), 0);
}

TEST(SimilarityTest, Utf8ValuesMatchByteExact) {
  // Case folding inside the matchers is ASCII-only, so multi-byte UTF-8
  // sequences compare byte-exact regardless of locale — an accented value
  // in a question must fully match the same indexed value.
  EXPECT_DOUBLE_EQ(LcsMatchDegree("Caf\xC3\xA9 Mayor", "caf\xC3\xA9 mayor"),
                   1.0);
  const std::string cjk = "\xE5\x8C\x97\xE4\xBA\xAC";  // 北京
  EXPECT_DOUBLE_EQ(LcsMatchDegree(cjk, "the city of " + cjk), 1.0);
  EXPECT_EQ(LongestCommonSubstringLength(cjk, "near " + cjk + " station"),
            static_cast<int>(cjk.size()));
  // Different accented characters share the lead byte 0xC3 but must not
  // fully match: é (0xC3 0xA9) vs è (0xC3 0xA8).
  EXPECT_LT(LcsMatchDegree("caf\xC3\xA9", "caf\xC3\xA8"), 1.0);
}

TEST(SimilarityTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(SimilarityTest, Jaccard) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_NEAR(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5, 1e-9);
}

TEST(SimilarityTest, TokenCoverageUsesStems) {
  // "singers" in the question should match "singer" in the haystack.
  double cov = TokenCoverage({"singers", "name"}, {"singer", "name", "age"});
  EXPECT_DOUBLE_EQ(cov, 1.0);
}

TEST(PatternTest, StripsNumbers) {
  EXPECT_EQ(ExtractQuestionPattern("singers born in 1948 or 1949"),
            "singers born in _ or _");
}

TEST(PatternTest, StripsQuotedStrings) {
  EXPECT_EQ(
      ExtractQuestionPattern("How many clients opened accounts in 'Jesenik'?"),
      "how many clients opened accounts in _");
}

TEST(PatternTest, StripsMedialCapitalizedWords) {
  std::string p = ExtractQuestionPattern(
      "Show the names of members from either United States or Canada");
  EXPECT_EQ(p, "show the names of members from either _ or _");
}

TEST(PatternTest, KeepsSentenceInitialCapital) {
  // Sentence-initial capitalized words are not entities.
  EXPECT_EQ(ExtractQuestionPattern("What is the average age?"),
            "what is the average age");
}

TEST(PatternTest, CollapsesAdjacentEntities) {
  EXPECT_EQ(ExtractQuestionPattern("Who is Sarah Martinez exactly"),
            "who is _ exactly");
}

}  // namespace
}  // namespace codes
