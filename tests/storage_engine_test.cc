// Unit tests for the disk-backed storage engine: record codec round-trips,
// disk-manager file persistence, table-heap append/scan/fetch, buffer-pool
// hit/miss/eviction/pin accounting, and the StorageDb facade (bulk load,
// catalog persistence, lazy cold-open, index stats, access-path scans).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sqlengine/database.h"
#include "sqlengine/executor.h"
#include "sqlengine/result_table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/record_codec.h"
#include "storage/storage_db.h"
#include "storage/table_heap.h"

namespace codes::storage {
namespace {

using sql::DataType;
using sql::Database;
using sql::DatabaseSchema;
using sql::TableDef;
using sql::Value;

std::string TempDbPath(const std::string& tag) {
  return testing::TempDir() + "codes_storage_" + tag + ".db";
}

/// Byte-exact cell equality: same null/integer/real/text kind and same
/// content (a stricter check than ResultsEquivalent's tolerant compare).
bool CellExact(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_integer() != b.is_integer() || a.is_real() != b.is_real() ||
      a.is_text() != b.is_text()) {
    return false;
  }
  if (a.is_text()) return a.AsText() == b.AsText();
  return a.Compare(b) == 0;
}

bool TablesExact(const sql::ResultTable& a, const sql::ResultTable& b) {
  if (a.column_names != b.column_names) return false;
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!CellExact(a.rows[r][c], b.rows[r][c])) return false;
    }
  }
  return true;
}

/// singer(singer_id PK, name, age, country) with a NULL and duplicates.
Database MakeSingerDb() {
  DatabaseSchema schema;
  schema.name = "music";
  TableDef singer;
  singer.name = "singer";
  singer.columns = {
      {"singer_id", DataType::kInteger, "unique singer id", true},
      {"name", DataType::kText, "singer name", false},
      {"age", DataType::kInteger, "age in years", false},
      {"country", DataType::kText, "country of origin", false},
  };
  schema.tables = {singer};
  Database db(std::move(schema));
  auto ins = [&db](std::vector<Value> row) {
    ASSERT_TRUE(db.Insert("singer", std::move(row)).ok());
  };
  ins({Value(int64_t{1}), Value("Alice"), Value(int64_t{30}), Value("USA")});
  ins({Value(int64_t{2}), Value("Bob"), Value(int64_t{45}), Value("Canada")});
  ins({Value(int64_t{3}), Value("Carol"), Value(int64_t{30}), Value("USA")});
  ins({Value(int64_t{4}), Value("Dave"), Value(), Value("France")});
  return db;
}

// ------------------------------------------------------------ record codec

TEST(RecordCodecTest, RowRoundTripPreservesTypesAndNulls) {
  std::vector<Value> row = {Value(), Value(int64_t{-42}), Value(3.25),
                            Value(int64_t{7}), Value(std::string("hi\0x", 4)),
                            Value("")};
  std::string buf;
  AppendRow(row, &buf);
  std::vector<Value> parsed;
  ASSERT_TRUE(ParseRow(buf.data(), buf.size(), &parsed).ok());
  ASSERT_EQ(parsed.size(), row.size());
  EXPECT_TRUE(parsed[0].is_null());
  EXPECT_TRUE(parsed[1].is_integer());
  EXPECT_EQ(parsed[1].AsInteger(), -42);
  EXPECT_TRUE(parsed[2].is_real());
  EXPECT_EQ(parsed[2].AsReal(), 3.25);
  // INTEGER stays INTEGER (no silent widening to REAL).
  EXPECT_TRUE(parsed[3].is_integer());
  EXPECT_EQ(parsed[4].AsText(), std::string("hi\0x", 4));
  EXPECT_EQ(parsed[5].AsText(), "");
}

TEST(RecordCodecTest, TruncatedRecordIsAnErrorNotACrash) {
  std::string buf;
  AppendRow({Value(int64_t{1}), Value("abcdef")}, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<Value> parsed;
    EXPECT_FALSE(ParseRow(buf.data(), cut, &parsed).ok()) << "cut=" << cut;
  }
}

// ------------------------------------------------------------ disk manager

TEST(StorageDiskManagerTest, FilePersistsPagesAcrossReopen) {
  const std::string path = TempDbPath("diskmgr");
  {
    auto created = DiskManager::Create(path);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto& disk = *created;
    auto p0 = disk->Allocate();
    auto p1 = disk->Allocate();
    ASSERT_TRUE(p0.ok() && p1.ok());
    EXPECT_EQ(*p0, 0u);
    EXPECT_EQ(*p1, 1u);
    std::byte page[kPageSize] = {};
    // Bytes [0, kPageHeaderBytes) are the physical header (checksum/LSN);
    // payload starts after it.
    page[kPageHeaderBytes] = std::byte{0xAB};
    page[kPageSize - 1] = std::byte{0xCD};
    ASSERT_TRUE(disk->WritePage(*p1, page).ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->page_count(), 2u);
  std::byte page[kPageSize];
  ASSERT_TRUE((*opened)->ReadPage(1, page).ok());
  EXPECT_EQ(page[kPageHeaderBytes], std::byte{0xAB});
  EXPECT_EQ(page[kPageSize - 1], std::byte{0xCD});
  std::remove(path.c_str());
}

TEST(StorageDiskManagerTest, InMemoryModeNeedsNoFile) {
  auto disk = DiskManager::CreateInMemory();
  EXPECT_TRUE(disk->in_memory());
  auto p = disk->Allocate();
  ASSERT_TRUE(p.ok());
  std::byte page[kPageSize];
  ASSERT_TRUE(disk->ReadPage(*p, page).ok());
  EXPECT_EQ(page[17], std::byte{0});  // zeroed on allocation
  EXPECT_FALSE(disk->ReadPage(99, page).ok());
}

// -------------------------------------------------------------- table heap

TEST(StorageTableHeapTest, AppendScanFetchRoundTrip) {
  auto disk = DiskManager::CreateInMemory();
  BufferPool pool(disk.get(), 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());

  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> row = {Value(int64_t{i}),
                              Value("row-" + std::to_string(i))};
    auto rid = heap->Append(row);
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap->row_count(), 500u);
  EXPECT_GT(disk->page_count(), 1u);  // must have chained pages

  // RIDs are monotone with insertion order (append-only contract).
  for (size_t i = 1; i < rids.size(); ++i) {
    EXPECT_TRUE(rids[i - 1] < rids[i]);
  }

  // Scan yields all rows in insertion order.
  auto cursor = heap->Scan();
  sql::Row row;
  int n = 0;
  while (cursor->Next(&row)) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0].AsInteger(), n);
    ++n;
  }
  EXPECT_EQ(n, 500);
  EXPECT_TRUE(cursor->status().ok());

  // Point fetch by RID.
  std::vector<Value> fetched;
  ASSERT_TRUE(heap->Fetch(rids[123], &fetched).ok());
  EXPECT_EQ(fetched[1].AsText(), "row-123");
}

TEST(StorageTableHeapTest, OversizedRowIsRejected) {
  auto disk = DiskManager::CreateInMemory();
  BufferPool pool(disk.get(), 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  std::vector<Value> row = {Value(std::string(kPageSize, 'x'))};
  auto rid = heap->Append(row);
  ASSERT_FALSE(rid.ok());
  EXPECT_EQ(rid.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(heap->row_count(), 0u);
}

// -------------------------------------------------------------- buffer pool

TEST(BufferPoolTest, HitMissEvictionAndPinAccounting) {
  auto disk = DiskManager::CreateInMemory();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(disk->Allocate().ok());
  BufferPool pool(disk.get(), 2);

  {
    auto g0 = pool.Fetch(0);
    ASSERT_TRUE(g0.ok());
    EXPECT_EQ(pool.pinned_frames(), 1u);
    auto g0_again = pool.Fetch(0);
    ASSERT_TRUE(g0_again.ok());
    EXPECT_EQ(pool.hit_count(), 1u);   // second fetch hits
    EXPECT_EQ(pool.miss_count(), 1u);  // first fetch missed
    EXPECT_EQ(pool.pinned_frames(), 1u);  // same frame, pin count 2
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);  // guards released

  // Touch more distinct pages than frames: evictions must occur.
  for (PageId id = 0; id < 6; ++id) {
    auto g = pool.Fetch(id);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_GT(pool.eviction_count(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, AllFramesPinnedIsResourceExhausted) {
  auto disk = DiskManager::CreateInMemory();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(disk->Allocate().ok());
  BufferPool pool(disk.get(), 2);
  auto g0 = pool.Fetch(0);
  auto g1 = pool.Fetch(1);
  ASSERT_TRUE(g0.ok() && g1.ok());
  auto g2 = pool.Fetch(2);
  ASSERT_FALSE(g2.ok());
  EXPECT_EQ(g2.status().code(), StatusCode::kResourceExhausted);
  g0->Release();
  auto retry = pool.Fetch(2);
  EXPECT_TRUE(retry.ok());
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  auto disk = DiskManager::CreateInMemory();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(disk->Allocate().ok());
  BufferPool pool(disk.get(), 1);
  {
    auto g = pool.Fetch(0);
    ASSERT_TRUE(g.ok());
    g->data()[100] = std::byte{0x5A};
    g->MarkDirty();
  }
  // Force page 0 out of the single frame, then bring it back.
  { auto g = pool.Fetch(1); ASSERT_TRUE(g.ok()); }
  auto back = pool.Fetch(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data()[100], std::byte{0x5A});
}

// ---------------------------------------------------------------- StorageDb

TEST(StorageDbTest, BulkLoadMatchesSourceAndBuildsIndexes) {
  Database db = MakeSingerDb();
  auto built = StorageDb::CreateInMemoryFrom(db);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  StorageDb& sdb = **built;

  EXPECT_EQ(sdb.schema().name, "music");
  EXPECT_EQ(sdb.SourceRowCount(0), 4u);
  // All four columns are clean-class (no mixed columns) -> four indexes.
  EXPECT_EQ(sdb.index_count(), 4u);

  auto rows = sdb.Materialize(0);
  ASSERT_TRUE(rows.ok());
  const auto& direct = *db.DirectRows(0);
  ASSERT_EQ(rows->size(), direct.size());
  for (size_t r = 0; r < direct.size(); ++r) {
    for (size_t c = 0; c < direct[r].size(); ++c) {
      EXPECT_EQ((*rows)[r][c].Compare(direct[r][c]), 0)
          << "cell " << r << "," << c;
    }
  }

  sql::ColumnIndexStats stats;
  ASSERT_TRUE(sdb.IndexStats(0, 0, &stats));
  EXPECT_EQ(stats.value_class, sql::ColumnIndexStats::ValueClass::kNumeric);
  EXPECT_TRUE(stats.unique);  // PK with distinct values
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.min_value.AsInteger(), 1);
  EXPECT_EQ(stats.max_value.AsInteger(), 4);

  // age has a NULL: indexed entries exclude it.
  ASSERT_TRUE(sdb.IndexStats(0, 2, &stats));
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_FALSE(stats.unique);  // not a PK

  // The knob turns the index access path off entirely.
  sdb.set_index_scans_enabled(false);
  EXPECT_FALSE(sdb.IndexStats(0, 0, &stats));
  EXPECT_EQ(sdb.IndexScan(0, 0, {}, {}), nullptr);
  sdb.set_index_scans_enabled(true);
}

TEST(StorageDbTest, IndexScanYieldsMatchingRowsInInsertionOrder) {
  Database db = MakeSingerDb();
  auto built = StorageDb::CreateInMemoryFrom(db);
  ASSERT_TRUE(built.ok());
  StorageDb& sdb = **built;

  // country = 'USA' -> rows 0 and 2, in insertion order.
  Value usa("USA");
  sql::IndexBound lo{&usa, true};
  sql::IndexBound hi{&usa, true};
  auto cursor = sdb.IndexScan(0, 3, lo, hi);
  ASSERT_NE(cursor, nullptr);
  sql::Row row;
  std::vector<std::string> names;
  while (cursor->Next(&row)) names.push_back(row[1].AsText());
  ASSERT_TRUE(cursor->status().ok());
  EXPECT_EQ(names, (std::vector<std::string>{"Alice", "Carol"}));

  // Range scan: age <= 30 (NULL age must never appear).
  Value thirty(int64_t{30});
  auto range = sdb.IndexScan(0, 2, {}, {&thirty, true});
  ASSERT_NE(range, nullptr);
  names.clear();
  while (range->Next(&row)) names.push_back(row[1].AsText());
  ASSERT_TRUE(range->status().ok());
  EXPECT_EQ(names, (std::vector<std::string>{"Alice", "Carol"}));
}

TEST(StorageDbTest, ExecutorRunsIdenticallyOverBothBackends) {
  Database db = MakeSingerDb();
  auto built = StorageDb::CreateInMemoryFrom(db);
  ASSERT_TRUE(built.ok());
  const StorageDb& sdb = **built;

  const char* queries[] = {
      "SELECT name FROM singer WHERE singer_id = 2",
      "SELECT name, age FROM singer WHERE age <= 30 ORDER BY singer_id",
      "SELECT COUNT(*), MAX(age) FROM singer",
      "SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY country",
      "SELECT name FROM singer WHERE country = 'USA' AND age = 30",
  };
  for (const char* q : queries) {
    auto mem = sql::ExecuteSql(db, q);
    auto disk = sql::ExecuteSql(sdb, q);
    ASSERT_TRUE(mem.ok()) << q;
    ASSERT_TRUE(disk.ok()) << q << " -> " << disk.status().ToString();
    EXPECT_TRUE(TablesExact(*mem, *disk)) << q << "\nmem:\n"
                                          << mem->ToString() << "disk:\n"
                                          << disk->ToString();
  }
}

TEST(StorageDbTest, PersistsToFileAndColdOpens) {
  const std::string path = TempDbPath("persist");
  Database db = MakeSingerDb();
  {
    auto disk = DiskManager::Create(path);
    ASSERT_TRUE(disk.ok());
    auto built = StorageDb::CreateFrom(db, std::move(*disk));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }
  auto opened = StorageDb::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StorageDb& sdb = **opened;
  EXPECT_EQ(sdb.schema().tables[0].name, "singer");
  EXPECT_EQ(sdb.SourceRowCount(0), 4u);
  EXPECT_EQ(sdb.index_count(), 4u);

  auto result = sql::ExecuteSql(sdb, "SELECT name FROM singer WHERE age > 29");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 3u);
  std::remove(path.c_str());
}

TEST(StorageDbTest, ColdOpenCostIsIndependentOfRowCount) {
  auto build = [](int rows, const std::string& tag) {
    DatabaseSchema schema;
    schema.name = "sized";
    TableDef t;
    t.name = "items";
    t.columns = {{"id", DataType::kInteger, "", true},
                 {"label", DataType::kText, "", false}};
    schema.tables = {t};
    Database db(std::move(schema));
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(db.Insert("items", {Value(int64_t{i}),
                                      Value("label-" + std::to_string(i))})
                      .ok());
    }
    const std::string path = TempDbPath(tag);
    auto disk = DiskManager::Create(path);
    EXPECT_TRUE(disk.ok());
    auto built = StorageDb::CreateFrom(db, std::move(*disk));
    EXPECT_TRUE(built.ok());
    return path;
  };
  const std::string small_path = build(20, "cold_small");
  const std::string large_path = build(5000, "cold_large");

  auto open_reads = [](const std::string& path) {
    auto opened = StorageDb::Open(path);
    EXPECT_TRUE(opened.ok());
    return (*opened)->disk().read_count();
  };
  uint64_t small_reads = open_reads(small_path);
  uint64_t large_reads = open_reads(large_path);
  // Lazy open touches only the catalog chain: identical page-read counts
  // no matter how many rows the heap holds.
  EXPECT_EQ(small_reads, large_reads);
  EXPECT_GT(small_reads, 0u);
  std::remove(small_path.c_str());
  std::remove(large_path.c_str());
}

TEST(StorageDbTest, MixedClassColumnsAreNotIndexed) {
  DatabaseSchema schema;
  schema.name = "mixed";
  TableDef t;
  t.name = "junk";
  t.columns = {{"id", DataType::kInteger, "", true},
               {"blob", DataType::kText, "", false}};
  schema.tables = {t};
  Database db(std::move(schema));
  // TEXT-typed column holding both a number and a string: mixed class.
  ASSERT_TRUE(db.Insert("junk", {Value(int64_t{1}), Value("text")}).ok());
  ASSERT_TRUE(db.Insert("junk", {Value(int64_t{2}), Value(int64_t{9})}).ok());
  auto built = StorageDb::CreateInMemoryFrom(db);
  ASSERT_TRUE(built.ok());
  sql::ColumnIndexStats stats;
  EXPECT_TRUE((*built)->IndexStats(0, 0, &stats));   // id is clean
  EXPECT_FALSE((*built)->IndexStats(0, 1, &stats));  // blob is mixed
}

}  // namespace
}  // namespace codes::storage
