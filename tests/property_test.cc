// Property-style parameterized sweeps (TEST_P) over invariants:
//  * every template id: instantiate -> execute -> re-identify, on several
//    profiles and domains;
//  * engine round-trips: parse(ToSql(ast)) preserves semantics;
//  * result-comparison laws (reflexive, symmetric under multiset compare);
//  * seeds: dataset generation is a pure function of its seed.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "dataset/benchmark_builder.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "dataset/templates.h"
#include "sqlengine/executor.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/parser.h"

namespace codes {
namespace {

// --------------------------------------------------- per-template sweeps

class TemplateProperty : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xFEED);
    dbs_ = new std::vector<sql::Database>();
    // One clean and one BIRD-style database from different domains.
    Rng r1 = rng.Fork();
    dbs_->push_back(GenerateDatabase(AllDomains()[4], DbProfile::Spider(), r1));
    Rng r2 = rng.Fork();
    dbs_->push_back(GenerateDatabase(AllDomains()[5], DbProfile::Bird(), r2));
  }
  static void TearDownTestSuite() {
    delete dbs_;
    dbs_ = nullptr;
  }
  static std::vector<sql::Database>* dbs_;
};
std::vector<sql::Database>* TemplateProperty::dbs_ = nullptr;

TEST_P(TemplateProperty, InstancesExecuteAndReidentify) {
  const auto& lib = GlobalTemplates();
  int id = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(id));
  int fired = 0;
  for (const auto& db : *dbs_) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      auto inst = lib.Instantiate(id, db, rng);
      if (!inst.has_value()) continue;
      ++fired;
      // 1. executable
      auto result = sql::ExecuteSql(db, inst->sql_text);
      ASSERT_TRUE(result.ok()) << inst->sql_text << " -> "
                               << result.status().ToString();
      // 2. structural fingerprint re-identifies the template
      EXPECT_EQ(lib.IdentifyTemplate(inst->sql_text), id) << inst->sql_text;
      // 3. the question mentions every literal value (so value retrieval
      //    and EK construction have something to anchor to)
      for (const auto& value : inst->value_strings) {
        if (value.size() < 3) continue;  // short values may be reworded
        EXPECT_TRUE(ContainsIgnoreCase(inst->question, value))
            << "question '" << inst->question << "' misses value '" << value
            << "'";
      }
      // 4. used items resolve
      for (const auto& item : inst->used_items) {
        auto t = db.schema().FindTable(item.table);
        ASSERT_TRUE(t.has_value()) << item.table;
        if (!item.column.empty()) {
          EXPECT_TRUE(db.schema().tables[*t].FindColumn(item.column))
              << item.table << "." << item.column;
        }
      }
    }
  }
  // Every template fits at least one of the two databases.
  EXPECT_GT(fired, 0) << lib.name(id);
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateProperty,
                         ::testing::Range(0, 77),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return GlobalTemplates().name(info.param);
                         });

// -------------------------------------------------------- engine round-trip

class EngineRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineRoundTrip, ParseSerializeParsePreservesSemantics) {
  Rng rng(GetParam());
  Rng db_rng = rng.Fork();
  const auto& domain = AllDomains()[rng.Index(AllDomains().size())];
  auto db = GenerateDatabase(domain, DbProfile::Spider(), db_rng);
  const auto& lib = GlobalTemplates();
  for (int i = 0; i < 12; ++i) {
    auto inst = lib.InstantiateRandom(db, rng);
    ASSERT_TRUE(inst.has_value());
    auto first = sql::ParseSql(inst->sql_text);
    ASSERT_TRUE(first.ok()) << inst->sql_text;
    std::string round_tripped = (*first)->ToSql();
    auto second = sql::ParseSql(round_tripped);
    ASSERT_TRUE(second.ok()) << round_tripped;
    // Same fingerprint and same execution result.
    EXPECT_EQ(sql::FingerprintOf(**first).ToKey(),
              sql::FingerprintOf(**second).ToKey());
    sql::Executor executor(db);
    auto r1 = executor.Execute(**first);
    auto r2 = executor.Execute(**second);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(sql::ResultsEquivalent(*r1, *r2, (*first)->HasOrderBy()))
        << inst->sql_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------- comparison algebra

class ResultAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResultAlgebra, EquivalenceIsReflexiveAndSymmetric) {
  Rng rng(GetParam() * 31);
  Rng db_rng = rng.Fork();
  auto db = GenerateDatabase(AllDomains()[rng.Index(AllDomains().size())],
                             DbProfile::Spider(), db_rng);
  const auto& lib = GlobalTemplates();
  for (int i = 0; i < 6; ++i) {
    auto a = lib.InstantiateRandom(db, rng);
    auto b = lib.InstantiateRandom(db, rng);
    ASSERT_TRUE(a.has_value() && b.has_value());
    auto ra = sql::ExecuteSql(db, a->sql_text);
    auto rb = sql::ExecuteSql(db, b->sql_text);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_TRUE(sql::ResultsEquivalent(*ra, *ra, false));
    EXPECT_TRUE(sql::ResultsEquivalent(*ra, *ra, true));
    EXPECT_EQ(sql::ResultsEquivalent(*ra, *rb, false),
              sql::ResultsEquivalent(*rb, *ra, false));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultAlgebra,
                         ::testing::Values(11, 12, 13, 14));

// --------------------------------------------------------- determinism law

class SeedDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedDeterminism, BenchmarksArePureFunctionsOfSeed) {
  auto a = BuildTinySpiderLike(GetParam());
  auto b = BuildTinySpiderLike(GetParam());
  ASSERT_EQ(a.train.size(), b.train.size());
  ASSERT_EQ(a.dev.size(), b.dev.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].question, b.train[i].question);
    EXPECT_EQ(a.train[i].sql, b.train[i].sql);
  }
  // And a different seed changes content.
  auto c = BuildTinySpiderLike(GetParam() + 1);
  bool any_diff = a.train.size() != c.train.size();
  for (size_t i = 0; !any_diff && i < a.train.size() && i < c.train.size();
       ++i) {
    any_diff = a.train[i].sql != c.train[i].sql;
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminism,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace codes
