#include <gtest/gtest.h>

#include "sqlengine/ast.h"
#include "sqlengine/catalog.h"
#include "sqlengine/database.h"
#include "sqlengine/executor.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/lexer.h"
#include "sqlengine/parser.h"
#include "sqlengine/result_table.h"
#include "sqlengine/value.h"

namespace codes::sql {
namespace {

// ----------------------------------------------------------------- fixture

/// Builds a small two-table database:
///   singer(singer_id PK, name, age, country)
///   song(song_id PK, title, singer_id FK, sales)
Database MakeMusicDb() {
  DatabaseSchema schema;
  schema.name = "music";
  TableDef singer;
  singer.name = "singer";
  singer.columns = {
      {"singer_id", DataType::kInteger, "unique singer id", true},
      {"name", DataType::kText, "singer name", false},
      {"age", DataType::kInteger, "age in years", false},
      {"country", DataType::kText, "country of origin", false},
  };
  TableDef song;
  song.name = "song";
  song.columns = {
      {"song_id", DataType::kInteger, "unique song id", true},
      {"title", DataType::kText, "song title", false},
      {"singer_id", DataType::kInteger, "performer", false},
      {"sales", DataType::kReal, "copies sold", false},
  };
  schema.tables = {singer, song};
  schema.foreign_keys = {{"song", "singer_id", "singer", "singer_id"}};

  Database db(std::move(schema));
  auto ins = [&db](const std::string& t, std::vector<Value> row) {
    ASSERT_TRUE(db.Insert(t, std::move(row)).ok());
  };
  ins("singer", {Value(int64_t{1}), Value("Alice"), Value(int64_t{30}),
                 Value("USA")});
  ins("singer", {Value(int64_t{2}), Value("Bob"), Value(int64_t{45}),
                 Value("Canada")});
  ins("singer", {Value(int64_t{3}), Value("Carol"), Value(int64_t{30}),
                 Value("USA")});
  ins("singer", {Value(int64_t{4}), Value("Dave"), Value(), Value("France")});
  ins("song", {Value(int64_t{10}), Value("Sunrise"), Value(int64_t{1}),
               Value(100.0)});
  ins("song", {Value(int64_t{11}), Value("Moonlight"), Value(int64_t{1}),
               Value(250.5)});
  ins("song", {Value(int64_t{12}), Value("Harbor"), Value(int64_t{2}),
               Value(75.0)});
  ins("song", {Value(int64_t{13}), Value("Echoes"), Value(int64_t{3}),
               Value()});
  return db;
}

ResultTable MustExecute(const Database& db, const std::string& sql) {
  auto result = ExecuteSql(db, sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  if (!result.ok()) return ResultTable{};
  return std::move(result).value();
}

// ------------------------------------------------------------------- value

TEST(ValueTest, NullOrderingAndEquality) {
  Value null;
  Value one(int64_t{1});
  EXPECT_TRUE(null.is_null());
  EXPECT_LT(null.Compare(one), 0);
  EXPECT_EQ(null.Compare(Value()), 0);
  EXPECT_FALSE(null.SqlEquals(null));  // SQL NULL != NULL
}

TEST(ValueTest, NumericCoercionAcrossIntAndReal) {
  EXPECT_TRUE(Value(int64_t{2}).SqlEquals(Value(2.0)));
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(1.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, TextComparison) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_TRUE(Value("x").SqlEquals(Value("x")));
  // Numerics sort before text in canonical order.
  EXPECT_LT(Value(int64_t{5}).Compare(Value("5")), 0);
}

TEST(ValueTest, SqlLiteralEscaping) {
  EXPECT_EQ(Value("O'Hara").ToSqlLiteral(), "'O''Hara'");
  EXPECT_EQ(Value(int64_t{7}).ToSqlLiteral(), "7");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = LexSql("SELECT name FROM singer WHERE age >= 30");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 8 tokens + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[5].text, "age");
  EXPECT_EQ((*tokens)[6].text, ">=");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = LexSql("'O''Hara'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "O'Hara");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = LexSql("SELECT 'abc");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, NumbersAndQuotedIdentifiers) {
  auto tokens = LexSql("\"weird name\" 3.25 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "weird name");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[1].real_value, 3.25);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[2].int_value, 42);
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, RoundTripsSimpleQuery) {
  auto stmt = ParseSql("SELECT name FROM singer WHERE age > 30");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->ToSql(), "SELECT name FROM singer WHERE age > 30");
}

TEST(ParserTest, ParsesJoinGroupOrderLimit) {
  const std::string sql =
      "SELECT T1.name, COUNT(*) FROM singer AS T1 JOIN song AS T2 "
      "ON T1.singer_id = T2.singer_id GROUP BY T1.name "
      "HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC LIMIT 1";
  auto stmt = ParseSql(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->joins.size(), 1u);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_TRUE((*stmt)->having != nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_FALSE((*stmt)->order_by[0].ascending);
  EXPECT_EQ((*stmt)->limit, 1);
}

TEST(ParserTest, ParsesSetOps) {
  auto stmt = ParseSql(
      "SELECT name FROM singer UNION SELECT title FROM song");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->set_op, SetOp::kUnion);
  ASSERT_TRUE((*stmt)->set_rhs != nullptr);
}

TEST(ParserTest, ParsesInSubquery) {
  auto stmt = ParseSql(
      "SELECT name FROM singer WHERE singer_id IN "
      "(SELECT singer_id FROM song)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE((*stmt)->where != nullptr);
  EXPECT_EQ((*stmt)->where->kind, ExprKind::kInSubquery);
}

TEST(ParserTest, ParsesBetweenNotLikeIsNull) {
  auto stmt = ParseSql(
      "SELECT name FROM singer WHERE age BETWEEN 20 AND 40 "
      "AND name NOT LIKE 'A%' AND country IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("SELECT 1 + 2 * 3 FROM singer");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *(*stmt)->select_list[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);  // * binds tighter
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSql("SELECT FROM").ok());
  EXPECT_FALSE(ParseSql("SELEKT x FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra junk").ok());
}

TEST(ParserTest, CloneProducesEqualSql) {
  auto stmt = ParseSql(
      "SELECT DISTINCT T1.name FROM singer AS T1 JOIN song AS T2 ON "
      "T1.singer_id = T2.singer_id WHERE T2.sales > 50 ORDER BY T1.name ASC");
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ(clone->ToSql(), (*stmt)->ToSql());
}

// ---------------------------------------------------------------- executor

TEST(ExecutorTest, SimpleScanAndFilter) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT name FROM singer WHERE age = 30");
  ASSERT_EQ(r.NumRows(), 2u);
}

TEST(ExecutorTest, SelectStarExpandsColumns) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT * FROM singer");
  EXPECT_EQ(r.NumColumns(), 4u);
  EXPECT_EQ(r.NumRows(), 4u);
  EXPECT_EQ(r.column_names[1], "name");
}

TEST(ExecutorTest, HashJoinOnForeignKey) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT T1.name, T2.title FROM singer AS T1 JOIN song "
                       "AS T2 ON T1.singer_id = T2.singer_id");
  EXPECT_EQ(r.NumRows(), 4u);
}

TEST(ExecutorTest, ThetaJoinFallsBackToNestedLoop) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON "
                       "T1.singer_id < T2.singer_id");
  EXPECT_GT(r.NumRows(), 0u);
}

TEST(ExecutorTest, GroupByCountHaving) {
  Database db = MakeMusicDb();
  auto r = MustExecute(
      db,
      "SELECT T1.name, COUNT(*) FROM singer AS T1 JOIN song AS T2 ON "
      "T1.singer_id = T2.singer_id GROUP BY T1.name HAVING COUNT(*) >= 2");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "Alice");
  EXPECT_EQ(r.rows[0][1].AsInteger(), 2);
}

TEST(ExecutorTest, GlobalAggregatesSkipNulls) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT COUNT(*), COUNT(age), AVG(age) FROM singer");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 4);
  EXPECT_EQ(r.rows[0][1].AsInteger(), 3);  // Dave's age is NULL
  EXPECT_NEAR(r.rows[0][2].ToNumeric(), 35.0, 1e-9);
}

TEST(ExecutorTest, CountDistinct) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT COUNT(DISTINCT country) FROM singer");
  EXPECT_EQ(r.rows[0][0].AsInteger(), 3);
}

TEST(ExecutorTest, GlobalAggregateOnEmptyInput) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT COUNT(*), MAX(age) FROM singer WHERE age > 99");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST(ExecutorTest, OrderByDescWithLimit) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT name FROM singer WHERE age IS NOT NULL "
                       "ORDER BY age DESC LIMIT 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "Bob");
}

TEST(ExecutorTest, OrderByAliasAndPosition) {
  Database db = MakeMusicDb();
  auto by_alias = MustExecute(
      db, "SELECT name AS n FROM singer ORDER BY n ASC LIMIT 1");
  ASSERT_EQ(by_alias.NumRows(), 1u);
  EXPECT_EQ(by_alias.rows[0][0].AsText(), "Alice");
  auto by_pos = MustExecute(db, "SELECT name FROM singer ORDER BY 1 DESC LIMIT 1");
  EXPECT_EQ(by_pos.rows[0][0].AsText(), "Dave");
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT DISTINCT country FROM singer");
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST(ExecutorTest, LikePatterns) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT name FROM singer WHERE name LIKE 'a%'");
  ASSERT_EQ(r.NumRows(), 1u);  // case-insensitive: Alice
  EXPECT_EQ(r.rows[0][0].AsText(), "Alice");
  auto r2 = MustExecute(db, "SELECT name FROM singer WHERE name LIKE '_ob'");
  ASSERT_EQ(r2.NumRows(), 1u);
  EXPECT_EQ(r2.rows[0][0].AsText(), "Bob");
}

TEST(ExecutorTest, InListAndBetween) {
  Database db = MakeMusicDb();
  auto r = MustExecute(
      db, "SELECT name FROM singer WHERE country IN ('USA', 'France')");
  EXPECT_EQ(r.NumRows(), 3u);
  auto r2 = MustExecute(db,
                        "SELECT name FROM singer WHERE age BETWEEN 29 AND 31");
  EXPECT_EQ(r2.NumRows(), 2u);
  auto r3 = MustExecute(
      db, "SELECT name FROM singer WHERE age NOT BETWEEN 29 AND 31");
  EXPECT_EQ(r3.NumRows(), 1u);  // Bob; NULL age row excluded
}

TEST(ExecutorTest, InSubquery) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT name FROM singer WHERE singer_id IN "
                       "(SELECT singer_id FROM song WHERE sales > 80)");
  EXPECT_EQ(r.NumRows(), 1u);  // Alice (two qualifying songs, one singer)
}

TEST(ExecutorTest, ScalarSubqueryComparison) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT name FROM singer WHERE age > "
                       "(SELECT AVG(age) FROM singer)");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "Bob");
}

TEST(ExecutorTest, SetOperations) {
  Database db = MakeMusicDb();
  auto u = MustExecute(db,
                       "SELECT country FROM singer UNION SELECT country FROM "
                       "singer");
  EXPECT_EQ(u.NumRows(), 3u);  // deduped
  auto ua = MustExecute(db,
                        "SELECT country FROM singer UNION ALL SELECT country "
                        "FROM singer");
  EXPECT_EQ(ua.NumRows(), 8u);
  auto ex = MustExecute(db,
                        "SELECT country FROM singer EXCEPT SELECT country "
                        "FROM singer WHERE age = 30");
  EXPECT_EQ(ex.NumRows(), 2u);  // Canada, France
  auto in = MustExecute(db,
                        "SELECT country FROM singer INTERSECT SELECT country "
                        "FROM singer WHERE age = 45");
  ASSERT_EQ(in.NumRows(), 1u);
  EXPECT_EQ(in.rows[0][0].AsText(), "Canada");
}

TEST(ExecutorTest, ScalarFunctions) {
  Database db = MakeMusicDb();
  auto r = MustExecute(
      db, "SELECT UPPER(name), LENGTH(name), SUBSTR(name, 1, 2) FROM singer "
          "WHERE singer_id = 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "ALICE");
  EXPECT_EQ(r.rows[0][1].AsInteger(), 5);
  EXPECT_EQ(r.rows[0][2].AsText(), "Al");
}

TEST(ExecutorTest, CastAndArithmetic) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db,
                       "SELECT CAST(sales AS INTEGER), sales * 2 FROM song "
                       "WHERE song_id = 11");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 250);
  EXPECT_NEAR(r.rows[0][1].ToNumeric(), 501.0, 1e-9);
}

TEST(ExecutorTest, DivisionByZeroYieldsNull) {
  Database db = MakeMusicDb();
  auto r = MustExecute(db, "SELECT 1 / 0 FROM singer LIMIT 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST(ExecutorTest, NullComparisonExcludesRows) {
  Database db = MakeMusicDb();
  // Dave has NULL age: neither = nor != matches him.
  auto eq = MustExecute(db, "SELECT name FROM singer WHERE age = 30");
  auto ne = MustExecute(db, "SELECT name FROM singer WHERE age != 30");
  EXPECT_EQ(eq.NumRows() + ne.NumRows(), 3u);
}

TEST(ExecutorTest, BindErrors) {
  Database db = MakeMusicDb();
  EXPECT_FALSE(ExecuteSql(db, "SELECT nope FROM singer").ok());
  EXPECT_FALSE(ExecuteSql(db, "SELECT name FROM nonexistent").ok());
  // Ambiguous column across joined tables.
  EXPECT_FALSE(ExecuteSql(db,
                          "SELECT singer_id FROM singer JOIN song ON "
                          "singer.singer_id = song.singer_id")
                   .ok());
}

TEST(ExecutorTest, IsExecutablePredicate) {
  Database db = MakeMusicDb();
  EXPECT_TRUE(IsExecutable(db, "SELECT name FROM singer"));
  EXPECT_FALSE(IsExecutable(db, "SELECT bogus FROM singer"));
  EXPECT_FALSE(IsExecutable(db, "not sql at all"));
}

TEST(ExecutorTest, RepeatedExecutionOfSameAst) {
  // The executor writes scratch state into the AST; re-running the same
  // statement (as the TS metric does across database instances) must work.
  Database db = MakeMusicDb();
  auto stmt = ParseSql(
      "SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY "
      "COUNT(*) DESC");
  ASSERT_TRUE(stmt.ok());
  Executor exec(db);
  auto first = exec.Execute(**stmt);
  auto second = exec.Execute(**stmt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(ResultsEquivalent(*first, *second, /*ordered=*/true));
}

// ------------------------------------------------------------ result table

TEST(ResultTableTest, UnorderedEquivalenceIsMultiset) {
  ResultTable a;
  a.column_names = {"x"};
  a.rows = {{Value(int64_t{1})}, {Value(int64_t{2})}, {Value(int64_t{2})}};
  ResultTable b;
  b.column_names = {"y"};  // names ignored
  b.rows = {{Value(int64_t{2})}, {Value(int64_t{1})}, {Value(int64_t{2})}};
  EXPECT_TRUE(ResultsEquivalent(a, b, /*ordered=*/false));
  EXPECT_FALSE(ResultsEquivalent(a, b, /*ordered=*/true));
  // Different multiplicity fails.
  b.rows.pop_back();
  EXPECT_FALSE(ResultsEquivalent(a, b, /*ordered=*/false));
}

TEST(ResultTableTest, NumericToleranceInComparison) {
  ResultTable a;
  a.column_names = {"x"};
  a.rows = {{Value(1.0)}};
  ResultTable b;
  b.column_names = {"x"};
  b.rows = {{Value(1.0 + 1e-9)}};
  EXPECT_TRUE(ResultsEquivalent(a, b, /*ordered=*/false));
}

TEST(ResultTableTest, DifferentColumnCountNotEquivalent) {
  ResultTable a;
  a.column_names = {"x"};
  ResultTable b;
  b.column_names = {"x", "y"};
  EXPECT_FALSE(ResultsEquivalent(a, b, false));
}

// ----------------------------------------------------------------- catalog

TEST(CatalogTest, LookupsAreCaseInsensitive) {
  Database db = MakeMusicDb();
  EXPECT_TRUE(db.schema().FindTable("SINGER").has_value());
  EXPECT_TRUE(db.schema().tables[0].FindColumn("NAME").has_value());
  EXPECT_FALSE(db.schema().FindTable("unknown").has_value());
}

TEST(CatalogTest, DdlMentionsKeysAndComments) {
  Database db = MakeMusicDb();
  std::string ddl = db.schema().ToDdl();
  EXPECT_NE(ddl.find("CREATE TABLE singer"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(ddl.find("FOREIGN KEY"), std::string::npos);
  EXPECT_NE(ddl.find("-- singer name"), std::string::npos);
}

TEST(DatabaseTest, DistinctValuesProbe) {
  Database db = MakeMusicDb();
  auto values = db.DistinctValues("singer", "country", 2);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].AsText(), "USA");
  EXPECT_EQ(values[1].AsText(), "Canada");
}

TEST(DatabaseTest, InsertValidation) {
  Database db = MakeMusicDb();
  EXPECT_FALSE(db.Insert("unknown", {}).ok());
  EXPECT_FALSE(db.Insert("singer", {Value(int64_t{9})}).ok());  // arity
}

TEST(DatabaseTest, CountsValues) {
  Database db = MakeMusicDb();
  EXPECT_EQ(db.TotalRows(), 8u);
  // 32 cells minus 2 NULLs.
  EXPECT_EQ(db.TotalValues(), 30u);
}

// --------------------------------------------------- AST round-trip matrix

/// Asserts ToSql -> parse -> ToSql is a fixpoint and that the reparsed
/// statement is structurally identical (same fingerprint key). This is the
/// same invariant the fuzzer's roundtrip oracle checks on random queries;
/// here each AST node kind gets a deliberate, named instance.
void ExpectRoundTrip(const std::string& sql) {
  auto first = ParseSql(sql);
  ASSERT_TRUE(first.ok()) << sql << " -> " << first.status().ToString();
  std::string canonical = (*first)->ToSql();
  auto second = ParseSql(canonical);
  ASSERT_TRUE(second.ok()) << canonical << " -> "
                           << second.status().ToString();
  EXPECT_EQ((*second)->ToSql(), canonical) << "not a fixpoint for: " << sql;
  EXPECT_EQ(FingerprintOf(**second).ToKey(), FingerprintOf(**first).ToKey())
      << "fingerprint drift for: " << sql;
}

TEST(RoundTripTest, EveryExprKindSurvivesSerialization) {
  const char* kQueries[] = {
      // kLiteral: integer, real, exponent, negative, text, NULL.
      "SELECT 1, 2.5, 1.5e3, -7, 'text', NULL FROM singer",
      // kColumnRef, bare and qualified.
      "SELECT name, singer.age FROM singer",
      // kStar, bare and table-qualified.
      "SELECT * FROM singer",
      "SELECT T1.* FROM singer AS T1 JOIN song AS T2 ON T2.singer_id = "
      "T1.singer_id",
      // kUnary: NOT, negate, IS NULL, IS NOT NULL.
      "SELECT name FROM singer WHERE NOT age > 30",
      "SELECT -age, -(age + 1) FROM singer",
      "SELECT name FROM singer WHERE age IS NULL",
      "SELECT name FROM singer WHERE age IS NOT NULL",
      // kBinary: comparisons, AND/OR nesting, arithmetic, concat, LIKE.
      "SELECT name FROM singer WHERE age = 30 AND (country = 'USA' OR age "
      "< 40)",
      "SELECT (age + 2) * 3 - age / 2 FROM singer",
      "SELECT name || '_x' FROM singer",
      "SELECT name FROM singer WHERE name LIKE 'A%'",
      "SELECT name FROM singer WHERE name NOT LIKE '%z%'",
      // kFunction: aggregates and scalar functions.
      "SELECT COUNT(*), COUNT(DISTINCT country), SUM(age), AVG(age), "
      "MIN(age), MAX(age) FROM singer",
      "SELECT ABS(-age), ROUND(2.567, 1), LENGTH(name), UPPER(name), "
      "LOWER(name) FROM singer",
      // kBetween / NOT BETWEEN.
      "SELECT name FROM singer WHERE age BETWEEN 25 AND 40",
      "SELECT name FROM singer WHERE age NOT BETWEEN -5 AND 25",
      // kInList / NOT IN, with negatives and NULL members.
      "SELECT name FROM singer WHERE age IN (-1, 30, NULL)",
      "SELECT name FROM singer WHERE country NOT IN ('USA', 'Peru')",
      // kInSubquery.
      "SELECT name FROM singer WHERE singer_id IN (SELECT singer_id FROM "
      "song WHERE sales > 80.0)",
      // kScalarSubquery.
      "SELECT name FROM singer WHERE age > (SELECT MIN(sales) FROM song)",
      // kCast to every type.
      "SELECT CAST(age AS REAL), CAST(name AS INTEGER), CAST(age AS TEXT) "
      "FROM singer",
      // Clause coverage: join, group/having, order/limit, distinct, set ops.
      "SELECT T1.name, COUNT(*) FROM singer AS T1 JOIN song AS T2 ON "
      "T2.singer_id = T1.singer_id GROUP BY T1.name HAVING COUNT(*) > 1 "
      "ORDER BY COUNT(*) DESC LIMIT 3",
      "SELECT DISTINCT country FROM singer ORDER BY country",
      "SELECT name FROM singer UNION SELECT title FROM song",
      "SELECT country FROM singer INTERSECT SELECT country FROM singer",
      "SELECT name FROM singer EXCEPT SELECT 'Alice' FROM singer",
  };
  for (const char* sql : kQueries) ExpectRoundTrip(sql);
}

TEST(RoundTripTest, PrecedenceRequiresParentheses) {
  // (1 + 2) * 3 must keep its parentheses; 1 + 2 * 3 must not grow any.
  auto grouped = ParseSql("SELECT (1 + 2) * 3 FROM singer");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->ToSql(), "SELECT (1 + 2) * 3 FROM singer");
  auto natural = ParseSql("SELECT 1 + 2 * 3 FROM singer");
  ASSERT_TRUE(natural.ok());
  EXPECT_EQ((*natural)->ToSql(), "SELECT 1 + 2 * 3 FROM singer");
  auto not_and = ParseSql("SELECT 1 FROM singer WHERE NOT (1 = 1 AND 2 = 2)");
  ASSERT_TRUE(not_and.ok());
  ExpectRoundTrip((*not_and)->ToSql());
}

// --------------------------------------------------------- NULL semantics

/// Schema with NULL-heavy data for three-valued-logic tests:
///   reading(reading_id PK, sensor, level)  — level mostly NULL.
Database MakeNullDb() {
  DatabaseSchema schema;
  schema.name = "nulls";
  TableDef reading;
  reading.name = "reading";
  reading.columns = {
      {"reading_id", DataType::kInteger, "", true},
      {"sensor", DataType::kText, "", false},
      {"level", DataType::kReal, "", false},
  };
  schema.tables = {reading};
  Database db(std::move(schema));
  auto ins = [&db](int64_t id, Value sensor, Value level) {
    ASSERT_TRUE(db.Insert("reading", {Value(id), std::move(sensor),
                                      std::move(level)}).ok());
  };
  ins(1, Value("a"), Value(4.0));
  ins(2, Value("a"), Value());
  ins(3, Value(), Value());
  ins(4, Value(), Value(2.0));
  ins(5, Value("b"), Value());
  return db;
}

TEST(NullSemanticsTest, ComparisonsWithNullNeverMatch) {
  Database db = MakeMusicDb();  // Dave's age is NULL
  struct Case {
    const char* where;
    size_t rows;
  } kCases[] = {
      {"age = NULL", 0},          // = NULL is UNKNOWN, never TRUE
      {"age != NULL", 0},
      {"NOT age = NULL", 0},      // NOT UNKNOWN is still UNKNOWN
      {"age < NULL", 0},
      {"age = 30", 2},
      {"age = 30 OR age = NULL", 2},     // UNKNOWN OR TRUE = TRUE
      {"age = 30 AND age = NULL", 0},    // TRUE AND UNKNOWN = UNKNOWN
      {"age IS NULL", 1},
      {"age IS NOT NULL", 3},
      {"age IN (30, NULL)", 2},          // matches still count
      {"age NOT IN (25, NULL)", 0},      // NULL member poisons NOT IN
      {"age NOT IN (25, 26)", 3},
      {"age BETWEEN NULL AND 50", 0},
  };
  for (const auto& c : kCases) {
    std::string sql =
        std::string("SELECT name FROM singer WHERE ") + c.where;
    ResultTable r = MustExecute(db, sql);
    EXPECT_EQ(r.NumRows(), c.rows) << sql;
  }
}

TEST(NullSemanticsTest, NullGroupByKeysFormOneGroup) {
  Database db = MakeNullDb();
  ResultTable r = MustExecute(
      db, "SELECT sensor, COUNT(*) FROM reading GROUP BY sensor "
          "ORDER BY sensor");
  // Groups: NULL (2 rows), 'a' (2 rows), 'b' (1 row) — NULL sorts first.
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[0][1].AsInteger(), 2);
  EXPECT_EQ(r.rows[1][0].AsText(), "a");
  EXPECT_EQ(r.rows[1][1].AsInteger(), 2);
  EXPECT_EQ(r.rows[2][0].AsText(), "b");
  EXPECT_EQ(r.rows[2][1].AsInteger(), 1);
}

TEST(NullSemanticsTest, AggregatesSkipNullsAndAllNullInputs) {
  Database db = MakeNullDb();
  // Only readings 1 and 4 have non-NULL levels (4.0 and 2.0).
  ResultTable r = MustExecute(
      db, "SELECT COUNT(*), COUNT(level), SUM(level), AVG(level), "
          "MIN(level), MAX(level) FROM reading");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 5);  // COUNT(*) counts NULL rows
  EXPECT_EQ(r.rows[0][1].AsInteger(), 2);  // COUNT(col) does not
  EXPECT_DOUBLE_EQ(r.rows[0][2].ToNumeric(), 6.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].ToNumeric(), 2.0);
  EXPECT_DOUBLE_EQ(r.rows[0][5].ToNumeric(), 4.0);

  // Over an all-NULL input set, COUNT is 0 and every other aggregate NULL.
  ResultTable empty = MustExecute(
      db, "SELECT COUNT(level), SUM(level), AVG(level), MIN(level), "
          "MAX(level) FROM reading WHERE sensor = 'b'");
  ASSERT_EQ(empty.NumRows(), 1u);
  EXPECT_EQ(empty.rows[0][0].AsInteger(), 0);
  for (size_t c = 1; c < 5; ++c) {
    EXPECT_TRUE(empty.rows[0][c].is_null()) << "aggregate column " << c;
  }
}

TEST(NullSemanticsTest, OrderByPlacesNullsFirstAscLastDesc) {
  Database db = MakeNullDb();
  ResultTable asc =
      MustExecute(db, "SELECT level FROM reading ORDER BY level");
  ASSERT_EQ(asc.NumRows(), 5u);
  EXPECT_TRUE(asc.rows[0][0].is_null());
  EXPECT_TRUE(asc.rows[1][0].is_null());
  EXPECT_TRUE(asc.rows[2][0].is_null());
  EXPECT_DOUBLE_EQ(asc.rows[3][0].ToNumeric(), 2.0);
  EXPECT_DOUBLE_EQ(asc.rows[4][0].ToNumeric(), 4.0);

  ResultTable desc =
      MustExecute(db, "SELECT level FROM reading ORDER BY level DESC");
  EXPECT_DOUBLE_EQ(desc.rows[0][0].ToNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(desc.rows[1][0].ToNumeric(), 2.0);
  EXPECT_TRUE(desc.rows[2][0].is_null());
}

TEST(NullSemanticsTest, NullPropagatesThroughExpressions) {
  Database db = MakeNullDb();
  ResultTable r = MustExecute(
      db, "SELECT level + 1, -level, level || 'x', CAST(level AS INTEGER) "
          "FROM reading WHERE reading_id = 2");
  ASSERT_EQ(r.NumRows(), 1u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(r.rows[0][c].is_null()) << "column " << c;
  }
}

TEST(NullSemanticsTest, TextNumericCoercionIsDecimalOnly) {
  // 'Nancy' must coerce to 0.0, not NaN: bare strtod accepts "nan"/"inf"
  // prefixes, which poisoned comparisons (the fuzzer's rerun oracle caught
  // this; see tests/fuzz_corpus/engine_bugs.corpus).
  EXPECT_DOUBLE_EQ(Value("Nancy").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("Infinity Falls").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("nan").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("inf").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("0x10").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("  -12.5e1abc").ToNumeric(), -125.0);
  EXPECT_DOUBLE_EQ(Value(".5z").ToNumeric(), 0.5);
  EXPECT_DOUBLE_EQ(Value("+3").ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value("-").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value("").ToNumeric(), 0.0);
}

}  // namespace
}  // namespace codes::sql
