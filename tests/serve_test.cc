// Tier-1 coverage for the overload-protection serving front end: the
// token bucket, the deadline-aware LIFO-under-saturation queue, per-stage
// circuit breakers (trip / half-open probing / recovery), the adaptive
// brownout controller, the ServeFrontEnd glue (explicit-time and
// wall-clock modes, serve.* accounting), and the virtual-time load
// generator's thread-count determinism contract.

#include <gtest/gtest.h>

#include <future>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "serve/admission.h"
#include "serve/brownout.h"
#include "serve/circuit_breaker.h"
#include "serve/front_end.h"
#include "serve/load_gen.h"

namespace codes {
namespace serve {
namespace {

// ------------------------------------------------------------ token bucket

TEST(TokenBucketTest, DisabledRateAlwaysAdmits) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

TEST(TokenBucketTest, BurstThenContinuousRefill) {
  TokenBucket bucket(10.0, 2.0);  // 10 tokens/s, burst of 2
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0)) << "burst exhausted";
  EXPECT_FALSE(bucket.TryAcquire(50'000)) << "only half a token accrued";
  EXPECT_TRUE(bucket.TryAcquire(110'000)) << "one token per 100 ms at 10/s";
  EXPECT_FALSE(bucket.TryAcquire(110'000));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(100.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_TRUE(bucket.TryAcquire(10'000'000));
  EXPECT_TRUE(bucket.TryAcquire(10'000'000));
  EXPECT_FALSE(bucket.TryAcquire(10'000'000));
}

TEST(TokenBucketTest, VirtualClockJumpSaturatesAtBurst) {
  // The idle-gap regression (ISSUE 9): a virtual clock that jumps by an
  // arbitrarily long gap — decades of idle microseconds — must refill to
  // exactly `burst`, never to a mega-burst that admits everything.
  TokenBucket bucket(1000.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));

  const uint64_t kFarFuture = ~0ULL / 2;  // ~292k years of microseconds
  EXPECT_DOUBLE_EQ(bucket.tokens_at(kFarFuture), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(kFarFuture));
  EXPECT_FALSE(bucket.TryAcquire(kFarFuture))
      << "idle gap banked more than burst";

  // Even when the accrual arithmetic itself overflows to +inf, the
  // refill lands on burst instead of poisoning the token count.
  TokenBucket extreme(1e300, 2.0);
  EXPECT_TRUE(extreme.TryAcquire(0));
  EXPECT_TRUE(extreme.TryAcquire(0));
  EXPECT_FALSE(extreme.TryAcquire(0));
  EXPECT_DOUBLE_EQ(extreme.tokens_at(kFarFuture), 2.0);
  EXPECT_TRUE(extreme.TryAcquire(kFarFuture));
  EXPECT_TRUE(extreme.TryAcquire(kFarFuture));
  EXPECT_FALSE(extreme.TryAcquire(kFarFuture));
}

TEST(TokenBucketTest, NonFiniteParametersAreSanitized) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  // Non-finite rate = no meaningful refill: treated as unlimited, the
  // same contract as rate <= 0 — never as "reject everything" and never
  // as a NaN tokens_ that admits everything while claiming to limit.
  TokenBucket nan_rate(kNan, 4.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(nan_rate.TryAcquire(0));
  TokenBucket inf_rate(kInf, 4.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inf_rate.TryAcquire(0));

  // A NaN burst would make every comparison false; it clamps to 1 so the
  // bucket still limits at the configured rate.
  TokenBucket nan_burst(10.0, kNan);
  EXPECT_TRUE(nan_burst.TryAcquire(0));
  EXPECT_FALSE(nan_burst.TryAcquire(0));
  EXPECT_FALSE(nan_burst.TryAcquire(50'000));
  EXPECT_TRUE(nan_burst.TryAcquire(110'000));
}

// ------------------------------------------------------ weighted-fair limiter

TEST(WeightedFairLimiterTest, PartitionsCapacityByWeight) {
  std::vector<WeightedFairLimiter::TenantSpec> tenants(3);
  tenants[0].weight = 2.0;
  tenants[1].weight = 1.0;
  tenants[2].weight = 1.0;
  WeightedFairLimiter limiter(100.0, tenants);
  ASSERT_EQ(limiter.NumTenants(), 3u);
  EXPECT_DOUBLE_EQ(limiter.RateOf(0), 50.0);
  EXPECT_DOUBLE_EQ(limiter.RateOf(1), 25.0);
  EXPECT_DOUBLE_EQ(limiter.RateOf(2), 25.0);
}

TEST(WeightedFairLimiterTest, HotTenantCannotDrainAnotherTenantsShare) {
  std::vector<WeightedFairLimiter::TenantSpec> tenants(2);
  tenants[0].burst = 2.0;
  tenants[1].burst = 2.0;
  WeightedFairLimiter limiter(20.0, tenants);  // 10 qps each

  // Tenant 0 floods at t=0: it gets its burst and nothing more.
  int admitted = 0;
  for (int i = 0; i < 100; ++i) admitted += limiter.TryAcquire(0, 0);
  EXPECT_EQ(admitted, 2);

  // Tenant 1 is untouched by the flood — its own bucket is full.
  EXPECT_TRUE(limiter.TryAcquire(1, 0));
  EXPECT_TRUE(limiter.TryAcquire(1, 0));
  EXPECT_FALSE(limiter.TryAcquire(1, 0));

  // Over one second, each tenant accrues at its own 10 qps rate no
  // matter how hard the other one hammers.
  int t0 = 0;
  int t1 = 0;
  for (uint64_t us = 100'000; us <= 1'000'000; us += 100'000) {
    for (int i = 0; i < 50; ++i) t0 += limiter.TryAcquire(0, us);
    t1 += limiter.TryAcquire(1, us);
  }
  EXPECT_GE(t1, 8) << "victim starved by the hot tenant";
  EXPECT_LE(t0, 12) << "hot tenant exceeded its fair share";
}

TEST(WeightedFairLimiterTest, DisabledAndOutOfRangeAlwaysAdmit) {
  std::vector<WeightedFairLimiter::TenantSpec> tenants(2);
  WeightedFairLimiter disabled(0.0, tenants);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(disabled.TryAcquire(0, 0));

  WeightedFairLimiter limiter(10.0, tenants);
  EXPECT_TRUE(limiter.TryAcquire(-1, 0));  // single-tenant traffic
  EXPECT_TRUE(limiter.TryAcquire(99, 0));  // out of range: not limited here
  EXPECT_DOUBLE_EQ(limiter.RateOf(-1), 0.0);
}

// ----------------------------------------------------------- deadline queue

QueuedRequest Req(uint64_t id, uint64_t enqueue_us, uint64_t deadline_us) {
  QueuedRequest r;
  r.id = id;
  r.enqueue_us = enqueue_us;
  r.deadline_us = deadline_us;
  return r;
}

TEST(DeadlineQueueTest, PushRefusesWhenFull) {
  DeadlineQueue queue(2, 10);
  EXPECT_TRUE(queue.Push(Req(0, 0, 0)));
  EXPECT_TRUE(queue.Push(Req(1, 0, 0)));
  EXPECT_FALSE(queue.Push(Req(2, 0, 0)));
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(DeadlineQueueTest, PopShedsExpiredBeforeServing) {
  DeadlineQueue queue(8, 8);  // threshold above depth: pure FIFO
  ASSERT_TRUE(queue.Push(Req(0, 0, 50)));
  ASSERT_TRUE(queue.Push(Req(1, 0, 60)));
  ASSERT_TRUE(queue.Push(Req(2, 0, 500)));
  QueuedRequest out;
  std::vector<QueuedRequest> shed;
  ASSERT_TRUE(queue.Pop(100, &out, &shed));
  EXPECT_EQ(out.id, 2u) << "both expired entries shed first";
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[0].id, 0u);
  EXPECT_EQ(shed[1].id, 1u);
  EXPECT_FALSE(queue.Pop(100, &out, &shed));
}

TEST(DeadlineQueueTest, FifoWhenShallowLifoWhenSaturated) {
  DeadlineQueue queue(8, 2);
  for (uint64_t id = 0; id < 4; ++id) ASSERT_TRUE(queue.Push(Req(id, 0, 0)));
  QueuedRequest out;
  std::vector<QueuedRequest> shed;
  // Depth 4 > threshold 2: newest first (its deadline budget is intact).
  ASSERT_TRUE(queue.Pop(0, &out, &shed));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(queue.Pop(0, &out, &shed));
  EXPECT_EQ(out.id, 2u);
  // Depth 2 <= threshold: back to FIFO fairness.
  ASSERT_TRUE(queue.Pop(0, &out, &shed));
  EXPECT_EQ(out.id, 0u);
  ASSERT_TRUE(queue.Pop(0, &out, &shed));
  EXPECT_EQ(out.id, 1u);
  EXPECT_TRUE(shed.empty());
}

TEST(DeadlineQueueTest, DrainRemovesEverything) {
  DeadlineQueue queue(4, 4);
  for (uint64_t id = 0; id < 3; ++id) ASSERT_TRUE(queue.Push(Req(id, 0, 0)));
  std::vector<QueuedRequest> shed;
  queue.DrainTo(&shed);
  EXPECT_EQ(shed.size(), 3u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionControllerTest, ResolveDefaultsLifoThresholdToHalfCapacity) {
  AdmissionController::Options options;
  options.queue_capacity = 64;
  EXPECT_EQ(options.Resolve().lifo_threshold, 32u);
  options.lifo_threshold = 5;
  EXPECT_EQ(options.Resolve().lifo_threshold, 5u);
}

TEST(AdmissionControllerTest, RateLimitCheckedBeforeQueueSpace) {
  AdmissionController::Options options;
  options.rate_per_sec = 1.0;
  options.burst = 1.0;
  options.queue_capacity = 1;
  AdmissionController controller(options);
  EXPECT_EQ(controller.Offer(Req(0, 0, 0), 0), Admission::kEnqueued);
  // Queue is now full AND the bucket is empty; the rate verdict wins.
  EXPECT_EQ(controller.Offer(Req(1, 0, 0), 0), Admission::kRejectedRate);
  // A second later there is a token but still no queue space.
  EXPECT_EQ(controller.Offer(Req(2, 0, 0), 1'000'000),
            Admission::kRejectedQueueFull);
}

TEST(AdmissionControllerTest, NamesAreStable) {
  EXPECT_STREQ(AdmissionName(Admission::kEnqueued), "enqueued");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedRate), "rejected_rate");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedQueueFull),
               "rejected_queue_full");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedTenantRate),
               "rejected_tenant_rate");
}

TEST(AdmissionControllerTest, TenantLimiterCheckedBeforeGlobalBucket) {
  AdmissionController::Options options;
  options.rate_per_sec = 100.0;  // generous global bucket
  options.burst = 100.0;
  options.queue_capacity = 64;
  options.tenant_capacity_qps = 20.0;
  options.tenants.resize(2);  // 10 qps each
  options.tenants[0].burst = 1.0;
  options.tenants[1].burst = 1.0;
  AdmissionController controller(options);

  auto offer = [&](uint64_t id, int tenant, uint64_t now_us) {
    QueuedRequest request = Req(id, now_us, 0);
    request.tenant = tenant;
    return controller.Offer(request, now_us);
  };

  // Tenant 0 spends its token; its next request is clipped by the
  // weighted-fair layer even though the global bucket has 99 tokens
  // left — the hot tenant's excess never drains the shared pool.
  EXPECT_EQ(offer(0, 0, 0), Admission::kEnqueued);
  EXPECT_EQ(offer(1, 0, 0), Admission::kRejectedTenantRate);
  // Tenant 1 and untagged single-tenant traffic are unaffected.
  EXPECT_EQ(offer(2, 1, 0), Admission::kEnqueued);
  EXPECT_EQ(offer(3, -1, 0), Admission::kEnqueued);
}

// ---------------------------------------------------------- circuit breaker

CircuitBreaker::Options SmallBreaker() {
  CircuitBreaker::Options options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.cooldown_us = 1'000;
  options.half_open_probes = 2;
  options.close_after = 2;
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinSamples) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) breaker.RecordOutcome(true, 0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed)
      << "3 outcomes < min_samples=4: ratio not yet meaningful";
  EXPECT_FALSE(breaker.ShouldForce(0));
}

TEST(CircuitBreakerTest, TripsAtFailureRatio) {
  CircuitBreaker breaker(SmallBreaker());
  breaker.RecordOutcome(false, 0);
  breaker.RecordOutcome(true, 0);
  breaker.RecordOutcome(false, 0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordOutcome(true, 0);  // 2/4 = threshold
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.ShouldForce(500)) << "cooldown not elapsed";
  EXPECT_EQ(breaker.transitions(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenProbesThenCloses) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(true, 0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapsed: the next consult transitions to HalfOpen and lets
  // exactly `half_open_probes` requests through.
  EXPECT_FALSE(breaker.ShouldForce(1'000)) << "probe 1";
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.ShouldForce(1'001)) << "probe 2";
  EXPECT_TRUE(breaker.ShouldForce(1'002)) << "probe quota spent";

  breaker.RecordOutcome(false, 1'100);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordOutcome(false, 1'200);  // close_after = 2 successes
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.ShouldForce(1'300));

  // The failing era's window was cleared on close: it takes min_samples
  // fresh failures to trip again, not one.
  breaker.RecordOutcome(true, 1'400);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(true, 0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.ShouldForce(1'000));  // probe
  breaker.RecordOutcome(true, 1'100);        // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.ShouldForce(1'500)) << "new cooldown from 1100";
  EXPECT_FALSE(breaker.ShouldForce(2'100)) << "cooldown elapsed again";
}

TEST(CircuitBreakerTest, OpenDropsStragglerOutcomes) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(true, 0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // In-flight requests admitted before the trip report in while Open;
  // their verdicts describe the pre-trip world and must not count.
  for (int i = 0; i < 10; ++i) breaker.RecordOutcome(false, 10);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions(), 1u);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

// ----------------------------------------------------------------- brownout

BrownoutController::Options FastBrownout() {
  BrownoutController::Options options;
  options.high_watermark = 0.75;
  options.low_watermark = 0.25;
  options.dwell_us = 100;
  return options;
}

TEST(BrownoutTest, DegradesOneStepPerDwellUnderSustainedOverload) {
  BrownoutController brownout(FastBrownout());
  EXPECT_EQ(brownout.Update(1.0, 1'000), 1);
  EXPECT_EQ(brownout.Update(1.0, 1'050), 1) << "dwell not elapsed";
  EXPECT_EQ(brownout.Update(1.0, 1'100), 2);
  EXPECT_EQ(brownout.Update(1.0, 1'200), 3);
  EXPECT_EQ(brownout.Update(1.0, 1'300), 4);
  EXPECT_EQ(brownout.Update(1.0, 1'400), 4) << "max level";
  EXPECT_EQ(brownout.degrades(), 4u);
}

TEST(BrownoutTest, HysteresisHoldsBetweenWatermarks) {
  BrownoutController brownout(FastBrownout());
  ASSERT_EQ(brownout.Update(1.0, 1'000), 1);
  // Mid-band fullness: neither degrade nor recover, at any dwell.
  EXPECT_EQ(brownout.Update(0.5, 2'000), 1);
  EXPECT_EQ(brownout.Update(0.5, 3'000), 1);
  EXPECT_EQ(brownout.Update(0.2, 3'100), 0) << "below low watermark";
  EXPECT_EQ(brownout.recoveries(), 1u);
}

TEST(BrownoutTest, MaxLevelOptionCapsDegradation) {
  BrownoutController::Options options = FastBrownout();
  options.max_level = 2;
  BrownoutController brownout(options);
  EXPECT_EQ(brownout.Update(1.0, 1'000), 1);
  EXPECT_EQ(brownout.Update(1.0, 2'000), 2);
  EXPECT_EQ(brownout.Update(1.0, 3'000), 2);
}

TEST(BrownoutTest, ApplyLevelSetsTheDocumentedKnobs) {
  ServeOptions l0;
  BrownoutController::ApplyLevel(0, &l0);
  EXPECT_EQ(l0.max_icl_demos, -1);
  EXPECT_FALSE(l0.disable_value_retriever);
  EXPECT_FALSE(l0.force_emergency_sql);
  EXPECT_EQ(l0.brownout_level, 0);

  ServeOptions l1;
  BrownoutController::ApplyLevel(1, &l1);
  EXPECT_EQ(l1.max_icl_demos, 1);
  EXPECT_FALSE(l1.disable_value_retriever);

  ServeOptions l2;
  BrownoutController::ApplyLevel(2, &l2);
  EXPECT_EQ(l2.max_icl_demos, 0);
  EXPECT_TRUE(l2.disable_value_retriever);
  EXPECT_EQ(l2.top_k1_override, 0);

  ServeOptions l3;
  BrownoutController::ApplyLevel(3, &l3);
  EXPECT_EQ(l3.top_k1_override, 2);
  EXPECT_EQ(l3.top_k2_override, 4);
  EXPECT_FALSE(l3.force_emergency_sql);

  ServeOptions l4;
  BrownoutController::ApplyLevel(4, &l4);
  EXPECT_TRUE(l4.force_emergency_sql);
  EXPECT_EQ(l4.brownout_level, 4);
}

// ---------------------------------------------------------- serve front end

uint64_t CounterDelta(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

class ServeFrontEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
    PipelineConfig config;
    config.size = ModelSize::k7B;
    pipeline_ = new CodesPipeline(config, zoo_->CodesFor(config.size));
    pipeline_->TrainClassifier(*bench_);
    pipeline_->FineTune(*bench_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete zoo_;
    delete bench_;
    pipeline_ = nullptr;
    zoo_ = nullptr;
    bench_ = nullptr;
  }
  void SetUp() override { MetricsRegistry::Global().Reset(); }
  void TearDown() override { Failpoints::Clear(); }

  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
  static CodesPipeline* pipeline_;
};
Text2SqlBenchmark* ServeFrontEndTest::bench_ = nullptr;
LmZoo* ServeFrontEndTest::zoo_ = nullptr;
CodesPipeline* ServeFrontEndTest::pipeline_ = nullptr;

TEST_F(ServeFrontEndTest, ExplicitTimeAccountingSumsToOffered) {
  FrontEndOptions options;
  options.admission.queue_capacity = 2;
  ServeFrontEnd fe(pipeline_, bench_, options);

  EXPECT_EQ(fe.Offer(0, 0, 0), Admission::kEnqueued);
  EXPECT_EQ(fe.Offer(1, 0, 0), Admission::kEnqueued);
  EXPECT_EQ(fe.Offer(2, 0, 0), Admission::kRejectedQueueFull);
  EXPECT_EQ(fe.queue_depth(), 2u);

  QueuedRequest out;
  ASSERT_TRUE(fe.Dequeue(10, &out));
  EXPECT_EQ(fe.Offer(3, /*deadline_us=*/50, 20), Admission::kEnqueued);

  // At t=100 request 3 is past its deadline: shed at dequeue, and the
  // remaining live request is served instead.
  std::vector<QueuedRequest> shed;
  ASSERT_TRUE(fe.Dequeue(100, &out, &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].id, 3u);
  EXPECT_FALSE(fe.Dequeue(100, &out));
  EXPECT_EQ(fe.Drain(100), 0u);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.offered"), 4u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.admitted"), 2u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.rejected"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.shed"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.admitted") +
                CounterDelta(snapshot, "serve.rejected") +
                CounterDelta(snapshot, "serve.shed"),
            CounterDelta(snapshot, "serve.offered"));
}

TEST_F(ServeFrontEndTest, PerTenantAccountingSumsToOfferedPerTenant) {
  FrontEndOptions options;
  options.tenant_names = {"alpha", "beta"};
  options.admission.queue_capacity = 2;
  options.admission.tenant_capacity_qps = 20.0;  // 10 qps per tenant
  options.admission.tenants.resize(2);
  options.admission.tenants[0].burst = 1.0;
  // Beta gets headroom so its rejections exercise the queue, not the
  // tenant bucket.
  options.admission.tenants[1].burst = 3.0;
  ServeFrontEnd fe(pipeline_, bench_, options);

  // alpha: one admitted, one clipped by its tenant bucket.
  EXPECT_EQ(fe.Offer(0, 0, 0, /*tenant=*/0), Admission::kEnqueued);
  EXPECT_EQ(fe.Offer(1, 0, 0, /*tenant=*/0), Admission::kRejectedTenantRate);
  // beta: one admitted (queue now full), one rejected queue-full, one
  // with a deadline that will expire before it is dequeued.
  EXPECT_EQ(fe.Offer(2, 0, 0, /*tenant=*/1), Admission::kEnqueued);
  EXPECT_EQ(fe.Offer(3, 0, 100'000, /*tenant=*/1),
            Admission::kRejectedQueueFull);

  QueuedRequest out;
  ASSERT_TRUE(fe.Dequeue(200'000, &out));
  EXPECT_EQ(fe.Offer(4, /*deadline_us=*/250'000, 200'000, /*tenant=*/1),
            Admission::kEnqueued);

  // Past request 4's deadline: it sheds at dequeue, attributed to beta;
  // the remaining live request serves.
  std::vector<QueuedRequest> shed;
  ASSERT_TRUE(fe.Dequeue(300'000, &out, &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].id, 4u);
  EXPECT_EQ(shed[0].tenant, 1);
  EXPECT_FALSE(fe.Dequeue(300'000, &out));

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  // Global family still sums.
  EXPECT_EQ(CounterDelta(snapshot, "serve.offered"), 5u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.rejected.tenant_rate"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.admitted") +
                CounterDelta(snapshot, "serve.rejected") +
                CounterDelta(snapshot, "serve.shed"),
            CounterDelta(snapshot, "serve.offered"));
  // Per-tenant families sum independently, and partition the global one.
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.alpha.offered"), 2u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.alpha.admitted"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.alpha.rejected"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.alpha.shed"), 0u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.beta.offered"), 3u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.beta.admitted"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.beta.rejected"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.tenant.beta.shed"), 1u);
  for (const char* name : {"alpha", "beta"}) {
    std::string p = std::string("serve.tenant.") + name + ".";
    EXPECT_EQ(CounterDelta(snapshot, (p + "admitted").c_str()) +
                  CounterDelta(snapshot, (p + "rejected").c_str()) +
                  CounterDelta(snapshot, (p + "shed").c_str()),
              CounterDelta(snapshot, (p + "offered").c_str()))
        << name;
  }
}

TEST_F(ServeFrontEndTest, DrainShedsLeftoverQueue) {
  FrontEndOptions options;
  options.admission.queue_capacity = 8;
  ServeFrontEnd fe(pipeline_, bench_, options);
  for (uint64_t id = 0; id < 3; ++id) {
    ASSERT_EQ(fe.Offer(id, 0, 0), Admission::kEnqueued);
  }
  std::vector<QueuedRequest> shed;
  EXPECT_EQ(fe.Drain(10, &shed), 3u);
  EXPECT_EQ(shed.size(), 3u);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.shed.drain"), 3u);
}

TEST_F(ServeFrontEndTest, GenerationBreakerTripsForcesRungAndRecovers) {
  FrontEndOptions options;
  options.breaker = SmallBreaker();
  ServeFrontEnd fe(pipeline_, bench_, options);
  const auto& sample = bench_->dev.front();

  // Phase 1: every decode fails -> generation serves unverified fallbacks
  // until the breaker window trips.
  ASSERT_TRUE(Failpoints::Configure("lm.decode=prob:1.0", 7).ok());
  uint64_t now = 0;
  int until_open = 0;
  while (fe.breaker_state(ServeStage::kGeneration) == BreakerState::kClosed) {
    ASSERT_LT(until_open, 16) << "breaker never tripped";
    ServeOptions serve = fe.OptionsFor(now);
    EXPECT_FALSE(serve.force_emergency_sql);
    ServeReport report;
    std::string sql = pipeline_->PredictGuarded(*bench_, sample, serve,
                                                &report);
    EXPECT_FALSE(sql.empty());
    EXPECT_FALSE(report.execution_verified);
    fe.Complete(serve, report, now);
    now += 10;
    ++until_open;
  }
  EXPECT_EQ(until_open, 4) << "min_samples all-failed outcomes trip it";

  // Phase 2: while Open, requests are served as emergency SQL (the rung
  // fires without touching generation) and their outcomes feed nothing.
  ServeOptions forced = fe.OptionsFor(now);
  EXPECT_TRUE(forced.force_emergency_sql);
  ServeReport forced_report;
  std::string forced_sql = pipeline_->PredictGuarded(*bench_, sample, forced,
                                                     &forced_report);
  EXPECT_FALSE(forced_sql.empty());
  EXPECT_TRUE(forced_report.Fired(ServeRung::kEmergencySql));
  fe.Complete(forced, forced_report, now);
  EXPECT_EQ(fe.breaker_state(ServeStage::kGeneration), BreakerState::kOpen);

  // Phase 3: the fault clears; after the cooldown the breaker half-opens,
  // probes succeed, and the stage comes back.
  Failpoints::Clear();
  now += options.breaker.cooldown_us;
  for (int probe = 0; probe < options.breaker.close_after; ++probe) {
    ServeOptions serve = fe.OptionsFor(now);
    ASSERT_FALSE(serve.force_emergency_sql) << "probe " << probe;
    EXPECT_EQ(fe.breaker_state(ServeStage::kGeneration),
              BreakerState::kHalfOpen);
    ServeReport report;
    pipeline_->PredictGuarded(*bench_, sample, serve, &report);
    EXPECT_TRUE(report.execution_verified);
    fe.Complete(serve, report, now);
    now += 10;
  }
  EXPECT_EQ(fe.breaker_state(ServeStage::kGeneration), BreakerState::kClosed);
  EXPECT_FALSE(fe.OptionsFor(now).force_emergency_sql);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.breaker.generation.to_open"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.breaker.generation.to_half_open"),
            1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.breaker.generation.to_closed"), 1u);
}

TEST_F(ServeFrontEndTest, ClassifierBreakerForcesFallbackRung) {
  FrontEndOptions options;
  options.breaker = SmallBreaker();
  ServeFrontEnd fe(pipeline_, bench_, options);
  const auto& sample = bench_->dev.front();

  ASSERT_TRUE(Failpoints::Configure("classifier.score=prob:1.0", 7).ok());
  uint64_t now = 0;
  while (fe.breaker_state(ServeStage::kClassifier) == BreakerState::kClosed) {
    ASSERT_LT(now, 200u) << "classifier breaker never tripped";
    ServeOptions serve = fe.OptionsFor(now);
    ServeReport report;
    pipeline_->PredictGuarded(*bench_, sample, serve, &report);
    EXPECT_TRUE(report.Fired(ServeRung::kClassifierFallback));
    fe.Complete(serve, report, now);
    now += 10;
  }
  Failpoints::Clear();

  // While open the front end itself forces the rung; the report still
  // records kClassifierFallback but the breaker is no longer fed by it.
  ServeOptions forced = fe.OptionsFor(now);
  EXPECT_TRUE(forced.force_classifier_fallback);
  ServeReport report;
  pipeline_->PredictGuarded(*bench_, sample, forced, &report);
  EXPECT_TRUE(report.Fired(ServeRung::kClassifierFallback));
  fe.Complete(forced, report, now);
  EXPECT_EQ(fe.breaker_state(ServeStage::kClassifier), BreakerState::kOpen);
}

TEST_F(ServeFrontEndTest, QueuePressureDrivesBrownoutUpAndDown) {
  FrontEndOptions options;
  options.admission.queue_capacity = 4;
  options.brownout.dwell_us = 100;
  ServeFrontEnd fe(pipeline_, bench_, options);

  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_EQ(fe.Offer(id, 0, 1'000), Admission::kEnqueued);
  }
  fe.ObserveQueue(1'000);
  EXPECT_EQ(fe.brownout_level(), 1);
  fe.ObserveQueue(1'050);
  EXPECT_EQ(fe.brownout_level(), 1) << "dwell guard";
  fe.ObserveQueue(1'100);
  EXPECT_EQ(fe.brownout_level(), 2);

  ServeOptions degraded = fe.OptionsFor(1'150);
  EXPECT_EQ(degraded.brownout_level, 2);
  EXPECT_EQ(degraded.max_icl_demos, 0);
  EXPECT_TRUE(degraded.disable_value_retriever);

  // Drain the pressure: the controller steps back toward full richness.
  QueuedRequest out;
  while (fe.Dequeue(1'200, &out)) {
  }
  fe.ObserveQueue(1'300);
  EXPECT_EQ(fe.brownout_level(), 1);
  fe.ObserveQueue(1'400);
  EXPECT_EQ(fe.brownout_level(), 0);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.brownout.degrade"), 2u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.brownout.recover"), 2u);
}

TEST_F(ServeFrontEndTest, BrownoutStrippedValueStageDoesNotFireRung) {
  // disable_value_retriever is brownout *policy*: the stage is healthy,
  // so no ladder rung fires and the value breaker is not consulted.
  ServeOptions serve;
  BrownoutController::ApplyLevel(2, &serve);
  ServeReport report;
  std::string sql = pipeline_->PredictGuarded(*bench_, bench_->dev.front(),
                                              serve, &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_FALSE(report.Fired(ServeRung::kValueFallback));
  EXPECT_TRUE(report.execution_verified);
  EXPECT_EQ(report.brownout_level, 2);
}

TEST_F(ServeFrontEndTest, SyncServeServesAndRateLimits) {
  FrontEndOptions options;
  options.admission.rate_per_sec = 1e-6;  // ~one token per 11.5 days
  options.admission.burst = 1.0;
  ServeFrontEnd fe(pipeline_, bench_, options);

  std::string sql;
  ServeReport report;
  Status first = fe.Serve(bench_->dev.front(), &sql, &report);
  ASSERT_TRUE(first.ok()) << first.ToString();
  EXPECT_FALSE(sql.empty());

  Status second = fe.Serve(bench_->dev.front(), &sql);
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.offered"), 2u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.admitted"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.rejected.rate"), 1u);
}

TEST_F(ServeFrontEndTest, TryServeAsyncCompletesThroughThePool) {
  FrontEndOptions options;
  ServeFrontEnd fe(pipeline_, bench_, options);
  ThreadPool pool(2);
  std::promise<std::pair<Status, std::string>> done;
  auto fut = done.get_future();
  ASSERT_TRUE(fe.TryServeAsync(
      bench_->dev.front(), &pool,
      [&done](const Status& status, const std::string& sql,
              const ServeReport&) {
        done.set_value({status, sql});
      }));
  auto [status, sql] = fut.get();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(sql.empty());
}

TEST(ServeStageTest, StageNamesAreStable) {
  EXPECT_STREQ(ServeStageName(ServeStage::kClassifier), "classifier");
  EXPECT_STREQ(ServeStageName(ServeStage::kValueRetrieval),
               "value_retrieval");
  EXPECT_STREQ(ServeStageName(ServeStage::kGeneration), "generation");
}

// ------------------------------------------------------------ load campaign

TEST(ServeLoadGenTest, VirtualServiceCostIsPureAndBrownoutCheapens) {
  EXPECT_EQ(VirtualServiceUs(1, 42, 0, 20'000),
            VirtualServiceUs(1, 42, 0, 20'000));
  EXPECT_NE(VirtualServiceUs(1, 42, 0, 20'000),
            VirtualServiceUs(2, 42, 0, 20'000));
  for (uint64_t id = 0; id < 20; ++id) {
    for (int level = 1; level < kNumBrownoutLevels; ++level) {
      EXPECT_LT(VirtualServiceUs(1, id, level, 20'000),
                VirtualServiceUs(1, id, level - 1, 20'000))
          << "id=" << id << " level=" << level;
    }
  }
}

class ServeLoadCampaignTest : public ServeFrontEndTest {};

TEST_F(ServeLoadCampaignTest, CampaignIsByteIdenticalAcrossThreadCounts) {
  LoadGenOptions options;
  options.seed = 99;
  options.num_requests = 160;
  options.offered_qps = 400.0;  // 2x the 4x50/s virtual capacity
  options.virtual_workers = 4;
  options.service_base_us = 20'000;
  options.deadline_us = 100'000;
  options.front_end.brownout.dwell_us = 50'000;
  options.failpoint_spec = "*=prob:0.02";

  options.threads = 1;
  LoadReport serial = RunLoadCampaign(*pipeline_, *bench_, options);
  options.threads = 4;
  LoadReport parallel = RunLoadCampaign(*pipeline_, *bench_, options);

  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.Summary(), parallel.Summary());
  EXPECT_EQ(serial.offered, 160u);
  EXPECT_EQ(serial.admitted + serial.rejected_rate +
                serial.rejected_queue_full + serial.shed_deadline +
                serial.shed_drain,
            serial.offered)
      << "every request lands in exactly one outcome";
  EXPECT_GT(serial.admitted, 0u);
  EXPECT_GT(serial.rejected_queue_full + serial.shed_deadline, 0u)
      << "2x saturation must actually shed";
}

TEST_F(ServeLoadCampaignTest, MetricsObeySumInvariantAfterCampaign) {
  LoadGenOptions options;
  options.seed = 7;
  options.num_requests = 120;
  options.offered_qps = 400.0;
  options.threads = 2;
  options.front_end.brownout.dwell_us = 50'000;

  MetricsRegistry::Global().Reset();
  LoadReport report = RunLoadCampaign(*pipeline_, *bench_, options);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  EXPECT_EQ(CounterDelta(snapshot, "serve.offered"), report.offered);
  EXPECT_EQ(CounterDelta(snapshot, "serve.admitted") +
                CounterDelta(snapshot, "serve.rejected") +
                CounterDelta(snapshot, "serve.shed"),
            CounterDelta(snapshot, "serve.offered"));
  EXPECT_EQ(CounterDelta(snapshot, "serve.rejected.rate") +
                CounterDelta(snapshot, "serve.rejected.queue_full"),
            CounterDelta(snapshot, "serve.rejected"));
  EXPECT_EQ(CounterDelta(snapshot, "serve.shed.deadline") +
                CounterDelta(snapshot, "serve.shed.drain"),
            CounterDelta(snapshot, "serve.shed"));
  uint64_t served_at_levels = 0;
  for (int l = 0; l < kNumBrownoutLevels; ++l) {
    served_at_levels += report.served_at_level[l];
  }
  EXPECT_EQ(served_at_levels, report.admitted);
}

TEST_F(ServeLoadCampaignTest, BrownoutLiftsGoodputUnderSaturation) {
  // The controller's whole purpose: at 2x offered load, adapting prompt
  // richness must serve more requests within deadline than pinning full
  // richness (max_level = 0 disables brownout entirely).
  LoadGenOptions adaptive;
  adaptive.seed = 11;
  adaptive.num_requests = 200;
  adaptive.offered_qps = 400.0;
  adaptive.threads = 2;
  adaptive.front_end.brownout.dwell_us = 50'000;

  LoadGenOptions rigid = adaptive;
  rigid.front_end.brownout.max_level = 0;

  LoadReport with_brownout = RunLoadCampaign(*pipeline_, *bench_, adaptive);
  LoadReport without = RunLoadCampaign(*pipeline_, *bench_, rigid);
  EXPECT_GT(with_brownout.served_within_deadline,
            without.served_within_deadline);
  EXPECT_GT(with_brownout.brownout_degrades, 0u);
  EXPECT_EQ(without.brownout_degrades, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace codes
