#include <gtest/gtest.h>

#include "common/string_util.h"
#include "dataset/benchmark_builder.h"
#include "linker/schema_classifier.h"
#include "prompt/prompt_builder.h"
#include "retrieval/value_retriever.h"

namespace codes {
namespace {

class PromptTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(88));
    classifier_ = new SchemaItemClassifier();
    SchemaItemClassifier::TrainOptions options;
    options.epochs = 3;
    classifier_->Train(*bench_, options);
    retriever_ = new ValueRetriever();
    retriever_->BuildIndex(bench_->databases[0]);
  }
  static void TearDownTestSuite() {
    delete retriever_;
    delete classifier_;
    delete bench_;
  }
  static Text2SqlBenchmark* bench_;
  static SchemaItemClassifier* classifier_;
  static ValueRetriever* retriever_;
};
Text2SqlBenchmark* PromptTest::bench_ = nullptr;
SchemaItemClassifier* PromptTest::classifier_ = nullptr;
ValueRetriever* PromptTest::retriever_ = nullptr;

TEST_F(PromptTest, FilterRespectsTopK) {
  PromptOptions options;
  options.top_k1 = 1;
  options.top_k2 = 2;
  PromptBuilder builder(classifier_, options);
  const auto& db = bench_->databases[0];
  auto prompt = builder.Build(db, "how many rows are there", retriever_);
  EXPECT_EQ(prompt.kept_tables.size(), 1u);
  // Non-key kept columns per table <= top_k2 (keys ride along).
  for (size_t i = 0; i < prompt.kept_columns.size(); ++i) {
    int non_key = 0;
    int t = prompt.kept_tables[i];
    for (int c : prompt.kept_columns[i]) {
      const auto& col = db.schema().tables[t].columns[c];
      bool key = col.is_primary_key;
      for (const auto& fk : db.schema().foreign_keys) {
        if ((codes::ToLower(fk.table) == codes::ToLower(db.schema().tables[t].name) &&
             codes::ToLower(fk.column) == codes::ToLower(col.name)) ||
            (codes::ToLower(fk.ref_table) == codes::ToLower(db.schema().tables[t].name) &&
             codes::ToLower(fk.ref_column) == codes::ToLower(col.name))) {
          key = true;
        }
      }
      if (!key) ++non_key;
    }
    EXPECT_LE(non_key, 2);
  }
}

TEST_F(PromptTest, NoFilterKeepsEverything) {
  PromptOptions options;
  options.use_schema_filter = false;
  PromptBuilder builder(nullptr, options);
  const auto& db = bench_->databases[0];
  auto prompt = builder.Build(db, "anything", nullptr);
  EXPECT_EQ(prompt.kept_tables.size(), db.schema().tables.size());
}

TEST_F(PromptTest, SerializationSectionsFollowOptions) {
  const auto& db = bench_->databases[0];
  PromptOptions all;
  all.use_schema_filter = false;
  PromptBuilder with_all(nullptr, all);
  auto full = with_all.Build(db, "question", retriever_);
  EXPECT_NE(full.text.find("INTEGER"), std::string::npos);
  EXPECT_NE(full.text.find("foreign key"), std::string::npos);
  EXPECT_NE(full.text.find("values :"), std::string::npos);

  PromptOptions none = all;
  none.include_column_types = false;
  none.include_keys = false;
  none.include_representative_values = false;
  none.include_comments = false;
  PromptBuilder without(nullptr, none);
  auto bare = without.Build(db, "question", retriever_);
  EXPECT_EQ(bare.text.find("INTEGER"), std::string::npos);
  EXPECT_EQ(bare.text.find("foreign key"), std::string::npos);
  EXPECT_EQ(bare.text.find("values :"), std::string::npos);
  EXPECT_FALSE(bare.keys_included);
  EXPECT_FALSE(bare.comments_included);
  EXPECT_LT(bare.token_count, full.token_count);
}

TEST_F(PromptTest, TruncationDropsTables) {
  PromptOptions options;
  options.use_schema_filter = false;
  options.max_prompt_tokens = 60;  // tiny budget
  PromptBuilder builder(nullptr, options);
  const auto& db = bench_->databases[0];
  auto prompt = builder.Build(db, "question", nullptr);
  EXPECT_LT(prompt.kept_tables.size(), db.schema().tables.size());
  EXPECT_LE(prompt.token_count, 80);
}

TEST_F(PromptTest, MatchedValuesAppearInPrompt) {
  const auto& db = bench_->databases[0];
  std::string value;
  db.ForEachTextValue([&value](int, int, int, const std::string& text) {
    if (value.empty() && text.size() >= 6) value = text;
  });
  ASSERT_FALSE(value.empty());
  PromptOptions options;
  options.use_schema_filter = false;
  PromptBuilder builder(nullptr, options);
  auto prompt =
      builder.Build(db, "rows mentioning '" + value + "'", retriever_);
  ASSERT_FALSE(prompt.matched_values.empty());
  EXPECT_NE(prompt.text.find("matched value"), std::string::npos);
}

TEST_F(PromptTest, TrainingPromptAlwaysKeepsGoldItems) {
  PromptOptions options;
  options.top_k1 = 2;
  options.top_k2 = 3;
  PromptBuilder builder(classifier_, options);
  Rng rng(4);
  for (size_t i = 0; i < 10 && i < bench_->train.size(); ++i) {
    const auto& s = bench_->train[i];
    const auto& db = bench_->DbOf(s);
    auto prompt =
        builder.BuildForTraining(db, s.question, s.used_items, nullptr, rng);
    for (const auto& item : s.used_items) {
      auto t = db.schema().FindTable(item.table);
      ASSERT_TRUE(t.has_value());
      EXPECT_TRUE(prompt.TableKept(*t)) << item.table;
      if (!item.column.empty()) {
        auto c = db.schema().tables[*t].FindColumn(item.column);
        ASSERT_TRUE(c.has_value());
        EXPECT_TRUE(prompt.ColumnKept(*t, *c))
            << item.table << "." << item.column;
      }
    }
  }
}

TEST_F(PromptTest, KeptLookupsConsistentWithText) {
  PromptOptions options;
  PromptBuilder builder(classifier_, options);
  const auto& db = bench_->databases[0];
  auto prompt = builder.Build(db, bench_->train[0].question, retriever_);
  for (size_t i = 0; i < prompt.kept_tables.size(); ++i) {
    int t = prompt.kept_tables[i];
    EXPECT_TRUE(prompt.TableKept(t));
    EXPECT_NE(prompt.text.find("table " + db.schema().tables[t].name),
              std::string::npos);
    for (int c : prompt.kept_columns[i]) {
      EXPECT_TRUE(prompt.ColumnKept(t, c));
    }
  }
  EXPECT_FALSE(prompt.TableKept(999));
  EXPECT_FALSE(prompt.ColumnKept(0, 999));
}

TEST(PromptTokenTest, CountsWhitespaceTokens) {
  EXPECT_EQ(CountPromptTokens("a b  c\nd"), 4);
  EXPECT_EQ(CountPromptTokens(""), 0);
}

}  // namespace
}  // namespace codes
