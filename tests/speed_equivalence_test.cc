// Equivalence suite for the hot-path speed campaign: every rewritten
// component (bit-parallel LCS, interned-term BM25, flat-hash n-gram LM)
// must be *behaviorally invisible* — byte-identical outputs, including
// the exact double values, against the pinned reference implementations
// it replaced. These tests are the contract that lets bench_latency's
// before/after numbers claim a pure speed win.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "index/bm25_index.h"
#include "index/bm25_reference.h"
#include "lm/ngram_lm.h"
#include "lm/ngram_reference.h"
#include "text/similarity.h"

namespace codes {
namespace {

// ---------------------------------------------------------------------------
// Longest common substring: bit-parallel vs reference DP.
// ---------------------------------------------------------------------------

std::string RandomString(std::mt19937& rng, size_t max_len,
                         std::string_view alphabet) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<size_t> chr_dist(0, alphabet.size() - 1);
  std::string s;
  const size_t len = len_dist(rng);
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s.push_back(alphabet[chr_dist(rng)]);
  return s;
}

TEST(LcsEquivalenceTest, HandPickedPairs) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"", ""},
      {"", "abc"},
      {"abc", ""},
      {"a", "a"},
      {"a", "b"},
      {"abcdef", "zabcy"},
      {"Sarah Martinez", "sarah martinez"},  // case folding
      {"the quick brown fox", "a quick brown dog"},
      {"aaaaaaaa", "aaaa"},
      {"abab", "baba"},
      {"Jesenik branch office", "clients of the Jesenik branch"},
      // Identical strings of every interesting length re word size.
      {std::string(63, 'x'), std::string(63, 'x')},
      {std::string(64, 'x'), std::string(64, 'x')},
      {std::string(65, 'x'), std::string(65, 'x')},
      {std::string(200, 'q') + "needle" + std::string(200, 'w'),
       std::string(150, 'e') + "needle" + std::string(10, 'r')},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(LongestCommonSubstringLength(a, b),
              LongestCommonSubstringLengthReferenceDp(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(LcsEquivalenceTest, Utf8AndNonAsciiBytes) {
  // The PR-4 tolower corpus: folding is ASCII-only, so multi-byte UTF-8
  // sequences must match byte-for-byte in both implementations.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Caf\xC3\xA9 Mayor", "caf\xC3\xA9 mayor"},
      {"Caf\xC3\xA9", "Caf\xC3\xA8"},  // é vs è share the lead byte 0xC3
      {"\xE5\x8C\x97\xE4\xBA\xAC restaurants",
       "restaurants in \xE5\x8C\x97\xE4\xBA\xAC"},            // 北京
      {"\xE5\x8C\x97\xE4\xBA\xAC", "\xE4\xBA\xAC\xE5\x8C\x97"},  // 北京 vs 京北
      {"stra\xC3\x9F" "e", "STRA\xC3\x9F" "E"},                  // straße
      {"\xFF\xFE\x00\x01", "\x00\x01\xFF"},  // arbitrary non-UTF-8 bytes
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(LongestCommonSubstringLength(a, b),
              LongestCommonSubstringLengthReferenceDp(a, b));
  }
}

TEST(LcsEquivalenceTest, RandomizedSmallAlphabet) {
  // A small alphabet forces long common runs and dense match masks.
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 400; ++iter) {
    const std::string a = RandomString(rng, 150, "abcAB ");
    const std::string b = RandomString(rng, 150, "abcAB ");
    ASSERT_EQ(LongestCommonSubstringLength(a, b),
              LongestCommonSubstringLengthReferenceDp(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(LcsEquivalenceTest, RandomizedWideAlphabet) {
  std::mt19937 rng(7);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-'.";
  for (int iter = 0; iter < 300; ++iter) {
    const std::string a = RandomString(rng, 300, alphabet);
    const std::string b = RandomString(rng, 300, alphabet);
    ASSERT_EQ(LongestCommonSubstringLength(a, b),
              LongestCommonSubstringLengthReferenceDp(a, b));
  }
}

TEST(LcsEquivalenceTest, LongInputsUseFallbackConsistently) {
  // Inputs past the bit-parallel size cap take the reference-DP fallback;
  // the seam must be invisible.
  std::mt19937 rng(99);
  const std::string a = RandomString(rng, 5000, "abcd");
  const std::string b = RandomString(rng, 120, "abcd");
  EXPECT_EQ(LongestCommonSubstringLength(a, b),
            LongestCommonSubstringLengthReferenceDp(a, b));
}

TEST(LcsEquivalenceTest, EightThreadsMatchSerial) {
  std::mt19937 rng(4242);
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<int> expected;
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(RandomString(rng, 200, "abcdefg "),
                       RandomString(rng, 200, "abcdefg "));
    expected.push_back(LongestCommonSubstringLengthReferenceDp(
        pairs.back().first, pairs.back().second));
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Every thread scores every pair: the thread_local scratch (masks,
      // generation stamps) must never leak state across calls or threads.
      for (size_t i = 0; i < pairs.size(); ++i) {
        if (LongestCommonSubstringLength(pairs[i].first, pairs[i].second) !=
            expected[i]) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

// ---------------------------------------------------------------------------
// BM25: interned flat-postings index vs pinned map-based reference.
// ---------------------------------------------------------------------------

std::vector<std::string> RandomCorpus(std::mt19937& rng, int num_docs) {
  // A vocabulary small enough that terms collide across documents (so idf
  // and tf vary) with some multi-word cell values like real DB content.
  static const std::vector<std::string> kWords = {
      "Jesenik",  "Prague",   "branch", "office",  "Sarah",   "Martinez",
      "road",     "losses",   "castle", "district","client",  "account",
      "2019",     "total",    "north",  "station", "premium", "Ostrava",
      "wine",     "exporter", "blue",   "red",     "green",   "velvet"};
  std::uniform_int_distribution<int> words_per_doc(1, 6);
  std::uniform_int_distribution<size_t> word_dist(0, kWords.size() - 1);
  std::vector<std::string> docs;
  docs.reserve(static_cast<size_t>(num_docs));
  for (int d = 0; d < num_docs; ++d) {
    std::string doc;
    const int n = words_per_doc(rng);
    for (int w = 0; w < n; ++w) {
      if (!doc.empty()) doc += ' ';
      doc += kWords[word_dist(rng)];
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<std::string> RandomQueries(std::mt19937& rng, int num) {
  static const std::vector<std::string> kQueries = {
      "clients of the Jesenik branch office",
      "total road losses in 2019",
      "Sarah Martinez premium account",
      "wine exporter near Prague castle district",
      "north station Ostrava",
      "red velvet",
      "nonexistent zebra token",
      "office office office",
  };
  std::uniform_int_distribution<size_t> q(0, kQueries.size() - 1);
  std::vector<std::string> out;
  for (int i = 0; i < num; ++i) out.push_back(kQueries[q(rng)]);
  return out;
}

void ExpectSameHits(const std::vector<Bm25Hit>& got,
                    const std::vector<Bm25Hit>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc_id, want[i].doc_id) << label << " rank " << i;
    // Byte-identical doubles, not just approximately equal: the rewrite
    // preserves the accumulation order, so == must hold.
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

TEST(Bm25EquivalenceTest, RandomCorporaMatchReferenceExactly) {
  std::mt19937 rng(123);
  for (int round = 0; round < 10; ++round) {
    const auto docs = RandomCorpus(rng, 40 + round * 17);
    Bm25Index fast;
    ReferenceBm25Index ref;
    for (const auto& d : docs) {
      fast.AddDocument(d);
      ref.AddDocument(d);
    }
    fast.Finalize();
    ref.Finalize();
    for (const auto& q : RandomQueries(rng, 12)) {
      for (int top_k : {1, 3, 10, 1000, -1}) {
        ExpectSameHits(fast.Query(q, top_k), ref.Query(q, top_k),
                       "round " + std::to_string(round) + " q=" + q +
                           " k=" + std::to_string(top_k));
      }
    }
  }
}

TEST(Bm25EquivalenceTest, IncrementalBatchesMatchReference) {
  std::mt19937 rng(55);
  const auto first = RandomCorpus(rng, 30);
  const auto second = RandomCorpus(rng, 25);
  Bm25Index fast;
  ReferenceBm25Index ref;
  for (const auto& d : first) {
    fast.AddDocument(d);
    ref.AddDocument(d);
  }
  fast.Finalize();
  ref.Finalize();
  (void)fast.Query("Prague", 5);
  for (const auto& d : second) {
    fast.AddDocument(d);
    ref.AddDocument(d);
  }
  fast.Finalize();
  ref.Finalize();
  for (const auto& q : RandomQueries(rng, 10)) {
    ExpectSameHits(fast.Query(q, 8), ref.Query(q, 8), "q=" + q);
  }
}

TEST(Bm25EquivalenceTest, TopKHeapMatchesFullSortTruncation) {
  // The bounded-heap path (large candidate set, small k) must return
  // exactly the prefix of the full sorted ranking.
  std::mt19937 rng(77);
  const auto docs = RandomCorpus(rng, 300);
  Bm25Index index;
  for (const auto& d : docs) index.AddDocument(d);
  index.Finalize();
  const std::string q = "Jesenik branch office Prague castle";
  const auto full = index.Query(q, -1);
  for (int k : {1, 2, 5, 17, 100}) {
    const auto top = index.Query(q, k);
    ASSERT_EQ(top.size(),
              std::min(full.size(), static_cast<size_t>(k)));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].doc_id, full[i].doc_id) << i;
      EXPECT_EQ(top[i].score, full[i].score) << i;
    }
  }
}

TEST(Bm25EquivalenceTest, EightThreadsMatchSerial) {
  std::mt19937 rng(31);
  const auto docs = RandomCorpus(rng, 120);
  Bm25Index index;
  for (const auto& d : docs) index.AddDocument(d);
  index.Finalize();
  const auto queries = RandomQueries(rng, 40);
  std::vector<std::vector<Bm25Hit>> serial;
  serial.reserve(queries.size());
  for (const auto& q : queries) serial.push_back(index.Query(q, 10));

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto hits = index.Query(queries[i], 10);
        if (hits.size() != serial[i].size()) {
          ++failures[t];
          continue;
        }
        for (size_t j = 0; j < hits.size(); ++j) {
          if (hits[j].doc_id != serial[i][j].doc_id ||
              hits[j].score != serial[i][j].score) {
            ++failures[t];
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

// ---------------------------------------------------------------------------
// N-gram LM: flat-hash trie vs pinned nested-map reference.
// ---------------------------------------------------------------------------

std::vector<std::string> SqlCorpus() {
  return {
      "SELECT name FROM singer WHERE age > 20",
      "SELECT count(*) FROM concert WHERE year = 2014",
      "SELECT T1.name FROM singer AS T1 JOIN concert AS T2 ON T1.id = "
      "T2.singer_id",
      "SELECT avg(age), min(age), max(age) FROM singer",
      "SELECT name, country FROM singer ORDER BY age DESC",
      "SELECT DISTINCT country FROM singer WHERE age > 20",
      "INSERT INTO stadium VALUES (1, 'Stark Arena', 20000)",
      "SELECT stadium_id, count(*) FROM concert GROUP BY stadium_id",
  };
}

std::vector<std::string> HeldOut() {
  return {
      "SELECT name FROM stadium WHERE capacity > 5000",
      "SELECT count(*) FROM singer",
      "totally out of domain text with unseen tokens xyzzy plugh",
      "",
  };
}

TEST(NgramEquivalenceTest, TrainedModelsScoreIdentically) {
  for (int order : {1, 2, 3, 5}) {
    NgramLm fast(order);
    ReferenceNgramLm ref(order);
    fast.Train(SqlCorpus());
    ref.Train(SqlCorpus());
    EXPECT_EQ(fast.VocabSize(), ref.VocabSize()) << "order " << order;
    EXPECT_EQ(fast.TokensTrained(), ref.TokensTrained()) << "order " << order;
    for (const auto& text : HeldOut()) {
      EXPECT_EQ(fast.AvgLogProb(text), ref.AvgLogProb(text))
          << "order " << order << " text=" << text;
    }
    for (const auto& text : SqlCorpus()) {
      EXPECT_EQ(fast.AvgLogProb(text), ref.AvgLogProb(text))
          << "order " << order << " text=" << text;
    }
    EXPECT_EQ(fast.Perplexity(HeldOut()), ref.Perplexity(HeldOut()))
        << "order " << order;
  }
}

TEST(NgramEquivalenceTest, ContinuedPretrainingMatches) {
  // Incremental pre-training (the Section 5 mechanism) accumulates counts
  // across Train calls and epochs; both implementations must drift the
  // same way, bit for bit.
  const std::vector<std::string> extra = {
      "SELECT product FROM sales WHERE region = 'north'",
      "SELECT region, sum(amount) FROM sales GROUP BY region",
  };
  NgramLm fast(3);
  ReferenceNgramLm ref(3);
  fast.Train(SqlCorpus());
  ref.Train(SqlCorpus());
  fast.Train(extra, /*epochs=*/3);
  ref.Train(extra, /*epochs=*/3);
  EXPECT_EQ(fast.VocabSize(), ref.VocabSize());
  EXPECT_EQ(fast.TokensTrained(), ref.TokensTrained());
  for (const auto& text : HeldOut()) {
    EXPECT_EQ(fast.AvgLogProb(text), ref.AvgLogProb(text)) << text;
  }
  EXPECT_EQ(fast.Perplexity(SqlCorpus()), ref.Perplexity(SqlCorpus()));
}

TEST(NgramEquivalenceTest, EightThreadsMatchSerial) {
  NgramLm lm(3);
  lm.Train(SqlCorpus());
  std::vector<std::string> texts = SqlCorpus();
  for (const auto& t : HeldOut()) texts.push_back(t);
  std::vector<double> serial;
  serial.reserve(texts.size());
  for (const auto& t : texts) serial.push_back(lm.AvgLogProb(t));

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Scoring is lookup-only (unseen tokens are never interned), so
      // concurrent AvgLogProb must be race-free and exact.
      for (size_t i = 0; i < texts.size(); ++i) {
        if (lm.AvgLogProb(texts[i]) != serial[i]) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace codes
