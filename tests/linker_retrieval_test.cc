#include <gtest/gtest.h>

#include "dataset/benchmark_builder.h"
#include "common/string_util.h"
#include "linker/schema_classifier.h"
#include "retrieval/demonstration_retriever.h"
#include "retrieval/value_retriever.h"
#include "text/similarity.h"

namespace codes {
namespace {

// -------------------------------------------------------------------- AUC

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, Inverted) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, TiesGiveHalfCredit) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5, 0.5}, {0, 1}), 0.5);
}

TEST(AucTest, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.9}, {1, 1}), 0.5);
}

// ------------------------------------------------------------- classifier

class ClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(77));
    classifier_ = new SchemaItemClassifier();
    SchemaItemClassifier::TrainOptions options;
    options.epochs = 4;
    classifier_->Train(*bench_, options);
  }
  static void TearDownTestSuite() {
    delete classifier_;
    delete bench_;
  }
  static Text2SqlBenchmark* bench_;
  static SchemaItemClassifier* classifier_;
};
Text2SqlBenchmark* ClassifierTest::bench_ = nullptr;
SchemaItemClassifier* ClassifierTest::classifier_ = nullptr;

TEST_F(ClassifierTest, AucAboveChance) {
  auto [table_auc, column_auc] =
      EvaluateClassifierAuc(*classifier_, *bench_, false);
  EXPECT_GT(table_auc, 0.8);
  EXPECT_GT(column_auc, 0.85);
}

TEST_F(ClassifierTest, ScoresAreProbabilities) {
  const auto& s = bench_->dev[0];
  const auto& db = bench_->DbOf(s);
  for (size_t t = 0; t < db.schema().tables.size(); ++t) {
    for (size_t c = 0; c < db.schema().tables[t].columns.size(); ++c) {
      double score = classifier_->ScoreColumn(s.question, db,
                                              static_cast<int>(t),
                                              static_cast<int>(c));
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
}

TEST_F(ClassifierTest, MentionedColumnOutscoresRandom) {
  // For dev samples, gold columns should on average outscore non-gold.
  double gold_sum = 0, other_sum = 0;
  int gold_n = 0, other_n = 0;
  for (size_t i = 0; i < 10 && i < bench_->dev.size(); ++i) {
    const auto& s = bench_->dev[i];
    const auto& db = bench_->DbOf(s);
    for (size_t t = 0; t < db.schema().tables.size(); ++t) {
      for (size_t c = 0; c < db.schema().tables[t].columns.size(); ++c) {
        bool is_gold = false;
        for (const auto& item : s.used_items) {
          if (codes::ToLower(item.table) == codes::ToLower(db.schema().tables[t].name) &&
              codes::ToLower(item.column) ==
                  codes::ToLower(db.schema().tables[t].columns[c].name)) {
            is_gold = true;
          }
        }
        double score = classifier_->ScoreColumn(
            s.question, db, static_cast<int>(t), static_cast<int>(c));
        if (is_gold) {
          gold_sum += score;
          ++gold_n;
        } else {
          other_sum += score;
          ++other_n;
        }
      }
    }
  }
  ASSERT_GT(gold_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(gold_sum / gold_n, other_sum / other_n);
}

TEST(InitialsMatchTest, MatchesAbbreviatedPhrases) {
  EXPECT_TRUE(InitialsMatch("npgr", {"net", "profit", "growth", "rate"}));
  EXPECT_TRUE(
      InitialsMatch("rotl", {"the", "road", "overtime", "total", "losses"}));
  EXPECT_FALSE(InitialsMatch("npgr", {"net", "loss", "growth", "rate"}));
  EXPECT_FALSE(InitialsMatch("x", {"x", "y"}));  // too short
}

// ---------------------------------------------------------- value retriever

TEST(ValueRetrieverTest, CoarseToFineFindsQuestionValue) {
  auto bench = BuildTinySpiderLike(5);
  const auto& db = bench.databases[0];
  ValueRetriever retriever;
  retriever.BuildIndex(db);
  ASSERT_GT(retriever.NumIndexedValues(), 0u);
  // Take a real value from the database and embed it in a question.
  std::string value;
  db.ForEachTextValue([&value](int, int, int, const std::string& text) {
    if (value.empty() && text.size() >= 6) value = text;
  });
  ASSERT_FALSE(value.empty());
  auto hits = retriever.Retrieve("how many rows mention '" + value + "'?");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(codes::ToLower(hits[0].text), codes::ToLower(value));
  EXPECT_GE(hits[0].score, 0.9);
}

TEST(ValueRetrieverTest, BruteForceAgreesWithCoarseToFineOnTop1) {
  auto bench = BuildTinySpiderLike(6);
  const auto& db = bench.databases[0];
  ValueRetriever retriever;
  retriever.BuildIndex(db);
  std::string value;
  db.ForEachTextValue([&value](int, int, int, const std::string& text) {
    if (value.empty() && text.size() >= 6) value = text;
  });
  std::string question = "show the rows with " + value;
  auto fast = retriever.Retrieve(question, 200, 3);
  auto slow = retriever.RetrieveBruteForce(question, 3);
  ASSERT_FALSE(fast.empty());
  ASSERT_FALSE(slow.empty());
  EXPECT_EQ(fast[0].text, slow[0].text);
}

TEST(ValueRetrieverTest, ShortValuesRequireWholeWordMatch) {
  sql::DatabaseSchema schema;
  schema.name = "tiny";
  sql::TableDef t;
  t.name = "t";
  t.columns = {{"id", sql::DataType::kInteger, "", true},
               {"g", sql::DataType::kText, "", false}};
  schema.tables.push_back(t);
  sql::Database db(std::move(schema));
  ASSERT_TRUE(db.Insert("t", {sql::Value(int64_t{1}), sql::Value("east")}).ok());
  ValueRetriever retriever;
  retriever.BuildIndex(db);
  // "east" is a substring of "at least" but not a word of the question.
  auto miss = retriever.Retrieve("values at least 5");
  bool found = false;
  for (const auto& hit : miss) {
    if (hit.text == "east" && hit.score >= 0.85) found = true;
  }
  EXPECT_FALSE(found);
  auto hit = retriever.Retrieve("rows in the east region");
  ASSERT_FALSE(hit.empty());
  EXPECT_EQ(hit[0].text, "east");
}

TEST(ValueRetrieverTest, Utf8ValuesSurviveIndexingAndReranking) {
  // Regression: the LCS re-ranker lowercases question and value before
  // matching. A locale-aware byte-wise tolower corrupts multi-byte UTF-8,
  // so accented and CJK values either missed or came back mangled. The
  // folding is now ASCII-only and values must round-trip byte-exact.
  sql::DatabaseSchema schema;
  schema.name = "intl";
  sql::TableDef t;
  t.name = "places";
  t.columns = {{"id", sql::DataType::kInteger, "", true},
               {"name", sql::DataType::kText, "", false}};
  schema.tables.push_back(t);
  sql::Database db(std::move(schema));
  const std::string accented = "Caf\xC3\xA9 Mayor";         // Café Mayor
  const std::string cjk = "\xE5\x8C\x97\xE4\xBA\xAC\xE5\xB8\x82";  // 北京市
  ASSERT_TRUE(
      db.Insert("places", {sql::Value(int64_t{1}), sql::Value(accented)}).ok());
  ASSERT_TRUE(
      db.Insert("places", {sql::Value(int64_t{2}), sql::Value(cjk)}).ok());
  ASSERT_TRUE(db.Insert("places", {sql::Value(int64_t{3}),
                                   sql::Value("Plain Diner")})
                  .ok());
  ValueRetriever retriever;
  retriever.BuildIndex(db);

  auto accented_hits =
      retriever.Retrieve("how many people visit caf\xC3\xA9 mayor?");
  ASSERT_FALSE(accented_hits.empty());
  EXPECT_EQ(accented_hits[0].text, accented);  // byte-exact, original case
  EXPECT_GE(accented_hits[0].score, 0.9);

  auto cjk_hits = retriever.Retrieve("list stations in " + cjk);
  ASSERT_FALSE(cjk_hits.empty());
  EXPECT_EQ(cjk_hits[0].text, cjk);
  EXPECT_GE(cjk_hits[0].score, 0.9);
}

// ------------------------------------------------- demonstration retriever

TEST(DemonstrationRetrieverTest, PatternSimilarityIgnoresEntities) {
  std::vector<Text2SqlSample> pool(3);
  pool[0].question = "Show the names of members from either 'USA' or 'Canada'.";
  pool[0].sql = "SELECT name FROM member WHERE country = 'USA' OR country = 'Canada'";
  pool[1].question = "Which singer sang the most songs?";
  pool[1].sql = "SELECT name FROM singer GROUP BY name ORDER BY COUNT(*) DESC LIMIT 1";
  pool[2].question = "Count the albums.";
  pool[2].sql = "SELECT COUNT(*) FROM album";

  DemonstrationRetriever::Options options;
  DemonstrationRetriever retriever(pool, options);
  // The paper's example: a question about singers born in 1948 or 1949
  // should retrieve the "either X or Y" pattern, not the singer/song one.
  auto top = retriever.TopK(
      "Show the names of singers born in 1948 or 1949.", 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0);
}

TEST(DemonstrationRetrieverTest, WithoutPatternsEntityBiasWins) {
  std::vector<Text2SqlSample> pool(2);
  pool[0].question = "Show the names of members from either 'USA' or 'Canada'.";
  pool[0].sql = "SELECT name FROM member WHERE country = 'USA'";
  pool[1].question = "Which singer sang the most songs about singers?";
  pool[1].sql = "SELECT COUNT(*) FROM singer";

  DemonstrationRetriever::Options with;
  with.use_pattern_similarity = true;
  DemonstrationRetriever r_with(pool, with);
  DemonstrationRetriever::Options without;
  without.use_pattern_similarity = false;
  DemonstrationRetriever r_without(pool, without);

  std::string q = "Show the names of singers born in 1948 or 1949.";
  // Pattern-aware similarity for the structural match is at least as high
  // as plain question similarity.
  EXPECT_GE(r_with.Similarity(q, 0), r_without.Similarity(q, 0));
}

TEST(DemonstrationRetrieverTest, TopKBounded) {
  std::vector<Text2SqlSample> pool(2);
  pool[0].question = "a";
  pool[1].question = "b";
  DemonstrationRetriever retriever(pool, {});
  EXPECT_EQ(retriever.TopK("a", 5).size(), 2u);
}

}  // namespace
}  // namespace codes
