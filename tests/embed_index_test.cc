#include <gtest/gtest.h>

#include "embed/sentence_encoder.h"
#include "index/bm25_index.h"

namespace codes {
namespace {

// ------------------------------------------------------------------ embed

TEST(SentenceEncoderTest, VectorsAreNormalized) {
  SentenceEncoder encoder(128);
  auto v = encoder.Encode("show the names of all singers");
  double norm = 0;
  for (float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_EQ(v.size(), 128u);
}

TEST(SentenceEncoderTest, EmptyTextEncodesToZero) {
  SentenceEncoder encoder(64);
  auto v = encoder.Encode("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
  EXPECT_DOUBLE_EQ(CosineSimilarity(v, v), 0.0);
}

TEST(SentenceEncoderTest, IdenticalTextsHaveSimilarityOne) {
  SentenceEncoder encoder(256);
  auto a = encoder.Encode("how many concerts are there");
  auto b = encoder.Encode("how many concerts are there");
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-6);
}

TEST(SentenceEncoderTest, SimilarBeatsDissimilar) {
  SentenceEncoder encoder(256);
  auto query = encoder.Encode("how many singers are there");
  auto similar = encoder.Encode("how many concerts are there");
  auto dissimilar = encoder.Encode("return the lowest salary of employees");
  EXPECT_GT(CosineSimilarity(query, similar),
            CosineSimilarity(query, dissimilar));
}

TEST(SentenceEncoderTest, StemmingUnifiesInflections) {
  SentenceEncoder encoder(256);
  auto a = encoder.Encode("singer");
  auto b = encoder.Encode("singers");
  EXPECT_GT(CosineSimilarity(a, b), 0.9);
}

TEST(SentenceEncoderTest, WordOrderMattersViaBigrams) {
  SentenceEncoder encoder(256);
  auto ab = encoder.Encode("order by salary descending please kindly");
  auto ba = encoder.Encode("salary by order descending kindly please");
  // Same unigrams, different bigrams: similar but not identical.
  double sim = CosineSimilarity(ab, ba);
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 0.999);
}

TEST(SentenceEncoderTest, IdfDownweightsFrequentWords) {
  SentenceEncoder encoder(256);
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) corpus.push_back("show the data now");
  corpus.push_back("zebra");
  encoder.FitIdf(corpus);
  // "zebra" is rare -> a sentence pair sharing only "zebra" should be more
  // similar than a pair sharing only the ubiquitous "show".
  double rare = CosineSimilarity(encoder.Encode("zebra count"),
                                 encoder.Encode("zebra total"));
  double freq = CosineSimilarity(encoder.Encode("show count"),
                                 encoder.Encode("show total"));
  EXPECT_GT(rare, freq);
}

TEST(SentenceEncoderTest, MaskTokensOnlyAffectBigrams) {
  SentenceEncoder encoder(256);
  // "_" carries no unigram signal: a sentence of only masks is zero.
  auto only_masks = encoder.Encode("_ _ _");
  double norm = 0;
  for (float x : only_masks) norm += static_cast<double>(x) * x;
  EXPECT_GT(norm, 0.0);  // bigram features survive
}

TEST(CosineSimilarityTest, Orthogonal) {
  std::vector<float> a{1, 0};
  std::vector<float> b{0, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

// ------------------------------------------------------------------ BM25

TEST(Bm25Test, FindsExactValue) {
  Bm25Index index;
  index.AddDocument("Jesenik");
  index.AddDocument("Prague");
  index.AddDocument("Sarah Martinez");
  index.Finalize();
  auto hits = index.Query(
      "How many clients opened their accounts in Jesenik branch", 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(index.DocumentText(hits[0].doc_id), "Jesenik");
}

TEST(Bm25Test, RanksBetterMatchesHigher) {
  Bm25Index index;
  int good = index.AddDocument("road overtime losses");
  index.AddDocument("home wins");
  index.Finalize();
  auto hits = index.Query("how many road overtime losses were there", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, good);
}

TEST(Bm25Test, TopKLimitsResults) {
  Bm25Index index;
  for (int i = 0; i < 20; ++i) {
    index.AddDocument("city number " + std::to_string(i));
  }
  index.Finalize();
  auto hits = index.Query("city", 5);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(Bm25Test, NoMatchNoHits) {
  Bm25Index index;
  index.AddDocument("alpha");
  index.Finalize();
  EXPECT_TRUE(index.Query("zzzzqqq", 5).empty());
}

TEST(Bm25Test, CharTrigramsEnablePartialMatch) {
  Bm25Index index;
  int target = index.AddDocument("Martinez");
  index.AddDocument("Johnson");
  index.Finalize();
  // "Martine" shares trigrams with "Martinez" even without a full token.
  auto hits = index.Query("who is Martine", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, target);
}

TEST(Bm25Test, IncrementalAddScoresLikeFreshBuild) {
  // Regression: documents added after Finalize() used to score with stale
  // (or missing) idf tables. The contract is now eager: the batch that
  // mutates the index calls Finalize() before anyone queries, and an
  // incremental add + re-finalize must be indistinguishable from building
  // the whole index from scratch.
  const std::vector<std::string> initial = {"Jesenik", "Prague",
                                            "Sarah Martinez", "road losses"};
  const std::vector<std::string> added = {"Jesenik branch office",
                                          "Prague castle district"};
  const std::string question = "clients of the Jesenik branch office";

  Bm25Index incremental;
  for (const auto& doc : initial) incremental.AddDocument(doc);
  incremental.Finalize();
  // A query between batches must not pin the stale idf tables.
  (void)incremental.Query(question, 3);
  for (const auto& doc : added) incremental.AddDocument(doc);
  incremental.Finalize();
  auto incremental_hits = incremental.Query(question, 10);

  Bm25Index fresh;
  for (const auto& doc : initial) fresh.AddDocument(doc);
  for (const auto& doc : added) fresh.AddDocument(doc);
  fresh.Finalize();
  auto fresh_hits = fresh.Query(question, 10);

  ASSERT_EQ(incremental_hits.size(), fresh_hits.size());
  ASSERT_FALSE(incremental_hits.empty());
  for (size_t i = 0; i < fresh_hits.size(); ++i) {
    EXPECT_EQ(incremental_hits[i].doc_id, fresh_hits[i].doc_id) << i;
    EXPECT_DOUBLE_EQ(incremental_hits[i].score, fresh_hits[i].score) << i;
  }
  EXPECT_EQ(incremental.DocumentText(incremental_hits[0].doc_id),
            "Jesenik branch office");
}

TEST(Bm25IndexDeathTest, QueryBeforeFinalizeAborts) {
  // The eager contract: scoring an unfinalized index is a caller bug, not
  // something the hot path papers over with a lazy re-finalize branch.
  Bm25Index index;
  index.AddDocument("alpha beta");
  index.AddDocument("gamma delta");
  EXPECT_FALSE(index.finalized());
  EXPECT_DEATH((void)index.Query("alpha", 2), "finalized");
  index.Finalize();
  EXPECT_TRUE(index.finalized());
  auto hits = index.Query("alpha", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(index.DocumentText(hits[0].doc_id), "alpha beta");
}

TEST(Bm25Test, DeterministicOrderOnTies) {
  Bm25Index index;
  index.AddDocument("red apple");
  index.AddDocument("red apple");
  index.Finalize();
  auto hits = index.Query("red apple", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_LT(hits[0].doc_id, hits[1].doc_id);
}

}  // namespace
}  // namespace codes
