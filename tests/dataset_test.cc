#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/string_util.h"
#include "dataset/benchmark_builder.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "dataset/templates.h"
#include "dataset/value_pool.h"
#include "sqlengine/executor.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/parser.h"

namespace codes {
namespace {

// ----------------------------------------------------------------- domains

TEST(DomainsTest, CatalogHasAtLeastTwentyDomains) {
  EXPECT_GE(AllDomains().size(), 20u);
}

TEST(DomainsTest, EveryDomainHasValidFks) {
  for (const auto& domain : AllDomains()) {
    for (const auto& fk : domain.fks) {
      bool found_table = false, found_ref = false;
      for (const auto& table : domain.tables) {
        if (table.name == fk.table) found_table = true;
        if (table.name == fk.ref_table) found_ref = true;
      }
      EXPECT_TRUE(found_table) << domain.name << ": " << fk.table;
      EXPECT_TRUE(found_ref) << domain.name << ": " << fk.ref_table;
    }
  }
}

TEST(DomainsTest, FindDomainLocatesSpecials) {
  EXPECT_NE(FindDomain("concerts"), nullptr);
  EXPECT_NE(FindDomain("bank_financials"), nullptr);
  EXPECT_NE(FindDomain("aminer_simplified"), nullptr);
  EXPECT_EQ(FindDomain("nonexistent"), nullptr);
}

TEST(DomainsTest, FirstColumnIsAlwaysSequentialId) {
  for (const auto& domain : AllDomains()) {
    for (const auto& table : domain.tables) {
      ASSERT_FALSE(table.columns.empty());
      EXPECT_EQ(table.columns[0].kind, ValueKind::kSequentialId)
          << domain.name << "." << table.name;
    }
  }
}

// -------------------------------------------------------------- value pool

TEST(ValuePoolTest, KindsMatchDeclaredTypes) {
  Rng rng(1);
  for (ValueKind kind :
       {ValueKind::kPersonName, ValueKind::kYear, ValueKind::kMoney,
        ValueKind::kGender, ValueKind::kDate, ValueKind::kRate}) {
    sql::Value v = DrawValue(kind, 0, rng);
    switch (TypeOfKind(kind)) {
      case sql::DataType::kInteger:
        EXPECT_TRUE(v.is_integer());
        break;
      case sql::DataType::kReal:
        EXPECT_TRUE(v.is_real());
        break;
      case sql::DataType::kText:
        EXPECT_TRUE(v.is_text());
        break;
    }
  }
}

TEST(ValuePoolTest, SequentialIdsFollowRowIndex) {
  Rng rng(2);
  EXPECT_EQ(DrawValue(ValueKind::kSequentialId, 4, rng).AsInteger(), 5);
}

TEST(ValuePoolTest, DatesAreIsoFormatted) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string d = DrawValue(ValueKind::kDate, i, rng).AsText();
    ASSERT_EQ(d.size(), 10u);
    EXPECT_EQ(d[4], '-');
    EXPECT_EQ(d[7], '-');
  }
}

// ------------------------------------------------------------ db generator

TEST(DbGeneratorTest, SpiderProfileKeepsFullNames) {
  Rng rng(4);
  auto db = GenerateDatabase(AllDomains()[0], DbProfile::Spider(), rng);
  EXPECT_TRUE(db.schema().FindTable("singer").has_value());
  auto t = db.schema().FindTable("singer");
  EXPECT_TRUE(db.schema().tables[*t].FindColumn("country").has_value());
  EXPECT_GT(db.TotalRows(), 0u);
}

TEST(DbGeneratorTest, BirdProfileAbbreviatesWithComments) {
  Rng rng(5);
  auto db = GenerateDatabase(AllDomains()[0], DbProfile::Bird(), rng);
  auto t = db.schema().FindTable("concert");
  ASSERT_TRUE(t.has_value());
  const auto& table = db.schema().tables[*t];
  // "concert_title" abbreviates to "ct" and keeps the phrase in a comment.
  auto ct = table.FindColumn("ct");
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(table.columns[*ct].comment, "concert title");
  // Filler columns widen the table.
  EXPECT_GT(table.columns.size(), 6u);
}

TEST(DbGeneratorTest, AbbreviationRules) {
  EXPECT_EQ(AbbreviateIdentifier("road_overtime_losses"), "rol");
  EXPECT_EQ(AbbreviateIdentifier("salary"), "sala");
}

TEST(DbGeneratorTest, ForeignKeysReferenceValidParents) {
  Rng rng(6);
  auto db = GenerateDatabase(AllDomains()[2], DbProfile::Spider(), rng);
  for (const auto& fk : db.schema().foreign_keys) {
    auto ct = db.schema().FindTable(fk.table);
    auto pt = db.schema().FindTable(fk.ref_table);
    ASSERT_TRUE(ct && pt);
    auto cc = db.schema().tables[*ct].FindColumn(fk.column);
    ASSERT_TRUE(cc.has_value());
    size_t parent_rows = db.TableAt(*pt).rows.size();
    for (const auto& row : db.TableAt(*ct).rows) {
      if (row[*cc].is_null()) continue;
      int64_t ref = row[*cc].AsInteger();
      EXPECT_GE(ref, 1);
      EXPECT_LE(ref, static_cast<int64_t>(parent_rows));
    }
  }
}

TEST(DbGeneratorTest, RegenerateContentsPreservesSchema) {
  Rng rng(7);
  auto db = GenerateDatabase(AllDomains()[1], DbProfile::Spider(), rng);
  Rng rng2(8);
  auto fresh = RegenerateContents(db, AllDomains()[1], DbProfile::Spider(),
                                  rng2);
  EXPECT_EQ(fresh.schema().tables.size(), db.schema().tables.size());
  for (size_t t = 0; t < db.schema().tables.size(); ++t) {
    EXPECT_EQ(fresh.schema().tables[t].name, db.schema().tables[t].name);
    EXPECT_EQ(fresh.schema().tables[t].columns.size(),
              db.schema().tables[t].columns.size());
  }
  EXPECT_GT(fresh.TotalRows(), 0u);
}

TEST(DbGeneratorTest, Deterministic) {
  Rng a(9), b(9);
  auto da = GenerateDatabase(AllDomains()[0], DbProfile::Spider(), a);
  auto db = GenerateDatabase(AllDomains()[0], DbProfile::Spider(), b);
  EXPECT_EQ(da.TotalRows(), db.TotalRows());
  EXPECT_EQ(da.TableAt(0).rows[0][1].ToString(),
            db.TableAt(0).rows[0][1].ToString());
}

// --------------------------------------------------------------- templates

TEST(TemplatesTest, LibraryHasAtLeast75Templates) {
  EXPECT_GE(GlobalTemplates().size(), 75);
}

TEST(TemplatesTest, EveryTemplateInstantiatesAndExecutes) {
  Rng rng(10);
  const auto& lib = GlobalTemplates();
  // Across the full domain catalog every template must fire somewhere,
  // always producing executable SQL that re-identifies to itself.
  std::set<int> fired;
  for (size_t d = 0; d < AllDomains().size(); ++d) {
    Rng db_rng = rng.Fork();
    auto db = GenerateDatabase(AllDomains()[d], DbProfile::Spider(), db_rng);
    for (int id = 0; id < lib.size(); ++id) {
      auto inst = lib.Instantiate(id, db, rng);
      if (!inst.has_value()) continue;
      fired.insert(id);
      EXPECT_TRUE(sql::IsExecutable(db, inst->sql_text)) << inst->sql_text;
      EXPECT_EQ(lib.IdentifyTemplate(inst->sql_text), id) << inst->sql_text;
      EXPECT_FALSE(inst->question.empty());
      EXPECT_FALSE(inst->used_items.empty());
    }
  }
  EXPECT_EQ(static_cast<int>(fired.size()), lib.size());
}

TEST(TemplatesTest, IdentifyRejectsUnknownShapes) {
  EXPECT_EQ(GlobalTemplates().IdentifyTemplate("not sql"), -1);
}

TEST(TemplatesTest, SkeletonsExist) {
  const auto& lib = GlobalTemplates();
  for (int id = 0; id < lib.size(); ++id) {
    EXPECT_FALSE(lib.QuestionSkeleton(id).empty());
    EXPECT_FALSE(lib.name(id).empty());
  }
}

TEST(TemplatesTest, GuidanceRestrictsTableChoice) {
  Rng rng(11);
  auto db = GenerateDatabase(AllDomains()[0], DbProfile::Spider(), rng);
  // Force the "concert" table via guidance.
  auto target = db.schema().FindTable("concert");
  ASSERT_TRUE(target.has_value());
  SlotGuidance guidance;
  guidance.table_score = [&](int t) { return t == *target ? 1.0 : -100.0; };
  const auto& lib = GlobalTemplates();
  int count_all = -1;
  for (int id = 0; id < lib.size(); ++id) {
    if (lib.name(id) == "count_all") count_all = id;
  }
  ASSERT_GE(count_all, 0);
  auto inst = lib.Instantiate(count_all, db, rng, &guidance);
  ASSERT_TRUE(inst.has_value());
  EXPECT_NE(inst->sql_text.find("FROM concert"), std::string::npos);
}

TEST(TemplatesTest, GuidedModeNeverInventsValues) {
  // With guidance present but no value sources, value-dependent templates
  // must fail rather than peek at database cells.
  Rng rng(12);
  auto db = GenerateDatabase(AllDomains()[0], DbProfile::Spider(), rng);
  SlotGuidance guidance;  // no filter_value / representative_value
  const auto& lib = GlobalTemplates();
  for (int id = 0; id < lib.size(); ++id) {
    if (lib.name(id) != "where_eq_text") continue;
    auto inst = lib.Instantiate(id, db, rng, &guidance);
    EXPECT_FALSE(inst.has_value());
  }
}

// ----------------------------------------------------- fingerprint property

TEST(FingerprintTest, StableUnderReparse) {
  Rng rng(13);
  auto db = GenerateDatabase(AllDomains()[3], DbProfile::Spider(), rng);
  const auto& lib = GlobalTemplates();
  for (int i = 0; i < 30; ++i) {
    auto inst = lib.InstantiateRandom(db, rng);
    ASSERT_TRUE(inst.has_value());
    auto stmt = sql::ParseSql(inst->sql_text);
    ASSERT_TRUE(stmt.ok());
    auto reparsed = sql::ParseSql((*stmt)->ToSql());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(sql::FingerprintOf(**stmt).ToKey(),
              sql::FingerprintOf(**reparsed).ToKey());
  }
}

// --------------------------------------------------------------- benchmark

TEST(BenchmarkBuilderTest, TrainDevDomainsAreDisjoint) {
  auto bench = BuildTinySpiderLike(14);
  std::set<int> train_dbs, dev_dbs;
  for (const auto& s : bench.train) train_dbs.insert(s.db_index);
  for (const auto& s : bench.dev) dev_dbs.insert(s.db_index);
  for (int db : train_dbs) EXPECT_EQ(dev_dbs.count(db), 0u);
  EXPECT_FALSE(train_dbs.empty());
  EXPECT_FALSE(dev_dbs.empty());
}

TEST(BenchmarkBuilderTest, AllGoldSqlExecutes) {
  auto bench = BuildTinySpiderLike(15);
  for (const auto& s : bench.train) {
    EXPECT_TRUE(sql::IsExecutable(bench.DbOf(s), s.sql)) << s.sql;
  }
  for (const auto& s : bench.dev) {
    EXPECT_TRUE(sql::IsExecutable(bench.DbOf(s), s.sql)) << s.sql;
  }
}

TEST(BenchmarkBuilderTest, BirdSamplesCarryExternalKnowledge) {
  auto bird = BuildBirdLike(16);
  int with_ek = 0;
  for (const auto& s : bird.dev) {
    if (!s.external_knowledge.empty()) ++with_ek;
  }
  EXPECT_GT(with_ek, static_cast<int>(bird.dev.size()) / 3);
}

TEST(BenchmarkBuilderTest, BirdHidesSomeComments) {
  auto bird = BuildBirdLike(17);
  int hidden = 0, total = 0;
  for (const auto& table : bird.databases[0].schema().tables) {
    for (const auto& col : table.columns) {
      if (col.is_primary_key) continue;
      ++total;
      if (col.comment.empty()) ++hidden;
    }
  }
  EXPECT_GT(hidden, 0);
  EXPECT_LT(hidden, total);
}

TEST(BenchmarkBuilderTest, DomainNamesTrackDatabases) {
  auto bench = BuildTinySpiderLike(18);
  ASSERT_EQ(bench.domain_names.size(), bench.databases.size());
  for (const auto& name : bench.domain_names) {
    EXPECT_NE(FindDomain(name), nullptr);
  }
}

TEST(BenchmarkBuilderTest, UsedItemsResolveAgainstSchema) {
  auto bench = BuildTinySpiderLike(19);
  for (const auto& s : bench.dev) {
    const auto& db = bench.DbOf(s);
    for (const auto& item : s.used_items) {
      auto t = db.schema().FindTable(item.table);
      ASSERT_TRUE(t.has_value()) << item.table;
      if (!item.column.empty()) {
        EXPECT_TRUE(db.schema().tables[*t].FindColumn(item.column))
            << item.table << "." << item.column;
      }
    }
  }
}

}  // namespace
}  // namespace codes
