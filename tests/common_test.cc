#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace codes {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StringUtilTest, CaseConversionLeavesUtf8BytesUntouched) {
  // Folding is ASCII-only by construction: bytes >= 0x80 (UTF-8
  // continuation and lead bytes) pass through byte-exact. A locale-aware
  // tolower would corrupt them — the regression this test pins is the LCS
  // re-ranker mangling accented and CJK values.
  EXPECT_EQ(ToLower("Caf\xC3\xA9 MAYOR"), "caf\xC3\xA9 mayor");
  EXPECT_EQ(ToUpper("caf\xC3\xA9 mayor"), "CAF\xC3\xA9 MAYOR");
  // Accented capitals are NOT folded (ASCII-only contract), just preserved:
  // É is 0xC3 0x89 and both bytes stay put while ASCII letters fold.
  EXPECT_EQ(ToLower("\xC3\x89" "COLE"), "\xC3\x89" "cole");
  // CJK text round-trips byte-exact.
  const std::string cjk = "\xE5\x8C\x97\xE4\xBA\xAC";  // 北京
  EXPECT_EQ(ToLower("City " + cjk), "city " + cjk);
  EXPECT_EQ(ToUpper("city " + cjk), "CITY " + cjk);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  one\t two\nthree ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("x{c}y{c}", "{c}", "name"), "xnameyname");
  EXPECT_EQ(ReplaceAll("abc", "", "z"), "abc");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_TRUE(ContainsIgnoreCase("the Bank of Tests", "bank"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, IdentifierToPhrase) {
  EXPECT_EQ(IdentifierToPhrase("stu_id"), "stu id");
  EXPECT_EQ(IdentifierToPhrase("StudentName"), "student name");
  EXPECT_EQ(IdentifierToPhrase("avg_salary_usd"), "avg salary usd");
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(4);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Fork();
  // Child stream differs from parent continuation.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.1);
}

}  // namespace
}  // namespace codes
