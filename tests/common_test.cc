#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace codes {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StringUtilTest, CaseConversionLeavesUtf8BytesUntouched) {
  // Folding is ASCII-only by construction: bytes >= 0x80 (UTF-8
  // continuation and lead bytes) pass through byte-exact. A locale-aware
  // tolower would corrupt them — the regression this test pins is the LCS
  // re-ranker mangling accented and CJK values.
  EXPECT_EQ(ToLower("Caf\xC3\xA9 MAYOR"), "caf\xC3\xA9 mayor");
  EXPECT_EQ(ToUpper("caf\xC3\xA9 mayor"), "CAF\xC3\xA9 MAYOR");
  // Accented capitals are NOT folded (ASCII-only contract), just preserved:
  // É is 0xC3 0x89 and both bytes stay put while ASCII letters fold.
  EXPECT_EQ(ToLower("\xC3\x89" "COLE"), "\xC3\x89" "cole");
  // CJK text round-trips byte-exact.
  const std::string cjk = "\xE5\x8C\x97\xE4\xBA\xAC";  // 北京
  EXPECT_EQ(ToLower("City " + cjk), "city " + cjk);
  EXPECT_EQ(ToUpper("city " + cjk), "CITY " + cjk);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  one\t two\nthree ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("x{c}y{c}", "{c}", "name"), "xnameyname");
  EXPECT_EQ(ReplaceAll("abc", "", "z"), "abc");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_TRUE(ContainsIgnoreCase("the Bank of Tests", "bank"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, IdentifierToPhrase) {
  EXPECT_EQ(IdentifierToPhrase("stu_id"), "stu id");
  EXPECT_EQ(IdentifierToPhrase("StudentName"), "student name");
  EXPECT_EQ(IdentifierToPhrase("avg_salary_usd"), "avg salary usd");
}

TEST(StringUtilTest, IsValidUtf8AcceptsWellFormedSequences) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("plain ascii question?"));
  EXPECT_TRUE(IsValidUtf8("caf\xC3\xA9"));                  // U+00E9
  EXPECT_TRUE(IsValidUtf8("\xE6\xAD\x8C\xE6\x89\x8B"));     // CJK, 3-byte
  EXPECT_TRUE(IsValidUtf8("\xF0\x9F\x8E\xB5"));             // U+1F3B5, 4-byte
  EXPECT_TRUE(IsValidUtf8("\xEF\xBF\xBD"));                 // U+FFFD itself
}

TEST(StringUtilTest, IsValidUtf8RejectsIllFormedSequences) {
  EXPECT_FALSE(IsValidUtf8("\x80")) << "stray continuation byte";
  EXPECT_FALSE(IsValidUtf8("abc\xBFxyz")) << "stray continuation byte";
  EXPECT_FALSE(IsValidUtf8("\xC3")) << "truncated 2-byte sequence";
  EXPECT_FALSE(IsValidUtf8("\xE6\xAD")) << "truncated 3-byte sequence";
  EXPECT_FALSE(IsValidUtf8("\xF0\x9F\x8E")) << "truncated 4-byte sequence";
  EXPECT_FALSE(IsValidUtf8("\xC0\xAF")) << "overlong 2-byte encoding of /";
  EXPECT_FALSE(IsValidUtf8("\xC1\xBF")) << "0xC1 lead is always overlong";
  EXPECT_FALSE(IsValidUtf8("\xE0\x80\xAF")) << "overlong 3-byte encoding";
  EXPECT_FALSE(IsValidUtf8("\xF0\x80\x80\xAF")) << "overlong 4-byte";
  EXPECT_FALSE(IsValidUtf8("\xED\xA0\x80")) << "UTF-16 surrogate U+D800";
  EXPECT_FALSE(IsValidUtf8("\xF4\x90\x80\x80")) << "past U+10FFFF";
  EXPECT_FALSE(IsValidUtf8("\xF5\x80\x80\x80")) << "invalid lead 0xF5";
  EXPECT_FALSE(IsValidUtf8("\xC3\x28")) << "non-continuation second byte";
}

TEST(StringUtilTest, RepairUtf8IsIdentityOnValidInput) {
  EXPECT_EQ(RepairUtf8(""), "");
  EXPECT_EQ(RepairUtf8("plain"), "plain");
  EXPECT_EQ(RepairUtf8("caf\xC3\xA9"), "caf\xC3\xA9");
}

TEST(StringUtilTest, RepairUtf8ReplacesEachBadByteDeterministically) {
  // One U+FFFD per ill-formed byte, never a merged or dropped run: the
  // repaired length is a pure function of the input.
  const std::string r = "\xEF\xBF\xBD";
  EXPECT_EQ(RepairUtf8("\x80"), r);
  EXPECT_EQ(RepairUtf8("a\xC3z"), "a" + r + "z") << "truncated mid-string";
  EXPECT_EQ(RepairUtf8("\xC3"), r) << "truncated at end";
  EXPECT_EQ(RepairUtf8("\xC0\xAF"), r + r) << "overlong: both bytes bad";
  EXPECT_EQ(RepairUtf8("\xED\xA0\x80"), r + r + r) << "surrogate";
  EXPECT_EQ(RepairUtf8("ok \xF0\x9F\x8E"), "ok " + r + r + r)
      << "truncated 4-byte tail";
  // Valid sequences around the damage pass through byte-exact.
  EXPECT_EQ(RepairUtf8("\xE6\xAD\x8C\xFF\xE6\x89\x8B"),
            "\xE6\xAD\x8C" + r + "\xE6\x89\x8B");
  // Idempotent: repairing repaired text changes nothing.
  std::string once = RepairUtf8("q\xC1\xBF\xF5 end");
  EXPECT_EQ(RepairUtf8(once), once);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(4);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Fork();
  // Child stream differs from parent continuation.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.1);
}

}  // namespace
}  // namespace codes
