#include <gtest/gtest.h>

#include "corpus/pretrain_corpus.h"
#include "lm/ngram_lm.h"

namespace codes {
namespace {

TEST(NgramLmTest, TrainsAndScores) {
  NgramLm lm(3);
  lm.Train({"SELECT name FROM singer", "SELECT age FROM singer"});
  EXPECT_GT(lm.VocabSize(), 0u);
  EXPECT_GT(lm.TokensTrained(), 0u);
  double in_domain = lm.AvgLogProb("SELECT name FROM singer");
  double out_domain = lm.AvgLogProb("zebra quux flibber");
  EXPECT_GT(in_domain, out_domain);
}

TEST(NgramLmTest, PerplexityDropsWithTraining) {
  std::vector<std::string> sql = BuildSqlEvalSet(50, 3);
  NgramLm untrained(3);
  untrained.Train({"int main() { return 0; }"});
  NgramLm trained(3);
  trained.Train(sql);
  std::vector<std::string> held_out = BuildSqlEvalSet(20, 77);
  EXPECT_LT(trained.Perplexity(held_out), untrained.Perplexity(held_out));
}

TEST(NgramLmTest, IncrementalTrainingShiftsDistribution) {
  auto base_corpus = BuildBaseCodeCorpus(400, 5);
  auto sql_corpus = BuildSqlEvalSet(200, 6);
  auto held_out = BuildSqlEvalSet(50, 7);

  NgramLm base(3);
  base.Train(base_corpus);
  double before = base.Perplexity(held_out);

  NgramLm continued(base);  // start from the base counts
  continued.Train(sql_corpus, /*epochs=*/2);
  double after = continued.Perplexity(held_out);
  // The Section 5 effect: incremental pre-training on SQL-heavy data
  // reduces SQL perplexity substantially.
  EXPECT_LT(after, before * 0.7);
}

TEST(NgramLmTest, EpochsMultiplyCounts) {
  NgramLm one(2);
  one.Train({"a b c"}, 1);
  NgramLm three(2);
  three.Train({"a b c"}, 3);
  EXPECT_EQ(three.TokensTrained(), 3 * one.TokensTrained());
}

TEST(NgramLmTest, EmptyTextScoresZero) {
  NgramLm lm(3);
  lm.Train({"a b"});
  EXPECT_DOUBLE_EQ(lm.AvgLogProb(""), 0.0);
}

TEST(NgramLmTest, HigherOrderHelpsOnRepetitiveData) {
  std::vector<std::string> docs;
  for (int i = 0; i < 30; ++i) docs.push_back("SELECT a FROM t WHERE b = 1");
  NgramLm bigram(2);
  bigram.Train(docs);
  NgramLm five(5);
  five.Train(docs);
  EXPECT_LE(five.Perplexity(docs), bigram.Perplexity(docs));
}

TEST(CorpusTest, SlicesKeepPaperRatio) {
  CorpusSlices slices = BuildPretrainCorpus(1, 9);
  // 11 : 4.5 : 6 GB in the paper -> 1100 : 450 : 600 documents per scale.
  EXPECT_EQ(slices.sql_related.size(), 1100u);
  EXPECT_EQ(slices.nl_related.size(), 450u);
  EXPECT_EQ(slices.nl_to_code.size(), 600u);
}

TEST(CorpusTest, SqlSliceIsSql) {
  CorpusSlices slices = BuildPretrainCorpus(1, 9);
  int select_count = 0;
  for (size_t i = 0; i < 50; ++i) {
    if (slices.sql_related[i].find("SELECT") != std::string::npos) {
      ++select_count;
    }
  }
  EXPECT_GE(select_count, 48);
}

TEST(CorpusTest, BaseCorpusIsMostlyNotSql) {
  auto docs = BuildBaseCodeCorpus(500, 11);
  int sql_docs = 0;
  for (const auto& doc : docs) {
    if (doc.find("SELECT") == 0) ++sql_docs;
  }
  // ~8% of the base mixture is SQL.
  EXPECT_LT(sql_docs, 100);
  EXPECT_GT(sql_docs, 5);
}

TEST(CorpusTest, Deterministic) {
  auto a = BuildBaseCodeCorpus(50, 123);
  auto b = BuildBaseCodeCorpus(50, 123);
  EXPECT_EQ(a, b);
  auto c = BuildBaseCodeCorpus(50, 124);
  EXPECT_NE(a, c);
}

TEST(CorpusTest, NlToCodeContainsPairedComments) {
  CorpusSlices slices = BuildPretrainCorpus(1, 9);
  int paired = 0;
  for (size_t i = 0; i < 40; ++i) {
    const auto& doc = slices.nl_to_code[i];
    if (doc.rfind("--", 0) == 0 || doc.rfind("#", 0) == 0) ++paired;
  }
  EXPECT_EQ(paired, 40);
}

}  // namespace
}  // namespace codes
