// Concurrency stress for the buffer pool, designed to run under TSan (the
// CI TSan leg matches this suite by name): many reader threads share a
// pool with far fewer frames than hot pages, forcing constant eviction
// while pages are pinned and unpinned around them. Invariants checked:
// every row read is byte-correct despite churn, pin counts return to zero,
// and dirty pages written before the churn are never lost.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <chrono>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "sqlengine/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/table_heap.h"

namespace codes::storage {
namespace {

using sql::Value;

constexpr int kRows = 2000;
constexpr int kThreads = 8;

TEST(BufferPoolStressTest, ConcurrentScansUnderEvictionPressure) {
  auto disk = DiskManager::CreateInMemory();
  BufferPool pool(disk.get(), 4);  // far fewer frames than heap pages
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row = {Value(static_cast<int64_t>(i)),
                              Value("payload-" + std::to_string(i))};
    ASSERT_TRUE(heap->Append(row).ok());
  }
  ASSERT_GT(disk->page_count(), 4u) << "need more pages than frames";

  std::atomic<int> errors{0};
  auto reader = [&](int offset) {
    // Full sequential scan per thread so the hot set never fits in the
    // pool. Eight scanners each hold one pin against four frames, so a
    // scan can die of transient pin exhaustion — the documented outcome,
    // not a bug (see ConcurrentPointFetchesReturnCorrectRows): restart it.
    // Only wrong bytes or a non-exhaustion error count against the test.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      auto cursor = heap->Scan();
      sql::Row row;
      int expect = 0;
      while (cursor->Next(&row)) {
        if (row.size() != 2 || row[0].AsInteger() != expect ||
            row[1].AsText() != "payload-" + std::to_string(expect)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        ++expect;
      }
      if (cursor->status().code() == StatusCode::kResourceExhausted) {
        // All frames momentarily pinned by sibling scans. Back off before
        // restarting: eight spinning scanners against four frames can
        // otherwise livelock each other indefinitely.
        std::this_thread::sleep_for(
            std::chrono::microseconds(20 * (attempt % 8 + 1)));
        continue;
      }
      if (!cursor->status().ok() || expect != kRows) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      (void)offset;
      return;
    }
    errors.fetch_add(1, std::memory_order_relaxed);  // never completed
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(reader, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_GT(pool.eviction_count(), 0u) << "stress never evicted";
}

TEST(BufferPoolStressTest, ConcurrentPointFetchesReturnCorrectRows) {
  auto disk = DiskManager::CreateInMemory();
  BufferPool pool(disk.get(), 2);  // integer rows pack densely: few pages
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  rids.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row = {Value(static_cast<int64_t>(i))};
    auto rid = heap->Append(row);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }

  std::atomic<int> errors{0};
  ThreadPool tp(kThreads);
  tp.ParallelFor(static_cast<size_t>(kRows * 4), [&](size_t begin,
                                                     size_t end) {
    for (size_t i = begin; i < end; ++i) {
      size_t target = (i * 2654435761u) % static_cast<size_t>(kRows);
      std::vector<Value> fetched;
      Status s;
      // With more concurrent pins than frames, transient pin exhaustion is
      // the documented outcome, not a bug — retry until a frame frees up.
      do {
        fetched.clear();
        s = heap->Fetch(rids[target], &fetched);
      } while (s.code() == StatusCode::kResourceExhausted);
      if (!s.ok() || fetched.size() != 1 ||
          fetched[0].AsInteger() != static_cast<int64_t>(target)) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_GT(pool.eviction_count(), 0u);
  EXPECT_GT(pool.hit_count(), 0u);
}

TEST(BufferPoolStressTest, DirtyPagesSurviveConcurrentEvictionChurn) {
  auto disk = DiskManager::CreateInMemory();
  constexpr PageId kPages = 32;
  for (PageId i = 0; i < kPages; ++i) ASSERT_TRUE(disk->Allocate().ok());
  BufferPool pool(disk.get(), 3);

  // Writers mark distinct pages dirty; readers churn the pool so the
  // dirty pages are repeatedly evicted (written back) and refetched.
  // Page assignment is parity-disjoint (thread 0 even pages, thread 1 odd)
  // so no two threads ever stamp the same page — concurrent same-page
  // writes through separate pins would be a data race in the test itself,
  // not the pool.
  std::atomic<int> errors{0};
  auto worker = [&](int id) {
    for (int round = 0; round < 50; ++round) {
      PageId mine = static_cast<PageId>((round * 2 + id) % kPages);
      {
        auto g = pool.Fetch(mine);
        if (!g.ok()) {
          // Two threads each hold at most one pin, and the pool has three
          // frames, so pin exhaustion here is a real bug.
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        std::byte stamp{static_cast<unsigned char>(1 + (mine % 250))};
        g->data()[64] = stamp;
        g->MarkDirty();
      }
      // Churn: touch other pages to push `mine` out.
      for (PageId p = 0; p < 6; ++p) {
        auto g = pool.Fetch(static_cast<PageId>((mine + 1 + p) % kPages));
        (void)g;
      }
      {
        auto g = pool.Fetch(mine);
        if (!g.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        std::byte want{static_cast<unsigned char>(1 + (mine % 250))};
        if (g->data()[64] != want) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());
  // After flush, every stamped page must hold its stamp on disk.
  std::byte page[kPageSize];
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_TRUE(disk->ReadPage(p, page).ok());
    std::byte b = page[64];
    std::byte want{static_cast<unsigned char>(1 + (p % 250))};
    EXPECT_TRUE(b == std::byte{0} || b == want)
        << "page " << p << " holds a torn stamp";
  }
}

}  // namespace
}  // namespace codes::storage
