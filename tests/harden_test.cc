// Tier-1 coverage for adversarial serving (DESIGN.md section 17): the
// request-hardening front door (UTF-8 repair, byte cap, control strip,
// zero-width/confusable canonicalization, anomaly scoring), the suspect
// brownout floor, the canonical-question retry inside PredictGuarded,
// the serve.adv.* partition invariant, and the adversarial load-campaign
// determinism contract.

#include <gtest/gtest.h>

#include <string>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/perturb.h"
#include "serve/brownout.h"
#include "serve/front_end.h"
#include "serve/harden.h"
#include "serve/load_gen.h"

namespace codes {
namespace serve {
namespace {

// --------------------------------------------------------- HardenQuestion

TEST(HardenQuestionTest, CleanAsciiPassesThroughByteIdentical) {
  HardenOptions options;
  const std::string q = "How many singers do we have?";
  HardenResult r = HardenQuestion(q, options);
  EXPECT_EQ(r.sanitized, q);
  EXPECT_EQ(r.canonical, q);
  EXPECT_EQ(r.flags, 0u);
  EXPECT_FALSE(r.suspect);
  EXPECT_LT(r.anomaly, options.anomaly_threshold);
}

TEST(HardenQuestionTest, DisabledIsVerbatimEvenOnGarbage) {
  HardenOptions options;
  options.enabled = false;
  const std::string q = "\x01 bad \xC3 bytes \x7F";
  HardenResult r = HardenQuestion(q, options);
  EXPECT_EQ(r.sanitized, q);
  EXPECT_EQ(r.canonical, q);
  EXPECT_FALSE(r.suspect);
}

TEST(HardenQuestionTest, RepairsIllFormedUtf8AndFlagsSuspect) {
  HardenOptions options;
  HardenResult r = HardenQuestion("list\xC3 all", options);
  EXPECT_EQ(r.sanitized, "list\xEF\xBF\xBD all");
  EXPECT_TRUE(r.flags & kHardenRepairedUtf8);
  EXPECT_TRUE(r.suspect);
}

TEST(HardenQuestionTest, ControlCharactersStripAndWhitespaceNormalizes) {
  HardenOptions options;
  HardenResult r = HardenQuestion("\x01list\x07 all\tsingers\n", options);
  // C0/DEL dropped; tab and newline become plain spaces.
  EXPECT_EQ(r.sanitized, "list all singers ");
  EXPECT_TRUE(r.flags & kHardenStrippedControl);
  EXPECT_TRUE(r.suspect);
  // The canonical tier additionally trims/collapses the whitespace.
  EXPECT_EQ(r.canonical, "list all singers");
}

TEST(HardenQuestionTest, ByteCapTruncatesAtCodePointBoundary) {
  HardenOptions options;
  options.max_question_bytes = 10;
  // 9 ASCII bytes then a 2-byte é: the cap at 10 would cut mid-sequence,
  // so truncation backs up to the last complete code point.
  HardenResult r = HardenQuestion("abcdefghi\xC3\xA9", options);
  EXPECT_EQ(r.sanitized, "abcdefghi");
  EXPECT_TRUE(r.flags & kHardenTruncated);
  EXPECT_TRUE(r.suspect);

  // At or under the cap nothing happens.
  HardenResult fits = HardenQuestion("abcdefgh\xC3\xA9", options);
  EXPECT_EQ(fits.sanitized, "abcdefgh\xC3\xA9");
  EXPECT_FALSE(fits.flags & kHardenTruncated);
}

TEST(HardenQuestionTest, ZeroWidthAndConfusablesFoldToAsciiCanonical) {
  HardenOptions options;
  // NBSP between words, a zero-width space inside one, a fullwidth
  // question mark: sanitized keeps the bytes (served as-is), canonical
  // folds back to the plain ASCII question.
  const std::string q =
      "How many\xC2\xA0singers\xE2\x80\x8B are there\xEF\xBC\x9F";
  HardenResult r = HardenQuestion(q, options);
  EXPECT_EQ(r.sanitized, q);
  EXPECT_EQ(r.canonical, "How many singers are there?");
  EXPECT_TRUE(r.flags & kHardenStrippedZeroWidth);
  EXPECT_TRUE(r.flags & kHardenFoldedConfusable);
  EXPECT_TRUE(r.suspect);
}

TEST(HardenQuestionTest, CollapsedWhitespaceAloneIsNotSuspicion) {
  HardenOptions options;
  HardenResult r = HardenQuestion("how  many   singers", options);
  EXPECT_EQ(r.sanitized, "how  many   singers");
  EXPECT_EQ(r.canonical, "how many singers");
  EXPECT_EQ(r.flags, kHardenCollapsedWhitespace);
  EXPECT_FALSE(r.suspect) << "double spaces are something people type";
}

TEST(AnomalyScoreTest, SeparatesNaturalQuestionsFromFloods) {
  EXPECT_DOUBLE_EQ(AnomalyScore(""), 0.0);
  EXPECT_LT(AnomalyScore("What is the average age of all singers?"), 0.5);
  EXPECT_LT(AnomalyScore("Show each department and its head count."), 0.5);
  // Repeated-character padding and unbroken token blowups score high.
  EXPECT_GE(AnomalyScore(std::string(200, 'a')), 0.5);
  EXPECT_GE(AnomalyScore("q " + std::string(120, '!')), 0.5);
  std::string blowup = "where name = ";
  for (int i = 0; i < 40; ++i) blowup += "abcdef";
  EXPECT_GE(AnomalyScore(blowup), 0.5) << "240-byte unbroken word";
}

TEST(HardenQuestionTest, SchemaNoiseMutationRoundTripsToCanonical) {
  // The load generator's kSchemaNoise mutation is exactly the class of
  // hostile input the canonical tier undoes: harden(mutate(q)).canonical
  // must reconstruct q, which is what makes the canonical retry worth
  // spending repair budget on.
  HardenOptions options;
  Text2SqlBenchmark bench = BuildTinySpiderLike(42);
  int mutated = 0;
  for (size_t i = 0; i < bench.dev.size(); ++i) {
    const std::string& q = bench.dev[i].question;
    std::string noisy =
        MutateQuestion(q, QuestionMutation::kSchemaNoise, 1000 + i);
    if (noisy == q) continue;
    ++mutated;
    HardenResult r = HardenQuestion(noisy, options);
    EXPECT_TRUE(r.suspect) << noisy;
    EXPECT_EQ(r.canonical, q) << noisy;
  }
  EXPECT_GT(mutated, 0);

  // The structurally clean mutation kinds pass hardening untouched:
  // plain ASCII rewording never trips the front door.
  for (QuestionMutation kind : {QuestionMutation::kSynonym,
                                QuestionMutation::kTypo,
                                QuestionMutation::kParaphrase}) {
    std::string m =
        MutateQuestion(bench.dev.front().question, kind, 7);
    HardenResult r = HardenQuestion(m, options);
    EXPECT_EQ(r.sanitized, m) << QuestionMutationName(kind);
    EXPECT_FALSE(r.suspect) << QuestionMutationName(kind);
  }
}

// ----------------------------------------------- pipeline + front end glue

uint64_t CounterDelta(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

class AdversarialServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
    PipelineConfig config;
    config.size = ModelSize::k7B;
    pipeline_ = new CodesPipeline(config, zoo_->CodesFor(config.size));
    pipeline_->TrainClassifier(*bench_);
    pipeline_->FineTune(*bench_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete zoo_;
    delete bench_;
    pipeline_ = nullptr;
    zoo_ = nullptr;
    bench_ = nullptr;
  }
  void SetUp() override { MetricsRegistry::Global().Reset(); }
  void TearDown() override { Failpoints::Clear(); }

  /// A dev sample whose question carries schema noise, plus the
  /// ServeOptions a hardening front door would stamp for it.
  struct SuspectCase {
    Text2SqlSample sample;
    ServeOptions options;
  };
  static SuspectCase MakeSuspect(size_t dev_index, uint64_t seed) {
    SuspectCase c;
    c.sample = bench_->dev[dev_index];
    std::string noisy = MutateQuestion(
        c.sample.question, QuestionMutation::kSchemaNoise, seed);
    HardenResult h = HardenQuestion(noisy, HardenOptions());
    c.sample.question = h.sanitized;
    c.options.suspect = true;
    c.options.canonical_question = h.canonical;
    return c;
  }

  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
  static CodesPipeline* pipeline_;
};
Text2SqlBenchmark* AdversarialServeTest::bench_ = nullptr;
LmZoo* AdversarialServeTest::zoo_ = nullptr;
CodesPipeline* AdversarialServeTest::pipeline_ = nullptr;

TEST_F(AdversarialServeTest, MarkSuspectRaisesBrownoutFloorNeverLowers) {
  FrontEndOptions options;  // harden.suspect_floor_level = 2
  ServeFrontEnd fe(pipeline_, bench_, options);

  ServeOptions fresh;
  fe.MarkSuspect(&fresh, "canonical text");
  EXPECT_TRUE(fresh.suspect);
  EXPECT_EQ(fresh.canonical_question, "canonical text");
  EXPECT_EQ(fresh.brownout_level, 2) << "floor applied to a level-0 request";
  EXPECT_EQ(fresh.max_icl_demos, 0);
  EXPECT_TRUE(fresh.disable_value_retriever);

  // An already deeper brownout is left alone: the floor only raises.
  ServeOptions deep;
  BrownoutController::ApplyLevel(3, &deep);
  fe.MarkSuspect(&deep, "c");
  EXPECT_EQ(deep.brownout_level, 3);
  EXPECT_EQ(deep.top_k1_override, 2);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.pre_degraded"), 2u);
}

TEST_F(AdversarialServeTest, CleanSuspectPartitionSumsToRequests) {
  // Every PredictGuarded call lands in exactly one of serve.adv.clean /
  // serve.adv.suspect — the invariant the adversarial CI leg asserts on
  // the exported snapshot. Default options (and so every legacy caller)
  // count as clean.
  ServeOptions clean;
  ServeReport clean_report;
  pipeline_->PredictGuarded(*bench_, bench_->dev.front(), clean,
                            &clean_report);
  EXPECT_FALSE(clean_report.suspect);

  SuspectCase c = MakeSuspect(0, 2025);
  ServeReport suspect_report;
  std::string sql =
      pipeline_->PredictGuarded(*bench_, c.sample, c.options,
                                &suspect_report);
  EXPECT_FALSE(sql.empty());
  EXPECT_TRUE(suspect_report.suspect);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.clean"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.suspect"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.clean") +
                CounterDelta(snapshot, "serve.adv.suspect"),
            CounterDelta(snapshot, "serve.requests"));
}

TEST_F(AdversarialServeTest, CanonicalRetryRunsWhenPrimaryBeamFails) {
  // Every decode fails: the primary beam burns 4 of the 16 repair
  // attempts without a verified candidate, so the suspect's canonical
  // retry fires (and fails too — its decodes are equally poisoned),
  // recorded before the unverified fallback serves.
  ASSERT_TRUE(Failpoints::Configure("lm.decode=prob:1.0", 7).ok());
  SuspectCase c = MakeSuspect(0, 2026);
  ASSERT_NE(c.options.canonical_question, c.sample.question)
      << "fixture must actually be perturbed";
  ServeReport report;
  std::string sql =
      pipeline_->PredictGuarded(*bench_, c.sample, c.options, &report);
  EXPECT_FALSE(sql.empty());
  EXPECT_FALSE(report.execution_verified);
  EXPECT_EQ(report.canonical_retries, 1);
  EXPECT_FALSE(report.canonical_served);
  EXPECT_NE(report.ToString().find("adv=suspect retries=1"),
            std::string::npos);

  // A clean request under the same fault never spends the retry.
  ServeOptions clean;
  ServeReport clean_report;
  pipeline_->PredictGuarded(*bench_, bench_->dev.front(), clean,
                            &clean_report);
  EXPECT_EQ(clean_report.canonical_retries, 0);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.retry"), 1u);
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.retry_served"), 0u);
}

TEST_F(AdversarialServeTest, CanonicalRetryRescuesSomeSuspectRequests) {
  // Under partial decode failure some suspects lose their whole primary
  // beam but verify on the canonical retry — the perturbation-aware
  // degradation this PR exists for. Deterministic: failpoint decisions
  // are a pure function of (seed, site, scope, counter).
  ASSERT_TRUE(Failpoints::Configure("lm.decode=prob:0.8", 11).ok());
  uint64_t retries = 0;
  uint64_t rescued = 0;
  for (size_t i = 0; i < bench_->dev.size(); ++i) {
    SuspectCase c = MakeSuspect(i, 3000 + i);
    if (c.options.canonical_question == c.sample.question) continue;
    ServeReport report;
    std::string sql =
        pipeline_->PredictGuarded(*bench_, c.sample, c.options, &report);
    EXPECT_FALSE(sql.empty());
    retries += static_cast<uint64_t>(report.canonical_retries);
    if (report.canonical_served) {
      ++rescued;
      EXPECT_TRUE(report.execution_verified);
    }
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(rescued, 0u) << "no suspect was rescued by its retry";

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.retry"), retries);
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.retry_served"), rescued);
}

// ------------------------------------------------- adversarial campaigns

TEST_F(AdversarialServeTest, AdvCampaignIsByteIdenticalAcrossThreadCounts) {
  LoadGenOptions options;
  options.seed = 21;
  options.num_requests = 200;
  options.offered_qps = 400.0;
  options.threads = 1;
  options.front_end.brownout.dwell_us = 50'000;
  options.adv_rate = 0.3;
  options.harden = true;

  LoadReport serial = RunLoadCampaign(*pipeline_, *bench_, options);
  options.threads = 4;
  LoadReport parallel = RunLoadCampaign(*pipeline_, *bench_, options);

  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.Summary(), parallel.Summary());
  EXPECT_GT(serial.adv_offered, 0u);
  EXPECT_NEAR(static_cast<double>(serial.adv_offered), 0.3 * 200, 20.0);
  EXPECT_GT(serial.suspect, 0u);
  EXPECT_LE(serial.suspect, serial.admitted);
  EXPECT_GT(serial.verified_within_deadline, 0u);
  EXPECT_LE(serial.verified_within_deadline, serial.served_within_deadline);
  EXPECT_GT(serial.VerifiedGoodputQps(), 0.0);

  // The campaign feeds the same partition invariant into the registry.
  MetricsRegistry::Global().Reset();
  options.threads = 2;
  LoadReport report = RunLoadCampaign(*pipeline_, *bench_, options);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.clean") +
                CounterDelta(snapshot, "serve.adv.suspect"),
            CounterDelta(snapshot, "serve.requests"));
  EXPECT_EQ(CounterDelta(snapshot, "serve.adv.suspect"), report.suspect);
}

TEST_F(AdversarialServeTest, AdvRateZeroKeepsLegacyCampaignByteIdentical) {
  // adv_rate 0 with hardening off must reproduce the pre-adversarial
  // campaign exactly: same digest, no adversarial accounting, and a
  // Summary with no adversarial block.
  LoadGenOptions legacy;
  legacy.seed = 99;
  legacy.num_requests = 160;
  legacy.offered_qps = 400.0;
  legacy.threads = 2;
  legacy.front_end.brownout.dwell_us = 50'000;

  LoadGenOptions zeroed = legacy;
  zeroed.adv_rate = 0.0;
  zeroed.harden = false;

  LoadReport a = RunLoadCampaign(*pipeline_, *bench_, legacy);
  LoadReport b = RunLoadCampaign(*pipeline_, *bench_, zeroed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.adv_offered, 0u);
  EXPECT_EQ(a.suspect, 0u);
  EXPECT_EQ(a.Summary().find("adversarial"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace codes
