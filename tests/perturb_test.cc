#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "dataset/benchmark_builder.h"
#include "common/string_util.h"
#include "dataset/perturb.h"
#include "sqlengine/executor.h"

namespace codes {
namespace {

class PerturbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spider_ = new Text2SqlBenchmark(BuildTinySpiderLike(42));
  }
  static void TearDownTestSuite() {
    delete spider_;
    spider_ = nullptr;
  }
  static const Text2SqlBenchmark* spider_;
};
const Text2SqlBenchmark* PerturbTest::spider_ = nullptr;

TEST_F(PerturbTest, ReplaceWordOutsideQuotes) {
  EXPECT_EQ(ReplaceWordOutsideQuotes("the singer sang", "singer", "vocalist"),
            "the vocalist sang");
  // Values inside quotes are untouched.
  EXPECT_EQ(ReplaceWordOutsideQuotes("name is 'singer'", "singer", "x"),
            "name is 'singer'");
  // Whole-word only.
  EXPECT_EQ(ReplaceWordOutsideQuotes("singers", "singer", "x"), "singers");
}

TEST_F(PerturbTest, VowelStripAbbreviate) {
  EXPECT_EQ(VowelStripAbbreviate("fleet"), "flt");
  EXPECT_EQ(VowelStripAbbreviate("size"), "sz");
  EXPECT_EQ(VowelStripAbbreviate("age"), "age");  // short words unchanged
}

TEST_F(PerturbTest, ExpandWithSynonymsIsBidirectional) {
  auto a = ExpandWithSynonyms({"vocalist"});
  EXPECT_NE(std::find(a.begin(), a.end(), "singer"), a.end());
  auto b = ExpandWithSynonyms({"singer"});
  EXPECT_NE(std::find(b.begin(), b.end(), "vocalist"), b.end());
}

TEST_F(PerturbTest, SynVariantChangesQuestionsNotSql) {
  auto syn = BuildSpiderSyn(*spider_, 1);
  ASSERT_EQ(syn.dev.size(), spider_->dev.size());
  int changed = 0;
  for (size_t i = 0; i < syn.dev.size(); ++i) {
    EXPECT_EQ(syn.dev[i].sql, spider_->dev[i].sql);
    if (syn.dev[i].question != spider_->dev[i].question) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST_F(PerturbTest, RealisticKeepsGoldExecutable) {
  auto realistic = BuildSpiderRealistic(*spider_, 2);
  for (const auto& s : realistic.dev) {
    EXPECT_TRUE(sql::IsExecutable(realistic.DbOf(s), s.sql));
  }
}

TEST_F(PerturbTest, DrSpiderHasSeventeenSets) {
  auto suite = BuildDrSpiderSuite(*spider_, 3);
  EXPECT_EQ(suite.size(), 17u);
  int db = 0, nlq = 0, sql_side = 0;
  for (const auto& set : suite) {
    if (set.category == "DB") ++db;
    if (set.category == "NLQ") ++nlq;
    if (set.category == "SQL") ++sql_side;
  }
  EXPECT_EQ(db, 3);
  EXPECT_EQ(nlq, 9);
  EXPECT_EQ(sql_side, 5);
}

TEST_F(PerturbTest, SchemaPerturbationsKeepGoldExecutable) {
  auto suite = BuildDrSpiderSuite(*spider_, 4);
  for (const auto& set : suite) {
    if (set.category != "DB") continue;
    for (const auto& s : set.bench.dev) {
      EXPECT_TRUE(sql::IsExecutable(set.bench.DbOf(s), s.sql))
          << set.name << ": " << s.sql;
    }
  }
}

TEST_F(PerturbTest, SchemaSynonymRenamesIdentifiers) {
  auto suite = BuildDrSpiderSuite(*spider_, 5);
  const auto& renamed = suite[0];  // schema-synonym
  ASSERT_EQ(renamed.name, "schema-synonym");
  // Questions are unchanged; at least one gold SQL now differs from the
  // original (identifiers renamed).
  int diff = 0;
  for (size_t i = 0; i < renamed.bench.dev.size(); ++i) {
    EXPECT_EQ(renamed.bench.dev[i].question, spider_->dev[i].question);
    if (renamed.bench.dev[i].sql != spider_->dev[i].sql) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST_F(PerturbTest, ContentEquivalenceUppercasesValuesConsistently) {
  auto suite = BuildDrSpiderSuite(*spider_, 6);
  const auto& content = suite[2];  // DBcontent-equivalence
  ASSERT_EQ(content.name, "DBcontent-equivalence");
  for (const auto& s : content.bench.dev) {
    EXPECT_TRUE(sql::IsExecutable(content.bench.DbOf(s), s.sql)) << s.sql;
  }
  // Stored text is uppercased.
  const auto& db = content.bench.databases[0];
  bool found_text = false;
  db.ForEachTextValue([&found_text](int, int, int, const std::string& text) {
    found_text = true;
    EXPECT_EQ(text, codes::ToUpper(text));
  });
  EXPECT_TRUE(found_text);
}

TEST_F(PerturbTest, SqlSideSetsFilterByShape) {
  auto suite = BuildDrSpiderSuite(*spider_, 7);
  for (const auto& set : suite) {
    if (set.name == std::string("sort-order")) {
      for (const auto& s : set.bench.dev) {
        EXPECT_NE(codes::ToUpper(s.sql).find("ORDER BY"), std::string::npos);
      }
    }
    if (set.name == std::string("nonDB-number")) {
      for (const auto& s : set.bench.dev) {
        EXPECT_NE(codes::ToUpper(s.sql).find("LIMIT"), std::string::npos);
      }
    }
  }
}

TEST_F(PerturbTest, KeywordCarrierWrapsQuestions) {
  auto suite = BuildDrSpiderSuite(*spider_, 8);
  for (const auto& set : suite) {
    if (set.name != std::string("keyword-carrier")) continue;
    for (const auto& s : set.bench.dev) {
      EXPECT_EQ(s.question.rfind("Could you tell me ", 0), 0u);
    }
  }
}

// ----------------------------------------------- online question mutations

TEST_F(PerturbTest, MutateQuestionIsPureInItsSeed) {
  const std::string q = "List the name of every singer from 'France'.";
  for (int k = 0; k < kNumQuestionMutations; ++k) {
    auto kind = static_cast<QuestionMutation>(k);
    EXPECT_EQ(MutateQuestion(q, kind, 99), MutateQuestion(q, kind, 99))
        << QuestionMutationName(kind);
  }
  // The typo stream actually depends on the seed (dictionary mutations may
  // coincide when every coin lands the same way; edits cannot).
  EXPECT_NE(MutateQuestion(q, QuestionMutation::kTypo, 1),
            MutateQuestion(q, QuestionMutation::kTypo, 2));
}

TEST_F(PerturbTest, MutateQuestionKeepsQuotedValuesIntactExceptValueSwap) {
  const std::string q = "Find all concerts held in 'New York' since 2010.";
  for (QuestionMutation kind : {QuestionMutation::kSynonym,
                                QuestionMutation::kTypo,
                                QuestionMutation::kParaphrase}) {
    std::string out = MutateQuestion(q, kind, 5);
    EXPECT_NE(out.find("'New York'"), std::string::npos)
        << QuestionMutationName(kind) << ": " << out;
  }
}

TEST_F(PerturbTest, MutateQuestionDeterministicAcrossThreads) {
  // The load generator derives every mutation on its DES driver thread,
  // but the campaign's determinism story is simpler to defend when the
  // mutation itself is thread-invariant: 8 threads recomputing the same
  // (question, kind, seed) grid must reproduce the serial outputs
  // byte-for-byte.
  struct Case {
    std::string question;
    QuestionMutation kind;
    uint64_t seed;
  };
  std::vector<Case> cases;
  for (size_t i = 0; i < spider_->dev.size(); ++i) {
    for (int k = 0; k < kNumQuestionMutations; ++k) {
      cases.push_back(Case{spider_->dev[i].question,
                           static_cast<QuestionMutation>(k),
                           i * 31 + static_cast<uint64_t>(k)});
    }
  }
  std::vector<std::string> serial;
  serial.reserve(cases.size());
  for (const Case& c : cases) {
    serial.push_back(MutateQuestion(c.question, c.kind, c.seed));
  }
  std::vector<std::vector<std::string>> parallel(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cases, &parallel, t]() {
      parallel[static_cast<size_t>(t)].reserve(cases.size());
      for (const Case& c : cases) {
        parallel[static_cast<size_t>(t)].push_back(
            MutateQuestion(c.question, c.kind, c.seed));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& outputs : parallel) EXPECT_EQ(outputs, serial);
}

TEST_F(PerturbTest, MutationCorpusReplays) {
  // tests/fuzz_corpus/perturb.corpus pins (kind, seed, question) ->
  // output. A mismatch means the mutation streams moved, which silently
  // invalidates every recorded adversarial campaign digest — regenerate
  // the corpus and the BENCH numbers together, deliberately.
  std::ifstream in(std::string(CODES_FUZZ_CORPUS_DIR) + "/perturb.corpus");
  ASSERT_TRUE(in.good()) << "missing perturb.corpus";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    ASSERT_EQ(fields.size(), 4u) << line;
    QuestionMutation kind = QuestionMutation::kNumMutations;
    for (int k = 0; k < kNumQuestionMutations; ++k) {
      if (fields[0] == QuestionMutationName(static_cast<QuestionMutation>(k))) {
        kind = static_cast<QuestionMutation>(k);
      }
    }
    ASSERT_NE(kind, QuestionMutation::kNumMutations) << fields[0];
    uint64_t seed = 0;
    ASSERT_TRUE(ParseUint64(fields[1], &seed)) << line;
    EXPECT_EQ(MutateQuestion(fields[2], kind, seed), fields[3]) << line;
    ++replayed;
  }
  EXPECT_GE(replayed, 12);
}

}  // namespace
}  // namespace codes
