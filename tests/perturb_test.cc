#include <gtest/gtest.h>

#include "dataset/benchmark_builder.h"
#include "common/string_util.h"
#include "dataset/perturb.h"
#include "sqlengine/executor.h"

namespace codes {
namespace {

class PerturbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spider_ = new Text2SqlBenchmark(BuildTinySpiderLike(42));
  }
  static void TearDownTestSuite() {
    delete spider_;
    spider_ = nullptr;
  }
  static const Text2SqlBenchmark* spider_;
};
const Text2SqlBenchmark* PerturbTest::spider_ = nullptr;

TEST_F(PerturbTest, ReplaceWordOutsideQuotes) {
  EXPECT_EQ(ReplaceWordOutsideQuotes("the singer sang", "singer", "vocalist"),
            "the vocalist sang");
  // Values inside quotes are untouched.
  EXPECT_EQ(ReplaceWordOutsideQuotes("name is 'singer'", "singer", "x"),
            "name is 'singer'");
  // Whole-word only.
  EXPECT_EQ(ReplaceWordOutsideQuotes("singers", "singer", "x"), "singers");
}

TEST_F(PerturbTest, VowelStripAbbreviate) {
  EXPECT_EQ(VowelStripAbbreviate("fleet"), "flt");
  EXPECT_EQ(VowelStripAbbreviate("size"), "sz");
  EXPECT_EQ(VowelStripAbbreviate("age"), "age");  // short words unchanged
}

TEST_F(PerturbTest, ExpandWithSynonymsIsBidirectional) {
  auto a = ExpandWithSynonyms({"vocalist"});
  EXPECT_NE(std::find(a.begin(), a.end(), "singer"), a.end());
  auto b = ExpandWithSynonyms({"singer"});
  EXPECT_NE(std::find(b.begin(), b.end(), "vocalist"), b.end());
}

TEST_F(PerturbTest, SynVariantChangesQuestionsNotSql) {
  auto syn = BuildSpiderSyn(*spider_, 1);
  ASSERT_EQ(syn.dev.size(), spider_->dev.size());
  int changed = 0;
  for (size_t i = 0; i < syn.dev.size(); ++i) {
    EXPECT_EQ(syn.dev[i].sql, spider_->dev[i].sql);
    if (syn.dev[i].question != spider_->dev[i].question) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST_F(PerturbTest, RealisticKeepsGoldExecutable) {
  auto realistic = BuildSpiderRealistic(*spider_, 2);
  for (const auto& s : realistic.dev) {
    EXPECT_TRUE(sql::IsExecutable(realistic.DbOf(s), s.sql));
  }
}

TEST_F(PerturbTest, DrSpiderHasSeventeenSets) {
  auto suite = BuildDrSpiderSuite(*spider_, 3);
  EXPECT_EQ(suite.size(), 17u);
  int db = 0, nlq = 0, sql_side = 0;
  for (const auto& set : suite) {
    if (set.category == "DB") ++db;
    if (set.category == "NLQ") ++nlq;
    if (set.category == "SQL") ++sql_side;
  }
  EXPECT_EQ(db, 3);
  EXPECT_EQ(nlq, 9);
  EXPECT_EQ(sql_side, 5);
}

TEST_F(PerturbTest, SchemaPerturbationsKeepGoldExecutable) {
  auto suite = BuildDrSpiderSuite(*spider_, 4);
  for (const auto& set : suite) {
    if (set.category != "DB") continue;
    for (const auto& s : set.bench.dev) {
      EXPECT_TRUE(sql::IsExecutable(set.bench.DbOf(s), s.sql))
          << set.name << ": " << s.sql;
    }
  }
}

TEST_F(PerturbTest, SchemaSynonymRenamesIdentifiers) {
  auto suite = BuildDrSpiderSuite(*spider_, 5);
  const auto& renamed = suite[0];  // schema-synonym
  ASSERT_EQ(renamed.name, "schema-synonym");
  // Questions are unchanged; at least one gold SQL now differs from the
  // original (identifiers renamed).
  int diff = 0;
  for (size_t i = 0; i < renamed.bench.dev.size(); ++i) {
    EXPECT_EQ(renamed.bench.dev[i].question, spider_->dev[i].question);
    if (renamed.bench.dev[i].sql != spider_->dev[i].sql) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST_F(PerturbTest, ContentEquivalenceUppercasesValuesConsistently) {
  auto suite = BuildDrSpiderSuite(*spider_, 6);
  const auto& content = suite[2];  // DBcontent-equivalence
  ASSERT_EQ(content.name, "DBcontent-equivalence");
  for (const auto& s : content.bench.dev) {
    EXPECT_TRUE(sql::IsExecutable(content.bench.DbOf(s), s.sql)) << s.sql;
  }
  // Stored text is uppercased.
  const auto& db = content.bench.databases[0];
  bool found_text = false;
  db.ForEachTextValue([&found_text](int, int, int, const std::string& text) {
    found_text = true;
    EXPECT_EQ(text, codes::ToUpper(text));
  });
  EXPECT_TRUE(found_text);
}

TEST_F(PerturbTest, SqlSideSetsFilterByShape) {
  auto suite = BuildDrSpiderSuite(*spider_, 7);
  for (const auto& set : suite) {
    if (set.name == std::string("sort-order")) {
      for (const auto& s : set.bench.dev) {
        EXPECT_NE(codes::ToUpper(s.sql).find("ORDER BY"), std::string::npos);
      }
    }
    if (set.name == std::string("nonDB-number")) {
      for (const auto& s : set.bench.dev) {
        EXPECT_NE(codes::ToUpper(s.sql).find("LIMIT"), std::string::npos);
      }
    }
  }
}

TEST_F(PerturbTest, KeywordCarrierWrapsQuestions) {
  auto suite = BuildDrSpiderSuite(*spider_, 8);
  for (const auto& set : suite) {
    if (set.name != std::string("keyword-carrier")) continue;
    for (const auto& s : set.bench.dev) {
      EXPECT_EQ(s.question.rfind("Could you tell me ", 0), 0u);
    }
  }
}

}  // namespace
}  // namespace codes
