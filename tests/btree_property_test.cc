// Randomized property tests for the B+ tree: every operation is mirrored
// into a std::multimap model keyed by (Value, Rid), and the tree must agree
// with the model on lookups, full iteration order, range collection, and
// entry counts — across enough volume to force multi-level splits and
// enough deletion to force merges, borrows, and root collapse.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sqlengine/value.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace codes::storage {
namespace {

using sql::IndexBound;
using sql::Value;

/// Model key with the tree's exact composite ordering: Value::Compare,
/// then Rid as tiebreak.
struct ModelKey {
  Value key;
  Rid rid;
  bool operator<(const ModelKey& other) const {
    int c = key.Compare(other.key);
    if (c != 0) return c < 0;
    return rid < other.rid;
  }
};

using Model = std::map<ModelKey, bool>;  // value unused; set-like

struct TreeFixture {
  std::unique_ptr<DiskManager> disk = DiskManager::CreateInMemory();
  BufferPool pool{disk.get(), 32};
  BPlusTree tree{&pool};
};

/// Full-iteration agreement: the tree's forward walk must visit exactly
/// the model's entries in model order.
void ExpectTreeMatchesModel(const BPlusTree& tree, const Model& model) {
  auto it = tree.SeekFirst();
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  auto expect = model.begin();
  while (it->Valid()) {
    ASSERT_NE(expect, model.end()) << "tree has more entries than model";
    EXPECT_EQ(it->key().Compare(expect->first.key), 0);
    EXPECT_TRUE(it->rid() == expect->first.rid)
        << "rid {" << it->rid().page << "," << it->rid().slot << "} vs {"
        << expect->first.rid.page << "," << expect->first.rid.slot << "}";
    ++expect;
    ASSERT_TRUE(it->Advance().ok());
  }
  EXPECT_EQ(expect, model.end()) << "model has more entries than tree";

  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, model.size());
}

TEST(BTreePropertyTest, RandomInsertLookupDeleteAgreesWithModel) {
  TreeFixture fx;
  Model model;
  Rng rng(0xB7EE5EEDULL);

  // Key pool small enough to force duplicates (secondary-index shape) and
  // values from both classes would be illegal in one index, so stay
  // numeric; TEXT gets its own test below.
  auto random_key = [&rng]() {
    if (rng.Index(4) == 0) {
      return Value(static_cast<double>(rng.Index(50)) + 0.5);
    }
    return Value(static_cast<int64_t>(rng.Index(200)));
  };
  auto random_rid = [&rng]() {
    return Rid{static_cast<PageId>(rng.Index(64)),
               static_cast<uint16_t>(rng.Index(128))};
  };

  for (int step = 0; step < 4000; ++step) {
    Value key = random_key();
    Rid rid = random_rid();
    ModelKey mk{key, rid};
    bool in_model = model.count(mk) > 0;

    switch (rng.Index(3)) {
      case 0: {  // insert
        Status s = fx.tree.Insert(key, rid);
        if (in_model) {
          EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
              << "duplicate insert must be rejected";
        } else {
          ASSERT_TRUE(s.ok()) << s.ToString();
          model.emplace(mk, true);
        }
        break;
      }
      case 1: {  // remove
        Status s = fx.tree.Remove(key, rid);
        if (in_model) {
          ASSERT_TRUE(s.ok()) << s.ToString();
          model.erase(mk);
        } else {
          EXPECT_EQ(s.code(), StatusCode::kNotFound);
        }
        break;
      }
      default: {  // lookup
        auto contains = fx.tree.Contains(key, rid);
        ASSERT_TRUE(contains.ok());
        EXPECT_EQ(*contains, in_model);
      }
    }

    if (step % 500 == 499) ExpectTreeMatchesModel(fx.tree, model);
  }
  ExpectTreeMatchesModel(fx.tree, model);
  EXPECT_EQ(fx.pool.pinned_frames(), 0u);
}

TEST(BTreePropertyTest, BulkInsertThenDrainForcesSplitsAndRootCollapse) {
  TreeFixture fx;
  Model model;
  Rng rng(0xC0FFEEULL);

  // Long TEXT keys overflow nodes quickly, forcing a deep tree.
  std::vector<std::pair<Value, Rid>> entries;
  for (int i = 0; i < 1200; ++i) {
    Value key("key-" + std::string(40, 'x') + std::to_string(i));
    Rid rid{static_cast<PageId>(i / 100), static_cast<uint16_t>(i % 100)};
    entries.emplace_back(std::move(key), rid);
  }
  // Shuffle deterministically so inserts hit interior splits, not just
  // rightmost-leaf appends.
  for (size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.Index(i)]);
  }
  for (const auto& [key, rid] : entries) {
    ASSERT_TRUE(fx.tree.Insert(key, rid).ok());
    model.emplace(ModelKey{key, rid}, true);
  }
  EXPECT_GT(fx.disk->page_count(), 3u) << "tree never split";
  ExpectTreeMatchesModel(fx.tree, model);

  // Drain in a different shuffled order: exercises merge, borrow, and
  // finally root collapse back to a single (possibly empty) leaf.
  for (size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.Index(i)]);
  }
  for (const auto& [key, rid] : entries) {
    ASSERT_TRUE(fx.tree.Remove(key, rid).ok());
    model.erase(ModelKey{key, rid});
  }
  ExpectTreeMatchesModel(fx.tree, model);
  EXPECT_EQ(model.size(), 0u);
  auto empty_it = fx.tree.SeekFirst();
  ASSERT_TRUE(empty_it.ok());
  EXPECT_FALSE(empty_it->Valid());
  EXPECT_EQ(fx.pool.pinned_frames(), 0u);
}

TEST(BTreePropertyTest, DuplicateKeysKeepDistinctRidsInRidOrder) {
  TreeFixture fx;
  Value dup(int64_t{7});
  // Insert the same key under many RIDs, out of RID order.
  std::vector<Rid> rids;
  for (int i = 19; i >= 0; --i) {
    Rid rid{static_cast<PageId>(i), 0};
    ASSERT_TRUE(fx.tree.Insert(dup, rid).ok());
    rids.push_back(rid);
  }
  // Exact-duplicate (key, rid) is rejected; same key, new rid is fine.
  EXPECT_EQ(fx.tree.Insert(dup, Rid{5, 0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fx.tree.Insert(dup, Rid{5, 1}).ok());

  // Equal-range collection yields every RID, sorted by the Rid tiebreak.
  std::vector<Rid> collected;
  IndexBound eq{&dup, true};
  ASSERT_TRUE(fx.tree.CollectRange(eq, eq, &collected).ok());
  ASSERT_EQ(collected.size(), 21u);
  EXPECT_TRUE(std::is_sorted(collected.begin(), collected.end()));

  // Removing one RID leaves the other 20.
  ASSERT_TRUE(fx.tree.Remove(dup, Rid{10, 0}).ok());
  auto count = fx.tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
  auto gone = fx.tree.Contains(dup, Rid{10, 0});
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);
}

TEST(BTreePropertyTest, CollectRangeMatchesModelOnRandomBounds) {
  TreeFixture fx;
  Model model;
  Rng rng(0x5CA1AB1EULL);
  for (int i = 0; i < 600; ++i) {
    Value key(static_cast<int64_t>(rng.Index(100)));
    Rid rid{static_cast<PageId>(i), 0};
    ASSERT_TRUE(fx.tree.Insert(key, rid).ok());
    model.emplace(ModelKey{key, rid}, true);
  }

  for (int trial = 0; trial < 200; ++trial) {
    Value lo_val(static_cast<int64_t>(rng.Index(110)) - 5);
    Value hi_val(static_cast<int64_t>(rng.Index(110)) - 5);
    bool lo_inc = rng.Index(2) == 0;
    bool hi_inc = rng.Index(2) == 0;
    bool lo_open = rng.Index(4) == 0;  // sometimes unbounded
    bool hi_open = rng.Index(4) == 0;
    IndexBound lo{lo_open ? nullptr : &lo_val, lo_inc};
    IndexBound hi{hi_open ? nullptr : &hi_val, hi_inc};

    std::vector<Rid> got;
    ASSERT_TRUE(fx.tree.CollectRange(lo, hi, &got).ok());

    std::vector<Rid> want;
    for (const auto& [mk, unused] : model) {
      if (lo.value != nullptr) {
        int c = mk.key.Compare(*lo.value);
        if (c < 0 || (c == 0 && !lo.inclusive)) continue;
      }
      if (hi.value != nullptr) {
        int c = mk.key.Compare(*hi.value);
        if (c > 0 || (c == 0 && !hi.inclusive)) continue;
      }
      want.push_back(mk.rid);
    }
    ASSERT_EQ(got.size(), want.size())
        << "trial " << trial << " lo=" << (lo.value ? "set" : "open")
        << " hi=" << (hi.value ? "set" : "open");
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i] == want[i]) << "trial " << trial << " pos " << i;
    }
  }
}

TEST(BTreePropertyTest, SeekLandsOnFirstEntryAtLeastKey) {
  TreeFixture fx;
  for (int i = 0; i < 300; i += 3) {  // keys 0, 3, 6, ..., 297
    ASSERT_TRUE(
        fx.tree.Insert(Value(static_cast<int64_t>(i)), Rid{0, 0}).ok());
  }
  for (int probe = -2; probe < 302; ++probe) {
    auto it = fx.tree.Seek(Value(static_cast<int64_t>(probe)));
    ASSERT_TRUE(it.ok());
    int expected = probe <= 0 ? 0 : ((probe + 2) / 3) * 3;
    if (expected > 297) {
      EXPECT_FALSE(it->Valid()) << "probe " << probe;
    } else {
      ASSERT_TRUE(it->Valid()) << "probe " << probe;
      EXPECT_EQ(it->key().AsInteger(), expected) << "probe " << probe;
    }
  }
}

TEST(BTreePropertyTest, IteratorReSeekAfterMutationSeesNewState) {
  // The documented invalidation rule: any mutation invalidates live
  // iterators; correctness is defined by what a FRESH seek observes.
  TreeFixture fx;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        fx.tree.Insert(Value(static_cast<int64_t>(i)), Rid{0, 0}).ok());
  }
  ASSERT_TRUE(fx.tree.Remove(Value(int64_t{25}), Rid{0, 0}).ok());
  ASSERT_TRUE(fx.tree.Insert(Value(int64_t{1000}), Rid{0, 0}).ok());

  auto it = fx.tree.Seek(Value(int64_t{24}));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().AsInteger(), 24);
  ASSERT_TRUE(it->Advance().ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().AsInteger(), 26) << "removed key must be skipped";

  auto tail = fx.tree.Seek(Value(int64_t{999}));
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE(tail->Valid());
  EXPECT_EQ(tail->key().AsInteger(), 1000);
}

TEST(BTreePropertyTest, OversizedKeyIsRejectedWithoutCorruption) {
  TreeFixture fx;
  ASSERT_TRUE(fx.tree.Insert(Value(int64_t{1}), Rid{0, 0}).ok());
  Value huge(std::string(kPageSize, 'k'));
  EXPECT_EQ(fx.tree.Insert(huge, Rid{0, 1}).code(),
            StatusCode::kInvalidArgument);
  // Tree still intact and iterable.
  auto count = fx.tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

}  // namespace
}  // namespace codes::storage
