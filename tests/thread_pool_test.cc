#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace codes {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPoolTest, TrySubmitAcceptsUnderTheBound) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.TrySubmit(
        [&count] { count.fetch_add(1, std::memory_order_relaxed); }, 100));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, TrySubmitRefusesWhenBacklogIsFull) {
  ThreadPool pool(1);
  std::mutex gate;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  // Occupy the single worker so further submissions pile up in the queue.
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(gate);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(gate);
    cv.wait(lock, [&] { return started; });
  }
  // The running task does not count against the backlog bound.
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2))
      << "two tasks already waiting: the bound is hit";
  {
    std::lock_guard<std::mutex> lock(gate);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2) << "the refused task must never run";
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller: a plain (non-atomic) counter is safe.
  pool.ParallelFor(1, [&calls](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadParallelForRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;  // safe: body runs on this thread only
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (size_t i = begin; i < end; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForShardsAreContiguousAndBalanced) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> shards;
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    shards.emplace_back(begin, end);
  });
  ASSERT_EQ(shards.size(), 4u);
  std::sort(shards.begin(), shards.end());
  size_t expected_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expected_begin);
    size_t len = end - begin;
    EXPECT_TRUE(len == 2 || len == 3);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 10u);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([&] { completed.fetch_add(1); });
  pool.Submit([] { throw std::runtime_error("task failed"); });
  pool.Submit([&] { completed.fetch_add(1); });
  // The exception surfaces from Wait(), after the queue has drained: the
  // other tasks still ran.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 2);
}

TEST(ThreadPoolTest, PoolIsCleanAndReusableAfterRethrow) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The rethrow harvested the exception; subsequent rounds are clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, OnlyFirstOfSeveralExceptionsIsRethrown) {
  ThreadPool pool(1);  // one worker: deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The later exception was counted and dropped, not left pending.
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ParallelForPropagatesShardException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t begin, size_t) {
                                  if (begin == 0) {
                                    throw std::runtime_error("shard failed");
                                  }
                                }),
               std::runtime_error);
  // Still usable for the next ParallelFor.
  std::atomic<int> covered{0};
  pool.ParallelFor(100, [&](size_t begin, size_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 100);
}

TEST(ThreadPoolTest, TasksRunOffTheCallingThread) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  std::mutex mu;
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_EQ(ids.count(caller), 0u);
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

}  // namespace
}  // namespace codes
