// Regression guard for the tentpole of the parallel-evaluation work: the
// sharded driver must produce byte-identical predictions and identical
// metrics at every thread count, and the pipeline's const inference path
// must be safe to hammer from many threads (this file is what the TSan CI
// leg runs against the shared retriever cache).

#include "eval/parallel_eval.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

class ParallelEvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(2024));
    zoo_ = new LmZoo(1, 31);
    PipelineConfig config;
    config.size = ModelSize::k7B;
    pipeline_ = new CodesPipeline(config, zoo_->CodesFor(config.size));
    pipeline_->TrainClassifier(*bench_);
    pipeline_->FineTune(*bench_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete zoo_;
    delete bench_;
  }
  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
  static CodesPipeline* pipeline_;
};
Text2SqlBenchmark* ParallelEvalTest::bench_ = nullptr;
LmZoo* ParallelEvalTest::zoo_ = nullptr;
CodesPipeline* ParallelEvalTest::pipeline_ = nullptr;

TEST_F(ParallelEvalTest, ThreadCountInvariance) {
  // The tentpole guarantee: 1 thread and 8 threads give byte-identical
  // predictions and identical metrics, TS instances included.
  EvalOptions options;
  options.compute_ts = true;
  options.ts_instances = 2;

  options.num_threads = 1;
  EvalResult serial =
      ParallelEvaluateDevSet(*bench_, pipeline_->PredictorFor(*bench_),
                             options);
  options.num_threads = 8;
  EvalResult parallel =
      ParallelEvaluateDevSet(*bench_, pipeline_->PredictorFor(*bench_),
                             options);

  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].index, static_cast<int>(i));
    EXPECT_EQ(parallel.samples[i].index, static_cast<int>(i));
    EXPECT_EQ(serial.samples[i].predicted, parallel.samples[i].predicted)
        << "prediction diverged at sample " << i;
    EXPECT_EQ(serial.samples[i].ex, parallel.samples[i].ex);
    EXPECT_EQ(serial.samples[i].ts, parallel.samples[i].ts);
  }
  EXPECT_DOUBLE_EQ(serial.metrics.ex, parallel.metrics.ex);
  EXPECT_DOUBLE_EQ(serial.metrics.ts, parallel.metrics.ts);
  EXPECT_EQ(serial.metrics.n, parallel.metrics.n);
}

TEST_F(ParallelEvalTest, RepeatedParallelRunsAreDeterministic) {
  EvalOptions options;
  options.num_threads = 4;
  EvalResult a = ParallelEvaluateDevSet(
      *bench_, pipeline_->PredictorFor(*bench_), options);
  EvalResult b = ParallelEvaluateDevSet(
      *bench_, pipeline_->PredictorFor(*bench_), options);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].predicted, b.samples[i].predicted);
  }
  EXPECT_DOUBLE_EQ(a.metrics.ex, b.metrics.ex);
}

TEST_F(ParallelEvalTest, EvaluateDevSetMatchesDriverAtAnyThreadCount) {
  // The public EvaluateDevSet wrapper (default: hardware concurrency)
  // agrees with an explicit serial run.
  EvalOptions serial_options;
  serial_options.num_threads = 1;
  EvalMetrics serial = EvaluateDevSet(
      *bench_, pipeline_->PredictorFor(*bench_), serial_options);

  EvalOptions default_options;  // num_threads = 0 -> hardware concurrency
  EvalMetrics parallel = EvaluateDevSet(
      *bench_, pipeline_->PredictorFor(*bench_), default_options);

  EXPECT_DOUBLE_EQ(serial.ex, parallel.ex);
  EXPECT_DOUBLE_EQ(serial.ts, parallel.ts);
  EXPECT_EQ(serial.n, parallel.n);
}

TEST_F(ParallelEvalTest, ParallelPredictOrdersBySampleIndex) {
  auto serial = ParallelPredict(*bench_, pipeline_->PredictorFor(*bench_),
                                /*num_threads=*/1);
  auto parallel = ParallelPredict(*bench_, pipeline_->PredictorFor(*bench_),
                                  /*num_threads=*/8);
  ASSERT_EQ(serial.size(), bench_->dev.size());
  EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelEvalTest, MaxSamplesCapsParallelEvaluation) {
  EvalOptions options;
  options.num_threads = 8;
  options.max_samples = 3;
  EvalResult r = ParallelEvaluateDevSet(
      *bench_, pipeline_->PredictorFor(*bench_), options);
  EXPECT_EQ(r.metrics.n, 3);
  EXPECT_EQ(r.samples.size(), 3u);
}

TEST_F(ParallelEvalTest, ConcurrentPredictorsShareRetrieverCacheSafely) {
  // Hammers the pipeline's lazily built per-database retriever cache from
  // many threads at once on a fresh pipeline (cold cache): this is the
  // race TSan guards after the shared_mutex fix.
  PipelineConfig config;
  config.size = ModelSize::k1B;
  CodesPipeline fresh(config, zoo_->CodesFor(config.size));
  fresh.TrainClassifier(*bench_);
  fresh.FineTune(*bench_);
  EvalOptions options;
  options.num_threads = 8;
  EvalResult r =
      ParallelEvaluateDevSet(*bench_, fresh.PredictorFor(*bench_), options);
  EXPECT_EQ(r.metrics.n, static_cast<int>(bench_->dev.size()));
  // And again with a predictor that touches the cache via BuildPrompt too.
  std::atomic<int> prompts{0};
  auto probe = [&](const Text2SqlSample& sample) {
    (void)fresh.BuildPrompt(*bench_, sample);
    prompts.fetch_add(1, std::memory_order_relaxed);
    return fresh.Predict(*bench_, sample);
  };
  EvalResult r2 = ParallelEvaluateDevSet(*bench_, probe, options);
  EXPECT_EQ(prompts.load(), r2.metrics.n);
  EXPECT_DOUBLE_EQ(r.metrics.ex, r2.metrics.ex);
}

}  // namespace
}  // namespace codes
