// Tier-1 coverage for the crash-safety layer (DESIGN.md section 15): WAL
// append/sync/reopen round trips, torn-tail discipline, page checksums,
// and redo-recovery edge cases — empty WAL, torn WAL tail, crash during
// checkpoint, crash during eviction write-back, and double-recovery
// idempotence — plus a miniature end-to-end crash campaign and the
// crash.corpus regression replays.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "sqlengine/database.h"
#include "sqlengine/value.h"
#include "storage/crash_harness.h"
#include "storage/crash_sim.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/storage_db.h"
#include "storage/wal.h"

#ifndef CODES_FUZZ_CORPUS_DIR
#error "CODES_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace codes::storage {
namespace {

using sql::Value;

constexpr const char* kDb = "t.db";
constexpr int kInitialRows = 6;
constexpr int kRowsPerBatch = 4;

// Deterministic workload rows: initial row i has id i; batch b row r has
// id 1000 + b * kRowsPerBatch + r. All ids unique.
sql::Row MakeRow(int64_t id) {
  sql::Row row;
  row.push_back(Value(id));
  row.push_back(Value("r" + std::to_string(id * 31 % 101)));
  return row;
}

sql::Database MakeSource() {
  sql::DatabaseSchema schema;
  schema.name = "waldb";
  sql::TableDef table;
  table.name = "items";
  table.columns.push_back({"id", sql::DataType::kInteger, "", true});
  table.columns.push_back({"name", sql::DataType::kText, "", false});
  schema.tables.push_back(table);
  sql::Database db(std::move(schema));
  for (int i = 0; i < kInitialRows; ++i) {
    EXPECT_TRUE(db.Insert("items", MakeRow(i)).ok());
  }
  return db;
}

Status AppendBatch(StorageDb* db, int b) {
  std::vector<sql::Row> rows;
  for (int r = 0; r < kRowsPerBatch; ++r) {
    rows.push_back(MakeRow(1000 + b * kRowsPerBatch + r));
  }
  CODES_RETURN_IF_ERROR(db->AppendRows(0, rows));
  return db->CommitBatch();
}

std::vector<sql::Row> ExpectedAfter(int batches) {
  std::vector<sql::Row> rows;
  for (int i = 0; i < kInitialRows; ++i) rows.push_back(MakeRow(i));
  for (int b = 0; b < batches; ++b) {
    for (int r = 0; r < kRowsPerBatch; ++r) {
      rows.push_back(MakeRow(1000 + b * kRowsPerBatch + r));
    }
  }
  return rows;
}

void ExpectContentEquals(const StorageDb& db, int batches,
                         const std::string& context) {
  std::vector<sql::Row> want = ExpectedAfter(batches);
  auto got = db.Materialize(0);
  ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
  ASSERT_EQ(got->size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ((*got)[i].size(), want[i].size()) << context << " row " << i;
    for (size_t c = 0; c < want[i].size(); ++c) {
      EXPECT_TRUE((*got)[i][c] == want[i][c])
          << context << " row " << i << " col " << c;
    }
  }
}

/// Builds the sim database and commits `batches` batches.
Result<std::unique_ptr<StorageDb>> BuildWithBatches(SimEnv* env, int batches,
                                                    size_t pool_frames = 16) {
  sql::Database src = MakeSource();
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<StorageDb> db,
                         StorageDb::CreateSimFrom(src, env, kDb, pool_frames));
  for (int b = 0; b < batches; ++b) {
    CODES_RETURN_IF_ERROR(AppendBatch(db.get(), b));
  }
  return db;
}

uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name).Value();
}

// --------------------------------------------------------------- WAL unit

TEST(WalTest, AppendSyncReopenRoundTrip) {
  SimEnv env;
  std::vector<std::byte> image(kPageSize, std::byte{0x5A});
  {
    auto wal = Wal::OpenSim(&env, "w.wal");
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ((*wal)->durable_lsn(), 0u);
    auto l1 = (*wal)->AppendPageImage(3, image.data());
    ASSERT_TRUE(l1.ok());
    auto l2 = (*wal)->AppendCommit();
    ASSERT_TRUE(l2.ok());
    EXPECT_EQ(*l2, *l1 + 1);
    // Appends buffer until the group-flush barrier.
    EXPECT_EQ((*wal)->durable_lsn(), 0u);
    ASSERT_TRUE((*wal)->Sync().ok());
    EXPECT_EQ((*wal)->durable_lsn(), *l2);
  }
  // Reopen scans the log: both records valid, LSNs continue after them.
  auto wal = Wal::OpenSim(&env, "w.wal");
  ASSERT_TRUE(wal.ok());
  auto scan = (*wal)->ReadAll();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->torn_tail_records, 0u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kPageImage);
  EXPECT_EQ(scan->records[0].page, 3u);
  EXPECT_EQ(scan->records[0].payload.size(), kPageSize);
  EXPECT_EQ(scan->records[0].payload[100], std::byte{0x5A});
  EXPECT_EQ(scan->records[1].type, WalRecordType::kCommit);
  auto l3 = (*wal)->AppendCommit();
  ASSERT_TRUE(l3.ok());
  EXPECT_EQ(*l3, scan->records[1].lsn + 1);
}

TEST(WalTest, TornTailIsCutAtScan) {
  SimEnv env;
  std::vector<std::byte> image(kPageSize, std::byte{0x11});
  {
    auto wal = Wal::OpenSim(&env, "w.wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPageImage(1, image.data()).ok());
    ASSERT_TRUE((*wal)->AppendCommit().ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Tear the commit record: drop its last 4 bytes, as a crashed append
  // would. (Direct file surgery; the controller is not armed, so these
  // ops are not crash boundaries that matter.)
  SimFile* raw = env.GetFile("w.wal");
  ASSERT_TRUE(raw->Truncate(raw->size() - 4).ok());
  ASSERT_TRUE(raw->Sync().ok());
  auto wal = Wal::OpenSim(&env, "w.wal");
  ASSERT_TRUE(wal.ok());
  auto scan = (*wal)->ReadAll();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kPageImage);
  EXPECT_EQ(scan->torn_tail_records, 1u);
  // The append offset sits at the end of the valid prefix: the next
  // append overwrites the torn bytes and the log scans clean again.
  EXPECT_EQ((*wal)->size_bytes(), scan->valid_bytes);
  ASSERT_TRUE((*wal)->AppendCommit().ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto rescan = (*wal)->ReadAll();
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->records.size(), 2u);
  EXPECT_EQ(rescan->torn_tail_records, 0u);
}

TEST(WalTest, GarbageTailIsCutAtScan) {
  SimEnv env;
  {
    auto wal = Wal::OpenSim(&env, "w.wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendCommit().ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  SimFile* raw = env.GetFile("w.wal");
  std::vector<std::byte> junk(17, std::byte{0xEE});
  ASSERT_TRUE(raw->Write(raw->size(), junk.data(), junk.size()).ok());
  ASSERT_TRUE(raw->Sync().ok());
  auto wal = Wal::OpenSim(&env, "w.wal");
  ASSERT_TRUE(wal.ok());
  auto scan = (*wal)->ReadAll();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->torn_tail_records, 1u);
}

// --------------------------------------------------------------- checksum

TEST(PageChecksumTest, CorruptionSurfacesAsDataLoss) {
  auto disk = DiskManager::CreateInMemory();
  auto p = disk->Allocate();
  ASSERT_TRUE(p.ok());
  std::byte page[kPageSize] = {};
  page[kPageHeaderBytes + 7] = std::byte{0x42};
  ASSERT_TRUE(disk->WritePage(*p, page).ok());
  ASSERT_TRUE(disk->ReadPage(*p, page).ok());
  uint64_t failures0 = CounterValue("storage.checksum_failures");
  ASSERT_TRUE(disk->CorruptPageForTest(*p, kPageHeaderBytes + 100).ok());
  Status read = disk->ReadPage(*p, page);
  EXPECT_EQ(read.code(), StatusCode::kDataLoss) << read.ToString();
  EXPECT_EQ(CounterValue("storage.checksum_failures"), failures0 + 1);
}

TEST(PageChecksumTest, AllZeroPageIsValidUnallocated) {
  auto disk = DiskManager::CreateInMemory();
  auto p = disk->Allocate();
  ASSERT_TRUE(p.ok());
  std::byte page[kPageSize];
  // Never written: reads back as zeroes with a zero checksum field, which
  // is the one accepted unstamped form.
  EXPECT_TRUE(disk->ReadPage(*p, page).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(page[i], std::byte{0}) << i;
  }
}

// ----------------------------------------------------------- recovery edge

TEST(RecoveryTest, CheckpointOnlyWalRecoversBulkLoadState) {
  SimEnv env;
  {
    auto db = BuildWithBatches(&env, 0);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    // CreateSimFrom checkpointed the bulk load; the WAL holds only that
    // checkpoint marker.
    EXPECT_GT((*db)->wal()->size_bytes(), 0u);
  }
  env.Reboot();
  uint64_t runs0 = CounterValue("storage.recovery.runs");
  uint64_t seen0 = CounterValue("storage.recovery.wal_records_seen");
  uint64_t replayed0 = CounterValue("storage.recovery.replayed");
  uint64_t discarded0 = CounterValue("storage.recovery.discarded");
  auto db = StorageDb::OpenSim(&env, kDb);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectContentEquals(**db, 0, "checkpoint-only recovery");
  EXPECT_EQ(CounterValue("storage.recovery.runs"), runs0 + 1);
  uint64_t seen = CounterValue("storage.recovery.wal_records_seen") - seen0;
  uint64_t replayed = CounterValue("storage.recovery.replayed") - replayed0;
  uint64_t discarded = CounterValue("storage.recovery.discarded") - discarded0;
  EXPECT_EQ(replayed + discarded, seen);
  EXPECT_EQ(discarded, 0u);
}

TEST(RecoveryTest, CrashBeforeCommitSyncLosesOnlyTheInFlightBatch) {
  SimEnv env;
  {
    auto db = BuildWithBatches(&env, 1);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    // Crash at the very next I/O boundary — inside batch 1's commit, long
    // before its WAL sync. Batch 0 must survive; batch 1 must vanish.
    env.controller().Arm({0, CrashVariant::kLostBuffer, 0});
    Status st = AppendBatch(db->get(), 1);
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(env.controller().crashed());
  }
  env.Reboot();
  auto db = StorageDb::OpenSim(&env, kDb);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectContentEquals(**db, 1, "crash mid-commit");
}

TEST(RecoveryTest, TornWalTailDiscardsTheUncommittedBatch) {
  SimEnv env;
  {
    auto db = BuildWithBatches(&env, 2);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
  }
  // Append a torn partial record after the committed log: the prefix of a
  // record whose suffix never made it out of the OS buffer. Recovery must
  // cut the tail, discard it, and land exactly on the two committed
  // batches.
  SimFile* raw = env.GetFile(std::string(kDb) + ".wal");
  ASSERT_GT(raw->size(), 0u);
  std::vector<std::byte> torn(11, std::byte{0xA7});
  ASSERT_TRUE(raw->Write(raw->size(), torn.data(), torn.size()).ok());
  ASSERT_TRUE(raw->Sync().ok());
  env.Reboot();
  uint64_t discarded0 = CounterValue("storage.recovery.discarded");
  auto db = StorageDb::OpenSim(&env, kDb);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Batches 0-1 were committed (and checkpointed/recovered along the
  // way); the torn uncommitted tail is discarded, never replayed.
  ExpectContentEquals(**db, 2, "torn WAL tail");
  EXPECT_GT(CounterValue("storage.recovery.discarded"), discarded0);
}

TEST(RecoveryTest, CrashAtEveryCheckpointBoundaryKeepsCommittedState) {
  // Count the checkpoint's I/O boundaries once, then crash at each of
  // them under both buffer variants. Whatever the interleaving of data
  // writes, syncs, and the log truncate, the committed two batches must
  // come back exactly.
  uint64_t checkpoint_ops = 0;
  {
    SimEnv env;
    auto db = BuildWithBatches(&env, 2);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    env.controller().StartRecording();
    ASSERT_TRUE((*db)->Checkpoint().ok());
    checkpoint_ops = env.controller().op_count();
  }
  ASSERT_GT(checkpoint_ops, 0u);
  for (uint64_t k = 0; k < checkpoint_ops; ++k) {
    for (CrashVariant variant :
         {CrashVariant::kLostBuffer, CrashVariant::kEagerBuffer}) {
      SimEnv env;
      auto db = BuildWithBatches(&env, 2);
      ASSERT_TRUE(db.ok());
      env.controller().Arm({k, variant, 0});
      Status st = (*db)->Checkpoint();
      EXPECT_FALSE(st.ok());
      EXPECT_TRUE(env.controller().crashed());
      db->reset();
      env.Reboot();
      auto reopened = StorageDb::OpenSim(&env, kDb);
      ASSERT_TRUE(reopened.ok())
          << "checkpoint op " << k << " " << CrashVariantName(variant) << ": "
          << reopened.status().ToString();
      ExpectContentEquals(**reopened, 2,
                          "checkpoint op " + std::to_string(k) + " " +
                              CrashVariantName(variant));
    }
  }
}

// Rows wide enough that every batch dirties fresh heap pages: ~1.8 KiB of
// text each, four to a page. The name column's keys are oversized for the
// B+ tree, so its index is dropped on first append — also deliberate,
// since index-drop must commit atomically with the rows that caused it.
sql::Row WideRow(int64_t id) {
  sql::Row row;
  row.push_back(Value(id));
  row.push_back(Value(std::string(1800, static_cast<char>('a' + id % 26)) +
                      std::to_string(id)));
  return row;
}

Status AppendWideBatch(StorageDb* db, int b) {
  // Four wide rows ~ one fresh heap page per batch: enough churn to evict
  // the PREVIOUS batch's committed pages, small enough that one batch's
  // own dirty set still fits the 4-frame no-steal pool.
  std::vector<sql::Row> rows;
  for (int r = 0; r < 4; ++r) {
    rows.push_back(WideRow(1000 + b * 4 + r));
  }
  CODES_RETURN_IF_ERROR(db->AppendRows(0, rows));
  return db->CommitBatch();
}

TEST(RecoveryTest, CrashDuringEvictionWriteBackRecovers) {
  // A 4-frame pool plus wide rows (each batch stages ~2 fresh heap pages,
  // the catalog page, and id-index pages — more dirty pages than frames)
  // forces committed dirty pages out to the data file while later batches
  // are being staged. Find those eviction write-backs in the recorded
  // trace (the only kPageSize-sized writes between commits when
  // checkpointing is off; WAL appends are group-buffered into larger
  // flushes) and crash on each, including the torn-write variant: the
  // page's image is in the WAL, so replay must repair the tear.
  constexpr int kBatches = 5;
  std::vector<CrashOpRecord> trace;
  std::vector<uint64_t> ops_after_batch;
  {
    SimEnv env;
    sql::Database src = MakeSource();
    auto db = StorageDb::CreateSimFrom(src, &env, kDb, /*pool_frames=*/4);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    env.controller().StartRecording();
    for (int b = 0; b < kBatches; ++b) {
      Status appended = AppendWideBatch(db->get(), b);
      ASSERT_TRUE(appended.ok()) << appended.ToString();
      ops_after_batch.push_back(env.controller().op_count());
    }
    trace = env.controller().trace();
  }
  std::vector<uint64_t> eviction_ops;
  for (uint64_t k = 0; k < trace.size(); ++k) {
    if (trace[k].kind == CrashOpRecord::Kind::kWrite &&
        trace[k].bytes == kPageSize) {
      eviction_ops.push_back(k);
    }
  }
  ASSERT_FALSE(eviction_ops.empty())
      << "workload produced no eviction write-backs; widen the rows or "
         "shrink the pool";
  for (uint64_t k : eviction_ops) {
    for (CrashVariant variant :
         {CrashVariant::kLostBuffer, CrashVariant::kTorn}) {
      SimEnv env;
      sql::Database src = MakeSource();
      auto db = StorageDb::CreateSimFrom(src, &env, kDb, /*pool_frames=*/4);
      ASSERT_TRUE(db.ok());
      env.controller().Arm(
          {k, variant, variant == CrashVariant::kTorn ? kPageSize / 2 : 0});
      int batches_done = 0;
      for (int b = 0; b < kBatches; ++b) {
        if (!AppendWideBatch(db->get(), b).ok()) break;
        ++batches_done;
      }
      EXPECT_TRUE(env.controller().crashed());
      db->reset();
      env.Reboot();
      auto reopened = StorageDb::OpenSim(&env, kDb, /*pool_frames=*/4);
      ASSERT_TRUE(reopened.ok())
          << "eviction op " << k << " " << CrashVariantName(variant) << ": "
          << reopened.status().ToString();
      // An eviction crash happens between commit barriers: exactly the
      // batches whose commit preceded op k survive.
      int expect = 0;
      while (expect < static_cast<int>(ops_after_batch.size()) &&
             ops_after_batch[expect] <= k) {
        ++expect;
      }
      EXPECT_EQ(batches_done, expect);
      std::string context = "eviction op " + std::to_string(k) + " " +
                            CrashVariantName(variant);
      std::vector<sql::Row> want;
      for (int i = 0; i < kInitialRows; ++i) want.push_back(MakeRow(i));
      for (int b = 0; b < expect; ++b) {
        for (int r = 0; r < 4; ++r) want.push_back(WideRow(1000 + b * 4 + r));
      }
      auto got = (*reopened)->Materialize(0);
      ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
      ASSERT_EQ(got->size(), want.size()) << context;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ((*got)[i].size(), want[i].size()) << context << " row " << i;
        for (size_t c = 0; c < want[i].size(); ++c) {
          ASSERT_TRUE((*got)[i][c] == want[i][c])
              << context << " row " << i << " col " << c;
        }
      }
    }
  }
}

TEST(RecoveryTest, DoubleRecoveryIsIdempotent) {
  SimEnv env;
  {
    auto db = BuildWithBatches(&env, 2);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    env.controller().Arm({2, CrashVariant::kEagerBuffer, 0});
    Status st = AppendBatch(db->get(), 2);
    EXPECT_FALSE(st.ok());
  }
  env.Reboot();
  int first_batches = -1;
  {
    auto db = StorageDb::OpenSim(&env, kDb);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto rows = (*db)->Materialize(0);
    ASSERT_TRUE(rows.ok());
    first_batches =
        static_cast<int>((rows->size() - kInitialRows) / kRowsPerBatch);
    ExpectContentEquals(**db, first_batches, "first recovery");
  }
  // Recovery checkpointed: a second power-cycle and reopen replays an
  // already-materialized log — same state, nothing newly discarded.
  env.Reboot();
  uint64_t discarded0 = CounterValue("storage.recovery.discarded");
  auto db = StorageDb::OpenSim(&env, kDb);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectContentEquals(**db, first_batches, "second recovery");
  EXPECT_EQ(CounterValue("storage.recovery.discarded"), discarded0);
}

// -------------------------------------------------------- campaign harness

TEST(CrashCampaignTest, TinyCampaignRunsClean) {
  CrashCampaignConfig config;
  config.seed = 7;
  config.batches = 4;
  config.rows_per_batch = 2;
  config.checkpoint_every = 2;
  config.pool_frames = 8;
  config.threads = 2;
  auto result = RunCrashCampaign(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->boundaries, 0u);
  EXPECT_GT(result->cases_run, result->boundaries);  // >= 2 variants each
  EXPECT_EQ(result->failures, 0u) << (result->failed.empty()
                                          ? ""
                                          : result->failed[0].error);
  EXPECT_EQ(result->wal_records_replayed + result->wal_records_discarded,
            result->wal_records_seen);
  EXPECT_GE(result->recovery_runs, result->cases_run);
}

// Replays tests/fuzz_corpus/crash.corpus: one crash case per line,
// pinned from earlier campaign coverage so regressions on specific
// boundaries (commit sync, checkpoint truncate, torn page writes) fail
// individually and reproducibly.
// Format: batches=<n> checkpoint=<n> seed=<s> op=<k> variant=<name>
TEST(CrashCorpusTest, CorpusReplaysClean) {
  std::ifstream in(std::string(CODES_FUZZ_CORPUS_DIR) + "/crash.corpus");
  ASSERT_TRUE(in.good()) << "missing crash.corpus";
  std::string line;
  int replayed = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    CrashCampaignConfig config;
    uint64_t op = 0;
    CrashVariant variant = CrashVariant::kLostBuffer;
    bool have_op = false;
    std::istringstream fields(line);
    std::string field;
    while (fields >> field) {
      auto eq = field.find('=');
      ASSERT_NE(eq, std::string::npos) << "line " << line_no;
      std::string key = field.substr(0, eq);
      std::string value = field.substr(eq + 1);
      if (key == "batches") {
        config.batches = std::stoi(value);
      } else if (key == "checkpoint") {
        config.checkpoint_every = std::stoi(value);
      } else if (key == "seed") {
        config.seed = std::stoull(value);
      } else if (key == "op") {
        op = std::stoull(value);
        have_op = true;
      } else if (key == "variant") {
        if (value == "lost_buffer") {
          variant = CrashVariant::kLostBuffer;
        } else if (value == "eager_buffer") {
          variant = CrashVariant::kEagerBuffer;
        } else if (value == "torn") {
          variant = CrashVariant::kTorn;
        } else {
          FAIL() << "line " << line_no << ": unknown variant " << value;
        }
      } else {
        FAIL() << "line " << line_no << ": unknown key " << key;
      }
    }
    ASSERT_TRUE(have_op) << "line " << line_no;
    auto outcome = RunCrashCase(config, op, variant);
    ASSERT_TRUE(outcome.ok())
        << "line " << line_no << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->error.empty())
        << "line " << line_no << " (op=" << op << " variant="
        << CrashVariantName(variant) << "): " << outcome->error;
    ++replayed;
  }
  EXPECT_GE(replayed, 8) << "crash.corpus should pin a spread of boundaries";
}

}  // namespace
}  // namespace codes::storage
