#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "corpus/pretrain_corpus.h"
#include "sqlengine/executor.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/templates.h"
#include "eval/metrics.h"
#include "generator/capacity.h"
#include "generator/codes_model.h"

namespace codes {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new Text2SqlBenchmark(BuildTinySpiderLike(99));
    zoo_ = new LmZoo(1, 31);
  }
  static void TearDownTestSuite() {
    delete zoo_;
    delete bench_;
  }
  static Text2SqlBenchmark* bench_;
  static LmZoo* zoo_;
};
Text2SqlBenchmark* GeneratorTest::bench_ = nullptr;
LmZoo* GeneratorTest::zoo_ = nullptr;

TEST_F(GeneratorTest, CapacityProfilesAreMonotone) {
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  ASSERT_EQ(count, 4);
  for (int i = 1; i < count; ++i) {
    const auto& prev = ProfileFor(sizes[i - 1]);
    const auto& cur = ProfileFor(sizes[i]);
    EXPECT_GT(cur.params_billion, prev.params_billion);
    EXPECT_GE(cur.embedding_dim, prev.embedding_dim);
    EXPECT_GE(cur.ngram_order, prev.ngram_order);
    EXPECT_LE(cur.decode_noise, prev.decode_noise);
    EXPECT_GE(cur.candidate_templates, prev.candidate_templates);
  }
  // Table 1: only the 15B model has the reduced 6,144-token context.
  EXPECT_EQ(ProfileFor(ModelSize::k15B).max_context_tokens, 6144);
  EXPECT_EQ(ProfileFor(ModelSize::k7B).max_context_tokens, 8192);
}

TEST_F(GeneratorTest, GenerationIsDeterministic) {
  PipelineConfig config;
  config.size = ModelSize::k3B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.FineTune(*bench_);
  const auto& s = bench_->dev[0];
  EXPECT_EQ(pipeline.Predict(*bench_, s), pipeline.Predict(*bench_, s));
}

TEST_F(GeneratorTest, PredictionsAreExecutable) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.FineTune(*bench_);
  int executable = 0;
  for (const auto& s : bench_->dev) {
    std::string predicted = pipeline.Predict(*bench_, s);
    if (sql::IsExecutable(bench_->DbOf(s), predicted)) ++executable;
  }
  // Beam selection returns the first executable candidate; nearly every
  // prediction should run.
  EXPECT_GE(executable, static_cast<int>(bench_->dev.size()) - 1);
}

TEST_F(GeneratorTest, FineTuningImprovesAccuracy) {
  // Needs enough training data for centroids to cover the template space;
  // the tiny fixture is too sparse, so build a medium benchmark.
  BenchmarkConfig bench_config;
  bench_config.name = "medium";
  bench_config.train_domains = 8;
  bench_config.dev_domains = 3;
  bench_config.train_samples_per_db = 40;
  bench_config.dev_samples_per_db = 15;
  bench_config.seed = 321;
  auto medium = BuildBenchmark(bench_config);

  PipelineConfig config;
  config.size = ModelSize::k7B;
  EvalOptions options;

  CodesPipeline raw(config, zoo_->CodesFor(config.size));
  raw.TrainClassifier(medium);
  auto before = EvaluateDevSet(medium, raw.PredictorFor(medium), options);

  CodesPipeline tuned(config, zoo_->CodesFor(config.size));
  tuned.TrainClassifier(medium);
  tuned.FineTune(medium);
  auto after = EvaluateDevSet(medium, tuned.PredictorFor(medium), options);
  EXPECT_GT(after.ex, before.ex);
}

TEST_F(GeneratorTest, BeamRespectsWidthAndOrdering) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  pipeline.FineTune(*bench_);
  const auto& s = bench_->dev[0];
  auto prompt = pipeline.BuildPrompt(*bench_, s);
  GenerationInput input;
  input.db = &bench_->DbOf(s);
  input.prompt = &prompt;
  input.question = s.question;
  auto beam = pipeline.model().GenerateBeam(input, 7);
  ASSERT_FALSE(beam.empty());
  EXPECT_LE(beam.size(),
            static_cast<size_t>(pipeline.model().profile().beam_width));
  for (size_t i = 1; i < beam.size(); ++i) {
    EXPECT_GE(beam[i - 1].score, beam[i].score);
  }
}

TEST_F(GeneratorTest, SchemaFilterGatesGeneration) {
  // With an empty prompt (no kept tables), generation cannot reference
  // the schema and falls back.
  PipelineConfig config;
  config.size = ModelSize::k3B;
  CodesPipeline pipeline(config, zoo_->CodesFor(config.size));
  pipeline.TrainClassifier(*bench_);
  const auto& s = bench_->dev[0];
  DatabasePrompt empty;  // nothing kept, nothing matched
  GenerationInput input;
  input.db = &bench_->DbOf(s);
  input.prompt = &empty;
  input.question = s.question;
  auto beam = pipeline.model().GenerateBeam(input, 3);
  for (const auto& cand : beam) {
    // Only slot-free templates (none exist: all need a table) could fire;
    // the beam should be empty or non-executable fallbacks.
    EXPECT_TRUE(cand.sql.empty() || !cand.executable || cand.sql == "SELECT 1");
  }
}

TEST_F(GeneratorTest, DemonstrationsInfluenceIcl) {
  PipelineConfig config;
  config.size = ModelSize::k7B;
  config.icl_shots = 3;
  EvalOptions options;

  CodesPipeline with(config, zoo_->CodesFor(config.size));
  with.TrainClassifier(*bench_);
  with.SetDemonstrationPool(bench_->train);
  auto m_with = EvaluateDevSet(*bench_, with.PredictorFor(*bench_), options);

  CodesPipeline zero(config, zoo_->CodesFor(config.size));
  zero.TrainClassifier(*bench_);
  // No demonstration pool set: zero-shot.
  auto m_zero = EvaluateDevSet(*bench_, zero.PredictorFor(*bench_), options);
  EXPECT_GE(m_with.ex, m_zero.ex);
}

TEST_F(GeneratorTest, ExtraNoiseDegradesBaselines) {
  PipelineConfig clean;
  clean.size = ModelSize::k7B;
  clean.icl_shots = 3;
  PipelineConfig noisy = clean;
  noisy.extra_model_noise = 1.2;  // extreme family-quality penalty

  EvalOptions options;
  CodesPipeline a(clean, zoo_->BaseFor(clean.size));
  a.TrainClassifier(*bench_);
  a.SetDemonstrationPool(bench_->train);
  auto m_clean = EvaluateDevSet(*bench_, a.PredictorFor(*bench_), options);

  CodesPipeline b(noisy, zoo_->BaseFor(noisy.size));
  b.TrainClassifier(*bench_);
  b.SetDemonstrationPool(bench_->train);
  auto m_noisy = EvaluateDevSet(*bench_, b.PredictorFor(*bench_), options);
  EXPECT_GT(m_clean.ex, m_noisy.ex);
}

TEST_F(GeneratorTest, BaselineTableCoversSixteenModels) {
  auto specs = Table4Baselines();
  EXPECT_EQ(specs.size(), 16u);
  int codes_rows = 0;
  for (const auto& spec : specs) {
    if (spec.sql_pretrained) ++codes_rows;
  }
  EXPECT_EQ(codes_rows, 4);
}

TEST_F(GeneratorTest, LmZooPerplexityOrdering) {
  auto sql_eval = BuildSqlEvalSet(60, 13);
  for (int order = 2; order <= 5; ++order) {
    EXPECT_LT(zoo_->Codes(order).Perplexity(sql_eval),
              zoo_->Base(order).Perplexity(sql_eval))
        << "order " << order;
  }
}

}  // namespace
}  // namespace codes
