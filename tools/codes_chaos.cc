// codes_chaos: fault-injection campaign runner for the serving path.
//
// Runs dev-set prediction through CodesPipeline::PredictGuarded while the
// failpoint registry injects faults at every serving site, and asserts the
// degradation-ladder invariants: no crash, every request answered with
// non-empty SQL, and — because fault decisions are slot-based — the whole
// campaign byte-identical for any --threads value.
//
// Modes:
//   campaign (default)  codes_chaos --queries=10000 --threads=8 --seed=1
//   smoke               codes_chaos --smoke   (small fixed-seed campaign
//                                              with a built-in 1-vs-N
//                                              thread determinism check)
//
// Faults default to every site at --rate; --spec overrides with the full
// failpoint grammar (e.g. "lm.decode=prob:0.2;executor.step=nth:7").
// Campaign stdout is byte-identical across thread counts (timing goes to
// stderr). Exit status: 0 clean, 1 invariant violation, 2 usage error.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace {

struct Flags {
  int queries = 10000;
  int threads = 8;
  uint64_t seed = 1;
  double rate = 0.01;
  size_t max_rows = 20000;
  std::string spec;  ///< overrides the --rate-derived spec when non-empty
  std::string metrics_out;  ///< JSON metrics snapshot path (optional)
  bool smoke = false;
  bool selfcheck = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: codes_chaos [--queries=N] [--threads=N] [--seed=S]\n"
               "                   [--rate=P] [--spec=SPEC] [--max-rows=N]\n"
               "                   [--metrics-out=PATH] [--selfcheck]\n"
               "                   [--smoke]\n");
}

/// FNV-1a over the campaign's (sql, report) lines in sample order; the
/// single number CI compares across thread counts and reruns.
struct Digest {
  uint64_t value = 1469598103934665603ULL;
  void Add(const std::string& s) {
    for (char c : s) {
      value ^= static_cast<unsigned char>(c);
      value *= 1099511628211ULL;
    }
  }
};

struct CampaignResult {
  uint64_t digest = 0;
  uint64_t queries = 0;
  uint64_t verified = 0;
  uint64_t unverified = 0;
  uint64_t empty_sql = 0;
  uint64_t rung_counts[4] = {0, 0, 0, 0};
  uint64_t site_fired[codes::kNumFailpointSites] = {0, 0, 0, 0, 0};
};

/// Runs `flags.queries` predictions in rounds over the dev set. Each round
/// reconfigures the registry with seed + round so consecutive visits of
/// the same sample draw different faults (within one round the per-sample
/// slot pins every decision, independent of scheduling).
CampaignResult RunCampaign(const codes::CodesPipeline& pipeline,
                           const codes::Text2SqlBenchmark& bench,
                           const Flags& flags, const std::string& spec,
                           int threads) {
  const auto& dev = bench.dev;
  codes::ServeOptions options;
  options.limits.max_rows = flags.max_rows;

  CampaignResult result;
  Digest digest;
  codes::ThreadPool pool(threads);
  int done = 0;
  for (uint64_t round = 0; done < flags.queries; ++round) {
    codes::Status configured =
        codes::Failpoints::Configure(spec, flags.seed + round);
    CODES_CHECK(configured.ok());
    size_t batch = std::min(dev.size(),
                            static_cast<size_t>(flags.queries - done));
    std::vector<std::pair<std::string, codes::ServeReport>> slots(batch);
    pool.ParallelFor(batch, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        codes::ServeReport report;
        std::string sql =
            pipeline.PredictGuarded(bench, dev[i], options, &report);
        slots[i] = {std::move(sql), std::move(report)};
      }
    });
    for (const auto& [sql, report] : slots) {
      digest.Add(sql);
      digest.Add(" | ");
      digest.Add(report.ToString());
      digest.Add("\n");
      ++result.queries;
      if (sql.empty()) ++result.empty_sql;
      if (report.execution_verified) {
        ++result.verified;
      } else {
        ++result.unverified;
      }
      for (codes::ServeRung rung : report.rungs) {
        ++result.rung_counts[static_cast<int>(rung)];
      }
    }
    // Fired counters reset on the next Configure: harvest per round.
    for (int s = 0; s < codes::kNumFailpointSites; ++s) {
      result.site_fired[s] += codes::Failpoints::FiredCount(
          static_cast<codes::FailpointSite>(s));
    }
    done += static_cast<int>(batch);
  }
  codes::Failpoints::Clear();
  result.digest = digest.value;
  return result;
}

void PrintResult(const CampaignResult& r, const std::string& spec,
                 uint64_t seed) {
  std::printf("chaos campaign: queries=%" PRIu64 " seed=%" PRIu64
              " spec=\"%s\"\n",
              r.queries, seed, spec.c_str());
  std::printf("served: verified=%" PRIu64 " unverified=%" PRIu64
              " empty_sql=%" PRIu64 "\n",
              r.verified, r.unverified, r.empty_sql);
  std::printf("rungs fired:");
  for (int i = 0; i < 4; ++i) {
    std::printf(" %s=%" PRIu64,
                codes::ServeRungName(static_cast<codes::ServeRung>(i)),
                r.rung_counts[i]);
  }
  std::printf("\n");
  std::printf("faults injected:");
  for (int s = 0; s < codes::kNumFailpointSites; ++s) {
    std::printf(" %s=%" PRIu64,
                codes::FailpointSiteName(static_cast<codes::FailpointSite>(s)),
                r.site_fired[s]);
  }
  std::printf("\n");
  std::printf("digest=%016" PRIx64 "\n", r.digest);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    bool ok = true;
    if (ParseFlag(argv[i], "--queries", &value)) {
      ok = codes::ParseInt(value, &flags.queries);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      ok = codes::ParseInt(value, &flags.threads);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      ok = codes::ParseUint64(value, &flags.seed);
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.rate);
    } else if (ParseFlag(argv[i], "--max-rows", &value)) {
      ok = codes::ParseSize(value, &flags.max_rows);
    } else if (ParseFlag(argv[i], "--spec", &value)) {
      flags.spec = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(argv[i], "--selfcheck", &value)) {
      flags.selfcheck = true;
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      flags.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value in flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (flags.smoke) {
    // Fixed, fast configuration for ctest / CI gating.
    flags.queries = 400;
    flags.threads = 2;
    flags.seed = 20240806;
    flags.rate = 0.05;
    flags.selfcheck = true;
  }
  if (flags.queries < 1 || flags.threads < 1 || flags.rate < 0.0 ||
      flags.rate > 1.0) {
    Usage();
    return 2;
  }

  std::string spec = flags.spec;
  if (spec.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "*=prob:%g", flags.rate);
    spec = buf;
  }

  auto start = std::chrono::steady_clock::now();
  // Fixture: the tiny Spider-like benchmark with a fully set-up pipeline
  // (trained classifier + SFT), the same serving configuration the
  // evaluation harness exercises.
  auto bench = codes::BuildTinySpiderLike(2024);
  codes::LmZoo zoo(1, 31);
  codes::PipelineConfig config;
  config.size = codes::ModelSize::k7B;
  codes::CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // Setup (training, cache warm-up) is done: zero the registry so the
  // exported snapshot covers exactly the campaign's requests.
  codes::MetricsRegistry::Global().Reset();

  CampaignResult result =
      RunCampaign(pipeline, bench, flags, spec, flags.threads);
  // Snapshot immediately after the campaign, before the selfcheck replay
  // adds its own requests.
  codes::MetricsSnapshot snapshot = codes::MetricsRegistry::Global().Snapshot();
  PrintResult(result, spec, flags.seed);

  int exit_code = 0;
  if (result.empty_sql > 0) {
    std::printf("INVARIANT VIOLATION: %" PRIu64 " empty predictions\n",
                result.empty_sql);
    exit_code = 1;
  }

  // Metrics invariant: every request lands in exactly one serve.outcome.*
  // counter, so the family sums to the number of queries served.
  {
    uint64_t outcome_sum = 0;
    for (const auto& [name, value] : snapshot.counters) {
      if (name.rfind("serve.outcome.", 0) == 0) outcome_sum += value;
    }
    uint64_t requests = snapshot.counters.count("serve.requests")
                            ? snapshot.counters.at("serve.requests")
                            : 0;
    if (outcome_sum != result.queries || requests != result.queries) {
      std::printf("INVARIANT VIOLATION: outcome counters sum to %" PRIu64
                  ", serve.requests=%" PRIu64 ", but %" PRIu64
                  " queries were served\n",
                  outcome_sum, requests, result.queries);
      exit_code = 1;
    } else {
      std::printf("metrics: serve.outcome.* sums to %" PRIu64
                  " == queries served\n",
                  outcome_sum);
    }
  }
  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  if (flags.selfcheck) {
    // The whole campaign must replay byte-identically single-threaded:
    // fault decisions and ladder outcomes depend on (seed, sample), never
    // on scheduling.
    codes::MetricsRegistry::Global().Reset();
    CampaignResult serial = RunCampaign(pipeline, bench, flags, spec, 1);
    if (serial.digest == result.digest) {
      std::printf("selfcheck: 1-thread replay digest matches\n");
    } else {
      std::printf("selfcheck FAILED: %d-thread digest %016" PRIx64
                  " != 1-thread digest %016" PRIx64 "\n",
                  flags.threads, result.digest, serial.digest);
      exit_code = 1;
    }
  }

  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (%d threads)\n",
               static_cast<long long>(elapsed), flags.threads);
  return exit_code;
}
