// codes_crash: deterministic crash-recovery campaign runner.
//
// Runs the DESIGN.md section 15 campaign: a WAL-enabled StorageDb executes
// a deterministic mixed insert/index workload inside the simulated-crash
// environment, then the harness crashes it at EVERY write/sync/truncate
// boundary (times three crash variants: lost buffers, eagerly flushed
// buffers, torn writes), reboots, recovers, and differentially checks the
// recovered state against a pure-function oracle. The per-case outcomes
// fold into one FNV digest that is independent of --threads, which
// --selfcheck pins with a 1-thread replay.
//
// Modes:
//   campaign (default)  codes_crash --batches=200 --threads=8 --seed=1
//   smoke               codes_crash --smoke   (small fixed-seed campaign
//                                              with the determinism check)
//
// Campaign stdout is byte-identical across thread counts (timing goes to
// stderr). Exit status: 0 clean, 1 invariant violation, 2 usage error.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"
#include "storage/crash_harness.h"

namespace {

struct Flags {
  int batches = 200;
  int rows_per_batch = 3;
  int initial_rows = 8;
  int checkpoint_every = 9;
  int threads = 8;
  uint64_t seed = 1;
  size_t pool_frames = 16;
  uint64_t max_cases = 0;
  bool torn = true;
  std::string metrics_out;  ///< JSON metrics snapshot path (optional)
  bool smoke = false;
  bool selfcheck = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: codes_crash [--batches=N] [--rows-per-batch=N]\n"
               "                   [--initial-rows=N] [--checkpoint-every=N]\n"
               "                   [--threads=N] [--seed=S] [--pool-frames=N]\n"
               "                   [--max-cases=N] [--no-torn]\n"
               "                   [--metrics-out=PATH] [--selfcheck]\n"
               "                   [--smoke]\n");
}

codes::storage::CrashCampaignConfig MakeConfig(const Flags& flags,
                                               int threads) {
  codes::storage::CrashCampaignConfig config;
  config.seed = flags.seed;
  config.batches = flags.batches;
  config.rows_per_batch = flags.rows_per_batch;
  config.initial_rows = flags.initial_rows;
  config.checkpoint_every = flags.checkpoint_every;
  config.pool_frames = flags.pool_frames;
  config.threads = threads;
  config.torn_variants = flags.torn;
  config.max_cases = flags.max_cases;
  return config;
}

void PrintResult(const codes::storage::CrashCampaignResult& r,
                 const Flags& flags) {
  std::printf("crash campaign: batches=%d rows_per_batch=%d seed=%" PRIu64
              " checkpoint_every=%d pool_frames=%zu\n",
              flags.batches, flags.rows_per_batch, flags.seed,
              flags.checkpoint_every, flags.pool_frames);
  std::printf("boundaries=%" PRIu64 " cases_run=%" PRIu64
              " cases_dropped=%" PRIu64 " failures=%" PRIu64 "\n",
              r.boundaries, r.cases_run, r.cases_dropped, r.failures);
  for (const codes::storage::CrashCaseOutcome& f : r.failed) {
    std::printf("FAILED case op=%" PRIu64 " variant=%s: %s\n", f.crash_op,
                codes::storage::CrashVariantName(f.variant), f.error.c_str());
  }
  std::printf("recovery: runs=%" PRIu64 " wal_records_seen=%" PRIu64
              " replayed=%" PRIu64 " discarded=%" PRIu64 "\n",
              r.recovery_runs, r.wal_records_seen, r.wal_records_replayed,
              r.wal_records_discarded);
  std::printf("digest=%016" PRIx64 "\n", r.digest);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    bool ok = true;
    if (ParseFlag(argv[i], "--batches", &value)) {
      ok = codes::ParseInt(value, &flags.batches);
    } else if (ParseFlag(argv[i], "--rows-per-batch", &value)) {
      ok = codes::ParseInt(value, &flags.rows_per_batch);
    } else if (ParseFlag(argv[i], "--initial-rows", &value)) {
      ok = codes::ParseInt(value, &flags.initial_rows);
    } else if (ParseFlag(argv[i], "--checkpoint-every", &value)) {
      ok = codes::ParseInt(value, &flags.checkpoint_every);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      ok = codes::ParseInt(value, &flags.threads);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      ok = codes::ParseUint64(value, &flags.seed);
    } else if (ParseFlag(argv[i], "--pool-frames", &value)) {
      ok = codes::ParseSize(value, &flags.pool_frames);
    } else if (ParseFlag(argv[i], "--max-cases", &value)) {
      ok = codes::ParseUint64(value, &flags.max_cases);
    } else if (ParseFlag(argv[i], "--no-torn", &value)) {
      flags.torn = false;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(argv[i], "--selfcheck", &value)) {
      flags.selfcheck = true;
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      flags.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value in flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (flags.smoke) {
    // Fixed, fast configuration for ctest / CI gating.
    flags.batches = 24;
    flags.rows_per_batch = 3;
    flags.checkpoint_every = 5;
    flags.threads = 2;
    flags.seed = 20240807;
    flags.selfcheck = true;
  }
  if (flags.batches < 1 || flags.rows_per_batch < 1 || flags.initial_rows < 0 ||
      flags.checkpoint_every < 0 || flags.threads < 1 ||
      flags.pool_frames < 2) {
    Usage();
    return 2;
  }

  auto start = std::chrono::steady_clock::now();
  // Zero the registry so the exported snapshot covers exactly this
  // campaign's storage traffic.
  codes::MetricsRegistry::Global().Reset();

  codes::Result<codes::storage::CrashCampaignResult> run =
      codes::storage::RunCrashCampaign(MakeConfig(flags, flags.threads));
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed to run: %s\n",
                 run.status().ToString().c_str());
    return 2;
  }
  const codes::storage::CrashCampaignResult& result = *run;
  // Snapshot immediately after the campaign, before the selfcheck replay
  // adds its own recoveries.
  codes::MetricsSnapshot snapshot = codes::MetricsRegistry::Global().Snapshot();
  PrintResult(result, flags);

  int exit_code = 0;
  if (result.failures > 0) {
    std::printf("INVARIANT VIOLATION: %" PRIu64
                " crash cases failed recovery or the differential check\n",
                result.failures);
    exit_code = 1;
  }
  // Metrics invariant: recovery classifies every scanned WAL record as
  // either replayed or discarded — no third bucket, no double counting.
  if (result.wal_records_replayed + result.wal_records_discarded !=
      result.wal_records_seen) {
    std::printf("INVARIANT VIOLATION: replayed %" PRIu64 " + discarded %" PRIu64
                " != wal_records_seen %" PRIu64 "\n",
                result.wal_records_replayed, result.wal_records_discarded,
                result.wal_records_seen);
    exit_code = 1;
  } else {
    std::printf("metrics: storage.recovery.replayed + discarded == "
                "wal_records_seen (%" PRIu64 ")\n",
                result.wal_records_seen);
  }
  if (result.recovery_runs < result.cases_run) {
    std::printf("INVARIANT VIOLATION: %" PRIu64 " recovery runs for %" PRIu64
                " cases\n",
                result.recovery_runs, result.cases_run);
    exit_code = 1;
  }

  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  if (flags.selfcheck) {
    // The whole campaign must replay byte-identically single-threaded:
    // every crash case owns its own SimEnv and outcome slot, so the
    // digest depends only on (config, seed), never on scheduling.
    codes::Result<codes::storage::CrashCampaignResult> serial =
        codes::storage::RunCrashCampaign(MakeConfig(flags, 1));
    if (!serial.ok()) {
      std::fprintf(stderr, "selfcheck replay failed to run: %s\n",
                   serial.status().ToString().c_str());
      return 2;
    }
    if (serial->digest == result.digest) {
      std::printf("selfcheck: 1-thread replay digest matches\n");
    } else {
      std::printf("selfcheck FAILED: %d-thread digest %016" PRIx64
                  " != 1-thread digest %016" PRIx64 "\n",
                  flags.threads, result.digest, serial->digest);
      exit_code = 1;
    }
  }

  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (%d threads)\n",
               static_cast<long long>(elapsed), flags.threads);
  return exit_code;
}
