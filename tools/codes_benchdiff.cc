// codes_benchdiff: the CI perf-regression gate.
//
//   codes_benchdiff <committed.json> <current.json> [--max-regress-pct=15]
//   codes_benchdiff --selftest
//
// Both inputs are PerfReport snapshots (bench/perf_report.h). The tool
// hard-fails (exit 1) on schema drift — bench/profile mismatch, any
// metric added or removed, noisy-allowlist drift — and on any gated
// metric regressing by more than the threshold after calibration
// normalization. Key suffixes carry unit and direction: _us/_ms/_seconds
// time-like lower-better (scaled by the current/committed calibration
// ratio), _per_sec/_qps rate-like higher-better (divided by it),
// _speedup_x and _ex_pct raw higher-better, other _pct raw lower-better.
// Metrics in the `noisy` allowlist are printed but never gate.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace {

struct Report {
  std::string bench;
  std::string profile;
  double calibration = 0.0;
  std::set<std::string> noisy;
  std::map<std::string, double> metrics;
};

// Minimal parser for the flat PerfReport JSON: quoted keys, string/number
// scalars, one string array ("noisy"), one nested object ("metrics").
struct Parser {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void Skip() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool Eat(char c) {
    Skip();
    if (i < s.size() && s[i] == c) { ++i; return true; }
    ok = false;
    return false;
  }
  std::string String() {
    Skip();
    std::string out;
    if (!Eat('"')) return out;
    while (i < s.size() && s[i] != '"') out += s[i++];
    Eat('"');
    return out;
  }
  double Number() {
    Skip();
    size_t end = 0;
    double v = 0.0;
    try {
      v = std::stod(s.substr(i), &end);
    } catch (...) {
      ok = false;
      return 0.0;
    }
    i += end;
    return v;
  }
};

bool ParseReport(const std::string& text, Report* out) {
  Parser p{text};
  if (!p.Eat('{')) return false;
  while (p.ok) {
    std::string key = p.String();
    p.Eat(':');
    if (key == "bench") {
      out->bench = p.String();
    } else if (key == "profile") {
      out->profile = p.String();
    } else if (key == "calibration_ops_per_sec") {
      out->calibration = p.Number();
    } else if (key == "schema_version") {
      (void)p.Number();
    } else if (key == "noisy") {
      p.Eat('[');
      p.Skip();
      while (p.ok && p.i < text.size() && text[p.i] != ']') {
        out->noisy.insert(p.String());
        p.Skip();
        if (p.i < text.size() && text[p.i] == ',') { ++p.i; p.Skip(); }
      }
      p.Eat(']');
    } else if (key == "metrics") {
      p.Eat('{');
      p.Skip();
      while (p.ok && p.i < text.size() && text[p.i] != '}') {
        std::string name = p.String();
        p.Eat(':');
        out->metrics[name] = p.Number();
        p.Skip();
        if (p.i < text.size() && text[p.i] == ',') { ++p.i; p.Skip(); }
      }
      p.Eat('}');
    } else {
      return false;  // unknown field: the schema is closed
    }
    p.Skip();
    if (p.i < text.size() && text[p.i] == ',') { ++p.i; continue; }
    break;
  }
  p.Eat('}');
  return p.ok && !out->bench.empty() && out->calibration > 0.0;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class Direction { kLowerTime, kHigherRate, kHigherRaw, kLowerRaw, kInfo };

Direction Classify(const std::string& key) {
  if (EndsWith(key, "_speedup_x") || EndsWith(key, "_ex_pct"))
    return Direction::kHigherRaw;
  if (EndsWith(key, "_pct")) return Direction::kLowerRaw;
  if (EndsWith(key, "_us") || EndsWith(key, "_ms") || EndsWith(key, "_seconds"))
    return Direction::kLowerTime;
  if (EndsWith(key, "_per_sec") || EndsWith(key, "_qps"))
    return Direction::kHigherRate;
  return Direction::kInfo;
}

int Compare(const Report& committed, const Report& current, double max_pct) {
  int failures = 0;
  if (committed.bench != current.bench ||
      committed.profile != current.profile) {
    std::fprintf(stderr, "FAIL: bench/profile mismatch (%s/%s vs %s/%s)\n",
                 committed.bench.c_str(), committed.profile.c_str(),
                 current.bench.c_str(), current.profile.c_str());
    return 1;
  }
  for (const auto& [key, _] : committed.metrics) {
    if (!current.metrics.count(key)) {
      std::fprintf(stderr, "FAIL: metric removed: %s\n", key.c_str());
      ++failures;
    }
  }
  for (const auto& [key, _] : current.metrics) {
    if (!committed.metrics.count(key)) {
      std::fprintf(stderr, "FAIL: metric added: %s\n", key.c_str());
      ++failures;
    }
  }
  if (committed.noisy != current.noisy) {
    std::fprintf(stderr, "FAIL: noisy allowlist drifted\n");
    ++failures;
  }
  if (failures > 0) return 1;

  // Machine-speed ratio: < 1 means the current machine is slower, so its
  // raw times shrink (and rates grow) before comparison.
  const double ratio = current.calibration / committed.calibration;
  std::printf("calibration: committed %.0f ops/s, current %.0f ops/s "
              "(ratio %.3f)\n", committed.calibration, current.calibration,
              ratio);
  std::printf("%-34s %12s %12s %12s  %s\n", "metric", "committed", "current",
              "adjusted", "verdict");
  for (const auto& [key, base] : committed.metrics) {
    const double raw = current.metrics.at(key);
    const Direction dir = Classify(key);
    double adjusted = raw;
    if (dir == Direction::kLowerTime) adjusted = raw * ratio;
    if (dir == Direction::kHigherRate) adjusted = raw / ratio;
    const bool noisy = committed.noisy.count(key) > 0;
    // A metric regresses only when BOTH the raw and the
    // calibration-adjusted values are past the threshold: a slower
    // machine is excused by adjustment, calibration jitter on an equal
    // machine is excused by the raw reading, and a genuine code slowdown
    // fails both.
    bool regressed = false;
    if (!noisy) {
      if (dir == Direction::kLowerTime || dir == Direction::kLowerRaw) {
        const double limit = base * (1.0 + max_pct / 100.0);
        regressed = adjusted > limit && raw > limit;
      } else if (dir == Direction::kHigherRate ||
                 dir == Direction::kHigherRaw) {
        const double limit = base * (1.0 - max_pct / 100.0);
        regressed = adjusted < limit && raw < limit;
      }
    }
    const char* verdict = noisy ? "noisy" : (regressed ? "REGRESSED" : "ok");
    std::printf("%-34s %12.4g %12.4g %12.4g  %s\n", key.c_str(), base, raw,
                adjusted, verdict);
    if (regressed) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d metric(s) regressed more than %.0f%%\n",
                 failures, max_pct);
    return 1;
  }
  std::printf("PASS: no gated metric regressed more than %.0f%%\n", max_pct);
  return 0;
}

int SelfTest() {
  const std::string base =
      "{\"schema_version\": 1, \"bench\": \"latency\", \"profile\": "
      "\"quick\", \"calibration_ops_per_sec\": 1000, \"noisy\": "
      "[\"jitter_pct\"], \"metrics\": {\"hotpath_lcs_after_us\": 2.0, "
      "\"hotpath_lcs_speedup_x\": 4.0, \"eval_qps_1t_per_sec\": 100, "
      "\"jitter_pct\": 1.0}}";
  Report committed;
  if (!ParseReport(base, &committed)) return 1;

  // Same numbers on a machine measured 2x slower: times double, rates
  // halve, dimensionless metrics hold — normalization must pass it.
  Report slower = committed;
  slower.calibration = 500;
  slower.metrics["hotpath_lcs_after_us"] = 4.0;
  slower.metrics["eval_qps_1t_per_sec"] = 50;
  slower.metrics["jitter_pct"] = 99.0;  // noisy: huge swing, still passes
  if (Compare(committed, slower, 15.0) != 0) return 1;

  // A genuine 2x hot-path slowdown on the same machine must fail.
  Report slow = committed;
  slow.metrics["hotpath_lcs_after_us"] = 4.0;
  slow.metrics["hotpath_lcs_speedup_x"] = 2.0;
  if (Compare(committed, slow, 15.0) != 1) return 1;

  // Schema drift (metric renamed) must fail.
  Report drifted = committed;
  drifted.metrics.erase("hotpath_lcs_after_us");
  drifted.metrics["hotpath_lcs_after_usec"] = 2.0;
  if (Compare(committed, drifted, 15.0) != 1) return 1;

  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--selftest") return SelfTest();
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: codes_benchdiff <committed.json> <current.json> "
                 "[--max-regress-pct=N] | --selftest\n");
    return 2;
  }
  double max_pct = 15.0;
  for (int i = 3; i < argc; ++i) {
    constexpr const char kFlag[] = "--max-regress-pct=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      max_pct = std::atof(argv[i] + sizeof(kFlag) - 1);
    }
  }
  Report committed;
  Report current;
  for (int i = 1; i <= 2; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    if (!ParseReport(buf.str(), i == 1 ? &committed : &current)) {
      std::fprintf(stderr, "cannot parse %s\n", argv[i]);
      return 2;
    }
  }
  return Compare(committed, current, max_pct);
}
