// codes_load: deterministic open-loop overload campaign driver.
//
// Replays a seeded arrival schedule against the overload-protection front
// end (admission control, deadline queue, circuit breakers, adaptive
// brownout) wrapped around CodesPipeline::PredictGuarded, entirely in
// virtual time: a single discrete-event driver makes every control
// decision, so the campaign report, its digest, and the serve.* metrics
// snapshot are byte-identical at any --threads value.
//
// Modes:
//   campaign (default)  codes_load --requests=5000 --qps=400 --threads=8
//   smoke               codes_load --smoke   (fixed-seed 2x-saturation
//                                             campaign with a built-in
//                                             1-vs-8-thread determinism
//                                             check and the metric sum
//                                             invariant asserted)
//
// --qps is the offered (arrival) rate; virtual capacity is
// --workers * 1e6 / --service-us, so --qps=2x capacity is a saturation
// campaign. Campaign stdout is byte-identical across thread counts
// (timing goes to stderr). Exit status: 0 clean, 1 invariant violation,
// 2 usage error.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "serve/load_gen.h"

namespace {

struct Flags {
  int requests = 2000;
  double qps = 400.0;
  int workers = 4;
  uint64_t service_us = 20'000;
  uint64_t deadline_us = 200'000;
  int threads = 2;
  uint64_t seed = 1;
  double rate = 0.0;        ///< failpoint probability at every site
  std::string spec;         ///< overrides the --rate-derived spec
  size_t queue = 64;
  double rate_limit = 0.0;  ///< token-bucket qps; <= 0 disables
  std::string metrics_out;  ///< JSON metrics snapshot path (optional)
  bool smoke = false;
  bool selfcheck = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: codes_load [--requests=N] [--qps=Q] [--workers=N]\n"
      "                  [--service-us=N] [--deadline-us=N] [--threads=N]\n"
      "                  [--seed=S] [--rate=P] [--spec=SPEC] [--queue=N]\n"
      "                  [--rate-limit=Q] [--metrics-out=PATH]\n"
      "                  [--selfcheck] [--smoke]\n");
}

/// The registry snapshot compared across thread counts: every counter and
/// gauge (all driven by virtual-time decisions or per-request counts),
/// plus the serve.* histograms (observed in virtual µs). Wall-clock
/// histograms (span.*, pool.task_wait_us) are real timings and excluded.
codes::MetricsSnapshot DeterministicView(const codes::MetricsSnapshot& s) {
  codes::MetricsSnapshot out;
  out.counters = s.counters;
  out.gauges = s.gauges;
  for (const auto& [name, data] : s.histograms) {
    if (name.rfind("serve.", 0) == 0) out.histograms[name] = data;
  }
  return out;
}

uint64_t CounterOr0(const codes::MetricsSnapshot& s, const char* name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

/// Asserts the admission accounting contract from the emitted metrics
/// (not from the report — the point is that the exported numbers add up).
int CheckSumInvariant(const codes::MetricsSnapshot& snapshot,
                      const codes::serve::LoadReport& report) {
  uint64_t offered = CounterOr0(snapshot, "serve.offered");
  uint64_t admitted = CounterOr0(snapshot, "serve.admitted");
  uint64_t rejected = CounterOr0(snapshot, "serve.rejected");
  uint64_t shed = CounterOr0(snapshot, "serve.shed");
  int bad = 0;
  if (admitted + rejected + shed != offered) {
    std::printf("INVARIANT VIOLATION: admitted=%" PRIu64 " + rejected=%" PRIu64
                " + shed=%" PRIu64 " != offered=%" PRIu64 "\n",
                admitted, rejected, shed, offered);
    bad = 1;
  }
  if (CounterOr0(snapshot, "serve.rejected.rate") +
          CounterOr0(snapshot, "serve.rejected.queue_full") !=
      rejected) {
    std::printf("INVARIANT VIOLATION: serve.rejected.* do not sum to "
                "serve.rejected=%" PRIu64 "\n",
                rejected);
    bad = 1;
  }
  if (CounterOr0(snapshot, "serve.shed.deadline") +
          CounterOr0(snapshot, "serve.shed.drain") !=
      shed) {
    std::printf("INVARIANT VIOLATION: serve.shed.* do not sum to "
                "serve.shed=%" PRIu64 "\n",
                shed);
    bad = 1;
  }
  if (offered != report.offered) {
    std::printf("INVARIANT VIOLATION: serve.offered=%" PRIu64
                " != campaign offered=%" PRIu64 "\n",
                offered, report.offered);
    bad = 1;
  }
  if (bad == 0) {
    std::printf("metrics: serve.admitted + serve.rejected + serve.shed == "
                "serve.offered == %" PRIu64 "\n",
                offered);
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    bool ok = true;
    if (ParseFlag(argv[i], "--requests", &value)) {
      ok = codes::ParseInt(value, &flags.requests);
    } else if (ParseFlag(argv[i], "--qps", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.qps);
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      ok = codes::ParseInt(value, &flags.workers);
    } else if (ParseFlag(argv[i], "--service-us", &value)) {
      ok = codes::ParseUint64(value, &flags.service_us);
    } else if (ParseFlag(argv[i], "--deadline-us", &value)) {
      ok = codes::ParseUint64(value, &flags.deadline_us);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      ok = codes::ParseInt(value, &flags.threads);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      ok = codes::ParseUint64(value, &flags.seed);
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.rate);
    } else if (ParseFlag(argv[i], "--spec", &value)) {
      flags.spec = value;
    } else if (ParseFlag(argv[i], "--queue", &value)) {
      ok = codes::ParseSize(value, &flags.queue);
    } else if (ParseFlag(argv[i], "--rate-limit", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.rate_limit);
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(argv[i], "--selfcheck", &value)) {
      flags.selfcheck = true;
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      flags.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value in flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (flags.smoke) {
    // Fixed 2x-saturation configuration for ctest / CI gating: capacity is
    // 4 workers / 20 ms = 200 qps, offered 400 qps.
    flags.requests = 600;
    flags.qps = 400.0;
    flags.workers = 4;
    flags.service_us = 20'000;
    flags.deadline_us = 200'000;
    flags.threads = 8;
    flags.seed = 20240806;
    flags.rate = 0.02;
    flags.selfcheck = true;
  }
  if (flags.requests < 1 || flags.qps <= 0.0 || flags.workers < 1 ||
      flags.service_us < 1 || flags.threads < 1 || flags.rate < 0.0 ||
      flags.rate > 1.0 || flags.queue < 1) {
    Usage();
    return 2;
  }

  codes::serve::LoadGenOptions options;
  options.seed = flags.seed;
  options.num_requests = flags.requests;
  options.offered_qps = flags.qps;
  options.virtual_workers = flags.workers;
  options.service_base_us = flags.service_us;
  options.deadline_us = flags.deadline_us;
  options.threads = flags.threads;
  options.front_end.admission.queue_capacity = flags.queue;
  options.front_end.admission.rate_per_sec = flags.rate_limit;
  if (!flags.spec.empty()) {
    options.failpoint_spec = flags.spec;
  } else if (flags.rate > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "*=prob:%g", flags.rate);
    options.failpoint_spec = buf;
  }

  auto start = std::chrono::steady_clock::now();
  // Fixture: the tiny Spider-like benchmark with a fully set-up pipeline,
  // the same serving configuration codes_chaos campaigns exercise.
  auto bench = codes::BuildTinySpiderLike(2024);
  codes::LmZoo zoo(1, 31);
  codes::PipelineConfig config;
  config.size = codes::ModelSize::k7B;
  codes::CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // Setup is done: zero the registry so the exported snapshot covers
  // exactly the campaign.
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport report =
      codes::serve::RunLoadCampaign(pipeline, bench, options);
  codes::MetricsSnapshot snapshot =
      codes::MetricsRegistry::Global().Snapshot();

  std::printf("load campaign: requests=%d qps=%g workers=%d service_us=%"
              PRIu64 " seed=%" PRIu64 " spec=\"%s\"\n",
              flags.requests, flags.qps, flags.workers, flags.service_us,
              flags.seed, options.failpoint_spec.c_str());
  std::fputs(report.Summary().c_str(), stdout);

  int exit_code = 0;
  if (CheckSumInvariant(snapshot, report) != 0) exit_code = 1;
  if (report.admitted + report.rejected_rate + report.rejected_queue_full +
          report.shed_deadline + report.shed_drain !=
      report.offered) {
    std::printf("INVARIANT VIOLATION: per-request outcomes do not sum to "
                "offered=%" PRIu64 "\n",
                report.offered);
    exit_code = 1;
  }

  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  if (flags.selfcheck) {
    // The whole campaign must replay byte-identically single-threaded:
    // every control decision happens at virtual timestamps derived from
    // the seed, never from real scheduling. Both the per-request digest
    // and the deterministic view of the metrics snapshot are compared.
    std::string view = DeterministicView(snapshot).ToJson();
    codes::MetricsRegistry::Global().Reset();
    codes::serve::LoadGenOptions serial = options;
    serial.threads = 1;
    codes::serve::LoadReport replay =
        codes::serve::RunLoadCampaign(pipeline, bench, serial);
    std::string serial_view =
        DeterministicView(codes::MetricsRegistry::Global().Snapshot())
            .ToJson();
    if (replay.digest == report.digest && serial_view == view) {
      std::printf("selfcheck: 1-thread replay digest and metrics match\n");
    } else {
      std::printf("selfcheck FAILED: %d-thread digest %016" PRIx64
                  " != 1-thread digest %016" PRIx64 " (metrics %s)\n",
                  flags.threads, report.digest, replay.digest,
                  serial_view == view ? "match" : "differ");
      exit_code = 1;
    }
  }

  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (%d threads)\n",
               static_cast<long long>(elapsed), flags.threads);
  return exit_code;
}
