// codes_load: deterministic open-loop overload campaign driver.
//
// Replays a seeded arrival schedule against the overload-protection front
// end (admission control, deadline queue, circuit breakers, adaptive
// brownout) wrapped around CodesPipeline::PredictGuarded, entirely in
// virtual time: a single discrete-event driver makes every control
// decision, so the campaign report, its digest, and the serve.* metrics
// snapshot are byte-identical at any --threads value.
//
// Modes:
//   campaign (default)  codes_load --requests=5000 --qps=400 --threads=8
//   smoke               codes_load --smoke   (fixed-seed 2x-saturation
//                                             campaign with a built-in
//                                             1-vs-8-thread determinism
//                                             check and the metric sum
//                                             invariant asserted)
//   mt-smoke            codes_load --mt-smoke (fixed-seed multi-tenant
//                                             fleet campaign: hot tenant
//                                             at 5x its fair share, cold
//                                             and bursty-adversarial
//                                             tenants, LRU fleet eviction
//                                             under a memory budget,
//                                             per-tenant isolation and
//                                             metric invariants asserted,
//                                             1-vs-8-thread determinism
//                                             check)
//   adv-smoke           codes_load --adv --smoke (fixed-seed adversarial
//                                             campaign: 30% of questions
//                                             mutated online, hardening
//                                             front door on, goodput-
//                                             under-perturbation >= 80%
//                                             of clean asserted, the
//                                             serve.adv.* partition
//                                             invariant checked, 1-vs-8-
//                                             thread determinism check)
//
// --adv on a plain campaign mixes mutated questions at --adv-rate and
// turns the hardening front door on.
//
// --qps is the offered (arrival) rate; virtual capacity is
// --workers * 1e6 / --service-us, so --qps=2x capacity is a saturation
// campaign. Campaign stdout is byte-identical across thread counts
// (timing goes to stderr). Exit status: 0 clean, 1 invariant violation,
// 2 usage error.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "fleet/fleet_manager.h"
#include "serve/load_gen.h"

namespace {

struct Flags {
  int requests = 2000;
  double qps = 400.0;
  int workers = 4;
  uint64_t service_us = 20'000;
  uint64_t deadline_us = 200'000;
  int threads = 2;
  uint64_t seed = 1;
  double rate = 0.0;        ///< failpoint probability at every site
  std::string spec;         ///< overrides the --rate-derived spec
  size_t queue = 64;
  double rate_limit = 0.0;  ///< token-bucket qps; <= 0 disables
  std::string metrics_out;  ///< JSON metrics snapshot path (optional)
  bool adv = false;         ///< adversarial traffic + hardening front door
  double adv_rate = 0.3;    ///< fraction of questions mutated when --adv
  bool smoke = false;
  bool mt_smoke = false;
  bool selfcheck = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: codes_load [--requests=N] [--qps=Q] [--workers=N]\n"
      "                  [--service-us=N] [--deadline-us=N] [--threads=N]\n"
      "                  [--seed=S] [--rate=P] [--spec=SPEC] [--queue=N]\n"
      "                  [--rate-limit=Q] [--metrics-out=PATH]\n"
      "                  [--adv] [--adv-rate=P]\n"
      "                  [--selfcheck] [--smoke] [--mt-smoke]\n");
}

/// The registry snapshot compared across thread counts: every counter and
/// gauge (all driven by virtual-time decisions or per-request counts),
/// plus the serve.* histograms (observed in virtual µs). Wall-clock
/// histograms (span.*, pool.task_wait_us) are real timings and excluded.
codes::MetricsSnapshot DeterministicView(const codes::MetricsSnapshot& s) {
  codes::MetricsSnapshot out;
  out.counters = s.counters;
  out.gauges = s.gauges;
  for (const auto& [name, data] : s.histograms) {
    if (name.rfind("serve.", 0) == 0) out.histograms[name] = data;
  }
  return out;
}

uint64_t CounterOr0(const codes::MetricsSnapshot& s, const char* name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

/// Asserts the admission accounting contract from the emitted metrics
/// (not from the report — the point is that the exported numbers add up).
int CheckSumInvariant(const codes::MetricsSnapshot& snapshot,
                      const codes::serve::LoadReport& report) {
  uint64_t offered = CounterOr0(snapshot, "serve.offered");
  uint64_t admitted = CounterOr0(snapshot, "serve.admitted");
  uint64_t rejected = CounterOr0(snapshot, "serve.rejected");
  uint64_t shed = CounterOr0(snapshot, "serve.shed");
  int bad = 0;
  if (admitted + rejected + shed != offered) {
    std::printf("INVARIANT VIOLATION: admitted=%" PRIu64 " + rejected=%" PRIu64
                " + shed=%" PRIu64 " != offered=%" PRIu64 "\n",
                admitted, rejected, shed, offered);
    bad = 1;
  }
  if (CounterOr0(snapshot, "serve.rejected.rate") +
          CounterOr0(snapshot, "serve.rejected.queue_full") +
          CounterOr0(snapshot, "serve.rejected.tenant_rate") !=
      rejected) {
    std::printf("INVARIANT VIOLATION: serve.rejected.* do not sum to "
                "serve.rejected=%" PRIu64 "\n",
                rejected);
    bad = 1;
  }
  if (CounterOr0(snapshot, "serve.shed.deadline") +
          CounterOr0(snapshot, "serve.shed.drain") !=
      shed) {
    std::printf("INVARIANT VIOLATION: serve.shed.* do not sum to "
                "serve.shed=%" PRIu64 "\n",
                shed);
    bad = 1;
  }
  if (offered != report.offered) {
    std::printf("INVARIANT VIOLATION: serve.offered=%" PRIu64
                " != campaign offered=%" PRIu64 "\n",
                offered, report.offered);
    bad = 1;
  }
  if (bad == 0) {
    std::printf("metrics: serve.admitted + serve.rejected + serve.shed == "
                "serve.offered == %" PRIu64 "\n",
                offered);
  }
  return bad;
}

/// The adversarial partition contract: every PredictGuarded call lands in
/// exactly one of serve.adv.clean / serve.adv.suspect, so the pair sums
/// to serve.requests. CI asserts the same identity from the JSON snapshot.
int CheckAdvInvariant(const codes::MetricsSnapshot& snapshot) {
  uint64_t clean = CounterOr0(snapshot, "serve.adv.clean");
  uint64_t suspect = CounterOr0(snapshot, "serve.adv.suspect");
  uint64_t requests = CounterOr0(snapshot, "serve.requests");
  if (clean + suspect != requests) {
    std::printf("INVARIANT VIOLATION: serve.adv.clean=%" PRIu64
                " + serve.adv.suspect=%" PRIu64 " != serve.requests=%" PRIu64
                "\n",
                clean, suspect, requests);
    return 1;
  }
  std::printf("metrics: serve.adv.clean + serve.adv.suspect == "
              "serve.requests == %" PRIu64 "\n",
              requests);
  return 0;
}

/// Per-tenant admission accounting: for every tenant family the exported
/// counters must satisfy admitted + rejected + shed == offered, agree
/// with the campaign's per-tenant rows, and sum to the global counters.
int CheckTenantInvariants(const codes::MetricsSnapshot& snapshot,
                          const codes::serve::LoadReport& report) {
  int bad = 0;
  uint64_t offered_sum = 0;
  for (const auto& row : report.tenants) {
    std::string prefix = "serve.tenant." + row.name + ".";
    uint64_t offered = CounterOr0(snapshot, (prefix + "offered").c_str());
    uint64_t admitted = CounterOr0(snapshot, (prefix + "admitted").c_str());
    uint64_t rejected = CounterOr0(snapshot, (prefix + "rejected").c_str());
    uint64_t shed = CounterOr0(snapshot, (prefix + "shed").c_str());
    offered_sum += offered;
    if (admitted + rejected + shed != offered) {
      std::printf("INVARIANT VIOLATION: tenant %s: admitted=%" PRIu64
                  " + rejected=%" PRIu64 " + shed=%" PRIu64
                  " != offered=%" PRIu64 "\n",
                  row.name.c_str(), admitted, rejected, shed, offered);
      bad = 1;
    }
    if (offered != row.offered || admitted != row.admitted ||
        rejected != row.rejected || shed != row.shed) {
      std::printf("INVARIANT VIOLATION: tenant %s: metric family disagrees "
                  "with campaign accounting\n",
                  row.name.c_str());
      bad = 1;
    }
  }
  if (offered_sum != CounterOr0(snapshot, "serve.offered")) {
    std::printf("INVARIANT VIOLATION: tenant offered counters sum to %" PRIu64
                " != serve.offered=%" PRIu64 "\n",
                offered_sum, CounterOr0(snapshot, "serve.offered"));
    bad = 1;
  }
  if (bad == 0) {
    std::printf("metrics: per-tenant admitted + rejected + shed == offered "
                "for all %zu tenants\n",
                report.tenants.size());
  }
  return bad;
}

/// The multi-tenant fleet campaign. Six tenants over six dev databases:
/// one hot tenant offered 5x its fair share, two normal tenants, two
/// near-idle cold tenants (whose rare requests force fleet attach under
/// the memory budget), and one bursty adversarial tenant. Asserts:
///   - per-tenant and global metric sum invariants,
///   - isolation: with the hot tenant at 5x fair share, every other
///     tenant keeps >= 80% of the goodput it gets when the hot tenant
///     behaves (same traffic with hot at exactly its fair share),
///   - the fleet ends under its memory budget with evictions observed,
///   - 1-vs-8-thread byte-identical digest and metrics (selfcheck).
int RunMtSmoke(const Flags& flags) {
  auto start = std::chrono::steady_clock::now();

  codes::BenchmarkConfig bench_config;
  bench_config.name = "mt_fleet";
  bench_config.profile = codes::DbProfile::Spider();
  bench_config.train_domains = 4;
  bench_config.dev_domains = 6;
  bench_config.train_samples_per_db = 15;
  bench_config.dev_samples_per_db = 8;
  bench_config.seed = 20240808;
  auto bench = codes::BuildBenchmark(bench_config);

  codes::LmZoo zoo(1, 31);
  codes::PipelineConfig config;
  config.size = codes::ModelSize::k7B;
  codes::CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // One tenant per dev database, in order of first appearance.
  std::vector<int> dev_dbs;
  for (const auto& sample : bench.dev) {
    if (std::find(dev_dbs.begin(), dev_dbs.end(), sample.db_index) ==
        dev_dbs.end()) {
      dev_dbs.push_back(sample.db_index);
    }
  }
  if (dev_dbs.size() < 6) {
    std::fprintf(stderr, "mt-smoke: expected 6 dev databases, got %zu\n",
                 dev_dbs.size());
    return 2;
  }
  static const char* kNames[6] = {"hot",   "norm1", "norm2",
                                  "cold1", "cold2", "adv"};

  std::filesystem::path snapshot_dir =
      std::filesystem::temp_directory_path() / "codes_load_mt_fleet";
  std::error_code ec;
  std::filesystem::remove_all(snapshot_dir, ec);

  auto make_fleet = [&](size_t budget) {
    codes::fleet::FleetManager::Options fleet_options;
    fleet_options.memory_budget_bytes = budget;
    fleet_options.snapshot_dir = snapshot_dir.string();
    auto fleet =
        std::make_unique<codes::fleet::FleetManager>(fleet_options);
    for (int t = 0; t < 6; ++t) {
      codes::fleet::FleetManager::TenantDesc desc;
      desc.name = kNames[t];
      desc.db = &bench.databases[static_cast<size_t>(dev_dbs[t])];
      desc.classifier_source = &bench;
      for (int j = 0; j < 8; ++j) {
        desc.demo_pool.push_back(
            bench.train[static_cast<size_t>(t * 8 + j) %
                        bench.train.size()]);
      }
      fleet->AddTenant(std::move(desc));
    }
    return fleet;
  };

  // Probe pass: build + persist every bundle once with no budget, to
  // price the fleet. The real fleet's budget is 55% of the total, so a
  // full working set cannot stay resident and evictions must happen.
  size_t total_bytes = 0;
  {
    auto probe = make_fleet(0);
    probe->WarmAll();
    total_bytes = probe->PeakResidentBytes();
  }
  size_t budget = total_bytes * 55 / 100;
  auto fleet = make_fleet(budget);

  // Virtual capacity: 4 workers / 20 ms = 200 qps, fair share ~33 qps
  // per tenant at equal weights.
  const double capacity_qps = 4.0 * 1e6 / 20'000.0;
  const double fair = capacity_qps / 6.0;

  codes::serve::LoadGenOptions mt;
  mt.seed = 20240808;
  mt.num_requests = 900;
  mt.virtual_workers = 4;
  mt.service_base_us = 20'000;
  mt.deadline_us = 200'000;
  mt.threads = 8;
  mt.front_end.admission.queue_capacity = 64;
  mt.front_end.admission.tenant_capacity_qps = capacity_qps;
  mt.front_end.admission.tenants = fleet->AdmissionSpecs();
  mt.front_end.tenant_names = fleet->TenantNames();
  mt.burst_period_us = 500'000;
  mt.burst_duty = 0.2;
  mt.tenant_attach =
      [&fleet](int tenant) -> std::shared_ptr<const codes::ValueRetriever> {
    auto artifacts = fleet->Attach(tenant);
    return artifacts == nullptr ? nullptr : artifacts->retriever;
  };

  // Shares are offered qps per tenant; offered_qps is their (burst-
  // averaged) sum, so each tenant's absolute arrival rate is its share
  // in both the baseline and the adversarial mix.
  auto set_shares = [&](codes::serve::LoadGenOptions* o, double hot_qps) {
    const double shares[6] = {hot_qps,      0.7 * fair,  0.7 * fair,
                              0.15 * fair,  0.15 * fair, 0.2 * fair};
    const double burst_shares[6] = {-1.0, -1.0, -1.0, -1.0, -1.0,
                                    2.0 * fair};
    o->tenants.clear();
    double sum = 0.0;
    for (int t = 0; t < 6; ++t) {
      codes::serve::TenantTraffic traffic;
      traffic.name = kNames[t];
      traffic.share = shares[t];
      traffic.burst_share = burst_shares[t];
      traffic.db_index = dev_dbs[t];
      o->tenants.push_back(traffic);
      sum += shares[t];
    }
    // The adversarial tenant's burst surplus, averaged over the duty
    // cycle, raises the offered rate above the base sum.
    sum += o->burst_duty * (burst_shares[5] - shares[5]);
    o->offered_qps = sum;
  };

  // Baseline: the same mix with the hot tenant at exactly its fair
  // share — the "no bully" reference for the isolation assertion.
  codes::serve::LoadGenOptions baseline = mt;
  set_shares(&baseline, fair);
  baseline.num_requests = 420;
  set_shares(&mt, 5.0 * fair);

  fleet->EvictAll();
  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport base_report =
      codes::serve::RunLoadCampaign(pipeline, bench, baseline);

  fleet->EvictAll();
  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport report =
      codes::serve::RunLoadCampaign(pipeline, bench, mt);
  codes::MetricsSnapshot snapshot =
      codes::MetricsRegistry::Global().Snapshot();

  std::printf("mt campaign: requests=%d qps=%.1f capacity=%.0f tenants=6 "
              "budget=%zu/%zu bytes seed=%" PRIu64 "\n",
              mt.num_requests, mt.offered_qps, capacity_qps, budget,
              total_bytes, mt.seed);
  std::fputs(report.Summary().c_str(), stdout);

  int exit_code = 0;
  if (CheckSumInvariant(snapshot, report) != 0) exit_code = 1;
  if (CheckTenantInvariants(snapshot, report) != 0) exit_code = 1;

  // Isolation: the hot tenant's 5x overload must be clipped by the
  // weighted-fair limiter, not paid for by everyone else. Compared on
  // the served-within-deadline fraction of each tenant's own arrivals —
  // goodput normalized by offered rate — so the low-rate cold tenants'
  // arrival-count noise does not masquerade as admission harm.
  auto served_fraction = [](const codes::serve::LoadReport::TenantRow& row) {
    return row.offered == 0
               ? 1.0
               : static_cast<double>(row.served_within_deadline) /
                     static_cast<double>(row.offered);
  };
  for (size_t t = 1; t < report.tenants.size(); ++t) {
    double isolated = served_fraction(base_report.tenants[t]);
    double contended = served_fraction(report.tenants[t]);
    bool ok = contended >= 0.8 * isolated;
    std::printf("isolation: tenant %s served %.0f%% of its arrivals vs "
                "%.0f%% with the hot tenant at fair share (%.1f vs %.1f "
                "qps goodput) %s\n",
                report.tenants[t].name.c_str(), 100.0 * contended,
                100.0 * isolated, report.TenantGoodputQps(t),
                base_report.TenantGoodputQps(t), ok ? "ok" : "VIOLATION");
    if (!ok) exit_code = 1;
  }

  // The fleet must end under budget and must have had to evict to get
  // there (the working set is priced at ~1.8x the budget).
  uint64_t evictions = CounterOr0(snapshot, "fleet.evict");
  size_t resident = fleet->ResidentBytes();
  std::printf("fleet: resident=%zu budget=%zu evictions=%" PRIu64
              " attaches=%" PRIu64 " (build=%" PRIu64 " snapshot=%" PRIu64
              ")\n",
              resident, budget, evictions,
              CounterOr0(snapshot, "fleet.attach"),
              CounterOr0(snapshot, "fleet.attach.build"),
              CounterOr0(snapshot, "fleet.attach.snapshot"));
  if (resident > budget) {
    std::printf("INVARIANT VIOLATION: fleet resident bytes exceed budget\n");
    exit_code = 1;
  }
  if (evictions == 0) {
    std::printf("INVARIANT VIOLATION: no fleet evictions observed\n");
    exit_code = 1;
  }

  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  // Determinism selfcheck: the identical campaign replayed on 1 real
  // thread, from the same fleet state (all evicted, snapshots on disk),
  // must produce the same digest and the same deterministic metrics.
  std::string view = DeterministicView(snapshot).ToJson();
  fleet->EvictAll();
  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadGenOptions serial = mt;
  serial.threads = 1;
  codes::serve::LoadReport replay =
      codes::serve::RunLoadCampaign(pipeline, bench, serial);
  std::string serial_view =
      DeterministicView(codes::MetricsRegistry::Global().Snapshot())
          .ToJson();
  if (replay.digest == report.digest && serial_view == view) {
    std::printf("selfcheck: 1-thread replay digest and metrics match\n");
  } else {
    std::printf("selfcheck FAILED: 8-thread digest %016" PRIx64
                " != 1-thread digest %016" PRIx64 " (metrics %s)\n",
                report.digest, replay.digest,
                serial_view == view ? "match" : "differ");
    exit_code = 1;
  }

  std::filesystem::remove_all(snapshot_dir, ec);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (mt-smoke)\n",
               static_cast<long long>(elapsed));
  return exit_code;
}

/// The adversarial serving smoke: one clean reference campaign and one
/// --adv-rate-perturbed campaign over the same arrival schedule, with the
/// hardening front door on in both. Asserts:
///   - the global admission sum invariant and the adversarial partition
///     serve.adv.clean + serve.adv.suspect == serve.requests,
///   - mutations flowed (adv_offered > 0) and the hardening detector
///     actually fired on them (suspect > 0),
///   - verified goodput under perturbation keeps >= 80% of the clean
///     campaign's verified goodput,
///   - 1-vs-8-thread byte-identical digest and deterministic metrics.
int RunAdvSmoke(const Flags& flags) {
  auto start = std::chrono::steady_clock::now();

  auto bench = codes::BuildTinySpiderLike(2024);
  codes::LmZoo zoo(1, 31);
  codes::PipelineConfig config;
  config.size = codes::ModelSize::k7B;
  codes::CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // 2x saturation like --smoke: capacity 4 workers / 20 ms = 200 qps,
  // offered 400 qps, so the brownout ladder is live in both campaigns.
  codes::serve::LoadGenOptions adv;
  adv.seed = 20240809;
  adv.num_requests = 600;
  adv.offered_qps = 400.0;
  adv.virtual_workers = 4;
  adv.service_base_us = 20'000;
  adv.deadline_us = 200'000;
  adv.threads = 8;
  adv.front_end.admission.queue_capacity = 64;
  adv.harden = true;
  adv.adv_rate = flags.adv_rate;

  // Clean reference: the identical schedule with zero mutations prices
  // what verified goodput costs on this fixture.
  codes::serve::LoadGenOptions clean = adv;
  clean.adv_rate = 0.0;

  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport clean_report =
      codes::serve::RunLoadCampaign(pipeline, bench, clean);

  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport report =
      codes::serve::RunLoadCampaign(pipeline, bench, adv);
  codes::MetricsSnapshot snapshot =
      codes::MetricsRegistry::Global().Snapshot();

  std::printf("adv campaign: requests=%d qps=%.1f adv_rate=%.2f seed=%"
              PRIu64 "\n",
              adv.num_requests, adv.offered_qps, adv.adv_rate, adv.seed);
  std::fputs(report.Summary().c_str(), stdout);

  int exit_code = 0;
  if (CheckSumInvariant(snapshot, report) != 0) exit_code = 1;
  if (CheckAdvInvariant(snapshot) != 0) exit_code = 1;
  if (report.adv_offered == 0) {
    std::printf("INVARIANT VIOLATION: no requests were mutated at "
                "adv_rate=%.2f\n",
                adv.adv_rate);
    exit_code = 1;
  }
  if (report.suspect == 0) {
    std::printf("INVARIANT VIOLATION: hardening flagged no request suspect "
                "under adversarial traffic\n");
    exit_code = 1;
  }

  double clean_goodput = clean_report.VerifiedGoodputQps();
  double adv_goodput = report.VerifiedGoodputQps();
  double retention = clean_goodput > 0.0 ? adv_goodput / clean_goodput : 1.0;
  std::printf("goodput under perturbation: %.1f qps vs %.1f qps clean "
              "(retention %.0f%%) %s\n",
              adv_goodput, clean_goodput, 100.0 * retention,
              retention >= 0.8 ? "ok" : "VIOLATION");
  if (retention < 0.8) exit_code = 1;

  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  // Determinism selfcheck: mutation choice, hardening verdicts, and the
  // canonical retries all happen on the DES thread at virtual timestamps,
  // so the 1-thread replay must match byte-for-byte.
  std::string view = DeterministicView(snapshot).ToJson();
  pipeline.ClearRetrieverCache();
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadGenOptions serial = adv;
  serial.threads = 1;
  codes::serve::LoadReport replay =
      codes::serve::RunLoadCampaign(pipeline, bench, serial);
  std::string serial_view =
      DeterministicView(codes::MetricsRegistry::Global().Snapshot())
          .ToJson();
  if (replay.digest == report.digest && serial_view == view) {
    std::printf("selfcheck: 1-thread replay digest and metrics match\n");
  } else {
    std::printf("selfcheck FAILED: 8-thread digest %016" PRIx64
                " != 1-thread digest %016" PRIx64 " (metrics %s)\n",
                report.digest, replay.digest,
                serial_view == view ? "match" : "differ");
    exit_code = 1;
  }

  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (adv-smoke)\n",
               static_cast<long long>(elapsed));
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    bool ok = true;
    if (ParseFlag(argv[i], "--requests", &value)) {
      ok = codes::ParseInt(value, &flags.requests);
    } else if (ParseFlag(argv[i], "--qps", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.qps);
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      ok = codes::ParseInt(value, &flags.workers);
    } else if (ParseFlag(argv[i], "--service-us", &value)) {
      ok = codes::ParseUint64(value, &flags.service_us);
    } else if (ParseFlag(argv[i], "--deadline-us", &value)) {
      ok = codes::ParseUint64(value, &flags.deadline_us);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      ok = codes::ParseInt(value, &flags.threads);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      ok = codes::ParseUint64(value, &flags.seed);
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.rate);
    } else if (ParseFlag(argv[i], "--spec", &value)) {
      flags.spec = value;
    } else if (ParseFlag(argv[i], "--queue", &value)) {
      ok = codes::ParseSize(value, &flags.queue);
    } else if (ParseFlag(argv[i], "--rate-limit", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.rate_limit);
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(argv[i], "--adv-rate", &value)) {
      ok = codes::ParseFiniteDouble(value, &flags.adv_rate);
    } else if (ParseFlag(argv[i], "--adv", &value)) {
      flags.adv = true;
    } else if (ParseFlag(argv[i], "--selfcheck", &value)) {
      flags.selfcheck = true;
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      flags.smoke = true;
    } else if (ParseFlag(argv[i], "--mt-smoke", &value)) {
      flags.mt_smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value in flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  // Range validation with a diagnostic per offending flag — a silent
  // usage dump is indistinguishable from a typo in the flag name.
  bool range_ok = true;
  auto require = [&range_ok](bool ok_cond, const char* diagnostic) {
    if (!ok_cond) {
      std::fprintf(stderr, "%s\n", diagnostic);
      range_ok = false;
    }
  };
  require(flags.requests >= 1, "--requests must be >= 1");
  require(flags.qps > 0.0, "--qps must be > 0");
  require(flags.workers >= 1, "--workers must be >= 1");
  require(flags.service_us >= 1, "--service-us must be >= 1");
  require(flags.threads >= 1, "--threads must be >= 1");
  require(flags.rate >= 0.0 && flags.rate <= 1.0,
          "--rate must be in [0, 1]");
  require(flags.queue >= 1, "--queue must be >= 1");
  require(flags.rate_limit >= 0.0, "--rate-limit must be >= 0");
  require(flags.adv_rate >= 0.0 && flags.adv_rate <= 1.0,
          "--adv-rate must be in [0, 1]");
  if (!range_ok) {
    Usage();
    return 2;
  }

  if (flags.mt_smoke) return RunMtSmoke(flags);
  if (flags.adv && flags.smoke) return RunAdvSmoke(flags);
  if (flags.smoke) {
    // Fixed 2x-saturation configuration for ctest / CI gating: capacity is
    // 4 workers / 20 ms = 200 qps, offered 400 qps.
    flags.requests = 600;
    flags.qps = 400.0;
    flags.workers = 4;
    flags.service_us = 20'000;
    flags.deadline_us = 200'000;
    flags.threads = 8;
    flags.seed = 20240806;
    flags.rate = 0.02;
    flags.selfcheck = true;
  }
  codes::serve::LoadGenOptions options;
  options.seed = flags.seed;
  options.num_requests = flags.requests;
  options.offered_qps = flags.qps;
  options.virtual_workers = flags.workers;
  options.service_base_us = flags.service_us;
  options.deadline_us = flags.deadline_us;
  options.threads = flags.threads;
  options.front_end.admission.queue_capacity = flags.queue;
  options.front_end.admission.rate_per_sec = flags.rate_limit;
  if (flags.adv) {
    options.adv_rate = flags.adv_rate;
    options.harden = true;
  }
  if (!flags.spec.empty()) {
    options.failpoint_spec = flags.spec;
  } else if (flags.rate > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "*=prob:%g", flags.rate);
    options.failpoint_spec = buf;
  }

  auto start = std::chrono::steady_clock::now();
  // Fixture: the tiny Spider-like benchmark with a fully set-up pipeline,
  // the same serving configuration codes_chaos campaigns exercise.
  auto bench = codes::BuildTinySpiderLike(2024);
  codes::LmZoo zoo(1, 31);
  codes::PipelineConfig config;
  config.size = codes::ModelSize::k7B;
  codes::CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // Setup is done: zero the registry so the exported snapshot covers
  // exactly the campaign.
  codes::MetricsRegistry::Global().Reset();
  codes::serve::LoadReport report =
      codes::serve::RunLoadCampaign(pipeline, bench, options);
  codes::MetricsSnapshot snapshot =
      codes::MetricsRegistry::Global().Snapshot();

  std::printf("load campaign: requests=%d qps=%g workers=%d service_us=%"
              PRIu64 " seed=%" PRIu64 " spec=\"%s\"\n",
              flags.requests, flags.qps, flags.workers, flags.service_us,
              flags.seed, options.failpoint_spec.c_str());
  std::fputs(report.Summary().c_str(), stdout);

  int exit_code = 0;
  if (CheckSumInvariant(snapshot, report) != 0) exit_code = 1;
  if (flags.adv && CheckAdvInvariant(snapshot) != 0) exit_code = 1;
  if (report.admitted + report.rejected_rate + report.rejected_queue_full +
          report.rejected_tenant_rate + report.shed_deadline +
          report.shed_drain !=
      report.offered) {
    std::printf("INVARIANT VIOLATION: per-request outcomes do not sum to "
                "offered=%" PRIu64 "\n",
                report.offered);
    exit_code = 1;
  }

  if (!flags.metrics_out.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    std::string json = snapshot.ToJson() + "\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }

  if (flags.selfcheck) {
    // The whole campaign must replay byte-identically single-threaded:
    // every control decision happens at virtual timestamps derived from
    // the seed, never from real scheduling. Both the per-request digest
    // and the deterministic view of the metrics snapshot are compared.
    // The replay starts from a cold retriever cache like the first run
    // did, so the cache hit/miss counters are comparable.
    std::string view = DeterministicView(snapshot).ToJson();
    pipeline.ClearRetrieverCache();
    codes::MetricsRegistry::Global().Reset();
    codes::serve::LoadGenOptions serial = options;
    serial.threads = 1;
    codes::serve::LoadReport replay =
        codes::serve::RunLoadCampaign(pipeline, bench, serial);
    std::string serial_view =
        DeterministicView(codes::MetricsRegistry::Global().Snapshot())
            .ToJson();
    if (replay.digest == report.digest && serial_view == view) {
      std::printf("selfcheck: 1-thread replay digest and metrics match\n");
    } else {
      std::printf("selfcheck FAILED: %d-thread digest %016" PRIx64
                  " != 1-thread digest %016" PRIx64 " (metrics %s)\n",
                  flags.threads, report.digest, replay.digest,
                  serial_view == view ? "match" : "differ");
      exit_code = 1;
    }
  }

  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "elapsed: %lld ms (%d threads)\n",
               static_cast<long long>(elapsed), flags.threads);
  return exit_code;
}
