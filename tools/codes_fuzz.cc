// codes_fuzz: metamorphic fuzzing CLI for the SQL engine.
//
// Modes:
//   campaign (default)   codes_fuzz --queries=10000 --threads=8 --seed=1
//   single query         codes_fuzz --seed=42 --schema=3
//   corpus replay        codes_fuzz --replay=tests/fuzz_corpus/engine_bugs.corpus
//   smoke                codes_fuzz --smoke       (small fixed-seed campaign)
//
// Campaign stdout is byte-identical for any --threads value (timing goes
// to stderr), so a CI diff between thread counts doubles as a determinism
// check. Exit status: 0 clean, 1 oracle violations, 2 usage/IO error.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "fuzz/fuzz_harness.h"
#include "fuzz/oracle.h"
#include "fuzz/query_gen.h"

namespace {

struct Flags {
  int queries = 1000;
  int threads = 8;
  uint64_t seed = 1;
  int databases = 8;
  int schema = -1;       ///< single-query mode when >= 0
  bool smoke = false;
  bool shrink = true;
  std::string replay;    ///< corpus file to replay
  std::string out;       ///< write reproducer lines here
  std::string metrics_out;  ///< JSON metrics snapshot path (optional)
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: codes_fuzz [--queries=N] [--threads=N] [--seed=S]\n"
               "                  [--databases=N] [--schema=M] [--smoke]\n"
               "                  [--replay=FILE] [--out=FILE] [--no-shrink]\n"
               "                  [--metrics-out=PATH]\n");
}

int RunSingle(const Flags& flags) {
  auto dbs = codes::fuzz::BuildFuzzDatabases(flags.databases);
  if (flags.schema >= static_cast<int>(dbs.size())) {
    std::fprintf(stderr, "--schema=%d out of range (have %zu databases)\n",
                 flags.schema, dbs.size());
    return 2;
  }
  // Mirror the campaign's per-query derivation exactly: the db draw is
  // consumed from the stream even though --schema overrides the choice.
  codes::Rng rng(flags.seed);
  int drawn = static_cast<int>(rng.Index(dbs.size()));
  int db_index = flags.schema >= 0 ? flags.schema : drawn;
  codes::fuzz::QueryGenerator gen(dbs[static_cast<size_t>(db_index)]);
  auto stmt = gen.Generate(rng);
  uint64_t oracle_seed = rng.Next();

  std::printf("db=%d seed=%llu\n", db_index,
              static_cast<unsigned long long>(flags.seed));
  std::printf("sql=%s\n", stmt->ToSql().c_str());
  auto violations = codes::fuzz::RunOracles(
      dbs[static_cast<size_t>(db_index)], gen, *stmt, oracle_seed);
  if (violations.empty()) {
    std::printf("all oracles clean\n");
    return 0;
  }
  for (const auto& v : violations) {
    std::printf("VIOLATION %s: %s\n", codes::fuzz::OracleName(v.oracle),
                v.detail.c_str());
  }
  return 1;
}

int RunReplay(const Flags& flags) {
  auto entries = codes::fuzz::LoadCorpusFile(flags.replay);
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 2;
  }
  int max_db = flags.databases;
  for (const auto& entry : *entries) max_db = std::max(max_db, entry.db_index + 1);
  auto dbs = codes::fuzz::BuildFuzzDatabases(max_db);

  int failures = 0;
  for (const auto& entry : *entries) {
    auto violations = codes::fuzz::ReplayCorpusEntry(dbs, entry);
    if (!violations.ok()) {
      std::printf("ERROR line %d: %s\n", entry.line,
                  violations.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (violations->empty()) {
      std::printf("PASS line %d (%s)\n", entry.line, entry.oracle.c_str());
    } else {
      ++failures;
      for (const auto& v : *violations) {
        std::printf("FAIL line %d %s: %s\n", entry.line,
                    codes::fuzz::OracleName(v.oracle), v.detail.c_str());
      }
    }
  }
  std::printf("replayed %zu corpus entries, %d failing\n", entries->size(),
              failures);
  return failures == 0 ? 0 : 1;
}

int RunCampaign(const Flags& flags) {
  codes::fuzz::FuzzConfig config;
  config.base_seed = flags.seed;
  config.num_queries = flags.queries;
  config.num_databases = flags.databases;
  config.shrink = flags.shrink;

  auto start = std::chrono::steady_clock::now();
  codes::fuzz::FuzzReport report;
  if (flags.threads > 1) {
    codes::ThreadPool pool(flags.threads);
    report = codes::fuzz::RunFuzzCampaign(config, &pool);
  } else {
    report = codes::fuzz::RunFuzzCampaign(config, nullptr);
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  std::fputs(report.Summary().c_str(), stdout);
  for (const auto& f : report.failures) {
    std::printf("%s\n", f.ReproLine().c_str());
    std::printf("  detail: %s\n", f.detail.c_str());
  }
  // Timing is diagnostics only: stdout must stay byte-identical across
  // thread counts.
  std::fprintf(stderr, "elapsed: %lld ms (%d threads)\n",
               static_cast<long long>(elapsed), flags.threads);

  if (!flags.out.empty()) {
    std::ofstream out(flags.out);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
      return 2;
    }
    out << "# codes_fuzz reproducers (seed=" << flags.seed
        << " queries=" << flags.queries << ")\n";
    for (const auto& f : report.failures) out << f.ReproLine() << "\n";
  }
  return report.Clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bool seed_given = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    bool ok = true;
    if (ParseFlag(argv[i], "--queries", &value)) {
      ok = codes::ParseInt(value, &flags.queries);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      ok = codes::ParseInt(value, &flags.threads);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      ok = codes::ParseUint64(value, &flags.seed);
      seed_given = true;
    } else if (ParseFlag(argv[i], "--databases", &value)) {
      ok = codes::ParseInt(value, &flags.databases);
    } else if (ParseFlag(argv[i], "--schema", &value)) {
      ok = codes::ParseInt(value, &flags.schema);
    } else if (ParseFlag(argv[i], "--replay", &value)) {
      flags.replay = value;
    } else if (ParseFlag(argv[i], "--out", &value)) {
      flags.out = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      flags.smoke = true;
    } else if (ParseFlag(argv[i], "--no-shrink", &value)) {
      flags.shrink = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value in flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }

  if (flags.smoke) {
    // Fixed, fast configuration for ctest / CI gating.
    flags.queries = 400;
    flags.threads = 2;
    if (!seed_given) flags.seed = 20240805;
  }
  if (flags.queries < 0 || flags.threads < 1 || flags.databases < 1) {
    Usage();
    return 2;
  }

  int exit_code;
  if (!flags.replay.empty()) {
    exit_code = RunReplay(flags);
  } else if (flags.schema >= 0) {
    exit_code = RunSingle(flags);
  } else {
    exit_code = RunCampaign(flags);
  }

  // Machine-readable per-stage/guard/pool breakdown of the run (executor
  // guard consumption, thread-pool wait times, BM25 activity).
  if (!flags.metrics_out.empty()) {
    std::ofstream metrics(flags.metrics_out);
    if (!metrics.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 2;
    }
    metrics << codes::MetricsRegistry::Global().SnapshotJson();
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 flags.metrics_out.c_str());
  }
  return exit_code;
}
