// New-domain adaptation on Bank-Financials (Section 7 / Section 9.6 of the
// paper): starting from 30 annotated seed pairs, the bi-directional data
// augmentation builds a training set, the pipeline fine-tunes on it, and
// accuracy on real-user-style questions jumps past zero-shot transfer.

#include <cstdio>

#include "augment/augmentation.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/metrics.h"

int main() {
  using namespace codes;

  std::printf("Bank-Financials: new-domain adaptation demo\n\n");

  // The deployment database plus 30 seed pairs and a 60-question test set.
  AugmentOptions aug;
  aug.seed_pairs = 30;
  aug.question_to_sql_pairs = 300;
  aug.sql_to_question_pairs = 300;
  NewDomainDataset bank = BuildNewDomainDataset(BankFinancialsDomain(), 60, aug);
  std::printf("database tables: %zu; seed pairs: %zu; augmented train: %zu; "
              "test questions: %zu\n\n",
              bank.bench.databases[0].schema().tables.size(),
              bank.seeds.size(), bank.bench.train.size(),
              bank.bench.dev.size());

  std::printf("an augmented training pair:\n  Q: %s\n  S: %s\n\n",
              bank.bench.train[0].question.c_str(),
              bank.bench.train[0].sql.c_str());

  LmZoo zoo;
  Text2SqlBenchmark spider = BuildSpiderLike();
  EvalOptions options;

  // Path 1: zero-shot transfer of a Spider-fine-tuned model.
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline transfer(config, zoo.CodesFor(config.size));
  transfer.TrainClassifier(spider);
  transfer.FineTune(spider);
  auto m_transfer =
      EvaluateDevSet(bank.bench, transfer.PredictorFor(bank.bench), options);

  // Path 2: few-shot ICL with the seed pairs as demonstrations.
  PipelineConfig icl_config = config;
  icl_config.icl_shots = 3;
  CodesPipeline icl(icl_config, zoo.CodesFor(config.size));
  icl.TrainClassifier(spider);
  icl.SetDemonstrationPool(bank.seeds);
  auto m_icl = EvaluateDevSet(bank.bench, icl.PredictorFor(bank.bench),
                              options);

  // Path 3: SFT on the augmented data.
  CodesPipeline adapted(config, zoo.CodesFor(config.size));
  adapted.TrainClassifier(spider);
  adapted.FineTune(bank.bench);
  auto m_adapted =
      EvaluateDevSet(bank.bench, adapted.PredictorFor(bank.bench), options);

  std::printf("results on the Bank-Financials test set (EX%%):\n");
  std::printf("  zero-shot transfer from Spider : %5.1f\n", m_transfer.ex);
  std::printf("  3-shot ICL with seed pairs     : %5.1f\n", m_icl.ex);
  std::printf("  SFT on augmented data          : %5.1f\n", m_adapted.ex);
  std::printf("\nthe paper's Table 10 ordering: augmented SFT > few-shot > "
              "zero-shot transfer.\n");
  return 0;
}
