// Robustness report: fine-tune once on the clean Spider-like benchmark,
// then replay the dev set through every perturbation family (Spider-Syn /
// Realistic / DK and the 17 Dr.Spider sets) and print the accuracy deltas
// — the Section 9.4 protocol as a deployable diagnostic. Every replay runs
// through the parallel evaluation driver on all cores; the report is
// deterministic regardless of thread count.

#include <cstdio>

#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/perturb.h"
#include "eval/parallel_eval.h"

int main() {
  using namespace codes;

  Text2SqlBenchmark spider = BuildSpiderLike();
  LmZoo zoo;
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(spider);
  pipeline.FineTune(spider);

  EvalOptions options;
  options.max_samples = 100;
  options.num_threads = 0;  // shard each replay across every core
  auto clean = EvaluateDevSet(spider, pipeline.PredictorFor(spider), options);
  std::printf("clean dev EX: %.1f%% (n=%d)\n\n", clean.ex, clean.n);

  auto report = [&](const std::string& name,
                    const Text2SqlBenchmark& variant) {
    auto m = EvaluateDevSet(variant, pipeline.PredictorFor(variant), options);
    std::printf("%-28s EX %5.1f%%   (delta %+5.1f)\n", name.c_str(), m.ex,
                m.ex - clean.ex);
  };

  std::printf("Spider variants:\n");
  report("Spider-Syn", BuildSpiderSyn(spider, 1));
  report("Spider-Realistic", BuildSpiderRealistic(spider, 2));
  report("Spider-DK", BuildSpiderDk(spider, 3));

  std::printf("\nDr.Spider suite:\n");
  for (const auto& set : BuildDrSpiderSuite(spider, 4)) {
    report("[" + set.category + "] " + set.name, set.bench);
  }
  return 0;
}
