// A mini SQL shell over the from-scratch engine substrate: generates one
// domain database, prints its DDL, and executes SQL typed on stdin. Shows
// that the execution layer behind the EX/TS/VES metrics is a real engine.
//
//   $ echo "SELECT country, COUNT(*) FROM singer GROUP BY country" | \
//       ./interactive_sql
//
// Without stdin input it runs a scripted demo.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "sqlengine/executor.h"

int main() {
  using namespace codes;

  Rng rng(7);
  sql::Database db = GenerateDatabase(AllDomains()[0], DbProfile::Spider(),
                                      rng);
  std::printf("generated database '%s' (%zu rows)\n\n",
              db.schema().name.c_str(), db.TotalRows());
  std::printf("%s\n", db.schema().ToDdl().c_str());

  const char* demo_queries[] = {
      "SELECT country, COUNT(*) AS singers FROM singer GROUP BY country "
      "ORDER BY COUNT(*) DESC LIMIT 5",
      "SELECT singer.name, concert.concert_title FROM concert JOIN singer "
      "ON concert.singer_id = singer.singer_id WHERE concert.year > 2000 "
      "LIMIT 5",
      "SELECT MIN(age), MAX(age), AVG(age) FROM singer",
  };

  bool had_input = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    had_input = true;
    auto result = sql::ExecuteSql(db, line);
    if (result.ok()) {
      std::printf("%s\n", result->ToString().c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  }

  if (!had_input) {
    for (const char* query : demo_queries) {
      std::printf("sql> %s\n", query);
      auto result = sql::ExecuteSql(db, query);
      if (result.ok()) {
        std::printf("%s\n", result->ToString().c_str());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
  }
  return 0;
}
