// Quickstart: build a benchmark, pre-train the language models, fine-tune
// a CodeS pipeline, and translate natural-language questions into SQL.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; see finance_adaptation.cpp
// for the new-domain workflow and robustness_report.cpp for evaluation.

#include <cstdio>

#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/metrics.h"
#include "sqlengine/executor.h"

int main() {
  using namespace codes;

  // 1. A Spider-like cross-domain benchmark: 20 generated databases,
  //    (question, SQL) pairs sampled from a 77-template grammar.
  std::printf("building the spider-like benchmark...\n");
  Text2SqlBenchmark bench = BuildSpiderLike();
  std::printf("  %zu databases, %zu train pairs, %zu dev pairs\n",
              bench.databases.size(), bench.train.size(), bench.dev.size());

  // 2. Pre-trained language models: a base code LM and its incrementally
  //    pre-trained SQL-centric counterpart (Section 5 of the paper).
  std::printf("pre-training language models...\n");
  LmZoo zoo;

  // 3. A fine-tuned CodeS-7B pipeline: schema item classifier + prompt
  //    construction + grammar-guided generation.
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(bench);
  pipeline.FineTune(bench);

  // 4. Ask questions.
  std::printf("\ntranslating dev questions:\n");
  for (int i = 0; i < 5; ++i) {
    const Text2SqlSample& sample = bench.dev[static_cast<size_t>(i)];
    std::string sql = pipeline.Predict(bench, sample);
    bool correct = ExecutionMatch(bench.DbOf(sample), sql, sample.sql);
    std::printf("\nQ: %s\n-> %s   [%s]\n", sample.question.c_str(),
                sql.c_str(), correct ? "matches gold" : "differs from gold");
    auto result = sql::ExecuteSql(bench.DbOf(sample), sql);
    if (result.ok()) {
      std::printf("%s", result->ToString(3).c_str());
    }
  }

  // 5. And measure accuracy over the whole dev set.
  EvalOptions options;
  EvalMetrics metrics =
      EvaluateDevSet(bench, pipeline.PredictorFor(bench), options);
  std::printf("\ndev execution accuracy: %.1f%% over %d questions\n",
              metrics.ex, metrics.n);
  return 0;
}
