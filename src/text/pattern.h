#ifndef CODES_TEXT_PATTERN_H_
#define CODES_TEXT_PATTERN_H_

#include <string>
#include <string_view>

namespace codes {

/// Extracts the "question pattern" of a natural-language question by
/// stripping entities, following Section 8.2 of the paper (which uses nltk
/// for the same purpose). Entities removed:
///   * quoted strings ('Jesenik', "Sarah Martinez")
///   * number literals (1948, 3.5)
///   * capitalized multi-word spans in sentence-medial position
/// Removed spans are replaced by the placeholder "_" so sentence shape is
/// preserved: "singers born in 1948 or 1949" -> "singers born in _ or _".
std::string ExtractQuestionPattern(std::string_view question);

}  // namespace codes

#endif  // CODES_TEXT_PATTERN_H_
