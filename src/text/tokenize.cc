#include "text/tokenize.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace codes {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    if (i > start) {
      std::string token = ToLower(text.substr(start, i - start));
      // A bare "_" is a mask/slot placeholder (see text/pattern.h) and is
      // kept verbatim so embeddings see the slot.
      if (token.find_first_not_of('_') == std::string::npos) {
        out.emplace_back("_");
        continue;
      }
      // Split identifier-style tokens on '_' so "stu_id" matches "stu id".
      size_t pos = 0;
      while (pos < token.size()) {
        size_t us = token.find('_', pos);
        if (us == std::string::npos) {
          if (pos < token.size()) out.push_back(token.substr(pos));
          break;
        }
        if (us > pos) out.push_back(token.substr(pos, us - pos));
        pos = us + 1;
      }
    }
  }
  return out;
}

std::vector<std::string> CodeTokens(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < text.size() && IsWordChar(text[i])) ++i;
      out.push_back(ToLower(text.substr(start, i - start)));
      continue;
    }
    // Two-character operators first.
    if (i + 1 < text.size()) {
      std::string_view two = text.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>" ||
          two == "||") {
        out.emplace_back(two);
        i += 2;
        continue;
      }
    }
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

std::vector<std::string> CharNgrams(std::string_view text, int n) {
  std::vector<std::string> out;
  std::string lower = ToLower(text);
  if (static_cast<int>(lower.size()) < n) return out;
  for (size_t i = 0; i + n <= lower.size(); ++i) {
    out.push_back(lower.substr(i, n));
  }
  return out;
}

bool IsNumberToken(std::string_view token) {
  if (token.empty()) return false;
  bool seen_digit = false;
  bool seen_dot = false;
  size_t start = (token[0] == '-' || token[0] == '+') ? 1 : 0;
  if (start == token.size()) return false;
  for (size_t i = start; i < token.size(); ++i) {
    char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

bool IsStopWord(std::string_view token) {
  static const std::unordered_set<std::string>* const kStopWords =
      new std::unordered_set<std::string>{
          "the", "a",    "an",   "of",   "in",   "on",    "for", "to",
          "and", "or",   "is",   "are",  "was",  "were",  "be",  "by",
          "at",  "as",   "that", "this", "with", "from",  "all", "each",
          "me",  "show", "list", "what", "which", "who",  "how", "many",
          "much", "do",  "does", "did",  "have", "has",   "it",  "its",
          "their", "there", "than", "then", "also", "please", "give",
          "find", "return", "tell", "i", "we", "you", "they", "them"};
  return kStopWords->count(std::string(token)) > 0;
}

std::string StemToken(std::string_view token) {
  std::string t(token);
  auto strip = [&t](std::string_view suffix) {
    if (t.size() > suffix.size() + 2 && EndsWith(t, suffix)) {
      t.resize(t.size() - suffix.size());
      return true;
    }
    return false;
  };
  if (strip("ies")) {
    t += 'y';
    return t;
  }
  if (strip("sses")) {
    t += "ss";
    return t;
  }
  if (strip("ing")) return t;
  if (strip("ed")) return t;
  if (t.size() > 3 && EndsWith(t, "s") && !EndsWith(t, "ss") &&
      !EndsWith(t, "us")) {
    t.pop_back();
  }
  return t;
}

}  // namespace codes
