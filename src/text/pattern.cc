#include "text/pattern.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "text/tokenize.h"

namespace codes {

namespace {

bool IsCapitalizedWord(std::string_view w) {
  if (w.empty()) return false;
  if (!std::isupper(static_cast<unsigned char>(w[0]))) return false;
  for (size_t i = 1; i < w.size(); ++i) {
    if (!std::isalpha(static_cast<unsigned char>(w[i]))) return false;
  }
  return true;
}

}  // namespace

std::string ExtractQuestionPattern(std::string_view question) {
  // Pass 1: blank out quoted spans.
  std::string text(question);
  for (char quote : {'\'', '"'}) {
    size_t pos = 0;
    while (true) {
      size_t open = text.find(quote, pos);
      if (open == std::string::npos) break;
      size_t close = text.find(quote, open + 1);
      if (close == std::string::npos) break;
      text.replace(open, close - open + 1, "_");
      pos = open + 1;
    }
  }

  // Pass 2: token-level stripping of numbers and sentence-medial
  // capitalized spans.
  std::vector<std::string> raw;
  {
    size_t i = 0;
    while (i < text.size()) {
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
      size_t start = i;
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
      if (i > start) raw.push_back(text.substr(start, i - start));
    }
  }

  std::vector<std::string> out_tokens;
  bool prev_was_placeholder = false;
  for (size_t i = 0; i < raw.size(); ++i) {
    // Trim trailing punctuation for classification, but keep the core token.
    std::string core = raw[i];
    while (!core.empty() &&
           std::ispunct(static_cast<unsigned char>(core.back())) &&
           core.back() != '_') {
      core.pop_back();
    }
    bool is_entity = false;
    if (core == "_") {
      is_entity = true;
    } else if (IsNumberToken(core)) {
      is_entity = true;
    } else if (i > 0 && IsCapitalizedWord(core) && !IsStopWord(ToLower(core))) {
      is_entity = true;
    }
    if (is_entity) {
      // Collapse adjacent entity tokens into one placeholder.
      if (!prev_was_placeholder) out_tokens.emplace_back("_");
      prev_was_placeholder = true;
    } else {
      out_tokens.push_back(ToLower(core));
      prev_was_placeholder = false;
    }
  }
  return Join(out_tokens, " ");
}

}  // namespace codes
