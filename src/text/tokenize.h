#ifndef CODES_TEXT_TOKENIZE_H_
#define CODES_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace codes {

/// Splits `text` into lowercase word tokens: maximal runs of alphanumeric
/// characters (plus '_' inside identifiers). Punctuation is dropped.
/// "List the singer's name, age" -> {"list","the","singer","s","name","age"}.
std::vector<std::string> WordTokens(std::string_view text);

/// Like WordTokens but keeps punctuation marks as single-character tokens.
/// Used by the language model, where operators like '=' and ',' carry
/// distributional signal.
std::vector<std::string> CodeTokens(std::string_view text);

/// Extracts character n-grams of length `n` from `text` (lowercased).
/// Returns an empty vector when text is shorter than n.
std::vector<std::string> CharNgrams(std::string_view text, int n);

/// True if the token is a number literal (integer or decimal).
bool IsNumberToken(std::string_view token);

/// English "stop words" ignored by retrieval scoring.
bool IsStopWord(std::string_view token);

/// Crude suffix-stripping stemmer (plural/-ing/-ed) so that "singers"
/// matches "singer". Operates on a lowercase token.
std::string StemToken(std::string_view token);

}  // namespace codes

#endif  // CODES_TEXT_TOKENIZE_H_
