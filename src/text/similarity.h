#ifndef CODES_TEXT_SIMILARITY_H_
#define CODES_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace codes {

/// Length of the longest common substring of `a` and `b` (case-insensitive).
/// This is the fine-grained matcher of the paper's coarse-to-fine value
/// retriever (Section 6.2).
///
/// Implementation: a word-packed bit-parallel level sweep (Myers-style
/// match masks) behind a character-class prefilter, so the per-query LCS
/// re-rank costs O(|short| * ceil(|long|/64) * (answer+1)) word ops
/// instead of the classic O(|a|*|b|) cell DP. Byte-identical to
/// LongestCommonSubstringLengthReferenceDp on every input (pinned by
/// tests/speed_equivalence_test.cc, including UTF-8/accented/CJK bytes).
int LongestCommonSubstringLength(std::string_view a, std::string_view b);

/// The classic O(|a|*|b|) rolling-row DP. Pinned reference for the
/// bit-parallel implementation: equivalence tests compare against it, the
/// bench_latency hot-path section reports the before/after speedup, and
/// the CI perf gate's injected-slowdown leg routes the hot path through it
/// (CODES_PERF_INJECT=lcs2x) to prove the regression gate fires.
int LongestCommonSubstringLengthReferenceDp(std::string_view a,
                                            std::string_view b);

/// Longest common substring normalized by the length of the shorter string,
/// in [0,1]. Returns 0 when either string is empty.
double LcsMatchDegree(std::string_view a, std::string_view b);

/// Length of the longest common subsequence (order-preserving, with gaps).
int LongestCommonSubsequenceLength(std::string_view a, std::string_view b);

/// Levenshtein edit distance between `a` and `b` (case-sensitive).
int EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity of the two token sets.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Fraction of tokens in `needle` that occur in `haystack` (stemmed match).
double TokenCoverage(const std::vector<std::string>& needle,
                     const std::vector<std::string>& haystack);

/// True when `identifier` (e.g. "npgr") is the initials of some window of
/// consecutive content tokens ("net profit growth rate"). How humans — and
/// code LLMs — guess abbreviated column names.
bool InitialsMatch(const std::string& identifier,
                   const std::vector<std::string>& tokens);

}  // namespace codes

#endif  // CODES_TEXT_SIMILARITY_H_
