#include "text/similarity.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"
#include "text/tokenize.h"

namespace codes {

namespace {

/// ASCII-only case fold, matching ToLower's locale-independent semantics
/// byte for byte (UTF-8 continuation bytes pass through untouched).
inline unsigned char FoldByte(unsigned char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<unsigned char>(c + 32) : c;
}

/// 64-bit character-class signature: bit (folded byte mod 64) per byte.
/// Two strings with disjoint signatures share no byte, so their LCS is 0 —
/// the prefilter that lets the re-rank loop skip most candidates without
/// touching the match machinery at all.
inline uint64_t CharClassSignature(std::string_view s) {
  uint64_t sig = 0;
  for (unsigned char c : s) sig |= 1ULL << (FoldByte(c) & 63);
  return sig;
}

/// Reusable per-thread buffers for the bit-parallel sweep: 256 lazily
/// generation-stamped match masks plus the packed row set. Thread-local so
/// concurrent re-ranks (the 8-thread eval driver) never share state.
struct LcsScratch {
  std::vector<uint64_t> masks;       // 256 * words
  std::array<uint32_t, 256> stamp{}; // generation per character
  uint32_t generation = 0;
  std::vector<uint64_t> rows;        // |short| * words
  std::vector<int> active;           // surviving row indices, descending
  std::vector<int> next_active;
};

LcsScratch& GetLcsScratch() {
  thread_local LcsScratch scratch;
  return scratch;
}

/// True when CODES_PERF_INJECT contains "lcs2x": the CI perf gate's
/// negative test, which must make the LCS stage measurably (>2x) slower
/// without changing any result.
bool LcsSlowdownInjected() {
  static const bool injected = [] {
    const char* env = std::getenv("CODES_PERF_INJECT");
    return env != nullptr &&
           std::string_view(env).find("lcs2x") != std::string_view::npos;
  }();
  return injected;
}

/// Word-packed level sweep. Rows follow the shorter string `a`; the longer
/// string `b` is packed into ceil(|b|/64) words. Level t keeps, per row i,
/// the bitset B_t(i) = { j : a[i-t+1..i] == b[j-t+1..j] } via
/// B_{t+1}(i) = B_t(i) & (B_t(i-1) << 1); the answer is the last level
/// with any surviving row. Rows die monotonically (a zero row stays zero),
/// so each sweep only touches the shrinking active set — total work is
/// proportional to the sum of per-row match-run lengths, not |a|*|b|.
int LcsBitParallel(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t words = (b.size() + 63) / 64;
  LcsScratch& scratch = GetLcsScratch();

  // Match masks for every distinct character of b, built in one pass with
  // generation stamps (no 256-entry clear per call).
  scratch.masks.resize(256 * words);
  ++scratch.generation;
  if (scratch.generation == 0) {  // stamp wrap: invalidate everything
    scratch.stamp.fill(0);
    scratch.generation = 1;
  }
  for (size_t j = 0; j < b.size(); ++j) {
    unsigned char c = FoldByte(static_cast<unsigned char>(b[j]));
    uint64_t* mask = &scratch.masks[static_cast<size_t>(c) * words];
    if (scratch.stamp[c] != scratch.generation) {
      scratch.stamp[c] = scratch.generation;
      std::fill(mask, mask + words, 0);
    }
    mask[j / 64] |= 1ULL << (j % 64);
  }

  // Level 1: every row starts as its character's match mask; rows whose
  // character never occurs in b are dead on arrival.
  scratch.rows.assign(n * words, 0);
  scratch.active.clear();
  for (size_t i = n; i-- > 0;) {  // descending, the sweep order
    unsigned char c = FoldByte(static_cast<unsigned char>(a[i]));
    if (scratch.stamp[c] != scratch.generation) continue;
    const uint64_t* mask = &scratch.masks[static_cast<size_t>(c) * words];
    std::copy(mask, mask + words, &scratch.rows[i * words]);
    scratch.active.push_back(static_cast<int>(i));
  }
  if (scratch.active.empty()) return 0;

  int best = 1;
  while (best < static_cast<int>(n)) {
    scratch.next_active.clear();
    // Descending row order: row i consumes row i-1 while the latter still
    // holds the previous level.
    for (int i : scratch.active) {
      uint64_t* row = &scratch.rows[static_cast<size_t>(i) * words];
      uint64_t any = 0;
      if (i == 0) {
        // No predecessor: a longer-than-best run cannot end in row 0.
        std::fill(row, row + words, 0);
      } else {
        const uint64_t* prev = &scratch.rows[static_cast<size_t>(i - 1) * words];
        uint64_t carry = 0;  // (prev << 1) leaves bit 0 clear: no run starts here
        for (size_t w = 0; w < words; ++w) {
          uint64_t p = prev[w];
          row[w] &= (p << 1) | carry;
          carry = p >> 63;
          any |= row[w];
        }
      }
      if (any != 0) {
        scratch.next_active.push_back(i);
      } else if (i != 0) {
        // Dead rows must read as zero for their successor's next sweep.
        std::fill(row, row + words, 0);
      }
    }
    if (scratch.next_active.empty()) break;
    std::swap(scratch.active, scratch.next_active);
    ++best;
  }
  return best;
}

}  // namespace

int LongestCommonSubstringLengthReferenceDp(std::string_view a_raw,
                                            std::string_view b_raw) {
  if (a_raw.empty() || b_raw.empty()) return 0;
  std::string a = ToLower(a_raw);
  std::string b = ToLower(b_raw);
  // Rolling single-row DP keeps memory at O(|b|).
  std::vector<int> prev(b.size() + 1, 0);
  std::vector<int> cur(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

int LongestCommonSubstringLength(std::string_view a_raw, std::string_view b_raw) {
  if (a_raw.empty() || b_raw.empty()) return 0;
  if (LcsSlowdownInjected()) {
    // The injected "regression": answer via the reference DP, twice, so the
    // stage slows by far more than the 15% gate without changing results.
    (void)LongestCommonSubstringLengthReferenceDp(a_raw, b_raw);
    return LongestCommonSubstringLengthReferenceDp(a_raw, b_raw);
  }
  // Prefilter: disjoint character classes -> no common byte -> LCS 0.
  if ((CharClassSignature(a_raw) & CharClassSignature(b_raw)) == 0) return 0;
  // Degenerate sizes (not reachable from the value re-rank) fall back to
  // the DP rather than sizing 256 packed masks for a megabyte string.
  if (a_raw.size() > 4096 || b_raw.size() > 4096) {
    return LongestCommonSubstringLengthReferenceDp(a_raw, b_raw);
  }
  // Rows follow the shorter string: the level count is bounded by the
  // answer (<= |short|) and the longer string packs 64 positions per word.
  if (a_raw.size() <= b_raw.size()) return LcsBitParallel(a_raw, b_raw);
  return LcsBitParallel(b_raw, a_raw);
}

double LcsMatchDegree(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  int lcs = LongestCommonSubstringLength(a, b);
  size_t shorter = std::min(a.size(), b.size());
  return static_cast<double>(lcs) / static_cast<double>(shorter);
}

int LongestCommonSubsequenceLength(std::string_view a_raw,
                                   std::string_view b_raw) {
  std::string a = ToLower(a_raw);
  std::string b = ToLower(b_raw);
  std::vector<int> prev(b.size() + 1, 0);
  std::vector<int> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

int EditDistance(std::string_view a, std::string_view b) {
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

bool InitialsMatch(const std::string& identifier,
                   const std::vector<std::string>& tokens) {
  std::string id = ToLower(identifier);
  if (id.size() < 2 || id.size() > 6) return false;
  size_t window = id.size();
  if (tokens.size() < window) return false;
  for (size_t start = 0; start + window <= tokens.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < window; ++i) {
      const std::string& token = tokens[start + i];
      if (token.empty() || token[0] != id[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

double TokenCoverage(const std::vector<std::string>& needle,
                     const std::vector<std::string>& haystack) {
  if (needle.empty()) return 0.0;
  std::unordered_set<std::string> hs;
  for (const auto& t : haystack) hs.insert(StemToken(t));
  int hits = 0;
  for (const auto& t : needle) {
    if (hs.count(StemToken(t))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(needle.size());
}

}  // namespace codes
