#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "text/tokenize.h"

namespace codes {

int LongestCommonSubstringLength(std::string_view a_raw, std::string_view b_raw) {
  if (a_raw.empty() || b_raw.empty()) return 0;
  std::string a = ToLower(a_raw);
  std::string b = ToLower(b_raw);
  // Rolling single-row DP keeps memory at O(|b|).
  std::vector<int> prev(b.size() + 1, 0);
  std::vector<int> cur(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

double LcsMatchDegree(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  int lcs = LongestCommonSubstringLength(a, b);
  size_t shorter = std::min(a.size(), b.size());
  return static_cast<double>(lcs) / static_cast<double>(shorter);
}

int LongestCommonSubsequenceLength(std::string_view a_raw,
                                   std::string_view b_raw) {
  std::string a = ToLower(a_raw);
  std::string b = ToLower(b_raw);
  std::vector<int> prev(b.size() + 1, 0);
  std::vector<int> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

int EditDistance(std::string_view a, std::string_view b) {
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

bool InitialsMatch(const std::string& identifier,
                   const std::vector<std::string>& tokens) {
  std::string id = ToLower(identifier);
  if (id.size() < 2 || id.size() > 6) return false;
  size_t window = id.size();
  if (tokens.size() < window) return false;
  for (size_t start = 0; start + window <= tokens.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < window; ++i) {
      const std::string& token = tokens[start + i];
      if (token.empty() || token[0] != id[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

double TokenCoverage(const std::vector<std::string>& needle,
                     const std::vector<std::string>& haystack) {
  if (needle.empty()) return 0.0;
  std::unordered_set<std::string> hs;
  for (const auto& t : haystack) hs.insert(StemToken(t));
  int hits = 0;
  for (const auto& t : needle) {
    if (hs.count(StemToken(t))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(needle.size());
}

}  // namespace codes
