#ifndef CODES_GENERATOR_CAPACITY_H_
#define CODES_GENERATOR_CAPACITY_H_

#include <string>

namespace codes {

/// The four CodeS scales of the paper (Table 1).
enum class ModelSize { k1B, k3B, k7B, k15B };

/// Capacity knobs of a model scale. The transformer hyper-parameters
/// (hidden size, blocks, ...) are reported for parity with Table 1; the
/// *operative* knobs of the substitute model are the ones that bound how
/// much signal the generator can exploit:
///   * embedding_dim     — sentence-embedding width (hash collisions ↓)
///   * ngram_order       — language-model order
///   * candidate_templates / beam_width — search breadth
///   * decode_noise      — score jitter (small models decode noisily)
///   * max_context_tokens — prompt budget before truncation
/// and the mixing weights of the candidate scorer.
struct CapacityProfile {
  std::string name;
  double params_billion = 0;

  // Table 1 reference architecture (emulated; informational).
  int hidden_size = 0;
  int ffn_size = 0;
  int attention_heads = 0;
  int transformer_blocks = 0;

  // Operative knobs.
  int embedding_dim = 128;
  int ngram_order = 3;
  int candidate_templates = 10;
  int beam_width = 4;
  int max_context_tokens = 8192;
  double decode_noise = 0.15;

  // Candidate score mixing.
  double template_weight = 1.0;
  double link_weight = 0.8;
  double lm_weight = 0.6;
};

/// The profile for a scale.
const CapacityProfile& ProfileFor(ModelSize size);

/// "codes-1b" ... "codes-15b".
const std::string& ModelSizeName(ModelSize size);

/// All four sizes in ascending order.
const ModelSize* AllModelSizes(int* count);

}  // namespace codes

#endif  // CODES_GENERATOR_CAPACITY_H_
