#ifndef CODES_GENERATOR_CODES_MODEL_H_
#define CODES_GENERATOR_CODES_MODEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/sample.h"
#include "dataset/templates.h"
#include "embed/sentence_encoder.h"
#include "generator/capacity.h"
#include "lm/ngram_lm.h"
#include "prompt/prompt_builder.h"
#include "sqlengine/database.h"

namespace codes {

/// Everything the model sees for one query: the structured database
/// prompt, the question (with EK appended when available), and optional
/// in-context demonstrations.
struct GenerationInput {
  const sql::Database* db = nullptr;
  const DatabasePrompt* prompt = nullptr;
  std::string question;
  /// BIRD-style evidence. Used for schema *linking* only — appending it to
  /// the question would distort the template signature.
  std::string external_knowledge;
  std::vector<const Text2SqlSample*> demonstrations;
};

/// One beam candidate.
struct ScoredCandidate {
  std::string sql;
  int template_id = -1;
  double score = 0.0;
  bool executable = false;
};

/// The CodeS substitute model: a grammar-guided text-to-SQL generator.
///
/// Decoding works in three learned stages, mirroring how the paper's LM
/// implicitly factors the task:
///  1. *Sketch selection* — templates are scored against the question via
///     sentence/pattern embeddings, using SFT-learned centroids, built-in
///     skeleton knowledge (the "pre-trained" prior), and in-context
///     demonstrations.
///  2. *Slot filling* — the top sketches are instantiated against the
///     prompt's surviving schema items under SlotGuidance: linking scores,
///     retrieved values, representative values, question numbers, and the
///     FK edges the prompt exposes.
///  3. *Reranking* — candidates mix template score, slot-linking score,
///     and the n-gram LM's average log-probability of the SQL string (the
///     term incremental pre-training improves). A beam of `beam_width`
///     candidates is kept and the first executable one is returned,
///     exactly as Section 9.1.4 describes.
class CodesModel {
 public:
  /// `lm` must outlive the model. Pass the incrementally pre-trained LM
  /// for CodeS behaviour or a base-corpus LM for StarCoder-like baselines.
  CodesModel(ModelSize size, const NgramLm* lm);

  const CapacityProfile& profile() const { return profile_; }
  bool fine_tuned() const { return fine_tuned_; }

  /// Extra decode noise stacked on the profile's (used to emulate weaker
  /// baseline model families such as CodeGen or Llama-2 in Table 4).
  void set_extra_noise(double noise) { extra_noise_ = noise; }

  /// Supervised fine-tuning (Section 8.1): learns template centroids and
  /// priors from (question, SQL) pairs. `max_samples` < 0 uses all. The
  /// overload with `bench` additionally masks schema words using each
  /// sample's database, which markedly improves cross-domain transfer.
  void FineTune(const std::vector<Text2SqlSample>& train, int max_samples = -1);
  void FineTune(const std::vector<Text2SqlSample>& train,
                const Text2SqlBenchmark* bench, int max_samples = -1);

  /// Generates the final SQL for `input` (first executable beam entry).
  std::string Generate(const GenerationInput& input, uint64_t seed) const;

  /// Full beam, for diagnostics, tests, and guarded serving. When
  /// `mark_executable` is false the per-candidate execution probe is
  /// skipped (candidates keep `executable = false`); callers that execute
  /// candidates themselves — the pipeline's guarded repair loop — use this
  /// to avoid paying for every candidate's execution twice. Ranking is
  /// unaffected: candidates are scored and ordered before marking.
  std::vector<ScoredCandidate> GenerateBeam(const GenerationInput& input,
                                            uint64_t seed,
                                            bool mark_executable = true) const;

 private:
  struct TemplateAnchor {
    std::vector<float> question_embedding;
    std::vector<float> pattern_embedding;
    double weight = 1.0;
  };

  double TemplateScore(int template_id, const std::vector<float>& q_emb,
                       const std::vector<float>& p_emb) const;
  void RebuildSkeletonAnchors();

  CapacityProfile profile_;
  const NgramLm* lm_;
  SentenceEncoder encoder_;
  bool fine_tuned_ = false;
  double extra_noise_ = 0.0;

  /// Per-template anchors: skeleton knowledge plus SFT centroids.
  std::vector<std::vector<TemplateAnchor>> anchors_;
  std::vector<double> template_prior_;  // log-count prior from SFT
};

}  // namespace codes

#endif  // CODES_GENERATOR_CODES_MODEL_H_
