#include "generator/codes_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "dataset/perturb.h"
#include "sqlengine/executor.h"
#include "text/pattern.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace codes {

namespace {

/// Single-quoted spans of a question, in order.
std::vector<std::string> QuotedSpans(const std::string& question) {
  std::vector<std::string> spans;
  size_t pos = 0;
  while (true) {
    size_t open = question.find('\'', pos);
    if (open == std::string::npos) break;
    size_t close = question.find('\'', open + 1);
    if (close == std::string::npos) break;
    spans.push_back(question.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return spans;
}

/// Numeric literals of a question, outside quotes, in order.
std::vector<double> QuestionNumbers(const std::string& question) {
  std::vector<double> numbers;
  bool in_quote = false;
  std::string token;
  auto flush = [&numbers, &token]() {
    if (!token.empty() && IsNumberToken(token)) {
      numbers.push_back(std::strtod(token.c_str(), nullptr));
    }
    token.clear();
  };
  for (char c : question) {
    if (c == '\'') {
      flush();
      in_quote = !in_quote;
      continue;
    }
    if (in_quote) continue;
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      token += c;
    } else {
      flush();
    }
  }
  flush();
  return numbers;
}

/// Replaces schema-derived content words of `question` with "_", leaving
/// the *structural* words that identify the SQL shape. Masking happens
/// before template scoring so that "how many singer are there" and "how
/// many gym are there" collapse to the same signature; anchors trained on
/// one domain then transfer to any other — the cross-domain mechanism.
std::string MaskSchemaWords(const std::string& question,
                            const sql::Database& db) {
  std::unordered_map<std::string, bool> schema_stems;
  auto add_phrase = [&schema_stems](const std::string& phrase) {
    for (auto& w : WordTokens(phrase)) {
      if (!IsStopWord(w)) schema_stems[StemToken(w)] = true;
    }
  };
  for (const auto& table : db.schema().tables) {
    add_phrase(table.name);
    add_phrase(table.comment);
    for (const auto& col : table.columns) {
      add_phrase(col.name);
      add_phrase(col.comment);
    }
  }
  // A pre-trained model also recognizes common synonyms of schema words
  // ("vocalist" for singer); they are masked too.
  {
    std::vector<std::string> stems;
    for (const auto& [stem, unused] : schema_stems) stems.push_back(stem);
    for (const auto& extra : ExpandWithSynonyms(stems)) {
      schema_stems[StemToken(extra)] = true;
    }
  }
  std::vector<std::string> out;
  bool prev_masked = false;
  for (auto& token : WordTokens(question)) {
    if (schema_stems.count(StemToken(token))) {
      if (!prev_masked) out.emplace_back("_");
      prev_masked = true;
    } else {
      out.push_back(std::move(token));
      prev_masked = false;
    }
  }
  return Join(out, " ");
}

/// Coverage of a phrase's content words by the question's tokens.
double PhraseCoverage(const std::string& phrase,
                      const std::vector<std::string>& question_tokens) {
  std::vector<std::string> phrase_tokens;
  for (auto& t : WordTokens(phrase)) {
    if (!IsStopWord(t)) phrase_tokens.push_back(std::move(t));
  }
  if (phrase_tokens.empty()) return 0.0;
  return TokenCoverage(phrase_tokens, question_tokens);
}

/// Normalized position (0=start, 1=end/absent) of the first question
/// token matching any content word of `phrase`. In the benchmark's
/// phrasings, selected columns are mentioned before filtered ones.
double FirstMentionPosition(const std::string& phrase,
                            const std::vector<std::string>& question_stems) {
  if (question_stems.empty()) return 1.0;
  std::vector<std::string> phrase_stems;
  for (auto& w : WordTokens(phrase)) {
    if (!IsStopWord(w)) phrase_stems.push_back(StemToken(w));
  }
  for (size_t i = 0; i < question_stems.size(); ++i) {
    for (const auto& p : phrase_stems) {
      if (question_stems[i] == p) {
        return static_cast<double>(i) /
               static_cast<double>(question_stems.size());
      }
    }
  }
  return 1.0;
}

}  // namespace

CodesModel::CodesModel(ModelSize size, const NgramLm* lm)
    : profile_(ProfileFor(size)), lm_(lm), encoder_(profile_.embedding_dim) {
  RebuildSkeletonAnchors();
}

void CodesModel::RebuildSkeletonAnchors() {
  const TemplateLibrary& lib = GlobalTemplates();
  anchors_.assign(static_cast<size_t>(lib.size()), {});
  if (template_prior_.empty()) {
    template_prior_.assign(static_cast<size_t>(lib.size()), 0.0);
  }

  // "Pre-trained" NL-to-SQL knowledge: realized question phrasings per
  // template, produced on reference databases and schema-masked so the
  // anchors are domain-free. This models what an LM learns from NL-SQL
  // pre-training pairs (the paper's NL-SQL-458K slice).
  constexpr int kAnchorVariants = 3;
  Rng rng(0xA2C40);
  DbProfile profile = DbProfile::Spider();
  profile.min_rows = 40;
  profile.max_rows = 60;
  std::vector<sql::Database> reference_dbs;
  for (int d = 0; d < 4 && d < static_cast<int>(AllDomains().size()); ++d) {
    Rng db_rng = rng.Fork();
    reference_dbs.push_back(
        GenerateDatabase(AllDomains()[static_cast<size_t>(d)], profile,
                         db_rng, "anchor"));
  }
  for (int tid = 0; tid < lib.size(); ++tid) {
    // Skeleton anchor (always available). "{COLUMN}"-style placeholders
    // become mask tokens so skeletons live in the same space as masked
    // questions.
    {
      TemplateAnchor anchor;
      std::string masked = lib.QuestionSkeleton(tid);
      while (true) {
        size_t open = masked.find('{');
        if (open == std::string::npos) break;
        size_t close = masked.find('}', open);
        if (close == std::string::npos) break;
        masked.replace(open, close - open + 1, "_");
      }
      anchor.question_embedding = encoder_.Encode(masked);
      anchor.pattern_embedding =
          encoder_.Encode(ExtractQuestionPattern(masked));
      anchor.weight = 0.5;
      anchors_[static_cast<size_t>(tid)].push_back(std::move(anchor));
    }
    int produced = 0;
    for (int attempt = 0; attempt < 24 && produced < kAnchorVariants;
         ++attempt) {
      const auto& db = reference_dbs[rng.Index(reference_dbs.size())];
      auto inst = lib.Instantiate(tid, db, rng);
      if (!inst.has_value()) continue;
      std::string masked = MaskSchemaWords(inst->question, db);
      TemplateAnchor anchor;
      anchor.question_embedding = encoder_.Encode(masked);
      anchor.pattern_embedding =
          encoder_.Encode(ExtractQuestionPattern(masked));
      anchor.weight = 0.55;
      anchors_[static_cast<size_t>(tid)].push_back(std::move(anchor));
      // Paraphrase knowledge: a pre-trained LM also recognizes common
      // keyword rewrites ("greater than" == "more than"), so each variant
      // contributes a paraphrased twin anchor.
      std::string paraphrased = masked;
      for (const auto& [from, to] : KeywordSynonymTable()) {
        paraphrased = ReplaceWordOutsideQuotes(paraphrased, from, to);
      }
      if (paraphrased != masked) {
        TemplateAnchor twin;
        twin.question_embedding = encoder_.Encode(paraphrased);
        twin.pattern_embedding =
            encoder_.Encode(ExtractQuestionPattern(paraphrased));
        twin.weight = 0.5;
        anchors_[static_cast<size_t>(tid)].push_back(std::move(twin));
      }
      ++produced;
    }
  }
}

void CodesModel::FineTune(const std::vector<Text2SqlSample>& train,
                          int max_samples) {
  // Fine-tuning needs each sample's database to mask schema words; the
  // overload below is the real implementation.
  FineTune(train, nullptr, max_samples);
}

void CodesModel::FineTune(const std::vector<Text2SqlSample>& train,
                          const Text2SqlBenchmark* bench, int max_samples) {
  const TemplateLibrary& lib = GlobalTemplates();
  size_t limit = train.size();
  if (max_samples >= 0) {
    limit = std::min(limit, static_cast<size_t>(max_samples));
  }

  // Refit the encoder on the training distribution, then rebuild anchors
  // in the new embedding space. Small fine-tuning sets keep the
  // pre-trained vocabulary statistics (re-deriving IDF from a handful of
  // questions would destroy more signal than it adds).
  if (limit >= 200) {
    std::vector<std::string> questions;
    questions.reserve(limit);
    for (size_t i = 0; i < limit; ++i) questions.push_back(train[i].question);
    encoder_.FitIdf(questions);
    RebuildSkeletonAnchors();
  }
  template_prior_.assign(static_cast<size_t>(lib.size()), 0.0);

  struct Accumulator {
    std::vector<double> question_sum;
    std::vector<double> pattern_sum;
    int count = 0;
  };
  std::vector<Accumulator> acc(static_cast<size_t>(lib.size()));
  constexpr int kExemplarsPerTemplate = 4;
  std::vector<int> exemplars(static_cast<size_t>(lib.size()), 0);

  for (size_t i = 0; i < limit; ++i) {
    const auto& sample = train[i];
    int tid = lib.IdentifyTemplate(sample.sql);
    if (tid < 0) continue;
    std::string question = sample.question;
    if (bench != nullptr) {
      question = MaskSchemaWords(question, bench->DbOf(sample));
    }
    std::vector<float> q = encoder_.Encode(question);
    std::vector<float> p = encoder_.Encode(ExtractQuestionPattern(question));
    auto& a = acc[static_cast<size_t>(tid)];
    if (a.question_sum.empty()) {
      a.question_sum.assign(q.size(), 0.0);
      a.pattern_sum.assign(p.size(), 0.0);
    }
    for (size_t d = 0; d < q.size(); ++d) {
      a.question_sum[d] += q[d];
      a.pattern_sum[d] += p[d];
    }
    a.count += 1;
    if (exemplars[static_cast<size_t>(tid)] < kExemplarsPerTemplate) {
      TemplateAnchor anchor;
      anchor.question_embedding = std::move(q);
      anchor.pattern_embedding = std::move(p);
      anchor.weight = 1.0;
      anchors_[static_cast<size_t>(tid)].push_back(std::move(anchor));
      exemplars[static_cast<size_t>(tid)] += 1;
    }
  }
  for (size_t tid = 0; tid < acc.size(); ++tid) {
    if (acc[tid].count == 0) continue;
    TemplateAnchor centroid;
    centroid.question_embedding.resize(acc[tid].question_sum.size());
    centroid.pattern_embedding.resize(acc[tid].pattern_sum.size());
    for (size_t d = 0; d < acc[tid].question_sum.size(); ++d) {
      centroid.question_embedding[d] =
          static_cast<float>(acc[tid].question_sum[d] / acc[tid].count);
      centroid.pattern_embedding[d] =
          static_cast<float>(acc[tid].pattern_sum[d] / acc[tid].count);
    }
    centroid.weight = 1.0;
    anchors_[tid].push_back(std::move(centroid));
    template_prior_[tid] = 0.02 * std::log(1.0 + acc[tid].count);
  }
  fine_tuned_ = true;
}

double CodesModel::TemplateScore(int template_id,
                                 const std::vector<float>& q_emb,
                                 const std::vector<float>& p_emb) const {
  double best = 0.0;
  for (const auto& anchor : anchors_[static_cast<size_t>(template_id)]) {
    double sim = std::max(CosineSimilarity(q_emb, anchor.question_embedding),
                          CosineSimilarity(p_emb, anchor.pattern_embedding));
    best = std::max(best, sim * anchor.weight);
  }
  return best + template_prior_[static_cast<size_t>(template_id)];
}

std::vector<ScoredCandidate> CodesModel::GenerateBeam(
    const GenerationInput& input, uint64_t seed, bool mark_executable) const {
  const TemplateLibrary& lib = GlobalTemplates();
  const sql::Database& db = *input.db;
  const DatabasePrompt& prompt = *input.prompt;
  Rng rng(seed ^ 0x5EEDC0DE5ULL);

  std::string masked = MaskSchemaWords(input.question, db);
  std::vector<float> q_emb = encoder_.Encode(masked);
  std::vector<float> p_emb =
      encoder_.Encode(ExtractQuestionPattern(masked));
  // Linking evidence sees question + external knowledge; template scoring
  // above deliberately sees the bare question only.
  std::string link_text = input.question;
  if (!input.external_knowledge.empty()) {
    link_text += " ; " + input.external_knowledge;
  }
  std::vector<std::string> q_tokens =
      ExpandWithSynonyms(WordTokens(link_text));
  std::vector<std::string> q_stems;
  q_stems.reserve(q_tokens.size());
  for (const auto& t : q_tokens) q_stems.push_back(StemToken(t));

  // ---- stage 1: sketch selection
  std::vector<double> template_scores(static_cast<size_t>(lib.size()), 0.0);
  for (int tid = 0; tid < lib.size(); ++tid) {
    template_scores[static_cast<size_t>(tid)] =
        TemplateScore(tid, q_emb, p_emb);
  }
  // In-context demonstrations sharpen template selection. Evidence is
  // aggregated as a per-template *max* over demos (so extra, less similar
  // demos never outvote the best match — more shots can only widen
  // coverage), thresholded so weak matches add nothing.
  if (!input.demonstrations.empty()) {
    std::vector<float> raw_q = encoder_.Encode(input.question);
    std::vector<float> raw_p =
        encoder_.Encode(ExtractQuestionPattern(input.question));
    std::vector<double> demo_best(static_cast<size_t>(lib.size()), 0.0);
    for (const Text2SqlSample* demo : input.demonstrations) {
      int tid = lib.IdentifyTemplate(demo->sql);
      if (tid < 0) continue;
      std::vector<float> demo_q = encoder_.Encode(demo->question);
      std::vector<float> demo_p =
          encoder_.Encode(ExtractQuestionPattern(demo->question));
      double sim = std::max(CosineSimilarity(raw_q, demo_q),
                            CosineSimilarity(raw_p, demo_p));
      double evidence = std::max(0.0, sim - 0.35) * 1.3;
      demo_best[static_cast<size_t>(tid)] =
          std::max(demo_best[static_cast<size_t>(tid)], evidence);
    }
    for (int tid = 0; tid < lib.size(); ++tid) {
      template_scores[static_cast<size_t>(tid)] +=
          demo_best[static_cast<size_t>(tid)];
    }
  }

  // Attention dilution: longer prompts are harder to exploit, so decode
  // noise scales with how much of the context window the prompt fills.
  // This is what makes schema filtering pay off and what costs the 15B
  // model its smaller context on value-heavy databases.
  double fill = static_cast<double>(prompt.token_count) /
                static_cast<double>(profile_.max_context_tokens);
  double noise = (profile_.decode_noise + extra_noise_) * (1.0 + 1.2 * fill);
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(template_scores.size());
  for (int tid = 0; tid < lib.size(); ++tid) {
    double jitter = rng.Gaussian() * noise * 0.22;
    ranked.emplace_back(template_scores[static_cast<size_t>(tid)] + jitter,
                        tid);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // ---- stage 2: slot guidance from the prompt
  std::vector<std::string> quoted = QuotedSpans(input.question);

  // A column is visible to the model if the schema filter kept it OR a
  // retrieved value names it in the matched-values section of the prompt.
  auto column_visible = [&](int t, int c) -> bool {
    if (prompt.ColumnKept(t, c)) return true;
    for (const auto& mv : prompt.matched_values) {
      if (mv.table == t && mv.column == c && mv.score >= 0.85) return true;
    }
    return false;
  };

  auto column_base_score = [&](int t, int c) -> double {
    if (!column_visible(t, c)) return -1e9;
    const auto& col = db.schema().tables[t].columns[c];
    double score = PhraseCoverage(col.name, q_tokens) * 1.2;
    if (prompt.comments_included && !col.comment.empty()) {
      score = std::max(score, PhraseCoverage(col.comment, q_tokens) * 1.3);
    }
    // Abbreviation guessing: "npgr" links to "net profit growth rate".
    if (InitialsMatch(col.name, q_tokens)) score = std::max(score, 0.9);
    score += 0.15 * LcsMatchDegree(ColumnPhrase(col), input.question);
    return score;
  };

  auto value_hit = [&](int t, int c) -> double {
    double best = 0.0;
    for (const auto& mv : prompt.matched_values) {
      if (mv.table == t && mv.column == c && mv.score >= 0.85) {
        best = std::max(best, mv.score);
      }
    }
    return best;
  };

  SlotGuidance guidance;
  guidance.noise = noise * 0.25;
  guidance.numbers = QuestionNumbers(input.question);
  guidance.table_score = [&](int t) -> double {
    if (!prompt.TableKept(t)) return -1e9;
    const auto& table = db.schema().tables[t];
    double score = PhraseCoverage(table.name, q_tokens) * 1.5;
    if (prompt.comments_included && !table.comment.empty()) {
      score = std::max(score, PhraseCoverage(table.comment, q_tokens));
    }
    double best_col = 0.0;
    for (size_t c = 0; c < table.columns.size(); ++c) {
      double cs = column_base_score(t, static_cast<int>(c)) +
                  value_hit(t, static_cast<int>(c));
      best_col = std::max(best_col, cs);
    }
    return score + 0.5 * std::max(0.0, best_col);
  };
  guidance.select_column_score = [&](int t, int c) -> double {
    double base = column_base_score(t, c);
    if (base <= -1e8) return base;
    const auto& col = db.schema().tables[t].columns[c];
    double pos = FirstMentionPosition(
        prompt.comments_included && !col.comment.empty() ? col.comment
                                                         : col.name,
        q_stems);
    // A column mentioned next to a value is being *filtered*, not
    // selected; selected columns are mentioned first in the question.
    return base - 0.9 * value_hit(t, c) + 0.25 * (1.0 - pos);
  };
  guidance.filter_column_score = [&](int t, int c) -> double {
    double base = column_base_score(t, c);
    if (base <= -1e8) return base;
    return base + 1.4 * value_hit(t, c);
  };

  // Predicate values are consumed in order so multi-value templates (OR,
  // IN, set ops) receive distinct values. The cursor resets per template
  // instantiation.
  std::unordered_map<int64_t, size_t> value_cursor;
  guidance.filter_value = [&](int t, int c) -> std::optional<sql::Value> {
    const auto& col = db.schema().tables[t].columns[c];
    // Candidate list: retrieved values for this column (exact stored
    // representation), then raw quoted spans, then question numbers for
    // numeric columns.
    std::vector<sql::Value> candidates;
    // Strong matches first (they carry the exact stored representation,
    // which is what makes the value retriever matter on dirty data), then
    // raw quoted spans, then weaker matches.
    std::vector<const RetrievedValue*> strong, weak;
    for (const auto& mv : prompt.matched_values) {
      if (mv.table != t || mv.column != c) continue;
      if (mv.score >= 0.85) {
        strong.push_back(&mv);
      } else if (mv.score >= 0.7) {
        weak.push_back(&mv);
      }
    }
    auto by_score = [](const RetrievedValue* a, const RetrievedValue* b) {
      if (a->score != b->score) return a->score > b->score;
      return a->text.size() > b->text.size();  // longer match wins ties
    };
    std::sort(strong.begin(), strong.end(), by_score);
    std::sort(weak.begin(), weak.end(), by_score);
    for (const auto* mv : strong) candidates.emplace_back(mv->text);
    auto add_unique_text = [&candidates](const std::string& text) {
      for (const auto& existing : candidates) {
        if (existing.is_text() &&
            ToLower(existing.AsText()) == ToLower(Trim(text))) {
          return;
        }
      }
      if (!text.empty()) candidates.emplace_back(text);
    };
    if (col.type == sql::DataType::kText) {
      for (const auto& span : quoted) add_unique_text(span);
      for (const auto* mv : weak) add_unique_text(mv->text);
    } else {
      for (double n : guidance.numbers) {
        if (col.type == sql::DataType::kInteger && n == std::floor(n)) {
          candidates.emplace_back(static_cast<int64_t>(n));
        } else {
          candidates.emplace_back(n);
        }
      }
    }
    int64_t key = (static_cast<int64_t>(t) << 32) | static_cast<int64_t>(c);
    size_t& cursor = value_cursor[key];
    if (cursor >= candidates.size()) return std::nullopt;
    return candidates[cursor++];
  };
  guidance.representative_value = [&](int t,
                                      int c) -> std::optional<sql::Value> {
    if (!prompt.representative_values_included) return std::nullopt;
    if (!prompt.ColumnKept(t, c)) return std::nullopt;
    auto values = db.DistinctValues(
        db.schema().tables[t].name, db.schema().tables[t].columns[c].name,
        static_cast<size_t>(prompt.representative_value_count));
    if (values.empty()) return std::nullopt;
    return values[0];
  };
  guidance.join_visible = [&](int child_t, int parent_t) {
    return prompt.keys_included && prompt.TableKept(child_t) &&
           prompt.TableKept(parent_t);
  };
  guidance.mention_position = [&](int t, int c) -> double {
    const auto& col = db.schema().tables[t].columns[c];
    return FirstMentionPosition(
        prompt.comments_included && !col.comment.empty() ? col.comment
                                                         : col.name,
        q_stems);
  };

  // ---- stage 3: instantiate + rerank
  std::vector<ScoredCandidate> beam;
  int tried = 0;
  for (const auto& [tscore, tid] : ranked) {
    if (tried >= profile_.candidate_templates) break;
    ++tried;
    value_cursor.clear();
    Rng inst_rng = rng.Fork();
    auto inst = lib.Instantiate(tid, db, inst_rng, &guidance);
    if (!inst.has_value()) continue;

    // Linking score: a centered *sum* of evidence for every schema item
    // the candidate uses. Columns/tables the question mentions add credit;
    // ones it never mentions subtract, so a candidate dragging in an
    // unrelated table loses to a simpler one. Key columns are structural
    // and excluded.
    double link = 0.0;
    for (const auto& item : inst->used_items) {
      auto t = db.schema().FindTable(item.table);
      if (!t) continue;
      if (item.column.empty()) {
        // Table-level evidence.
        const auto& table = db.schema().tables[*t];
        double tc = PhraseCoverage(table.name, q_tokens);
        if (prompt.comments_included && !table.comment.empty()) {
          tc = std::max(tc, PhraseCoverage(table.comment, q_tokens));
        }
        link += std::min(tc, 1.0) * 0.7 - 0.3;
        continue;
      }
      auto c = db.schema().tables[*t].FindColumn(item.column);
      if (!c) continue;
      const auto& col = db.schema().tables[*t].columns[*c];
      bool is_key = col.is_primary_key;
      for (const auto& fk : db.schema().foreign_keys) {
        if ((ToLower(fk.table) == ToLower(item.table) &&
             ToLower(fk.column) == ToLower(col.name)) ||
            (ToLower(fk.ref_table) == ToLower(item.table) &&
             ToLower(fk.ref_column) == ToLower(col.name))) {
          is_key = true;
        }
      }
      if (is_key) continue;
      double cs = column_base_score(*t, *c) + value_hit(*t, *c);
      if (cs > -1e8) {
        link += std::min(std::max(cs, 0.0), 1.8) - 0.5;
      }
    }
    link *= 0.5;

    // Value-arity fit: a candidate should consume as many literal values
    // as the question mentions (two quoted values want an OR/IN shape, a
    // "top 3" wants a LIMIT, a question with no values wants none).
    int cand_text_values = 0;
    int cand_numbers = 0;
    for (const auto& vs : inst->value_strings) {
      if (IsNumberToken(vs)) {
        ++cand_numbers;
      } else {
        ++cand_text_values;
      }
    }
    double arity_penalty =
        0.35 * std::abs(static_cast<int>(quoted.size()) - cand_text_values) +
        0.18 * std::abs(static_cast<int>(guidance.numbers.size()) -
                        cand_numbers);

    double lm_score = (lm_ != nullptr) ? lm_->AvgLogProb(inst->sql_text) : 0.0;
    ScoredCandidate cand;
    cand.sql = inst->sql_text;
    cand.template_id = tid;
    cand.score = profile_.template_weight * tscore +
                 profile_.link_weight * link - arity_penalty +
                 profile_.lm_weight * (lm_score / 4.0) +
                 rng.Gaussian() * noise * 0.12;
    beam.push_back(std::move(cand));
  }

  std::sort(beam.begin(), beam.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.score > b.score;
            });
  if (beam.size() > static_cast<size_t>(profile_.beam_width)) {
    beam.resize(static_cast<size_t>(profile_.beam_width));
  }
  if (mark_executable) {
    for (auto& cand : beam) {
      cand.executable = sql::IsExecutable(db, cand.sql);
    }
  }
  return beam;
}

std::string CodesModel::Generate(const GenerationInput& input,
                                 uint64_t seed) const {
  auto beam = GenerateBeam(input, seed);
  for (const auto& cand : beam) {
    if (cand.executable) return cand.sql;
  }
  if (!beam.empty()) return beam[0].sql;
  return "SELECT 1";
}

}  // namespace codes
