#include "generator/capacity.h"

#include "common/status.h"

namespace codes {

namespace {

CapacityProfile Make1B() {
  CapacityProfile p;
  p.name = "codes-1b";
  p.params_billion = 1.0;
  p.hidden_size = 2048;
  p.ffn_size = 8192;
  p.attention_heads = 16;
  p.transformer_blocks = 24;
  p.embedding_dim = 64;
  p.ngram_order = 2;
  p.candidate_templates = 8;
  p.beam_width = 4;
  p.max_context_tokens = 8192;
  p.decode_noise = 0.40;
  p.template_weight = 1.0;
  p.link_weight = 0.7;
  // Small models lean relatively more on the language model's surface
  // statistics, which is why incremental pre-training helps them most
  // (Section 9.2 observation).
  p.lm_weight = 0.9;
  return p;
}

CapacityProfile Make3B() {
  CapacityProfile p;
  p.name = "codes-3b";
  p.params_billion = 3.0;
  p.hidden_size = 2816;
  p.ffn_size = 11264;
  p.attention_heads = 22;
  p.transformer_blocks = 36;
  p.embedding_dim = 128;
  p.ngram_order = 3;
  p.candidate_templates = 14;
  p.beam_width = 4;
  p.max_context_tokens = 8192;
  p.decode_noise = 0.22;
  p.template_weight = 1.0;
  p.link_weight = 0.8;
  p.lm_weight = 0.7;
  return p;
}

CapacityProfile Make7B() {
  CapacityProfile p;
  p.name = "codes-7b";
  p.params_billion = 7.0;
  p.hidden_size = 4096;
  p.ffn_size = 16384;
  p.attention_heads = 32;
  p.transformer_blocks = 42;
  p.embedding_dim = 256;
  p.ngram_order = 4;
  p.candidate_templates = 22;
  p.beam_width = 4;
  p.max_context_tokens = 8192;
  p.decode_noise = 0.13;
  p.template_weight = 1.0;
  p.link_weight = 0.9;
  p.lm_weight = 0.6;
  return p;
}

CapacityProfile Make15B() {
  CapacityProfile p;
  p.name = "codes-15b";
  p.params_billion = 15.0;
  p.hidden_size = 6144;
  p.ffn_size = 24576;
  p.attention_heads = 48;
  p.transformer_blocks = 40;
  p.embedding_dim = 384;
  p.ngram_order = 5;
  p.candidate_templates = 26;
  p.beam_width = 4;
  // The paper limits CodeS-15B to a 6,144-token context (GPU memory);
  // the truncation cost occasionally shows as 15B ≈ 7B.
  p.max_context_tokens = 6144;
  p.decode_noise = 0.10;
  p.template_weight = 1.0;
  p.link_weight = 0.9;
  p.lm_weight = 0.55;
  return p;
}

}  // namespace

const CapacityProfile& ProfileFor(ModelSize size) {
  static const CapacityProfile* const k1 = new CapacityProfile(Make1B());
  static const CapacityProfile* const k3 = new CapacityProfile(Make3B());
  static const CapacityProfile* const k7 = new CapacityProfile(Make7B());
  static const CapacityProfile* const k15 = new CapacityProfile(Make15B());
  switch (size) {
    case ModelSize::k1B:
      return *k1;
    case ModelSize::k3B:
      return *k3;
    case ModelSize::k7B:
      return *k7;
    case ModelSize::k15B:
      return *k15;
  }
  CODES_CHECK(false);
  return *k1;
}

const std::string& ModelSizeName(ModelSize size) {
  return ProfileFor(size).name;
}

const ModelSize* AllModelSizes(int* count) {
  static const ModelSize kSizes[] = {ModelSize::k1B, ModelSize::k3B,
                                     ModelSize::k7B, ModelSize::k15B};
  *count = 4;
  return kSizes;
}

}  // namespace codes
