#ifndef CODES_EVAL_METRICS_H_
#define CODES_EVAL_METRICS_H_

#include <functional>
#include <string>

#include "dataset/sample.h"

namespace codes {

/// Controls which metrics are computed. EX is always computed; TS and VES
/// add execution cost.
struct EvalOptions {
  /// Test-suite accuracy: EX must hold on `ts_instances` freshly
  /// regenerated database instances in addition to the original database.
  bool compute_ts = false;
  int ts_instances = 3;
  /// Valid efficiency score: execution-time ratio for correct predictions
  /// (BIRD's VES, in its R-VES square-root form).
  bool compute_ves = false;
  int ves_repeats = 3;
  uint64_t seed = 4242;
  /// Cap the number of dev samples evaluated (<0: all).
  int max_samples = -1;
  /// Worker threads for evaluation. 0 (the default) uses one thread per
  /// hardware thread; 1 reproduces the historical serial loop bit-for-bit.
  /// Any thread count yields identical predictions and EX/TS metrics —
  /// samples are sharded deterministically and merged in index order — but
  /// the predictor must be safe to call concurrently when the count is not
  /// 1 (CodesPipeline::PredictorFor qualifies; a lambda capturing mutable
  /// state by reference does not).
  int num_threads = 0;
};

/// Aggregated metrics over a dev set, all in percent.
struct EvalMetrics {
  double ex = 0.0;
  double ts = 0.0;
  double ves = 0.0;
  int n = 0;
};

/// A prediction function: sample -> SQL text.
using SqlPredictor = std::function<std::string(const Text2SqlSample&)>;

/// Whether `predicted` and `gold` produce equivalent results on `db`
/// (the EX criterion: order-sensitive iff the gold query orders output).
/// A prediction that fails to parse/execute is incorrect.
bool ExecutionMatch(const sql::Database& db, const std::string& predicted,
                    const std::string& gold);

/// Human-evaluation proxy (the paper's HE metric, Section 9.6): a
/// prediction whose result *contains* the requested information counts as
/// correct even if it selects extra columns. Concretely: EX passes, or
/// some subset of the predicted columns matches the gold result as a
/// multiset.
bool LenientExecutionMatch(const sql::Database& db,
                           const std::string& predicted,
                           const std::string& gold);

/// Evaluates `predictor` over `bench.dev`, sharding samples across
/// `options.num_threads` workers (see eval/parallel_eval.h for the driver
/// and for access to per-sample results). Metrics are independent of the
/// thread count.
EvalMetrics EvaluateDevSet(const Text2SqlBenchmark& bench,
                           const SqlPredictor& predictor,
                           const EvalOptions& options);

}  // namespace codes

#endif  // CODES_EVAL_METRICS_H_
