#ifndef CODES_EVAL_PARALLEL_EVAL_H_
#define CODES_EVAL_PARALLEL_EVAL_H_

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace codes {

/// Outcome of one dev sample inside an EvalResult.
struct SampleEvalResult {
  int index = 0;           ///< position in `bench.dev`
  std::string predicted;   ///< the predictor's SQL, verbatim
  bool ex = false;         ///< execution match on the original database
  bool ts = false;         ///< EX on original + every test-suite instance
  double ves = 0.0;        ///< R-VES contribution (0 unless computed & EX)
};

/// Full result of a (possibly parallel) dev-set evaluation: the aggregate
/// metrics plus per-sample outcomes, always ordered by sample index.
struct EvalResult {
  EvalMetrics metrics;
  std::vector<SampleEvalResult> samples;
};

/// The parallel evaluation driver behind EvaluateDevSet.
///
/// Samples are sharded across `options.num_threads` workers (0 = one per
/// hardware thread) in fixed contiguous blocks; each worker runs the
/// predictor and the metric checks for its block, writing into
/// pre-assigned slots. The merge then walks slots in index order, so the
/// result — predictions, EX, TS, and their aggregation order — is
/// bit-for-bit identical at every thread count, and identical to the
/// historical serial loop:
///  * per-sample generation seeds never depended on evaluation order
///    (CodesPipeline derives them by hashing the question);
///  * test-suite database instances are generated in a serial pre-pass
///    that replays the exact lazy construction order (and thus the exact
///    Rng fork chain) of the serial evaluator;
///  * VES timings are measured serially after prediction, since wall-clock
///    measurements taken on loaded cores would be noise, not signal.
///
/// The predictor must be safe to call concurrently when the resolved
/// thread count is > 1.
EvalResult ParallelEvaluateDevSet(const Text2SqlBenchmark& bench,
                                  const SqlPredictor& predictor,
                                  const EvalOptions& options);

/// Runs only the predictor (no metric scoring) over the first
/// `max_samples` dev samples (<0: all) on `num_threads` workers, returning
/// predictions ordered by sample index. This is the throughput kernel
/// bench_latency times.
std::vector<std::string> ParallelPredict(const Text2SqlBenchmark& bench,
                                         const SqlPredictor& predictor,
                                         int num_threads,
                                         int max_samples = -1);

}  // namespace codes

#endif  // CODES_EVAL_PARALLEL_EVAL_H_
