#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "common/rng.h"
#include "common/timer.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"

namespace codes {

bool ExecutionMatch(const sql::Database& db, const std::string& predicted,
                    const std::string& gold) {
  auto gold_stmt = sql::ParseSql(gold);
  if (!gold_stmt.ok()) return false;
  bool ordered = (*gold_stmt)->HasOrderBy();
  auto gold_result = sql::ExecuteSql(db, gold);
  if (!gold_result.ok()) return false;
  auto pred_result = sql::ExecuteSql(db, predicted);
  if (!pred_result.ok()) return false;
  return sql::ResultsEquivalent(*pred_result, *gold_result, ordered);
}

bool LenientExecutionMatch(const sql::Database& db,
                           const std::string& predicted,
                           const std::string& gold) {
  if (ExecutionMatch(db, predicted, gold)) return true;
  auto gold_stmt = sql::ParseSql(gold);
  if (!gold_stmt.ok()) return false;
  bool ordered = (*gold_stmt)->HasOrderBy();
  auto gold_result = sql::ExecuteSql(db, gold);
  auto pred_result = sql::ExecuteSql(db, predicted);
  if (!gold_result.ok() || !pred_result.ok()) return false;
  size_t g = gold_result->NumColumns();
  size_t p = pred_result->NumColumns();
  if (p <= g || g == 0 || p > g + 3) return false;
  // Try every g-sized combination of predicted columns (p is small).
  std::vector<size_t> pick(g);
  std::function<bool(size_t, size_t)> search = [&](size_t start,
                                                   size_t depth) -> bool {
    if (depth == g) {
      sql::ResultTable projected;
      projected.column_names.resize(g);
      projected.rows.reserve(pred_result->rows.size());
      for (const auto& row : pred_result->rows) {
        std::vector<sql::Value> out;
        out.reserve(g);
        for (size_t i = 0; i < g; ++i) out.push_back(row[pick[i]]);
        projected.rows.push_back(std::move(out));
      }
      return sql::ResultsEquivalent(projected, *gold_result, ordered);
    }
    for (size_t i = start; i < p; ++i) {
      pick[depth] = i;
      if (search(i + 1, depth + 1)) return true;
    }
    return false;
  };
  return search(0, 0);
}

namespace {

/// Median execution seconds over `repeats` runs (parse once).
double TimedExecution(const sql::Database& db, const std::string& sql_text,
                      int repeats) {
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return 0.0;
  sql::Executor executor(db);
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    auto result = executor.Execute(**stmt);
    if (!result.ok()) return 0.0;
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

EvalMetrics EvaluateDevSet(const Text2SqlBenchmark& bench,
                           const SqlPredictor& predictor,
                           const EvalOptions& options) {
  EvalMetrics metrics;
  Rng rng(options.seed);

  // Test-suite database instances per dev database, built lazily.
  std::unordered_map<int, std::vector<sql::Database>> ts_instances;
  auto instances_for = [&](int db_index) -> const std::vector<sql::Database>& {
    auto it = ts_instances.find(db_index);
    if (it != ts_instances.end()) return it->second;
    std::vector<sql::Database> instances;
    const sql::Database& db = bench.databases[db_index];
    const DomainSpec* domain =
        db_index < static_cast<int>(bench.domain_names.size())
            ? FindDomain(bench.domain_names[db_index])
            : nullptr;
    if (domain != nullptr) {
      for (int i = 0; i < options.ts_instances; ++i) {
        Rng instance_rng = rng.Fork();
        instances.push_back(
            RegenerateContents(db, *domain, bench.profile, instance_rng));
      }
    }
    return ts_instances.emplace(db_index, std::move(instances)).first->second;
  };

  double ex_sum = 0, ts_sum = 0, ves_sum = 0;
  int n = 0;
  for (const auto& sample : bench.dev) {
    if (options.max_samples >= 0 && n >= options.max_samples) break;
    const sql::Database& db = bench.DbOf(sample);
    std::string predicted = predictor(sample);
    bool correct = ExecutionMatch(db, predicted, sample.sql);
    ex_sum += correct ? 1.0 : 0.0;

    if (options.compute_ts) {
      bool ts_pass = correct;
      if (ts_pass) {
        for (const auto& instance : instances_for(sample.db_index)) {
          if (!ExecutionMatch(instance, predicted, sample.sql)) {
            ts_pass = false;
            break;
          }
        }
      }
      ts_sum += ts_pass ? 1.0 : 0.0;
    }

    if (options.compute_ves && correct) {
      double gold_time = TimedExecution(db, sample.sql, options.ves_repeats);
      double pred_time = TimedExecution(db, predicted, options.ves_repeats);
      if (gold_time > 0 && pred_time > 0) {
        // R-VES: sqrt of the time ratio, clamped to a sane band.
        double ratio = std::sqrt(gold_time / pred_time);
        ves_sum += std::clamp(ratio, 0.0, 2.0);
      } else {
        ves_sum += 1.0;
      }
    }
    ++n;
  }

  metrics.n = n;
  if (n > 0) {
    metrics.ex = 100.0 * ex_sum / n;
    metrics.ts = 100.0 * ts_sum / n;
    metrics.ves = 100.0 * ves_sum / n;
  }
  return metrics;
}

}  // namespace codes
