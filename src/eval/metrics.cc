#include "eval/metrics.h"

#include <functional>

#include "eval/parallel_eval.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"

namespace codes {

bool ExecutionMatch(const sql::Database& db, const std::string& predicted,
                    const std::string& gold) {
  auto gold_stmt = sql::ParseSql(gold);
  if (!gold_stmt.ok()) return false;
  bool ordered = (*gold_stmt)->HasOrderBy();
  auto gold_result = sql::ExecuteSql(db, gold);
  if (!gold_result.ok()) return false;
  auto pred_result = sql::ExecuteSql(db, predicted);
  if (!pred_result.ok()) return false;
  return sql::ResultsEquivalent(*pred_result, *gold_result, ordered);
}

bool LenientExecutionMatch(const sql::Database& db,
                           const std::string& predicted,
                           const std::string& gold) {
  if (ExecutionMatch(db, predicted, gold)) return true;
  auto gold_stmt = sql::ParseSql(gold);
  if (!gold_stmt.ok()) return false;
  bool ordered = (*gold_stmt)->HasOrderBy();
  auto gold_result = sql::ExecuteSql(db, gold);
  auto pred_result = sql::ExecuteSql(db, predicted);
  if (!gold_result.ok() || !pred_result.ok()) return false;
  size_t g = gold_result->NumColumns();
  size_t p = pred_result->NumColumns();
  if (p <= g || g == 0 || p > g + 3) return false;
  // Try every g-sized combination of predicted columns (p is small).
  std::vector<size_t> pick(g);
  std::function<bool(size_t, size_t)> search = [&](size_t start,
                                                   size_t depth) -> bool {
    if (depth == g) {
      sql::ResultTable projected;
      projected.column_names.resize(g);
      projected.rows.reserve(pred_result->rows.size());
      for (const auto& row : pred_result->rows) {
        std::vector<sql::Value> out;
        out.reserve(g);
        for (size_t i = 0; i < g; ++i) out.push_back(row[pick[i]]);
        projected.rows.push_back(std::move(out));
      }
      return sql::ResultsEquivalent(projected, *gold_result, ordered);
    }
    for (size_t i = start; i < p; ++i) {
      pick[depth] = i;
      if (search(i + 1, depth + 1)) return true;
    }
    return false;
  };
  return search(0, 0);
}

EvalMetrics EvaluateDevSet(const Text2SqlBenchmark& bench,
                           const SqlPredictor& predictor,
                           const EvalOptions& options) {
  // The sharded driver with num_threads == 1 is bit-for-bit the historical
  // serial loop; see eval/parallel_eval.h for the determinism argument.
  return ParallelEvaluateDevSet(bench, predictor, options).metrics;
}

}  // namespace codes
