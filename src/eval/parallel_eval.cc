#include "eval/parallel_eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"

namespace codes {

namespace {

/// Median execution seconds over `repeats` runs (parse once).
double TimedExecution(const sql::Database& db, const std::string& sql_text,
                      int repeats) {
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return 0.0;
  sql::Executor executor(db);
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    auto result = executor.Execute(**stmt);
    if (!result.ok()) return 0.0;
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Number of dev samples the options select.
size_t EvalSampleCount(const Text2SqlBenchmark& bench,
                       const EvalOptions& options) {
  size_t n = bench.dev.size();
  if (options.max_samples >= 0) {
    n = std::min(n, static_cast<size_t>(options.max_samples));
  }
  return n;
}

}  // namespace

std::vector<std::string> ParallelPredict(const Text2SqlBenchmark& bench,
                                         const SqlPredictor& predictor,
                                         int num_threads, int max_samples) {
  size_t n = bench.dev.size();
  if (max_samples >= 0) n = std::min(n, static_cast<size_t>(max_samples));
  std::vector<std::string> predictions(n);
  ThreadPool pool(num_threads);
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      predictions[i] = predictor(bench.dev[i]);
    }
  });
  return predictions;
}

EvalResult ParallelEvaluateDevSet(const Text2SqlBenchmark& bench,
                                  const SqlPredictor& predictor,
                                  const EvalOptions& options) {
  EvalResult result;
  size_t n = EvalSampleCount(bench, options);
  result.samples.resize(n);

  ThreadPool pool(options.num_threads);

  // ---- stage 1 (parallel): predict + EX on the original database.
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto& sample = bench.dev[i];
      SampleEvalResult& out = result.samples[i];
      out.index = static_cast<int>(i);
      out.predicted = predictor(sample);
      out.ex = ExecutionMatch(bench.DbOf(sample), out.predicted, sample.sql);
    }
  });

  // ---- stage 2 (serial): build test-suite instances. Replays the lazy
  // construction order of the historical serial evaluator exactly — walk
  // samples in index order and materialize a database's instances the
  // first time an EX-correct sample needs them — so the Rng fork chain,
  // and therefore every instance's contents, match the serial run.
  std::unordered_map<int, std::vector<sql::Database>> ts_instances;
  if (options.compute_ts) {
    Rng rng(options.seed);
    for (size_t i = 0; i < n; ++i) {
      if (!result.samples[i].ex) continue;
      int db_index = bench.dev[i].db_index;
      if (ts_instances.count(db_index) != 0) continue;
      std::vector<sql::Database> instances;
      const sql::Database& db = bench.databases[db_index];
      const DomainSpec* domain =
          db_index < static_cast<int>(bench.domain_names.size())
              ? FindDomain(bench.domain_names[db_index])
              : nullptr;
      if (domain != nullptr) {
        for (int k = 0; k < options.ts_instances; ++k) {
          Rng instance_rng = rng.Fork();
          instances.push_back(
              RegenerateContents(db, *domain, bench.profile, instance_rng));
        }
      }
      ts_instances.emplace(db_index, std::move(instances));
    }

    // ---- stage 3 (parallel): TS checks against the now-immutable
    // instances.
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        SampleEvalResult& out = result.samples[i];
        if (!out.ex) continue;
        const auto& sample = bench.dev[i];
        bool ts_pass = true;
        auto it = ts_instances.find(sample.db_index);
        if (it != ts_instances.end()) {
          for (const auto& instance : it->second) {
            if (!ExecutionMatch(instance, out.predicted, sample.sql)) {
              ts_pass = false;
              break;
            }
          }
        }
        out.ts = ts_pass;
      }
    });
  }

  // ---- stage 4 (serial): VES timing. Wall-clock measured while sibling
  // shards saturate the cores would be contention noise, so timing runs
  // alone; it is cheap next to prediction.
  if (options.compute_ves) {
    for (size_t i = 0; i < n; ++i) {
      SampleEvalResult& out = result.samples[i];
      if (!out.ex) continue;
      const auto& sample = bench.dev[i];
      const sql::Database& db = bench.DbOf(sample);
      double gold_time = TimedExecution(db, sample.sql, options.ves_repeats);
      double pred_time =
          TimedExecution(db, out.predicted, options.ves_repeats);
      if (gold_time > 0 && pred_time > 0) {
        // R-VES: sqrt of the time ratio, clamped to a sane band.
        double ratio = std::sqrt(gold_time / pred_time);
        out.ves = std::clamp(ratio, 0.0, 2.0);
      } else {
        out.ves = 1.0;
      }
    }
  }

  // ---- merge (serial, index order): the accumulation order is fixed, so
  // the floating-point sums match the serial evaluator exactly.
  double ex_sum = 0, ts_sum = 0, ves_sum = 0;
  for (const SampleEvalResult& out : result.samples) {
    ex_sum += out.ex ? 1.0 : 0.0;
    ts_sum += out.ts ? 1.0 : 0.0;
    ves_sum += out.ves;
  }
  result.metrics.n = static_cast<int>(n);
  if (n > 0) {
    result.metrics.ex = 100.0 * ex_sum / static_cast<double>(n);
    result.metrics.ts = 100.0 * ts_sum / static_cast<double>(n);
    result.metrics.ves = 100.0 * ves_sum / static_cast<double>(n);
  }
  return result;
}

}  // namespace codes
