#include "retrieval/demonstration_retriever.h"

#include <algorithm>

#include "text/pattern.h"

namespace codes {

DemonstrationRetriever::DemonstrationRetriever(
    const std::vector<Text2SqlSample>& pool, const Options& options)
    : options_(options), encoder_(options.embedding_dim) {
  std::vector<std::string> corpus;
  corpus.reserve(pool.size());
  for (const auto& sample : pool) corpus.push_back(sample.question);
  encoder_.FitIdf(corpus);
  questions_.reserve(pool.size());
  question_embeddings_.reserve(pool.size());
  pattern_embeddings_.reserve(pool.size());
  for (const auto& sample : pool) {
    questions_.push_back(sample.question);
    question_embeddings_.push_back(encoder_.Encode(sample.question));
    pattern_embeddings_.push_back(
        encoder_.Encode(ExtractQuestionPattern(sample.question)));
  }
}

size_t DemonstrationRetriever::ApproxBytes() const {
  size_t bytes = sizeof(*this) + encoder_.ApproxBytes();
  for (const std::string& question : questions_) {
    bytes += sizeof(std::string) + question.size();
  }
  for (const auto& emb : question_embeddings_) {
    bytes += sizeof(emb) + emb.size() * sizeof(float);
  }
  for (const auto& emb : pattern_embeddings_) {
    bytes += sizeof(emb) + emb.size() * sizeof(float);
  }
  return bytes;
}

double DemonstrationRetriever::Similarity(const std::string& question,
                                          int index) const {
  std::vector<float> q_emb = encoder_.Encode(question);
  double sim = CosineSimilarity(q_emb, question_embeddings_[index]);
  if (options_.use_pattern_similarity) {
    std::vector<float> p_emb =
        encoder_.Encode(ExtractQuestionPattern(question));
    sim = std::max(sim,
                   CosineSimilarity(p_emb, pattern_embeddings_[index]));
  }
  return sim;
}

std::vector<int> DemonstrationRetriever::TopK(const std::string& question,
                                              int k) const {
  std::vector<float> q_emb = encoder_.Encode(question);
  std::vector<float> p_emb;
  if (options_.use_pattern_similarity) {
    p_emb = encoder_.Encode(ExtractQuestionPattern(question));
  }
  std::vector<std::pair<double, int>> scored;
  scored.reserve(questions_.size());
  for (size_t i = 0; i < questions_.size(); ++i) {
    double sim = CosineSimilarity(q_emb, question_embeddings_[i]);
    if (options_.use_pattern_similarity) {
      sim = std::max(sim, CosineSimilarity(p_emb, pattern_embeddings_[i]));
    }
    scored.emplace_back(sim, static_cast<int>(i));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<int> out;
  for (int i = 0; i < k && i < static_cast<int>(scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace codes
