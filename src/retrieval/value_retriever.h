#ifndef CODES_RETRIEVAL_VALUE_RETRIEVER_H_
#define CODES_RETRIEVAL_VALUE_RETRIEVER_H_

#include <string>
#include <vector>

#include "common/exec_guard.h"
#include "common/status.h"
#include "index/bm25_index.h"
#include "sqlengine/database.h"

namespace codes {

/// A database value matched to a question.
struct RetrievedValue {
  std::string text;
  int table = -1;
  int column = -1;
  double score = 0.0;  ///< fine-grained LCS match degree
};

/// The coarse-to-fine value retriever of Section 6.2: a BM25 index over
/// every distinct text value in the database performs a fast coarse
/// search; the longest-common-substring match degree re-ranks the few
/// hundred coarse candidates. This reduces LCS invocations from
/// |values| to `coarse_k` per query.
class ValueRetriever {
 public:
  ValueRetriever() = default;

  /// Indexes every distinct non-null TEXT value of `db`. The database must
  /// outlive retrieval only if you plan to re-index; retrieved values are
  /// self-contained copies.
  void BuildIndex(const sql::Database& db);

  /// Guarded index construction for the serving path. `guard`, when
  /// non-null, is polled for cancellation/deadline while values are
  /// scanned (row/byte budgets are not charged — those belong to SQL
  /// execution). `check_failpoint` controls whether this call evaluates
  /// the value_retriever.build_index failpoint itself; the pipeline passes
  /// false because it evaluates that site once per request, cache hit or
  /// miss, to keep fault decisions independent of cache state. On failure
  /// the retriever is left empty and safe to discard or rebuild.
  Status TryBuildIndex(const sql::Database& db, ExecGuard* guard = nullptr,
                       bool check_failpoint = true);

  /// Number of distinct indexed values.
  size_t NumIndexedValues() const { return entries_.size(); }

  /// Coarse-to-fine retrieval: BM25 top-`coarse_k`, LCS re-rank, return
  /// top-`fine_k` (deduplicated by (table, column, text)).
  std::vector<RetrievedValue> Retrieve(const std::string& question,
                                       int coarse_k = 200,
                                       int fine_k = 6) const;

  /// Baseline for the §6.2 latency claim: LCS over every indexed value.
  std::vector<RetrievedValue> RetrieveBruteForce(const std::string& question,
                                                 int fine_k = 6) const;

  /// Resident cost in bytes (entries plus the BM25 index) — what the
  /// fleet manager charges against its memory budget.
  size_t ApproxBytes() const;

  /// Appends a snapshot (entry table + BM25 index) to `out`. Entry texts
  /// are not duplicated — they equal the index's document texts, so the
  /// snapshot stores only (table, column) pairs alongside the index.
  void SaveTo(std::string* out) const;

  /// Restores a retriever from SaveTo bytes, consuming one snapshot from
  /// `reader`. Returns kDataLoss (retriever left empty) on malformation;
  /// on success Retrieve results are byte-identical to the saved one.
  Status LoadFrom(serial::Reader* reader);

 private:
  struct Entry {
    std::string text;
    int table;
    int column;
  };

  std::vector<RetrievedValue> FineRank(const std::string& question,
                                       const std::vector<int>& candidates,
                                       int fine_k) const;

  std::vector<Entry> entries_;
  Bm25Index index_;
};

}  // namespace codes

#endif  // CODES_RETRIEVAL_VALUE_RETRIEVER_H_
