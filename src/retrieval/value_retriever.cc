#include "retrieval/value_retriever.h"

#include <algorithm>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace codes {

namespace {

/// Very short values ('F', 'no', 'AB') match almost any question by
/// substring; they only count when the question contains them as a whole
/// word.
bool ShortValueMatches(const std::string& value, const std::string& question) {
  std::string needle = ToLower(Trim(value));
  for (const auto& token : WordTokens(question)) {
    if (token == needle) return true;
  }
  return false;
}

}  // namespace

void ValueRetriever::BuildIndex(const sql::Database& db) {
  // Unguarded construction cannot fail; the status is guard/failpoint-only.
  (void)TryBuildIndex(db, nullptr, /*check_failpoint=*/false);
}

Status ValueRetriever::TryBuildIndex(const sql::Database& db, ExecGuard* guard,
                                     bool check_failpoint) {
  CODES_TRACE_SPAN(span, "value_retriever.build_index");
  entries_.clear();
  index_ = Bm25Index();
  if (check_failpoint &&
      Failpoints::ShouldFail(FailpointSite::kValueRetrieverBuildIndex)) {
    return Failpoints::FailStatus(FailpointSite::kValueRetrieverBuildIndex);
  }
  // Deduplicate identical (value, table, column) triples: repeated
  // categorical values would otherwise bloat the index.
  std::unordered_set<std::string> seen;
  Status scan_status;
  size_t scanned = 0;
  db.ForEachTextValue([this, &seen, &scan_status, &scanned, guard](
                          int t, int c, int /*row*/, const std::string& text) {
    if (!scan_status.ok()) return;
    // Poll the guard every 256 values: a blown deadline or a cancel aborts
    // the build, and the pipeline degrades to a prompt without values.
    if (guard != nullptr && (++scanned & 0xFF) == 0) {
      scan_status = guard->Check();
      if (!scan_status.ok()) return;
    }
    if (text.empty()) return;
    std::string key =
        std::to_string(t) + "|" + std::to_string(c) + "|" + ToLower(text);
    if (!seen.insert(std::move(key)).second) return;
    entries_.push_back(Entry{text, t, c});
    index_.AddDocument(text);
  });
  if (!scan_status.ok()) {
    entries_.clear();
    index_ = Bm25Index();
    return scan_status;
  }
  index_.Finalize();
  return Status::Ok();
}

size_t ValueRetriever::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const Entry& entry : entries_) {
    bytes += sizeof(Entry) + entry.text.size();
  }
  bytes += index_.ApproxBytes();
  return bytes;
}

namespace {
constexpr uint32_t kRetrieverMagic = 0x56524554;  // "VRET"
constexpr uint32_t kRetrieverVersion = 1;
}  // namespace

void ValueRetriever::SaveTo(std::string* out) const {
  serial::PutMagic(out, kRetrieverMagic, kRetrieverVersion);
  serial::PutU64(out, entries_.size());
  for (const Entry& entry : entries_) {
    serial::PutI32(out, entry.table);
    serial::PutI32(out, entry.column);
  }
  index_.SaveTo(out);
}

Status ValueRetriever::LoadFrom(serial::Reader* reader) {
  entries_.clear();
  index_ = Bm25Index();
  auto corrupt = [this](const char* what) {
    entries_.clear();
    index_ = Bm25Index();
    return Status::DataLoss(std::string("value retriever snapshot: ") + what);
  };
  if (!serial::ReadMagic(reader, kRetrieverMagic, kRetrieverVersion)) {
    return corrupt("bad magic");
  }
  uint64_t n = 0;
  if (!reader->ReadU64(&n) || n > reader->remaining() / (2 * sizeof(int32_t))) {
    return corrupt("bad entry count");
  }
  entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry entry;
    if (!reader->ReadI32(&entry.table) || !reader->ReadI32(&entry.column)) {
      return corrupt("truncated entry");
    }
    entries_.push_back(std::move(entry));
  }
  Status status = index_.LoadFrom(reader);
  if (!status.ok()) return corrupt(status.message().c_str());
  if (static_cast<uint64_t>(index_.NumDocuments()) != n) {
    return corrupt("entry/document count mismatch");
  }
  // Entry texts are the index's document texts (BuildIndex adds them in
  // lockstep); restore the parallel copy from the index.
  for (uint64_t i = 0; i < n; ++i) {
    entries_[i].text = index_.DocumentText(static_cast<int>(i));
  }
  return Status::Ok();
}

std::vector<RetrievedValue> ValueRetriever::FineRank(
    const std::string& question, const std::vector<int>& candidates,
    int fine_k) const {
  CODES_TRACE_SPAN(span, "value_retriever.fine_rank");
  std::vector<RetrievedValue> ranked;
  ranked.reserve(candidates.size());
  for (int idx : candidates) {
    const Entry& entry = entries_[static_cast<size_t>(idx)];
    double degree;
    if (Trim(entry.text).size() < 6) {
      degree = ShortValueMatches(entry.text, question) ? 1.0 : 0.0;
    } else {
      degree = LcsMatchDegree(entry.text, question);
    }
    if (degree <= 0.0) continue;
    ranked.push_back(RetrievedValue{entry.text, entry.table, entry.column,
                                    degree});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RetrievedValue& a, const RetrievedValue& b) {
              if (a.score != b.score) return a.score > b.score;
              // Tie-break toward longer matches: 'Ember Dawn' must beat
              // the spurious substring match 'Dawn'.
              if (a.text.size() != b.text.size()) {
                return a.text.size() > b.text.size();
              }
              if (a.table != b.table) return a.table < b.table;
              if (a.column != b.column) return a.column < b.column;
              return a.text < b.text;
            });
  if (ranked.size() > static_cast<size_t>(fine_k)) {
    ranked.resize(static_cast<size_t>(fine_k));
  }
  return ranked;
}

std::vector<RetrievedValue> ValueRetriever::Retrieve(
    const std::string& question, int coarse_k, int fine_k) const {
  auto hits = index_.Query(question, coarse_k);
  std::vector<int> candidates;
  candidates.reserve(hits.size());
  for (const auto& hit : hits) candidates.push_back(hit.doc_id);
  return FineRank(question, candidates, fine_k);
}

std::vector<RetrievedValue> ValueRetriever::RetrieveBruteForce(
    const std::string& question, int fine_k) const {
  std::vector<int> all(entries_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return FineRank(question, all, fine_k);
}

}  // namespace codes
