#ifndef CODES_RETRIEVAL_DEMONSTRATION_RETRIEVER_H_
#define CODES_RETRIEVAL_DEMONSTRATION_RETRIEVER_H_

#include <string>
#include <vector>

#include "dataset/sample.h"
#include "embed/sentence_encoder.h"

namespace codes {

/// The question-pattern-aware demonstration retriever of Section 8.2.
///
/// For few-shot in-context learning, demonstrations are selected by
/// Eq. (4): max( sim(question, candidate question),
///               sim(question pattern, candidate pattern) ),
/// where a pattern is the question with entities stripped
/// (text/pattern.h). Patterns stop the retriever from over-matching on
/// entities shared between otherwise dissimilar questions.
class DemonstrationRetriever {
 public:
  struct Options {
    int embedding_dim = 192;
    /// Disable to ablate "-w/o pattern similarity" (Table 9).
    bool use_pattern_similarity = true;
  };

  DemonstrationRetriever(const std::vector<Text2SqlSample>& pool,
                         const Options& options);

  /// Indices (into the construction pool) of the top-k demonstrations.
  std::vector<int> TopK(const std::string& question, int k) const;

  /// Eq. (4) similarity between `question` and pool item `index`.
  double Similarity(const std::string& question, int index) const;

  size_t PoolSize() const { return questions_.size(); }

  /// Resident cost in bytes (questions, embeddings, encoder IDF) — what
  /// the fleet manager charges against its memory budget.
  size_t ApproxBytes() const;

 private:
  Options options_;
  SentenceEncoder encoder_;
  std::vector<std::string> questions_;
  std::vector<std::vector<float>> question_embeddings_;
  std::vector<std::vector<float>> pattern_embeddings_;
};

}  // namespace codes

#endif  // CODES_RETRIEVAL_DEMONSTRATION_RETRIEVER_H_
