#ifndef CODES_CORE_MODEL_ZOO_H_
#define CODES_CORE_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "generator/capacity.h"
#include "lm/ngram_lm.h"

namespace codes {

/// Builds and owns the pre-trained language models of the study:
///  * Base(order)  — "StarCoderBase": trained once on the mixed-language
///    code corpus (SQL is a small fraction).
///  * Codes(order) — the same base counts, then *incrementally pre-trained*
///    on the SQL-centric corpus (SQL-related ×2 epochs, NL ×1, NL-to-code
///    ×1, matching Section 5.2's schedule).
/// One LM is trained per n-gram order 2..5 because the order is a model-
/// size capacity knob.
class LmZoo {
 public:
  /// `scale` multiplies corpus sizes (see corpus/pretrain_corpus.h).
  explicit LmZoo(int scale = 1, uint64_t seed = 31);

  const NgramLm& Base(int order) const;
  const NgramLm& Codes(int order) const;

  /// LM matched to a model size's n-gram order.
  const NgramLm* BaseFor(ModelSize size) const;
  const NgramLm* CodesFor(ModelSize size) const;

 private:
  std::vector<std::unique_ptr<NgramLm>> base_;   // index = order - 2
  std::vector<std::unique_ptr<NgramLm>> codes_;  // index = order - 2
};

/// One row of the Table 4 baseline matrix: an open-source LLM emulated by
/// a capacity profile, an LM choice, and a family-quality noise offset.
/// The offsets are calibration constants standing in for architecture/
/// pre-training differences the substitute cannot model from first
/// principles; they are documented in DESIGN.md.
struct BaselineSpec {
  std::string name;
  ModelSize profile;
  bool sql_pretrained = false;  ///< use the incrementally pre-trained LM
  double extra_noise = 0.0;
};

/// The few-shot baseline lineup of Table 4 (base models first, then the
/// four CodeS scales).
std::vector<BaselineSpec> Table4Baselines();

}  // namespace codes

#endif  // CODES_CORE_MODEL_ZOO_H_
