#include "core/model_zoo.h"

#include "common/status.h"
#include "corpus/pretrain_corpus.h"

namespace codes {

LmZoo::LmZoo(int scale, uint64_t seed) {
  std::vector<std::string> base_corpus =
      BuildBaseCodeCorpus(2500 * scale, seed);
  CorpusSlices slices = BuildPretrainCorpus(scale, seed ^ 0xABCDEF);

  for (int order = 2; order <= 5; ++order) {
    auto base = std::make_unique<NgramLm>(order);
    base->Train(base_corpus, /*epochs=*/1);

    // Incremental pre-training starts from the base model's counts.
    auto codes = std::make_unique<NgramLm>(*base);
    codes->Train(slices.sql_related, /*epochs=*/2);
    codes->Train(slices.nl_related, /*epochs=*/1);
    codes->Train(slices.nl_to_code, /*epochs=*/1);

    base_.push_back(std::move(base));
    codes_.push_back(std::move(codes));
  }
}

const NgramLm& LmZoo::Base(int order) const {
  CODES_CHECK(order >= 2 && order <= 5);
  return *base_[static_cast<size_t>(order - 2)];
}

const NgramLm& LmZoo::Codes(int order) const {
  CODES_CHECK(order >= 2 && order <= 5);
  return *codes_[static_cast<size_t>(order - 2)];
}

const NgramLm* LmZoo::BaseFor(ModelSize size) const {
  return &Base(ProfileFor(size).ngram_order);
}

const NgramLm* LmZoo::CodesFor(ModelSize size) const {
  return &Codes(ProfileFor(size).ngram_order);
}

std::vector<BaselineSpec> Table4Baselines() {
  return {
      {"StarCoderBase-1B", ModelSize::k1B, false, 0.00},
      {"StarCoderBase-3B", ModelSize::k3B, false, 0.00},
      {"CodeGen-mono-6B", ModelSize::k7B, false, 0.30},
      {"StarCoderBase-7B", ModelSize::k7B, false, 0.00},
      {"CodeGen2-7B", ModelSize::k7B, false, 0.26},
      {"Llama2-7B", ModelSize::k7B, false, 0.42},
      {"Llama2-13B", ModelSize::k15B, false, 0.36},
      {"StarCoderBase-15B", ModelSize::k15B, false, 0.00},
      {"StarCoder-15B", ModelSize::k15B, false, 0.00},
      {"StarCoderPlus-15B", ModelSize::k15B, false, 0.08},
      {"CodeGen-mono-16B", ModelSize::k15B, false, 0.28},
      {"CodeGen2-16B", ModelSize::k15B, false, 0.24},
      {"CodeS-1B", ModelSize::k1B, true, 0.00},
      {"CodeS-3B", ModelSize::k3B, true, 0.00},
      {"CodeS-7B", ModelSize::k7B, true, 0.00},
      {"CodeS-15B", ModelSize::k15B, true, 0.00},
  };
}

}  // namespace codes
