#ifndef CODES_CORE_PIPELINE_H_
#define CODES_CORE_PIPELINE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/sample.h"
#include "eval/metrics.h"
#include "generator/codes_model.h"
#include "lm/ngram_lm.h"
#include "linker/schema_classifier.h"
#include "prompt/prompt_builder.h"
#include "retrieval/demonstration_retriever.h"
#include "retrieval/value_retriever.h"

namespace codes {

/// End-to-end configuration of a text-to-SQL deployment: model scale,
/// prompt construction knobs, EK usage, and the inference mode (SFT after
/// FineTune(), or few-shot ICL with `icl_shots` > 0).
struct PipelineConfig {
  ModelSize size = ModelSize::k7B;
  PromptOptions prompt;
  bool use_external_knowledge = false;
  int icl_shots = 0;
  /// Table 9 ablations of the demonstration retriever.
  bool random_demonstrations = false;
  bool use_pattern_similarity = true;
  /// Extra decode noise for emulating weaker baseline families.
  double extra_model_noise = 0.0;
  uint64_t seed = 99;
};

/// The public entry point of the library: owns the model, the schema item
/// classifier, per-database value-retriever indexes, and the demonstration
/// pool, and turns (database, question) into SQL.
///
/// Typical SFT usage:
///   CodesPipeline pipeline(config, &lm);
///   pipeline.TrainClassifier(bench);
///   pipeline.FineTune(bench);
///   std::string sql = pipeline.Predict(bench, sample);
///
/// Typical few-shot usage (no fine-tuning):
///   config.icl_shots = 3;
///   CodesPipeline pipeline(config, &lm);
///   pipeline.SetDemonstrationPool(bench.train);
///   std::string sql = pipeline.Predict(bench, sample);
///
/// Thread-safety contract: after the setup phase (constructor,
/// TrainClassifier/ShareClassifier, FineTune, SetDemonstrationPool) has
/// finished, every `const` method — Predict, BuildPrompt, PredictorFor —
/// is safe to call concurrently from any number of threads. The only
/// mutable state on that path, the lazily built per-database value
/// retriever cache, is guarded internally by a shared mutex; everything
/// else (model, classifier, demonstration retriever) is read-only at
/// inference time. Setup methods themselves are NOT thread-safe and must
/// happen-before any concurrent use. This is what lets
/// ParallelEvaluateDevSet shard a dev set across a thread pool.
class CodesPipeline {
 public:
  /// `lm` must outlive the pipeline (pass the incrementally pre-trained
  /// CodeS LM, or a base-code LM for StarCoder-style baselines).
  CodesPipeline(const PipelineConfig& config, const NgramLm* lm);

  /// Trains the schema item classifier on `bench.train` (required before
  /// prompts with schema filtering can be built well).
  void TrainClassifier(const Text2SqlBenchmark& bench);

  /// Shares an already-trained classifier (e.g. the BIRD classifier reused
  /// on new domains, Section 9.6).
  void ShareClassifier(std::shared_ptr<SchemaItemClassifier> classifier);

  /// Supervised fine-tuning on `train`. Pass the owning benchmark when
  /// available so the model can mask schema words per sample.
  void FineTune(const std::vector<Text2SqlSample>& train,
                int max_samples = -1);
  void FineTune(const Text2SqlBenchmark& bench, int max_samples = -1);

  /// Sets the demonstration pool for few-shot ICL.
  void SetDemonstrationPool(const std::vector<Text2SqlSample>& pool);

  /// Predicts SQL for one sample of `bench`.
  std::string Predict(const Text2SqlBenchmark& bench,
                      const Text2SqlSample& sample) const;

  /// Convenience: an eval::SqlPredictor bound to `bench`.
  SqlPredictor PredictorFor(const Text2SqlBenchmark& bench) const;

  /// Builds the database prompt the model would see for this sample
  /// (exposed for examples and diagnostics).
  DatabasePrompt BuildPrompt(const Text2SqlBenchmark& bench,
                             const Text2SqlSample& sample) const;

  CodesModel& model() { return model_; }
  const CodesModel& model() const { return model_; }
  const SchemaItemClassifier* classifier() const { return classifier_.get(); }
  const PipelineConfig& config() const { return config_; }

 private:
  /// Returns the cached (or lazily built) value retriever for `db`.
  /// Thread-safe: shared-lock lookup on the fast path, exclusive insert on
  /// miss. The returned pointer stays valid for the pipeline's lifetime
  /// (map values are heap-allocated and never evicted).
  const ValueRetriever* RetrieverFor(const sql::Database& db) const;
  std::string QuestionWithEk(const Text2SqlSample& sample) const;

  PipelineConfig config_;
  CodesModel model_;
  std::shared_ptr<SchemaItemClassifier> classifier_;
  std::unique_ptr<DemonstrationRetriever> demo_retriever_;
  std::vector<Text2SqlSample> demo_pool_;
  /// Mean prompt-token cost of one demonstration, fixed at
  /// SetDemonstrationPool time (budgeting per-call on demo_pool_[0] alone
  /// let one unusually short first demo blow the token budget).
  int mean_demo_cost_ = 0;
  mutable std::shared_mutex retriever_mu_;
  mutable std::unordered_map<const sql::Database*,
                             std::unique_ptr<ValueRetriever>>
      retriever_cache_;
};

}  // namespace codes

#endif  // CODES_CORE_PIPELINE_H_
