#ifndef CODES_CORE_PIPELINE_H_
#define CODES_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_guard.h"
#include "dataset/sample.h"
#include "eval/metrics.h"
#include "generator/codes_model.h"
#include "lm/ngram_lm.h"
#include "linker/schema_classifier.h"
#include "prompt/prompt_builder.h"
#include "retrieval/demonstration_retriever.h"
#include "retrieval/value_retriever.h"
#include "sqlengine/exec_source.h"

namespace codes {

/// End-to-end configuration of a text-to-SQL deployment: model scale,
/// prompt construction knobs, EK usage, and the inference mode (SFT after
/// FineTune(), or few-shot ICL with `icl_shots` > 0).
struct PipelineConfig {
  ModelSize size = ModelSize::k7B;
  PromptOptions prompt;
  bool use_external_knowledge = false;
  int icl_shots = 0;
  /// Table 9 ablations of the demonstration retriever.
  bool random_demonstrations = false;
  bool use_pattern_similarity = true;
  /// Extra decode noise for emulating weaker baseline families.
  double extra_model_noise = 0.0;
  uint64_t seed = 99;

  /// Bounds on the lazily built per-database value-retriever cache.
  /// Sustained traffic over many databases used to grow the cache without
  /// bound (the ISSUE 9 memory bug); the cache now evicts its
  /// least-recently-used entry once either cap is exceeded. Entries are
  /// leased out as shared_ptrs, so an evicted retriever stays alive until
  /// the last in-flight request using it finishes.
  size_t retriever_cache_max_entries = 64;
  size_t retriever_cache_max_bytes = 512ull << 20;  // 512 MiB
};

/// One rung of the serving degradation ladder, ordered from least to most
/// degraded. A request's ServeReport records every rung that fired:
///
///   kClassifierFallback  schema classifier unavailable or failing — the
///                        prompt carries the full, unfiltered schema;
///   kValueFallback       value index build failed or ran over budget —
///                        the prompt carries no matched values;
///   kRepair              a beam candidate failed decode/parse/bind/
///                        guarded-execute and a lower-ranked candidate was
///                        tried (bounded, with capped exponential backoff);
///   kEmergencySql        no usable candidate at all — a trivial but
///                        syntactically valid query is served.
enum class ServeRung : int {
  kClassifierFallback = 0,
  kValueFallback,
  kRepair,
  kEmergencySql,
};

/// Stable snake_case name ("classifier_fallback") for reports and logs.
const char* ServeRungName(ServeRung rung);

/// Per-request serving knobs. The default options guard nothing and
/// reproduce Predict's historical behaviour byte-for-byte.
struct ServeOptions {
  /// Execution budgets applied to candidate verification (and, for the
  /// deadline/cancel portion, to value-index construction).
  ExecLimits limits;
  /// Optional cooperative cancellation; must outlive the call.
  const CancelToken* cancel = nullptr;
  /// Max failed beam candidates tried before giving up on verification.
  /// Must be >= beam width to preserve the paper's first-executable
  /// selection exactly.
  int max_repair_attempts = 16;
  /// Exponential backoff between repair attempts: attempt k sleeps
  /// base * 2^(k-1) ms, capped. Base 0 (default) never sleeps.
  double backoff_base_ms = 0.0;
  double backoff_cap_ms = 8.0;

  /// When set, candidate verification executes against this backend
  /// instead of the benchmark's in-memory database (prompt construction
  /// and the emergency query still use the in-memory one). This is how a
  /// disk-backed twin plugs into serving: a corrupted page surfaces as a
  /// kDataLoss execution failure, the candidate is treated as broken, and
  /// the request walks the degradation ladder (repair → unverified
  /// fallback) instead of returning garbage rows. Must outlive the call.
  const sql::ExecSource* verify_source = nullptr;

  /// When set, value retrieval uses this pre-built retriever instead of
  /// the pipeline's internal per-database cache. This is how the fleet
  /// manager plugs a tenant's leased artifact into a request: the lease
  /// (a shared_ptr held by the caller) must outlive the call. Ignored
  /// when force_value_fallback or disable_value_retriever is set.
  const ValueRetriever* value_retriever = nullptr;

  // --- Overload-protection overrides (set by the serving front end;
  // src/serve/) -------------------------------------------------------
  //
  // The `force_*` flags are circuit-breaker actions: they make the
  // request behave as if the stage had failed, firing the corresponding
  // ladder rung without ever touching the stage. The richness knobs below
  // them are brownout policy: they cheapen the prompt but fire no rung —
  // the stage is healthy, the *process* is shedding cost.

  /// Skip the schema classifier (breaker open): full unfiltered schema,
  /// fires kClassifierFallback.
  bool force_classifier_fallback = false;
  /// Skip value retrieval (breaker open): no matched values, fires
  /// kValueFallback.
  bool force_value_fallback = false;
  /// Serve the emergency SQL immediately (generation breaker open): no
  /// decoding at all, fires kEmergencySql.
  bool force_emergency_sql = false;

  /// Caps ICL demonstrations; -1 (default) means no cap, 0 means none.
  int max_icl_demos = -1;
  /// Skips value retrieval as *policy* (no rung fired, unlike
  /// force_value_fallback).
  bool disable_value_retriever = false;
  /// When > 0, overrides PromptOptions::top_k1 / top_k2 (only ever
  /// downward in practice; the builder clamps to schema size anyway).
  int top_k1_override = 0;
  int top_k2_override = 0;
  /// Brownout level these knobs were derived from (0 = full richness);
  /// copied into ServeReport for digests and metrics, not interpreted
  /// by the pipeline itself.
  int brownout_level = 0;

  // --- Adversarial-input handling (set by the hardening front door;
  // src/serve/harden) --------------------------------------------------

  /// The hardening pass flagged this request (structural repair fired or
  /// the anomaly score crossed the threshold). Partition flag: every
  /// request lands in exactly one of serve.adv.clean / serve.adv.suspect,
  /// which always sum to serve.requests. Default false, so direct
  /// Predict/eval/chaos callers all count as clean.
  bool suspect = false;
  /// Canonicalized form of the question (zero-width stripped, confusables
  /// folded to ASCII, whitespace collapsed). When a *suspect* request's
  /// beam produces no verified candidate, PredictGuarded retries once
  /// against this form — bounded by the same max_repair_attempts budget —
  /// before falling to the unverified/emergency rungs. Empty (or equal to
  /// the question) disables the retry.
  std::string canonical_question;
};

/// What happened while serving one request. Never reports failure to
/// produce SQL — PredictGuarded always returns a non-empty query — but
/// records how degraded the path to it was.
struct ServeReport {
  std::vector<ServeRung> rungs;  ///< fired rungs, deduplicated, in order
  int repair_attempts = 0;       ///< beam candidates that failed
  /// Beam rank of the served SQL; -1 means the emergency query.
  int candidate_rank = -1;
  /// True when the served SQL executed successfully under the guard.
  bool execution_verified = false;
  /// Brownout level the request was served at (ServeOptions::brownout_level
  /// echoed back; 0 when the caller never set one).
  int brownout_level = 0;
  /// ServeOptions::suspect echoed back (the serve.adv.* partition).
  bool suspect = false;
  /// 1 when the canonical-question retry ran (suspect request whose
  /// primary beam failed verification), 0 otherwise.
  int canonical_retries = 0;
  /// True when the served SQL came from the canonical retry's beam.
  bool canonical_served = false;
  /// OK when fully verified; otherwise the last error seen on the ladder.
  Status final_status;

  void AddRung(ServeRung rung);
  bool Fired(ServeRung rung) const;
  /// Deterministic one-line rendering (used by the chaos harness digest).
  std::string ToString() const;
};

/// The public entry point of the library: owns the model, the schema item
/// classifier, per-database value-retriever indexes, and the demonstration
/// pool, and turns (database, question) into SQL.
///
/// Typical SFT usage:
///   CodesPipeline pipeline(config, &lm);
///   pipeline.TrainClassifier(bench);
///   pipeline.FineTune(bench);
///   std::string sql = pipeline.Predict(bench, sample);
///
/// Typical few-shot usage (no fine-tuning):
///   config.icl_shots = 3;
///   CodesPipeline pipeline(config, &lm);
///   pipeline.SetDemonstrationPool(bench.train);
///   std::string sql = pipeline.Predict(bench, sample);
///
/// Thread-safety contract: after the setup phase (constructor,
/// TrainClassifier/ShareClassifier, FineTune, SetDemonstrationPool) has
/// finished, every `const` method — Predict, BuildPrompt, PredictorFor —
/// is safe to call concurrently from any number of threads. The only
/// mutable state on that path, the lazily built per-database value
/// retriever cache, is guarded internally by a shared mutex; everything
/// else (model, classifier, demonstration retriever) is read-only at
/// inference time. Setup methods themselves are NOT thread-safe and must
/// happen-before any concurrent use. This is what lets
/// ParallelEvaluateDevSet shard a dev set across a thread pool.
class CodesPipeline {
 public:
  /// `lm` must outlive the pipeline (pass the incrementally pre-trained
  /// CodeS LM, or a base-code LM for StarCoder-style baselines).
  CodesPipeline(const PipelineConfig& config, const NgramLm* lm);

  /// Trains the schema item classifier on `bench.train` (required before
  /// prompts with schema filtering can be built well).
  void TrainClassifier(const Text2SqlBenchmark& bench);

  /// Shares an already-trained classifier (e.g. the BIRD classifier reused
  /// on new domains, Section 9.6).
  void ShareClassifier(std::shared_ptr<SchemaItemClassifier> classifier);

  /// Supervised fine-tuning on `train`. Pass the owning benchmark when
  /// available so the model can mask schema words per sample.
  void FineTune(const std::vector<Text2SqlSample>& train,
                int max_samples = -1);
  void FineTune(const Text2SqlBenchmark& bench, int max_samples = -1);

  /// Sets the demonstration pool for few-shot ICL.
  void SetDemonstrationPool(const std::vector<Text2SqlSample>& pool);

  /// Predicts SQL for one sample of `bench`. Equivalent to PredictGuarded
  /// with default ServeOptions (no budgets, no faults on the clean path).
  std::string Predict(const Text2SqlBenchmark& bench,
                      const Text2SqlSample& sample) const;

  /// Guarded prediction: the full degradation ladder. Always returns a
  /// non-empty SQL string, no matter which stages fail or run over budget;
  /// `report` (optional) receives what happened. Establishes the request's
  /// deterministic failpoint scope from the per-sample generation seed, so
  /// chaos campaigns replay identically at any thread count. Thread-safe
  /// under the same contract as Predict.
  std::string PredictGuarded(const Text2SqlBenchmark& bench,
                             const Text2SqlSample& sample,
                             const ServeOptions& options,
                             ServeReport* report = nullptr) const;

  /// Backoff schedule of the repair loop: attempt k (1-based) sleeps
  /// min(base * 2^(k-1), cap) milliseconds; 0 when base <= 0. Exposed for
  /// tests.
  static double ComputeBackoffMs(int attempt, double base_ms, double cap_ms);

  /// Convenience: an eval::SqlPredictor bound to `bench`.
  SqlPredictor PredictorFor(const Text2SqlBenchmark& bench) const;

  /// Builds the database prompt the model would see for this sample
  /// (exposed for examples and diagnostics).
  DatabasePrompt BuildPrompt(const Text2SqlBenchmark& bench,
                             const Text2SqlSample& sample) const;

  CodesModel& model() { return model_; }
  const CodesModel& model() const { return model_; }
  const SchemaItemClassifier* classifier() const { return classifier_.get(); }
  const PipelineConfig& config() const { return config_; }

  /// Point-in-time occupancy of the bounded value-retriever cache
  /// (exposed for the flat-memory regression test and diagnostics).
  struct RetrieverCacheStats {
    size_t entries = 0;
    size_t bytes = 0;
  };
  RetrieverCacheStats retriever_cache_stats() const;

  /// Drops every cached retriever without counting evictions — campaign
  /// hygiene (determinism selfchecks replay from a cold cache), not a
  /// budget event. Outstanding leases stay valid.
  void ClearRetrieverCache() const;

  /// Returns the cached (or lazily built) value retriever for `db`.
  /// Thread-safe: shared-lock lookup on the fast path, exclusive insert on
  /// miss. The returned lease keeps the retriever alive even if the cache
  /// evicts it while the request is still using it. Public so the cache
  /// bound/flat-memory regression tests can drive lookups without paying
  /// for full predictions.
  std::shared_ptr<const ValueRetriever> RetrieverFor(
      const sql::Database& db) const;

 private:
  /// Guarded variant: evaluates the value_retriever.build_index failpoint
  /// once per call (cache hit or miss — fault decisions must not depend on
  /// which request built the cache first), polls `guard` during a miss
  /// build, and returns nullptr with a kValueFallback rung on failure. A
  /// failed build is never cached, so a later healthy request rebuilds.
  std::shared_ptr<const ValueRetriever> RetrieverForGuarded(
      const sql::Database& db, ExecGuard* guard, ServeReport* report) const;

  /// Shared implementation of BuildPrompt/PredictGuarded: applies the
  /// classifier and value rungs of the ladder while constructing options.
  /// `serve` (optional) carries the breaker/brownout overrides.
  DatabasePrompt BuildPromptInternal(const Text2SqlBenchmark& bench,
                                     const Text2SqlSample& sample,
                                     ExecGuard* guard, ServeReport* report,
                                     const ServeOptions* serve) const;

  /// ICL demonstrations for `sample` (empty unless icl_shots > 0).
  /// `max_demos` < 0 means uncapped.
  std::vector<const Text2SqlSample*> CollectDemonstrations(
      const Text2SqlSample& sample, int max_demos) const;

  std::string QuestionWithEk(const Text2SqlSample& sample) const;

  PipelineConfig config_;
  CodesModel model_;
  std::shared_ptr<SchemaItemClassifier> classifier_;
  std::unique_ptr<DemonstrationRetriever> demo_retriever_;
  std::vector<Text2SqlSample> demo_pool_;
  /// Mean prompt-token cost of one demonstration, fixed at
  /// SetDemonstrationPool time (budgeting per-call on demo_pool_[0] alone
  /// let one unusually short first demo blow the token budget).
  int mean_demo_cost_ = 0;
  /// One bounded-cache slot. `last_use` is a logical-clock stamp bumped
  /// under the shared lock on every hit (atomic, so hits never take the
  /// exclusive lock); the evictor removes the smallest stamp.
  struct RetrieverCacheEntry {
    std::shared_ptr<const ValueRetriever> retriever;
    size_t bytes = 0;
    std::atomic<uint64_t> last_use{0};
  };

  /// Evicts LRU entries until both caps hold. Requires the exclusive lock;
  /// never evicts `keep` (the entry the current request just inserted).
  void EvictRetrieversLocked(const sql::Database* keep) const;

  mutable std::shared_mutex retriever_mu_;
  mutable std::unordered_map<const sql::Database*,
                             std::unique_ptr<RetrieverCacheEntry>>
      retriever_cache_;
  mutable size_t retriever_cache_bytes_ = 0;
  mutable std::atomic<uint64_t> retriever_use_clock_{0};
};

}  // namespace codes

#endif  // CODES_CORE_PIPELINE_H_
