#include "core/pipeline.h"

#include <algorithm>
#include <mutex>

#include "common/rng.h"

namespace codes {

namespace {

/// Stable 64-bit hash of a string (FNV-1a), used to derive per-sample
/// generation seeds so predictions are deterministic.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Rough token cost of including a demonstration in the prompt.
int DemoTokenCost(const Text2SqlSample& sample) {
  return CountPromptTokens(sample.question) +
         CountPromptTokens(sample.sql) + 4;
}

}  // namespace

CodesPipeline::CodesPipeline(const PipelineConfig& config, const NgramLm* lm)
    : config_(config), model_(config.size, lm) {
  model_.set_extra_noise(config.extra_model_noise);
}

void CodesPipeline::TrainClassifier(const Text2SqlBenchmark& bench) {
  classifier_ = std::make_shared<SchemaItemClassifier>();
  SchemaItemClassifier::TrainOptions options;
  options.seed = config_.seed ^ 0xC1A55;
  classifier_->Train(bench, options);
}

void CodesPipeline::ShareClassifier(
    std::shared_ptr<SchemaItemClassifier> classifier) {
  classifier_ = std::move(classifier);
}

void CodesPipeline::FineTune(const std::vector<Text2SqlSample>& train,
                             int max_samples) {
  model_.FineTune(train, max_samples);
}

void CodesPipeline::FineTune(const Text2SqlBenchmark& bench,
                             int max_samples) {
  model_.FineTune(bench.train, &bench, max_samples);
}

void CodesPipeline::SetDemonstrationPool(
    const std::vector<Text2SqlSample>& pool) {
  demo_pool_ = pool;
  mean_demo_cost_ = 0;
  if (!demo_pool_.empty()) {
    int64_t total = 0;
    for (const auto& demo : demo_pool_) total += DemoTokenCost(demo);
    mean_demo_cost_ =
        static_cast<int>(total / static_cast<int64_t>(demo_pool_.size()));
  }
  DemonstrationRetriever::Options options;
  options.embedding_dim = model_.profile().embedding_dim;
  options.use_pattern_similarity = config_.use_pattern_similarity;
  demo_retriever_ = std::make_unique<DemonstrationRetriever>(pool, options);
}

const ValueRetriever* CodesPipeline::RetrieverFor(
    const sql::Database& db) const {
  if (!config_.prompt.use_value_retriever) return nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(retriever_mu_);
    auto it = retriever_cache_.find(&db);
    if (it != retriever_cache_.end()) return it->second.get();
  }
  // Build outside the lock so concurrent misses on different databases
  // index in parallel; on a same-database race the first insert wins and
  // the loser's copy is discarded.
  auto retriever = std::make_unique<ValueRetriever>();
  retriever->BuildIndex(db);
  std::unique_lock<std::shared_mutex> lock(retriever_mu_);
  auto [it, inserted] = retriever_cache_.try_emplace(&db, std::move(retriever));
  return it->second.get();
}

std::string CodesPipeline::QuestionWithEk(
    const Text2SqlSample& sample) const {
  std::string question = sample.question;
  if (config_.use_external_knowledge && !sample.external_knowledge.empty()) {
    question += " ; " + sample.external_knowledge;
  }
  return question;
}

DatabasePrompt CodesPipeline::BuildPrompt(const Text2SqlBenchmark& bench,
                                          const Text2SqlSample& sample) const {
  const sql::Database& db = bench.DbOf(sample);
  std::string question = QuestionWithEk(sample);

  // The prompt budget is the model's context window minus demonstration
  // space (which is why the paper shrinks top-k1/k2 for few-shot mode).
  PromptOptions options = config_.prompt;
  options.max_prompt_tokens = std::min(options.max_prompt_tokens,
                                       model_.profile().max_context_tokens);
  if (config_.icl_shots > 0 && !demo_pool_.empty()) {
    options.max_prompt_tokens = std::max(
        256,
        options.max_prompt_tokens - config_.icl_shots * mean_demo_cost_);
  }

  PromptBuilder builder(classifier_.get(), options);
  return builder.Build(db, question, RetrieverFor(db));
}

std::string CodesPipeline::Predict(const Text2SqlBenchmark& bench,
                                   const Text2SqlSample& sample) const {
  const sql::Database& db = bench.DbOf(sample);
  DatabasePrompt prompt = BuildPrompt(bench, sample);

  GenerationInput input;
  input.db = &db;
  input.prompt = &prompt;
  input.question = sample.question;
  if (config_.use_external_knowledge) {
    input.external_knowledge = sample.external_knowledge;
  }

  std::vector<const Text2SqlSample*> demos;
  if (config_.icl_shots > 0 && !demo_pool_.empty()) {
    if (config_.random_demonstrations || demo_retriever_ == nullptr) {
      Rng rng(config_.seed ^ HashString(sample.question));
      for (int i = 0; i < config_.icl_shots; ++i) {
        demos.push_back(&demo_pool_[rng.Index(demo_pool_.size())]);
      }
    } else {
      for (int idx : demo_retriever_->TopK(QuestionWithEk(sample),
                                           config_.icl_shots)) {
        demos.push_back(&demo_pool_[static_cast<size_t>(idx)]);
      }
    }
  }
  input.demonstrations = std::move(demos);

  uint64_t seed = config_.seed ^ HashString(sample.question);
  return model_.Generate(input, seed);
}

SqlPredictor CodesPipeline::PredictorFor(
    const Text2SqlBenchmark& bench) const {
  return [this, &bench](const Text2SqlSample& sample) {
    return Predict(bench, sample);
  };
}

}  // namespace codes
