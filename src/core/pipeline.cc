#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "sqlengine/executor.h"

namespace codes {

namespace {

/// Serving counters. Every PredictGuarded call increments serve.requests
/// and exactly one serve.outcome.* counter (its most degraded fired rung,
/// or "clean"), so the outcome family always sums to the request count —
/// the invariant codes_chaos and chaos CI assert on the exported
/// snapshot. Per-rung counters count every fired rung independently.
struct ServeMetrics {
  Counter& requests = MetricsRegistry::Global().GetCounter("serve.requests");
  Counter& verified = MetricsRegistry::Global().GetCounter("serve.verified");
  Counter& unverified =
      MetricsRegistry::Global().GetCounter("serve.unverified");
  Counter& repair_attempts =
      MetricsRegistry::Global().GetCounter("serve.repair_attempts");
  Counter& backoff_sleeps =
      MetricsRegistry::Global().GetCounter("serve.backoff_sleeps");
  Counter* rung_fired[4] = {
      &MetricsRegistry::Global().GetCounter("serve.rung.classifier_fallback"),
      &MetricsRegistry::Global().GetCounter("serve.rung.value_fallback"),
      &MetricsRegistry::Global().GetCounter("serve.rung.repair"),
      &MetricsRegistry::Global().GetCounter("serve.rung.emergency_sql")};
  Counter& outcome_clean =
      MetricsRegistry::Global().GetCounter("serve.outcome.clean");
  /// Adversarial-input partition: every request is exactly one of
  /// adv.clean / adv.suspect, so the pair always sums to serve.requests
  /// (the invariant the adversarial CI leg asserts). The retry counters
  /// track the canonical-question second chance suspect requests get.
  Counter& adv_clean =
      MetricsRegistry::Global().GetCounter("serve.adv.clean");
  Counter& adv_suspect =
      MetricsRegistry::Global().GetCounter("serve.adv.suspect");
  Counter& adv_retry =
      MetricsRegistry::Global().GetCounter("serve.adv.retry");
  Counter& adv_retry_served =
      MetricsRegistry::Global().GetCounter("serve.adv.retry_served");
  Counter* outcome[4] = {
      &MetricsRegistry::Global().GetCounter(
          "serve.outcome.classifier_fallback"),
      &MetricsRegistry::Global().GetCounter("serve.outcome.value_fallback"),
      &MetricsRegistry::Global().GetCounter("serve.outcome.repair"),
      &MetricsRegistry::Global().GetCounter("serve.outcome.emergency_sql")};
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics();  // never freed
  return *metrics;
}

/// Bounded retriever-cache counters. Accounting is thread-count
/// invariant: a miss is a *winning* insert, so when two requests race to
/// build the same database's index, exactly one miss is recorded and the
/// loser counts as a hit — the same totals a single-threaded run produces.
struct RetrieverCacheMetrics {
  Counter& hits =
      MetricsRegistry::Global().GetCounter("pipeline.retriever_cache.hits");
  Counter& misses =
      MetricsRegistry::Global().GetCounter("pipeline.retriever_cache.misses");
  Counter& evictions = MetricsRegistry::Global().GetCounter(
      "pipeline.retriever_cache.evictions");
};

RetrieverCacheMetrics& CacheMetrics() {
  static RetrieverCacheMetrics* metrics = new RetrieverCacheMetrics();
  return *metrics;
}

/// Records the per-request serving counters from a finished report.
void RecordServeReport(const ServeReport& report) {
  ServeMetrics& m = Metrics();
  m.requests.Increment();
  (report.suspect ? m.adv_suspect : m.adv_clean).Increment();
  if (report.canonical_retries > 0) {
    m.adv_retry.Increment(static_cast<uint64_t>(report.canonical_retries));
    if (report.canonical_served) m.adv_retry_served.Increment();
  }
  (report.execution_verified ? m.verified : m.unverified).Increment();
  if (report.repair_attempts > 0) {
    m.repair_attempts.Increment(static_cast<uint64_t>(report.repair_attempts));
  }
  for (ServeRung rung : report.rungs) {
    m.rung_fired[static_cast<int>(rung)]->Increment();
  }
  // Outcome = the most degraded rung that fired (rungs are declared in
  // escalation order), or clean.
  if (report.rungs.empty()) {
    m.outcome_clean.Increment();
    return;
  }
  int worst = 0;
  for (ServeRung rung : report.rungs) {
    worst = std::max(worst, static_cast<int>(rung));
  }
  m.outcome[worst]->Increment();
}

/// Stable 64-bit hash of a string (FNV-1a), used to derive per-sample
/// generation seeds so predictions are deterministic.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Rough token cost of including a demonstration in the prompt.
int DemoTokenCost(const Text2SqlSample& sample) {
  return CountPromptTokens(sample.question) +
         CountPromptTokens(sample.sql) + 4;
}

/// The bottom of the ladder: a trivial query that is syntactically valid
/// against `db`, served only when every beam candidate is unusable.
std::string EmergencySql(const sql::Database& db) {
  if (db.schema().tables.empty()) return "SELECT 1";
  return "SELECT * FROM " + db.schema().tables[0].name + " LIMIT 1";
}

}  // namespace

const char* ServeRungName(ServeRung rung) {
  switch (rung) {
    case ServeRung::kClassifierFallback:
      return "classifier_fallback";
    case ServeRung::kValueFallback:
      return "value_fallback";
    case ServeRung::kRepair:
      return "repair";
    case ServeRung::kEmergencySql:
      return "emergency_sql";
  }
  return "unknown";
}

void ServeReport::AddRung(ServeRung rung) {
  if (!Fired(rung)) rungs.push_back(rung);
}

bool ServeReport::Fired(ServeRung rung) const {
  return std::find(rungs.begin(), rungs.end(), rung) != rungs.end();
}

std::string ServeReport::ToString() const {
  std::string out = "rungs=[";
  for (size_t i = 0; i < rungs.size(); ++i) {
    if (i > 0) out += ",";
    out += ServeRungName(rungs[i]);
  }
  out += "] repairs=" + std::to_string(repair_attempts);
  out += " rank=" + std::to_string(candidate_rank);
  out += execution_verified ? " verified" : " unverified";
  out += " brownout=" + std::to_string(brownout_level);
  // Adversarial fields render only when set, so every pre-existing
  // digest (chaos, load, crash campaigns) stays byte-identical for
  // clean traffic.
  if (suspect) {
    out += " adv=suspect retries=" + std::to_string(canonical_retries);
    if (canonical_served) out += " canonical";
  }
  out += " status=";
  out += StatusCodeName(final_status.code());
  return out;
}

CodesPipeline::CodesPipeline(const PipelineConfig& config, const NgramLm* lm)
    : config_(config), model_(config.size, lm) {
  model_.set_extra_noise(config.extra_model_noise);
}

void CodesPipeline::TrainClassifier(const Text2SqlBenchmark& bench) {
  classifier_ = std::make_shared<SchemaItemClassifier>();
  SchemaItemClassifier::TrainOptions options;
  options.seed = config_.seed ^ 0xC1A55;
  classifier_->Train(bench, options);
}

void CodesPipeline::ShareClassifier(
    std::shared_ptr<SchemaItemClassifier> classifier) {
  classifier_ = std::move(classifier);
}

void CodesPipeline::FineTune(const std::vector<Text2SqlSample>& train,
                             int max_samples) {
  model_.FineTune(train, max_samples);
}

void CodesPipeline::FineTune(const Text2SqlBenchmark& bench,
                             int max_samples) {
  model_.FineTune(bench.train, &bench, max_samples);
}

void CodesPipeline::SetDemonstrationPool(
    const std::vector<Text2SqlSample>& pool) {
  demo_pool_ = pool;
  mean_demo_cost_ = 0;
  if (!demo_pool_.empty()) {
    int64_t total = 0;
    for (const auto& demo : demo_pool_) total += DemoTokenCost(demo);
    mean_demo_cost_ =
        static_cast<int>(total / static_cast<int64_t>(demo_pool_.size()));
  }
  DemonstrationRetriever::Options options;
  options.embedding_dim = model_.profile().embedding_dim;
  options.use_pattern_similarity = config_.use_pattern_similarity;
  demo_retriever_ = std::make_unique<DemonstrationRetriever>(pool, options);
}

std::shared_ptr<const ValueRetriever> CodesPipeline::RetrieverFor(
    const sql::Database& db) const {
  return RetrieverForGuarded(db, nullptr, nullptr);
}

CodesPipeline::RetrieverCacheStats CodesPipeline::retriever_cache_stats()
    const {
  std::shared_lock<std::shared_mutex> lock(retriever_mu_);
  return RetrieverCacheStats{retriever_cache_.size(), retriever_cache_bytes_};
}

void CodesPipeline::ClearRetrieverCache() const {
  std::unique_lock<std::shared_mutex> lock(retriever_mu_);
  retriever_cache_.clear();
  retriever_cache_bytes_ = 0;
}

void CodesPipeline::EvictRetrieversLocked(const sql::Database* keep) const {
  while (retriever_cache_.size() > 1 &&
         (retriever_cache_.size() > config_.retriever_cache_max_entries ||
          retriever_cache_bytes_ > config_.retriever_cache_max_bytes)) {
    auto victim = retriever_cache_.end();
    uint64_t oldest = ~0ULL;
    for (auto it = retriever_cache_.begin(); it != retriever_cache_.end();
         ++it) {
      if (it->first == keep) continue;
      uint64_t use = it->second->last_use.load(std::memory_order_relaxed);
      if (use < oldest) {
        oldest = use;
        victim = it;
      }
    }
    if (victim == retriever_cache_.end()) return;
    retriever_cache_bytes_ -= victim->second->bytes;
    retriever_cache_.erase(victim);
    CacheMetrics().evictions.Increment();
  }
}

std::shared_ptr<const ValueRetriever> CodesPipeline::RetrieverForGuarded(
    const sql::Database& db, ExecGuard* guard, ServeReport* report) const {
  if (!config_.prompt.use_value_retriever) return nullptr;
  // The failpoint is evaluated exactly once per call, before the cache is
  // consulted: whether this request finds a warm cache depends on thread
  // scheduling, and fault decisions must not.
  if (Failpoints::ShouldFail(FailpointSite::kValueRetrieverBuildIndex)) {
    if (report != nullptr) report->AddRung(ServeRung::kValueFallback);
    return nullptr;
  }
  {
    std::shared_lock<std::shared_mutex> lock(retriever_mu_);
    auto it = retriever_cache_.find(&db);
    if (it != retriever_cache_.end()) {
      // LRU touch without the exclusive lock: stamp the entry with the
      // next tick of a logical clock.
      it->second->last_use.store(
          retriever_use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      CacheMetrics().hits.Increment();
      return it->second->retriever;
    }
  }
  // Build outside the lock so concurrent misses on different databases
  // index in parallel; on a same-database race the first insert wins and
  // the loser's copy is discarded.
  auto retriever = std::make_shared<ValueRetriever>();
  Status built =
      retriever->TryBuildIndex(db, guard, /*check_failpoint=*/false);
  if (!built.ok()) {
    // Over-budget or cancelled mid-build: degrade this request to a prompt
    // without values and leave the cache empty so a healthy request can
    // build it fully later.
    if (report != nullptr) report->AddRung(ServeRung::kValueFallback);
    return nullptr;
  }
  std::unique_lock<std::shared_mutex> lock(retriever_mu_);
  auto [it, inserted] = retriever_cache_.try_emplace(&db, nullptr);
  if (inserted) {
    auto entry = std::make_unique<RetrieverCacheEntry>();
    entry->retriever = std::move(retriever);
    entry->bytes = entry->retriever->ApproxBytes();
    entry->last_use.store(
        retriever_use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    retriever_cache_bytes_ += entry->bytes;
    it->second = std::move(entry);
    CacheMetrics().misses.Increment();
    EvictRetrieversLocked(&db);
    // `it` may have been invalidated only for *other* keys; the inserted
    // entry is exempt from eviction, so re-find is unnecessary —
    // unordered_map::erase never invalidates other iterators.
    return retriever_cache_.find(&db)->second->retriever;
  }
  // Lost the build race: the winner's entry is the cache's copy. Counts
  // as a hit so totals match a single-threaded run.
  it->second->last_use.store(
      retriever_use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  CacheMetrics().hits.Increment();
  return it->second->retriever;
}

std::string CodesPipeline::QuestionWithEk(
    const Text2SqlSample& sample) const {
  std::string question = sample.question;
  if (config_.use_external_knowledge && !sample.external_knowledge.empty()) {
    question += " ; " + sample.external_knowledge;
  }
  return question;
}

DatabasePrompt CodesPipeline::BuildPrompt(const Text2SqlBenchmark& bench,
                                          const Text2SqlSample& sample) const {
  return BuildPromptInternal(bench, sample, nullptr, nullptr, nullptr);
}

DatabasePrompt CodesPipeline::BuildPromptInternal(
    const Text2SqlBenchmark& bench, const Text2SqlSample& sample,
    ExecGuard* guard, ServeReport* report, const ServeOptions* serve) const {
  const sql::Database& db = bench.DbOf(sample);
  std::string question = QuestionWithEk(sample);

  // The prompt budget is the model's context window minus demonstration
  // space (which is why the paper shrinks top-k1/k2 for few-shot mode).
  PromptOptions options = config_.prompt;
  options.max_prompt_tokens = std::min(options.max_prompt_tokens,
                                       model_.profile().max_context_tokens);
  if (config_.icl_shots > 0 && !demo_pool_.empty()) {
    options.max_prompt_tokens = std::max(
        256,
        options.max_prompt_tokens - config_.icl_shots * mean_demo_cost_);
  }

  // Brownout richness overrides: tighter schema top-k at higher levels.
  // No rung fires for these — the stages are healthy, the prompt is just
  // cheaper (report->brownout_level records the policy).
  if (serve != nullptr) {
    if (serve->top_k1_override > 0) options.top_k1 = serve->top_k1_override;
    if (serve->top_k2_override > 0) options.top_k2 = serve->top_k2_override;
  }

  // Ladder rung 1: classifier unavailable (never trained/shared), failing
  // (injected fault), or breaker-forced off by the serving front end —
  // fall back to the full, unfiltered schema. PromptBuilder already keeps
  // everything when the classifier is null, so flipping the flag here is
  // byte-identical on the clean path; the flip exists to record the rung
  // and to cover the injected-fault case.
  bool forced_classifier =
      serve != nullptr && serve->force_classifier_fallback;
  if (options.use_schema_filter &&
      (classifier_ == nullptr || forced_classifier ||
       Failpoints::ShouldFail(FailpointSite::kClassifierScore))) {
    options.use_schema_filter = false;
    if (report != nullptr) {
      report->AddRung(ServeRung::kClassifierFallback);
    }
  }

  // Ladder rung 2 (inside RetrieverForGuarded): value index unavailable —
  // prompt carries no matched values. A breaker-forced skip fires the same
  // rung (the stage is genuinely being avoided as failing); a brownout
  // skip (disable_value_retriever) does not.
  const ValueRetriever* retriever = nullptr;
  std::shared_ptr<const ValueRetriever> lease;
  if (serve != nullptr && serve->force_value_fallback) {
    if (report != nullptr) report->AddRung(ServeRung::kValueFallback);
  } else if (serve != nullptr && serve->disable_value_retriever) {
    // Policy skip: no rung, no retriever.
  } else if (serve != nullptr && serve->value_retriever != nullptr) {
    // Fleet-injected artifact: the caller holds the lease; the pipeline's
    // own cache is bypassed entirely.
    retriever = serve->value_retriever;
  } else {
    lease = RetrieverForGuarded(db, guard, report);
    retriever = lease.get();
  }

  PromptBuilder builder(classifier_.get(), options);
  return builder.Build(db, question, retriever);
}

std::vector<const Text2SqlSample*> CodesPipeline::CollectDemonstrations(
    const Text2SqlSample& sample, int max_demos) const {
  std::vector<const Text2SqlSample*> demos;
  int shots = config_.icl_shots;
  if (max_demos >= 0) shots = std::min(shots, max_demos);
  if (shots > 0 && !demo_pool_.empty()) {
    if (config_.random_demonstrations || demo_retriever_ == nullptr) {
      // Draw config_.icl_shots demos and truncate, rather than drawing
      // `shots`: a brownout cap must shorten the prompt, not reshuffle
      // which demos the uncapped levels would have seen.
      Rng rng(config_.seed ^ HashString(sample.question));
      for (int i = 0; i < config_.icl_shots; ++i) {
        const Text2SqlSample* demo = &demo_pool_[rng.Index(demo_pool_.size())];
        if (static_cast<int>(demos.size()) < shots) demos.push_back(demo);
      }
    } else {
      for (int idx : demo_retriever_->TopK(QuestionWithEk(sample), shots)) {
        demos.push_back(&demo_pool_[static_cast<size_t>(idx)]);
      }
    }
  }
  return demos;
}

std::string CodesPipeline::Predict(const Text2SqlBenchmark& bench,
                                   const Text2SqlSample& sample) const {
  return PredictGuarded(bench, sample, ServeOptions());
}

double CodesPipeline::ComputeBackoffMs(int attempt, double base_ms,
                                       double cap_ms) {
  if (base_ms <= 0.0 || attempt < 1) return 0.0;
  double ms = base_ms;
  for (int i = 1; i < attempt && ms < cap_ms; ++i) ms *= 2.0;
  return std::min(ms, cap_ms);
}

std::string CodesPipeline::PredictGuarded(const Text2SqlBenchmark& bench,
                                          const Text2SqlSample& sample,
                                          const ServeOptions& options,
                                          ServeReport* report) const {
  // Root span of the request tree; the stage spans below nest inside it.
  // On destruction (function exit) its duration lands in
  // span.pipeline.predict, and RecordServeReport has already classified
  // the outcome.
  CODES_TRACE_SPAN(predict_span, "pipeline.predict");

  ServeReport scratch;
  ServeReport& rep = report != nullptr ? *report : scratch;
  rep = ServeReport();
  rep.brownout_level = options.brownout_level;
  rep.suspect = options.suspect;

  // The per-sample generation seed doubles as the failpoint slot: it
  // identifies this request independently of scheduling, so fault
  // campaigns replay byte-identically at any thread count.
  uint64_t seed = config_.seed ^ HashString(sample.question);
  FailpointScope failpoint_scope(seed);
  ExecGuard guard(options.limits, options.cancel);

  const sql::Database& db = bench.DbOf(sample);

  // Generation breaker open (or brownout level 4): skip every stage and
  // serve the emergency query directly. This is the cheapest possible
  // response and the only rung that fires on this path.
  if (options.force_emergency_sql) {
    rep.AddRung(ServeRung::kEmergencySql);
    rep.candidate_rank = -1;
    rep.final_status =
        Status::Internal("generation forced off by circuit breaker");
    RecordServeReport(rep);
    return EmergencySql(db);
  }

  DatabasePrompt prompt = [&] {
    // Stage span: end-to-end prompt construction (classifier, value
    // retrieval, and serialization nest inside).
    CODES_TRACE_SPAN(prompt_span, "pipeline.prompt_build");
    return BuildPromptInternal(bench, sample, &guard, &rep, &options);
  }();

  GenerationInput input;
  input.db = &db;
  input.prompt = &prompt;
  input.question = sample.question;
  if (config_.use_external_knowledge) {
    input.external_knowledge = sample.external_knowledge;
  }
  input.demonstrations = CollectDemonstrations(sample, options.max_icl_demos);

  // Candidate execution happens in the repair loop below, under the
  // guard; skip the model's own unguarded execution probe.
  auto beam = [&] {
    // Stage span: LM beam decoding.
    CODES_TRACE_SPAN(generation_span, "pipeline.generation");
    return model_.GenerateBeam(input, seed, /*mark_executable=*/false);
  }();

  // Stage span: candidate verification + repair loop (guarded execution
  // of beam candidates, including any backoff sleeps).
  CODES_TRACE_SPAN(verify_span, "pipeline.verify");

  // Verification backend: the in-memory database, or the caller-provided
  // twin (e.g. a disk-backed StorageDb whose kDataLoss reads must land on
  // a ladder rung, not in the response).
  const sql::ExecSource& verify_db =
      options.verify_source != nullptr ? *options.verify_source : db;

  // Ladder rung 3: walk a beam in rank order and serve the first
  // candidate that decodes and executes under the guard. Every failed
  // candidate is one bounded repair attempt; with no faults and no budgets
  // this reproduces the paper's first-executable selection exactly. The
  // walk is shared with the canonical retry below, which re-enters it
  // with whatever attempt budget the primary beam left unspent.
  std::string fallback_sql;
  int fallback_rank = -1;
  Status last_error;
  int attempts = 0;
  auto walk = [&](const auto& candidates) -> int {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (attempts >= options.max_repair_attempts) break;
      const std::string& sql = candidates[i].sql;
      if (sql.empty()) continue;
      if (fallback_rank < 0) {
        fallback_sql = sql;
        fallback_rank = static_cast<int>(i);
      }
      if (attempts > 0) {
        double ms = ComputeBackoffMs(attempts, options.backoff_base_ms,
                                     options.backoff_cap_ms);
        if (ms > 0.0) {
          Metrics().backoff_sleeps.Increment();
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      }
      Status exec_status;
      if (Failpoints::ShouldFail(FailpointSite::kLmDecode)) {
        exec_status = Failpoints::FailStatus(FailpointSite::kLmDecode);
      } else {
        // Row/byte budgets are per-candidate; the deadline keeps running
        // across the whole request.
        guard.ResetUsage();
        exec_status = sql::ExecuteSql(verify_db, sql, &guard).status();
      }
      if (exec_status.ok()) return static_cast<int>(i);
      last_error = exec_status;
      ++attempts;
    }
    return -1;
  };
  auto serve_verified = [&](const std::string& sql, int rank) {
    if (attempts > 0) rep.AddRung(ServeRung::kRepair);
    rep.repair_attempts = attempts;
    rep.candidate_rank = rank;
    rep.execution_verified = true;
    rep.final_status = Status::Ok();
    RecordServeReport(rep);
    return sql;
  };

  int verified_rank = walk(beam);
  if (verified_rank >= 0) {
    return serve_verified(beam[verified_rank].sql, verified_rank);
  }

  // Perturbation-aware degradation: before conceding to the unverified /
  // emergency rungs, a suspect request gets one retry against the
  // canonicalized question (zero-width stripped, confusables folded,
  // whitespace collapsed). The retry spends the repair budget the primary
  // beam left over and runs inside the same failpoint scope, so campaigns
  // replay thread-count invariantly; the prompt is rebuilt because
  // canonicalization is precisely what hands the schema classifier and
  // value retriever cleaner text. Counted under serve.adv.retry*, and the
  // retry's own generation/verification lands in the verify span.
  if (options.suspect && !options.canonical_question.empty() &&
      options.canonical_question != sample.question &&
      attempts < options.max_repair_attempts) {
    rep.canonical_retries = 1;
    Text2SqlSample canonical = sample;
    canonical.question = options.canonical_question;
    DatabasePrompt retry_prompt =
        BuildPromptInternal(bench, canonical, &guard, &rep, &options);
    GenerationInput retry_input = input;
    retry_input.prompt = &retry_prompt;
    retry_input.question = canonical.question;
    auto retry_beam = model_.GenerateBeam(
        retry_input, config_.seed ^ HashString(canonical.question),
        /*mark_executable=*/false);
    int retry_rank = walk(retry_beam);
    if (retry_rank >= 0) {
      rep.canonical_served = true;
      return serve_verified(retry_beam[retry_rank].sql, retry_rank);
    }
  }

  rep.repair_attempts = attempts;
  if (attempts > 0) rep.AddRung(ServeRung::kRepair);
  if (fallback_rank >= 0) {
    // Nothing verified within budget: serve the highest-ranked candidate
    // unverified, exactly as the unguarded path would.
    rep.candidate_rank = fallback_rank;
    rep.final_status = last_error;
    RecordServeReport(rep);
    return fallback_sql;
  }

  // Ladder rung 4: the beam is empty (or all-blank) — serve a trivial
  // query rather than nothing.
  rep.AddRung(ServeRung::kEmergencySql);
  rep.candidate_rank = -1;
  rep.final_status =
      last_error.ok() ? Status::NotFound("empty beam") : last_error;
  RecordServeReport(rep);
  return EmergencySql(db);
}

SqlPredictor CodesPipeline::PredictorFor(
    const Text2SqlBenchmark& bench) const {
  return [this, &bench](const Text2SqlSample& sample) {
    return Predict(bench, sample);
  };
}

}  // namespace codes
