#include "linker/schema_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "dataset/perturb.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace codes {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Does any cell of (table, column) literally appear in the question?
/// Scans at most `kMaxRowsScanned` rows to bound latency.
bool ValueAppearsInQuestion(const std::string& question,
                            const sql::Database& db, int table, int column) {
  constexpr size_t kMaxRowsScanned = 64;
  const auto& rows = db.TableAt(table).rows;
  size_t limit = std::min(rows.size(), kMaxRowsScanned);
  for (size_t r = 0; r < limit; ++r) {
    const sql::Value& v = rows[r][column];
    if (!v.is_text()) continue;
    const std::string& text = v.AsText();
    if (text.size() >= 3 && ContainsIgnoreCase(question, text)) return true;
  }
  return false;
}

}  // namespace

// Feature indices:
//   0: question-token coverage of the column-name words
//   1: question-token coverage of the column-comment words
//   2: LCS match degree between question and column name
//   3: LCS match degree between question and column phrase (comment|name)
//   4: embedding cosine between question and "table column comment" text
//   5: 1 if a value of this column literally appears in the question
//   6: 1 if the column is a primary key
//   7: question-token coverage of the table name words
//   8: 1 if the question mentions the exact column name (BIRD EK effect)
//   9: 1 if the column name is the initials of a question token window
//      ("npgr" vs "net profit growth rate") — abbreviation guessing
LinkerFeatures ColumnLinkFeatures(const std::string& question,
                                  const SentenceEncoder& encoder,
                                  const std::vector<float>& question_embedding,
                                  const sql::Database& db, int table,
                                  int column) {
  const auto& table_def = db.schema().tables[table];
  const auto& col = table_def.columns[column];
  LinkerFeatures f{};

  std::vector<std::string> q_tokens =
      ExpandWithSynonyms(WordTokens(question));
  std::vector<std::string> name_tokens = WordTokens(col.name);
  std::vector<std::string> comment_tokens = WordTokens(col.comment);
  std::vector<std::string> table_tokens = WordTokens(table_def.name);

  f[0] = TokenCoverage(name_tokens, q_tokens);
  f[1] = comment_tokens.empty() ? 0.0 : TokenCoverage(comment_tokens, q_tokens);
  f[2] = LcsMatchDegree(col.name, question);
  f[3] = LcsMatchDegree(ColumnPhrase(col), question);
  std::string item_text =
      table_def.name + " " + col.name + " " + col.comment;
  f[4] = CosineSimilarity(question_embedding, encoder.Encode(item_text));
  f[5] = ValueAppearsInQuestion(question, db, table, column) ? 1.0 : 0.0;
  f[6] = col.is_primary_key ? 1.0 : 0.0;
  f[7] = TokenCoverage(table_tokens, q_tokens);
  f[8] = ContainsIgnoreCase(question, col.name) && col.name.size() >= 2
             ? 1.0
             : 0.0;
  f[9] = InitialsMatch(col.name, q_tokens) ? 1.0 : 0.0;
  return f;
}

SchemaItemClassifier::SchemaItemClassifier(int embedding_dim)
    : encoder_(embedding_dim) {
  // Sensible prior weights so the classifier is usable even before Train()
  // (the few-shot setting fine-tunes nothing).
  weights_ = {1.5, 1.5, 0.8, 1.2, 1.0, 2.0, 0.3, 0.8, 1.5, 1.2};
  bias_ = -2.0;
}

void SchemaItemClassifier::Train(const Text2SqlBenchmark& bench,
                                 const TrainOptions& options) {
  // Fit IDF on training questions for better embeddings.
  std::vector<std::string> questions;
  questions.reserve(bench.train.size());
  for (const auto& s : bench.train) questions.push_back(s.question);
  encoder_.FitIdf(questions);

  struct Example {
    LinkerFeatures features;
    int label;
  };
  std::vector<Example> examples;
  Rng rng(options.seed);

  for (const auto& sample : bench.train) {
    const sql::Database& db = bench.DbOf(sample);
    std::string question = sample.question;
    if (!sample.external_knowledge.empty()) {
      question += " ; " + sample.external_knowledge;
    }
    std::vector<float> q_emb = encoder_.Encode(question);

    // Positive columns from used_items.
    std::vector<std::pair<int, int>> positives;
    for (const auto& item : sample.used_items) {
      if (item.column.empty()) continue;
      auto t = db.schema().FindTable(item.table);
      if (!t) continue;
      auto c = db.schema().tables[*t].FindColumn(item.column);
      if (!c) continue;
      positives.emplace_back(*t, *c);
    }
    for (const auto& [t, c] : positives) {
      examples.push_back(
          {ColumnLinkFeatures(question, encoder_, q_emb, db, t, c), 1});
    }
    // Random negatives from the same database.
    int negatives = static_cast<int>(positives.size()) *
                    options.negatives_per_positive;
    for (int i = 0; i < negatives; ++i) {
      int t = static_cast<int>(rng.Index(db.schema().tables.size()));
      const auto& table = db.schema().tables[t];
      int c = static_cast<int>(rng.Index(table.columns.size()));
      bool is_positive = false;
      for (const auto& [pt, pc] : positives) {
        if (pt == t && pc == c) is_positive = true;
      }
      if (is_positive) continue;
      examples.push_back(
          {ColumnLinkFeatures(question, encoder_, q_emb, db, t, c), 0});
    }
  }

  // SGD over logistic loss.
  weights_ = {};
  bias_ = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(examples);
    for (const auto& ex : examples) {
      double z = bias_;
      for (size_t i = 0; i < ex.features.size(); ++i) {
        z += weights_[i] * ex.features[i];
      }
      double grad = Sigmoid(z) - static_cast<double>(ex.label);
      for (size_t i = 0; i < ex.features.size(); ++i) {
        weights_[i] -= options.learning_rate *
                       (grad * ex.features[i] + options.l2 * weights_[i]);
      }
      bias_ -= options.learning_rate * grad;
    }
  }
}

size_t SchemaItemClassifier::ApproxBytes() const {
  return sizeof(*this) + encoder_.ApproxBytes();
}

namespace {
constexpr uint32_t kClassifierMagic = 0x53434C46;  // "SCLF"
constexpr uint32_t kClassifierVersion = 1;
}  // namespace

void SchemaItemClassifier::SaveTo(std::string* out) const {
  serial::PutMagic(out, kClassifierMagic, kClassifierVersion);
  for (double w : weights_) serial::PutDouble(out, w);
  serial::PutDouble(out, bias_);
  encoder_.SaveTo(out);
}

Status SchemaItemClassifier::LoadFrom(serial::Reader* reader) {
  auto corrupt = [this](const char* what) {
    weights_ = LinkerFeatures{};
    bias_ = 0.0;
    return Status::DataLoss(std::string("classifier snapshot: ") + what);
  };
  if (!serial::ReadMagic(reader, kClassifierMagic, kClassifierVersion)) {
    return corrupt("bad magic");
  }
  for (double& w : weights_) {
    if (!reader->ReadDouble(&w)) return corrupt("truncated weights");
  }
  if (!reader->ReadDouble(&bias_)) return corrupt("truncated bias");
  Status status = encoder_.LoadFrom(reader);
  if (!status.ok()) return corrupt(status.message().c_str());
  return Status::Ok();
}

double SchemaItemClassifier::ScoreColumn(const std::string& question,
                                         const sql::Database& db, int table,
                                         int column) const {
  std::vector<float> q_emb = encoder_.Encode(question);
  LinkerFeatures f =
      ColumnLinkFeatures(question, encoder_, q_emb, db, table, column);
  double z = bias_;
  for (size_t i = 0; i < f.size(); ++i) z += weights_[i] * f[i];
  return Sigmoid(z);
}

double SchemaItemClassifier::ScoreTable(const std::string& question,
                                        const sql::Database& db,
                                        int table) const {
  const auto& table_def = db.schema().tables[table];
  std::vector<std::string> q_tokens =
      ExpandWithSynonyms(WordTokens(question));
  double name_cov = TokenCoverage(WordTokens(table_def.name), q_tokens);
  double comment_cov =
      table_def.comment.empty()
          ? 0.0
          : TokenCoverage(WordTokens(table_def.comment), q_tokens);
  double best_column = 0.0;
  for (size_t c = 0; c < table_def.columns.size(); ++c) {
    best_column = std::max(
        best_column, ScoreColumn(question, db, table, static_cast<int>(c)));
  }
  return 0.45 * best_column + 0.35 * name_cov + 0.20 * comment_cov;
}

double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  CODES_CHECK(scores.size() == labels.size());
  // Rank-sum (Mann-Whitney U) formulation with tie handling.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double positive_rank_sum = 0;
  size_t positives = 0;
  size_t i = 0;
  double rank = 1;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    double avg_rank = (rank + rank + static_cast<double>(j - i) - 1) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) {
        positive_rank_sum += avg_rank;
        ++positives;
      }
    }
    rank += static_cast<double>(j - i);
    i = j;
  }
  size_t negatives = scores.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  double u = positive_rank_sum -
             static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

std::pair<double, double> EvaluateClassifierAuc(
    const SchemaItemClassifier& classifier, const Text2SqlBenchmark& bench,
    bool use_external_knowledge) {
  std::vector<double> table_scores, column_scores;
  std::vector<int> table_labels, column_labels;
  for (const auto& sample : bench.dev) {
    const sql::Database& db = bench.DbOf(sample);
    std::string question = sample.question;
    if (use_external_knowledge && !sample.external_knowledge.empty()) {
      question += " ; " + sample.external_knowledge;
    }
    for (size_t t = 0; t < db.schema().tables.size(); ++t) {
      const auto& table = db.schema().tables[t];
      bool table_used = false;
      for (const auto& item : sample.used_items) {
        if (ToLower(item.table) == ToLower(table.name)) table_used = true;
      }
      table_scores.push_back(
          classifier.ScoreTable(question, db, static_cast<int>(t)));
      table_labels.push_back(table_used ? 1 : 0);
      for (size_t c = 0; c < table.columns.size(); ++c) {
        bool col_used = false;
        for (const auto& item : sample.used_items) {
          if (ToLower(item.table) == ToLower(table.name) &&
              ToLower(item.column) == ToLower(table.columns[c].name)) {
            col_used = true;
          }
        }
        column_scores.push_back(classifier.ScoreColumn(
            question, db, static_cast<int>(t), static_cast<int>(c)));
        column_labels.push_back(col_used ? 1 : 0);
      }
    }
  }
  return {ComputeAuc(table_scores, table_labels),
          ComputeAuc(column_scores, column_labels)};
}

}  // namespace codes
