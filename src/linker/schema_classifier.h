#ifndef CODES_LINKER_SCHEMA_CLASSIFIER_H_
#define CODES_LINKER_SCHEMA_CLASSIFIER_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/sample.h"
#include "embed/sentence_encoder.h"
#include "sqlengine/database.h"

namespace codes {

/// Feature vector for a (question, schema item) pair.
/// Index meanings are documented in schema_classifier.cc.
using LinkerFeatures = std::array<double, 10>;

/// Computes features for a column. `question` should already include the
/// external-knowledge hint when available.
LinkerFeatures ColumnLinkFeatures(const std::string& question,
                                  const SentenceEncoder& encoder,
                                  const std::vector<float>& question_embedding,
                                  const sql::Database& db, int table,
                                  int column);

/// The schema item classifier of Section 6.1 (a RoBERTa cross-encoder in
/// the paper; here a logistic regression over lexical/semantic features,
/// trained with SGD). Given a question it scores every table and column;
/// the prompt builder keeps the top-k1 tables and top-k2 columns each.
class SchemaItemClassifier {
 public:
  explicit SchemaItemClassifier(int embedding_dim = 192);

  /// Options for Train().
  struct TrainOptions {
    int epochs = 6;
    double learning_rate = 0.15;
    double l2 = 1e-4;
    int negatives_per_positive = 4;
    uint64_t seed = 11;
  };

  /// Trains on a benchmark's training split: columns in a sample's
  /// used_items are positives, sampled other columns are negatives.
  void Train(const Text2SqlBenchmark& bench, const TrainOptions& options);

  /// Relevance score (sigmoid, in [0,1]) of a column for a question.
  double ScoreColumn(const std::string& question, const sql::Database& db,
                     int table, int column) const;

  /// Relevance score of a table: a blend of its name/comment match and its
  /// best column score.
  double ScoreTable(const std::string& question, const sql::Database& db,
                    int table) const;

  const SentenceEncoder& encoder() const { return encoder_; }

  /// Learned weights (exposed for tests and diagnostics).
  const LinkerFeatures& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Resident cost in bytes (weights plus encoder IDF table) for fleet
  /// memory accounting.
  size_t ApproxBytes() const;

  /// Appends the trained state (weights, bias, encoder IDF) to `out`.
  void SaveTo(std::string* out) const;

  /// Restores from SaveTo bytes. Returns kDataLoss (classifier reset to
  /// untrained) on malformation; on success scores are byte-identical to
  /// the classifier that was saved.
  Status LoadFrom(serial::Reader* reader);

 private:
  SentenceEncoder encoder_;
  LinkerFeatures weights_{};
  double bias_ = 0.0;
};

/// Area under the ROC curve for `scores` against binary `labels`.
/// Ties contribute 0.5; returns 0.5 when one class is empty.
double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels);

/// Evaluates a trained classifier on a benchmark's dev split, returning
/// {table AUC, column AUC} — the two rows of the paper's Table 3.
/// When `use_external_knowledge` is set, each sample's EK string is
/// appended to its question before scoring.
std::pair<double, double> EvaluateClassifierAuc(
    const SchemaItemClassifier& classifier, const Text2SqlBenchmark& bench,
    bool use_external_knowledge);

}  // namespace codes

#endif  // CODES_LINKER_SCHEMA_CLASSIFIER_H_
