#include "index/bm25_index.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/status.h"
#include "common/trace.h"
#include "text/tokenize.h"

namespace codes {

namespace {

/// Per-thread scoring scratch: a dense accumulator over doc ids plus the
/// list of touched docs (so only visited entries are reset afterwards).
/// The accumulator is all-zero between queries — that invariant is what
/// lets one buffer serve every index on the thread.
struct QueryScratch {
  std::vector<double> scores;
  std::vector<int32_t> touched;
};

QueryScratch& GetQueryScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

/// The ranking order: score descending, doc id ascending on ties. A strict
/// total order (doc ids are unique), so bounded top-k selection and a full
/// sort agree exactly.
inline bool BetterHit(const Bm25Hit& a, const Bm25Hit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc_id < b.doc_id;
}

}  // namespace

std::vector<std::string> Bm25AnalyzeText(std::string_view text) {
  std::vector<std::string> tokens;
  for (auto& word : WordTokens(text)) {
    tokens.push_back(StemToken(word));
  }
  // Character trigrams make substring-ish matches retrievable.
  for (auto& gram : CharNgrams(text, 3)) {
    if (gram.find(' ') == std::string::npos) {
      tokens.push_back("#" + gram);
    }
  }
  return tokens;
}

int Bm25Index::AddDocument(std::string_view text) {
  int doc_id = static_cast<int>(doc_lengths_.size());
  auto tokens = Bm25AnalyzeText(text);
  // Term frequencies via interned ids: sort the small id vector and
  // run-length encode (no per-document hash map).
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) {
    uint32_t id = terms_.Intern(t);
    if (id == build_postings_.size()) build_postings_.emplace_back();
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size();) {
    size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    build_postings_[ids[i]].push_back(
        Posting{doc_id, static_cast<int32_t>(j - i)});
    i = j;
  }
  doc_lengths_.push_back(static_cast<int>(tokens.size()));
  doc_texts_.emplace_back(text);
  // Every mutation stales the whole derived layout (idf depends on the
  // total document count, not just the new document's terms): the caller
  // must Finalize() at the end of the batch before querying again.
  finalized_ = false;
  return doc_id;
}

void Bm25Index::Finalize() {
  const double n = static_cast<double>(doc_lengths_.size());
  double total_length = 0;
  for (int len : doc_lengths_) total_length += len;
  avg_doc_length_ = n > 0 ? total_length / n : 0.0;

  // Flatten per-term posting vectors into one CSR layout.
  size_t total_postings = 0;
  for (const auto& postings : build_postings_) {
    total_postings += postings.size();
  }
  posting_begin_.assign(build_postings_.size() + 1, 0);
  posting_doc_.clear();
  posting_doc_.reserve(total_postings);
  posting_tf_.clear();
  posting_tf_.reserve(total_postings);
  idf_.assign(build_postings_.size(), 0.0);
  for (size_t term = 0; term < build_postings_.size(); ++term) {
    posting_begin_[term] = static_cast<uint32_t>(posting_doc_.size());
    for (const Posting& posting : build_postings_[term]) {
      posting_doc_.push_back(posting.doc_id);
      posting_tf_.push_back(posting.term_freq);
    }
    double df = static_cast<double>(build_postings_[term].size());
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
  posting_begin_[build_postings_.size()] =
      static_cast<uint32_t>(posting_doc_.size());

  // Precompute the per-document length normalization: the old hot loop
  // recomputed k1*(1-b+b*dl/avgdl) for every posting visited.
  doc_norm_.resize(doc_lengths_.size());
  for (size_t doc = 0; doc < doc_lengths_.size(); ++doc) {
    double dl = static_cast<double>(doc_lengths_[doc]);
    doc_norm_[doc] =
        k1_ * (1.0 - b_ + b_ * dl / std::max(avg_doc_length_, 1e-9));
  }
  finalized_ = true;
}

size_t Bm25Index::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += doc_lengths_.size() * sizeof(int);
  for (const std::string& text : doc_texts_) {
    bytes += sizeof(std::string) + text.size();
  }
  bytes += terms_.ApproxBytes();
  for (const auto& postings : build_postings_) {
    bytes += sizeof(postings) + postings.size() * sizeof(Posting);
  }
  bytes += posting_begin_.size() * sizeof(uint32_t);
  bytes += posting_doc_.size() * sizeof(int32_t);
  bytes += posting_tf_.size() * sizeof(int32_t);
  bytes += idf_.size() * sizeof(double);
  bytes += doc_norm_.size() * sizeof(double);
  return bytes;
}

namespace {
constexpr uint32_t kBm25Magic = 0x424D3235;  // "BM25"
constexpr uint32_t kBm25Version = 1;
}  // namespace

void Bm25Index::SaveTo(std::string* out) const {
  CODES_CHECK(finalized_ && "Bm25Index::SaveTo before Finalize()");
  serial::PutMagic(out, kBm25Magic, kBm25Version);
  serial::PutDouble(out, k1_);
  serial::PutDouble(out, b_);
  serial::PutU64(out, doc_lengths_.size());
  for (int len : doc_lengths_) serial::PutI32(out, len);
  for (const std::string& text : doc_texts_) serial::PutString(out, text);
  terms_.SaveTo(out);
  // Per-term postings (the analyzed documents). The derived CSR layout,
  // IDF table, and norms are recomputed by Finalize on load — exact
  // doubles, since Finalize is deterministic in its inputs.
  serial::PutU64(out, build_postings_.size());
  for (const auto& postings : build_postings_) {
    serial::PutU64(out, postings.size());
    for (const Posting& posting : postings) {
      serial::PutI32(out, posting.doc_id);
      serial::PutI32(out, posting.term_freq);
    }
  }
}

Status Bm25Index::LoadFrom(serial::Reader* reader) {
  *this = Bm25Index();
  auto corrupt = [this](const char* what) {
    *this = Bm25Index();
    return Status::DataLoss(std::string("bm25 snapshot: ") + what);
  };
  if (!serial::ReadMagic(reader, kBm25Magic, kBm25Version)) {
    return corrupt("bad magic");
  }
  if (!reader->ReadDouble(&k1_) || !reader->ReadDouble(&b_)) {
    return corrupt("truncated params");
  }
  uint64_t n_docs = 0;
  if (!reader->ReadU64(&n_docs) || n_docs > reader->remaining()) {
    return corrupt("bad document count");
  }
  doc_lengths_.reserve(n_docs);
  for (uint64_t i = 0; i < n_docs; ++i) {
    int32_t len = 0;
    if (!reader->ReadI32(&len) || len < 0) return corrupt("bad doc length");
    doc_lengths_.push_back(len);
  }
  doc_texts_.resize(n_docs);
  for (uint64_t i = 0; i < n_docs; ++i) {
    if (!reader->ReadString(&doc_texts_[i])) return corrupt("truncated text");
  }
  if (!terms_.LoadFrom(reader)) return corrupt("bad term dictionary");
  uint64_t n_terms = 0;
  if (!reader->ReadU64(&n_terms) || n_terms != terms_.size()) {
    return corrupt("term/postings count mismatch");
  }
  build_postings_.resize(n_terms);
  for (uint64_t term = 0; term < n_terms; ++term) {
    uint64_t n_postings = 0;
    if (!reader->ReadU64(&n_postings) ||
        n_postings > reader->remaining() / (2 * sizeof(int32_t))) {
      return corrupt("bad posting count");
    }
    auto& postings = build_postings_[term];
    postings.reserve(n_postings);
    for (uint64_t p = 0; p < n_postings; ++p) {
      Posting posting{0, 0};
      if (!reader->ReadI32(&posting.doc_id) ||
          !reader->ReadI32(&posting.term_freq) || posting.doc_id < 0 ||
          posting.doc_id >= static_cast<int32_t>(n_docs) ||
          posting.term_freq < 1) {
        return corrupt("bad posting");
      }
      postings.push_back(posting);
    }
  }
  Finalize();
  return Status::Ok();
}

std::vector<Bm25Hit> Bm25Index::Query(std::string_view query,
                                      int top_k) const {
  CODES_TRACE_SPAN(span, "bm25.lookup");
  // Eager-finalize contract: scoring an unfinalized index would use stale
  // IDF statistics and silently mis-rank, so it is a programmer error.
  CODES_CHECK(finalized_ && "Bm25Index::Query before Finalize()");
  // An injected lookup failure degrades to "no coarse candidates": the
  // value retriever then matches nothing and the prompt carries no values,
  // which is exactly the production behaviour when a search backend is out.
  if (Failpoints::ShouldFail(FailpointSite::kBm25Lookup)) return {};

  auto term_strings = Bm25AnalyzeText(query);
  // Deduplicate query terms; repeated terms in short queries add noise.
  // Sorted order also fixes the accumulation order per document, which is
  // what keeps scores byte-identical to the reference index.
  std::sort(term_strings.begin(), term_strings.end());
  term_strings.erase(std::unique(term_strings.begin(), term_strings.end()),
                     term_strings.end());

  QueryScratch& scratch = GetQueryScratch();
  if (scratch.scores.size() < doc_lengths_.size()) {
    scratch.scores.resize(doc_lengths_.size(), 0.0);
  }
  scratch.touched.clear();
  const double k1_plus_1 = k1_ + 1.0;
  for (const auto& term : term_strings) {
    uint32_t term_id = terms_.Find(term);
    if (term_id == StringInterner::kNpos) continue;
    double idf = idf_[term_id];
    for (uint32_t p = posting_begin_[term_id]; p < posting_begin_[term_id + 1];
         ++p) {
      int32_t doc = posting_doc_[p];
      double tf = static_cast<double>(posting_tf_[p]);
      double denom = tf + doc_norm_[doc];
      double& slot = scratch.scores[doc];
      // Contributions are strictly positive (idf > 0 for df <= n, tf >= 1),
      // so zero reliably means "not yet touched".
      if (slot == 0.0) scratch.touched.push_back(doc);
      slot += idf * tf * k1_plus_1 / denom;
    }
  }

  std::vector<Bm25Hit> hits;
  if (top_k < 0 || scratch.touched.size() <= static_cast<size_t>(top_k)) {
    hits.reserve(scratch.touched.size());
    for (int32_t doc : scratch.touched) {
      hits.push_back(Bm25Hit{doc, scratch.scores[doc]});
      scratch.scores[doc] = 0.0;
    }
    std::sort(hits.begin(), hits.end(), BetterHit);
    return hits;
  }

  // Bounded top-k: a heap of the k best seen so far, worst on top. Same
  // total order as the full sort, so the selected set and its final order
  // match sort-then-truncate exactly.
  auto worse_on_top = [](const Bm25Hit& a, const Bm25Hit& b) {
    return BetterHit(a, b);
  };
  hits.reserve(static_cast<size_t>(top_k) + 1);
  for (int32_t doc : scratch.touched) {
    Bm25Hit hit{doc, scratch.scores[doc]};
    scratch.scores[doc] = 0.0;
    if (hits.size() < static_cast<size_t>(top_k)) {
      hits.push_back(hit);
      std::push_heap(hits.begin(), hits.end(), worse_on_top);
    } else if (BetterHit(hit, hits.front())) {
      std::pop_heap(hits.begin(), hits.end(), worse_on_top);
      hits.back() = hit;
      std::push_heap(hits.begin(), hits.end(), worse_on_top);
    }
  }
  std::sort(hits.begin(), hits.end(), BetterHit);
  return hits;
}

}  // namespace codes
