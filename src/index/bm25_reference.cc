#include "index/bm25_reference.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace codes {

int ReferenceBm25Index::AddDocument(std::string_view text) {
  int doc_id = static_cast<int>(doc_lengths_.size());
  auto tokens = Bm25AnalyzeText(text);
  std::unordered_map<std::string, int> counts;
  for (const auto& t : tokens) counts[t] += 1;
  for (const auto& [term, freq] : counts) {
    postings_[term].push_back(Posting{doc_id, freq});
  }
  doc_lengths_.push_back(static_cast<int>(tokens.size()));
  doc_texts_.emplace_back(text);
  finalized_ = false;
  return doc_id;
}

void ReferenceBm25Index::Finalize() {
  const double n = static_cast<double>(doc_lengths_.size());
  double total_length = 0;
  for (int len : doc_lengths_) total_length += len;
  avg_doc_length_ = n > 0 ? total_length / n : 0.0;
  idf_.clear();
  idf_.reserve(postings_.size());
  for (const auto& [term, posting_list] : postings_) {
    double df = static_cast<double>(posting_list.size());
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
  finalized_ = true;
}

std::vector<Bm25Hit> ReferenceBm25Index::Query(std::string_view query,
                                               int top_k) const {
  CODES_CHECK(finalized_ && "ReferenceBm25Index::Query before Finalize()");
  std::unordered_map<int, double> scores;
  auto terms = Bm25AnalyzeText(query);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (const auto& term : terms) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    double idf = idf_.at(term);
    for (const auto& posting : pit->second) {
      double tf = static_cast<double>(posting.term_freq);
      double dl = static_cast<double>(doc_lengths_[posting.doc_id]);
      double denom =
          tf + k1_ * (1.0 - b_ + b_ * dl / std::max(avg_doc_length_, 1e-9));
      scores[posting.doc_id] += idf * tf * (k1_ + 1.0) / denom;
    }
  }
  std::vector<Bm25Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc_id, score] : scores) {
    hits.push_back(Bm25Hit{doc_id, score});
  }
  std::sort(hits.begin(), hits.end(), [](const Bm25Hit& a, const Bm25Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (top_k >= 0 && hits.size() > static_cast<size_t>(top_k)) {
    hits.resize(static_cast<size_t>(top_k));
  }
  return hits;
}

}  // namespace codes
