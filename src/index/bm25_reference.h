#ifndef CODES_INDEX_BM25_REFERENCE_H_
#define CODES_INDEX_BM25_REFERENCE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/bm25_index.h"

namespace codes {

/// The pre-speed-campaign BM25 implementation, pinned: string-keyed
/// unordered_map postings and IDF tables, a map-accumulated score pass,
/// and a full sort-then-truncate. It exists for two callers only:
///
///  * tests/speed_equivalence_test.cc proves Bm25Index returns
///    byte-identical hits (ids and score doubles) on randomized corpora;
///  * bench_latency's hot-path section reports the before/after speedup
///    that BENCH_latency.json commits as the perf trajectory.
///
/// Analysis is shared with the production index via Bm25AnalyzeText, so
/// any scoring difference is attributable to the data-structure rewrite.
/// Not for serving use: every query pays string hashing per term and a
/// full candidate sort.
class ReferenceBm25Index {
 public:
  explicit ReferenceBm25Index(double k1 = 1.2, double b = 0.75)
      : k1_(k1), b_(b) {}

  /// Adds a document and returns its id (dense, starting at 0).
  int AddDocument(std::string_view text);

  /// Computes IDF statistics. Required before Query, like the production
  /// index's eager contract.
  void Finalize();

  /// Top-`top_k` documents for `query`, sorted by descending score with
  /// doc id tie-breaks — the order Bm25Index must reproduce exactly.
  std::vector<Bm25Hit> Query(std::string_view query, int top_k) const;

  int NumDocuments() const { return static_cast<int>(doc_lengths_.size()); }
  const std::string& DocumentText(int doc_id) const {
    return doc_texts_[static_cast<size_t>(doc_id)];
  }

 private:
  struct Posting {
    int doc_id;
    int term_freq;
  };

  double k1_;
  double b_;
  bool finalized_ = false;
  double avg_doc_length_ = 0;
  std::vector<int> doc_lengths_;
  std::vector<std::string> doc_texts_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<std::string, double> idf_;
};

}  // namespace codes

#endif  // CODES_INDEX_BM25_REFERENCE_H_
