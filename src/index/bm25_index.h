#ifndef CODES_INDEX_BM25_INDEX_H_
#define CODES_INDEX_BM25_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace codes {

/// A document hit returned by a BM25 query.
struct Bm25Hit {
  int doc_id = -1;
  double score = 0.0;
};

/// In-memory inverted index with Okapi BM25 ranking.
///
/// This replaces the Lucene/pyserini index the paper uses for the coarse
/// stage of its value retriever (Section 6.2): documents are database cell
/// values; queries are user questions; the index returns the top-k
/// candidate values for fine-grained LCS re-ranking.
///
/// Usage: AddDocument() for every value, Finalize(), then Query().
class Bm25Index {
 public:
  /// Standard Okapi parameters.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  /// Adds a document and returns its id (dense, starting at 0).
  /// Tokens are stemmed words plus 3-character-grams, so that partial
  /// matches ("Jesenik" in "Jesenik branch") still score.
  int AddDocument(std::string_view text);

  /// Number of indexed documents.
  int NumDocuments() const { return static_cast<int>(doc_lengths_.size()); }

  /// Computes IDF statistics. Must be called after the last AddDocument
  /// and before the first Query; subsequent AddDocument calls require
  /// re-finalization.
  void Finalize();

  /// Returns the `top_k` highest-scoring documents for `query`, sorted by
  /// descending score. Only documents sharing at least one token appear.
  std::vector<Bm25Hit> Query(std::string_view query, int top_k) const;

  /// Original text of a document.
  const std::string& DocumentText(int doc_id) const {
    return doc_texts_[static_cast<size_t>(doc_id)];
  }

 private:
  static std::vector<std::string> Analyze(std::string_view text);

  struct Posting {
    int doc_id;
    int term_freq;
  };

  double k1_;
  double b_;
  bool finalized_ = false;
  double avg_doc_length_ = 0;
  std::vector<int> doc_lengths_;
  std::vector<std::string> doc_texts_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<std::string, double> idf_;
};

}  // namespace codes

#endif  // CODES_INDEX_BM25_INDEX_H_
