#ifndef CODES_INDEX_BM25_INDEX_H_
#define CODES_INDEX_BM25_INDEX_H_

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace codes {

/// A document hit returned by a BM25 query.
struct Bm25Hit {
  int doc_id = -1;
  double score = 0.0;
};

/// In-memory inverted index with Okapi BM25 ranking.
///
/// This replaces the Lucene/pyserini index the paper uses for the coarse
/// stage of its value retriever (Section 6.2): documents are database cell
/// values; queries are user questions; the index returns the top-k
/// candidate values for fine-grained LCS re-ranking.
///
/// Usage: AddDocument() for every value, then Query(). Finalize() may be
/// called explicitly to front-load the IDF computation; otherwise the
/// first Query after a mutation re-finalizes lazily, so incremental adds
/// score exactly like a from-scratch build (IDF depends on the total
/// document count, so every mutation invalidates every term's IDF — a
/// stale table here silently mis-ranks).
///
/// Thread-safety: concurrent Query calls are safe (including the lazy
/// re-finalization, which is serialized internally). AddDocument must
/// not race with Query — same setup-then-serve contract as the rest of
/// the library.
class Bm25Index {
 public:
  /// Standard Okapi parameters.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  Bm25Index(Bm25Index&& other) noexcept { *this = std::move(other); }
  Bm25Index& operator=(Bm25Index&& other) noexcept {
    if (this != &other) {
      k1_ = other.k1_;
      b_ = other.b_;
      finalized_.store(other.finalized_.load(std::memory_order_acquire),
                       std::memory_order_release);
      avg_doc_length_ = other.avg_doc_length_;
      doc_lengths_ = std::move(other.doc_lengths_);
      doc_texts_ = std::move(other.doc_texts_);
      postings_ = std::move(other.postings_);
      idf_ = std::move(other.idf_);
    }
    return *this;
  }

  /// Adds a document and returns its id (dense, starting at 0).
  /// Tokens are stemmed words plus 3-character-grams, so that partial
  /// matches ("Jesenik" in "Jesenik branch") still score.
  int AddDocument(std::string_view text);

  /// Number of indexed documents.
  int NumDocuments() const { return static_cast<int>(doc_lengths_.size()); }

  /// Computes IDF statistics over the current document set. Optional:
  /// Query() re-finalizes lazily whenever a mutation left the index
  /// dirty. Idempotent.
  void Finalize();

  /// Returns the `top_k` highest-scoring documents for `query`, sorted by
  /// descending score. Only documents sharing at least one token appear.
  std::vector<Bm25Hit> Query(std::string_view query, int top_k) const;

  /// Original text of a document.
  const std::string& DocumentText(int doc_id) const {
    return doc_texts_[static_cast<size_t>(doc_id)];
  }

 private:
  static std::vector<std::string> Analyze(std::string_view text);

  /// Serializes the lazy re-finalization when concurrent Query calls hit
  /// a dirty index at the same time (double-checked on `finalized_`).
  void EnsureFinalized() const;

  struct Posting {
    int doc_id;
    int term_freq;
  };

  double k1_;
  double b_;
  /// Release-store on finalize / acquire-load in Query: a query that
  /// sees `true` also sees the idf_ table it guards.
  mutable std::atomic<bool> finalized_{false};
  mutable std::mutex finalize_mu_;
  /// IDF state is derived from postings_ and may be (re)computed from a
  /// const Query via EnsureFinalized.
  mutable double avg_doc_length_ = 0;
  std::vector<int> doc_lengths_;
  std::vector<std::string> doc_texts_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  mutable std::unordered_map<std::string, double> idf_;
};

}  // namespace codes

#endif  // CODES_INDEX_BM25_INDEX_H_
