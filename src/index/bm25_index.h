#ifndef CODES_INDEX_BM25_INDEX_H_
#define CODES_INDEX_BM25_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"

namespace codes {

/// A document hit returned by a BM25 query.
struct Bm25Hit {
  int doc_id = -1;
  double score = 0.0;
};

/// The shared analyzer: stemmed word tokens plus 3-character-grams (so
/// partial matches like "Jesenik" in "Jesenik branch" still score). Both
/// Bm25Index and the pinned ReferenceBm25Index use exactly this function —
/// the equivalence suite depends on the two indexes agreeing on analysis.
std::vector<std::string> Bm25AnalyzeText(std::string_view text);

/// In-memory inverted index with Okapi BM25 ranking.
///
/// This replaces the Lucene/pyserini index the paper uses for the coarse
/// stage of its value retriever (Section 6.2): documents are database cell
/// values; queries are user questions; the index returns the top-k
/// candidate values for fine-grained LCS re-ranking.
///
/// Hot-path layout (the speed-campaign rewrite; DESIGN.md section 13):
/// terms are interned into dense IDs (arena-backed dictionary, no
/// per-term string nodes), postings live in flat CSR-style arrays built
/// at Finalize, per-document length normalization is precomputed, and
/// scoring accumulates into a dense per-thread scratch with a bounded
/// top-k heap instead of a string-keyed map plus full sort. Results are
/// byte-identical to the map-based ReferenceBm25Index (pinned by
/// tests/speed_equivalence_test.cc).
///
/// Usage contract: AddDocument() for every value, then Finalize(), then
/// Query(). Finalize is eager and mandatory — Query CHECK-fails on an
/// unfinalized index. Incremental adds are supported by finalizing again
/// after the batch; a batch-end finalize is exactly as fresh as a
/// from-scratch build (IDF depends on the total document count, so every
/// mutation invalidates every term's IDF — a stale table silently
/// mis-ranks, and the old lazily-re-finalizing contract paid an atomic
/// load plus double-checked mutex on every query to paper over it).
///
/// Thread-safety: concurrent Query calls on a finalized index are safe
/// (scoring scratch is thread-local). AddDocument/Finalize must not race
/// with Query — the same setup-then-serve contract as the rest of the
/// library.
class Bm25Index {
 public:
  /// Standard Okapi parameters.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  /// Adds a document and returns its id (dense, starting at 0). Marks the
  /// index unfinalized until the next Finalize().
  int AddDocument(std::string_view text);

  /// Number of indexed documents.
  int NumDocuments() const { return static_cast<int>(doc_lengths_.size()); }

  /// Computes IDF statistics and flattens postings over the current
  /// document set. Must be called after the last AddDocument of a batch
  /// and before the first Query. Idempotent.
  void Finalize();

  /// True once Finalize() has run against the current document set.
  bool finalized() const { return finalized_; }

  /// Returns the `top_k` highest-scoring documents for `query`, sorted by
  /// descending score (doc id breaks ties). Only documents sharing at
  /// least one token appear. CHECK-fails when the index is not finalized.
  std::vector<Bm25Hit> Query(std::string_view query, int top_k) const;

  /// Original text of a document.
  const std::string& DocumentText(int doc_id) const {
    return doc_texts_[static_cast<size_t>(doc_id)];
  }

  /// Resident cost in bytes (documents, dictionary, postings, derived
  /// arrays) — what a fleet manager charges against its memory budget.
  size_t ApproxBytes() const;

  /// Appends a snapshot of the index to `out`. The analyzed token stream
  /// (interned dictionary + per-term postings) is persisted, so LoadFrom
  /// skips re-tokenizing every document — the expensive half of a build —
  /// and only re-runs the cheap Finalize flattening. The index must be
  /// finalized first.
  void SaveTo(std::string* out) const;

  /// Restores an index from SaveTo bytes, consuming exactly one snapshot
  /// from `reader`. Returns kDataLoss (with the index left empty) on any
  /// malformation; on success the index is finalized and query results
  /// are byte-identical to the index that was saved.
  Status LoadFrom(serial::Reader* reader);

 private:
  struct Posting {
    int32_t doc_id;
    int32_t term_freq;
  };

  double k1_;
  double b_;
  bool finalized_ = false;
  double avg_doc_length_ = 0;
  std::vector<int> doc_lengths_;
  std::vector<std::string> doc_texts_;

  /// Build-time state: term dictionary plus per-term posting vectors.
  /// Kept after Finalize so an incremental batch can re-finalize.
  StringInterner terms_;
  std::vector<std::vector<Posting>> build_postings_;

  /// Finalized flat layout, rebuilt by Finalize: CSR postings
  /// (posting_begin_[t]..posting_begin_[t+1] index posting_doc_/
  /// posting_tf_), per-term IDF, and the precomputed per-document length
  /// normalization k1*(1-b+b*dl/avgdl).
  std::vector<uint32_t> posting_begin_;
  std::vector<int32_t> posting_doc_;
  std::vector<int32_t> posting_tf_;
  std::vector<double> idf_;
  std::vector<double> doc_norm_;
};

}  // namespace codes

#endif  // CODES_INDEX_BM25_INDEX_H_
