#ifndef CODES_CORPUS_PRETRAIN_CORPUS_H_
#define CODES_CORPUS_PRETRAIN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace codes {

/// The three slices of the paper's 21.5 GB incremental pre-training corpus
/// (Section 5.1), synthesized at CPU scale. Relative sizes keep the
/// paper's 11 : 4.5 : 6 ratio.
struct CorpusSlices {
  std::vector<std::string> sql_related;  ///< SQL queries (StarCoder's SQL slice)
  std::vector<std::string> nl_related;   ///< dialog/instruction sentences
  std::vector<std::string> nl_to_code;   ///< comment+code pairs incl. NL-SQL
};

/// Builds the SQL-centric incremental pre-training corpus. `scale` is a
/// document-count multiplier (scale 1 ≈ 2150 documents in the 11:4.5:6
/// ratio).
CorpusSlices BuildPretrainCorpus(int scale, uint64_t seed);

/// Builds the "StarCoder base" corpus: a mixture over many programming
/// languages where SQL is only a small fraction — exactly the data-bias
/// problem (C1) the paper's incremental pre-training corrects.
std::vector<std::string> BuildBaseCodeCorpus(int num_documents, uint64_t seed);

/// Builds a held-out set of SQL queries for perplexity evaluation.
std::vector<std::string> BuildSqlEvalSet(int num_queries, uint64_t seed);

}  // namespace codes

#endif  // CODES_CORPUS_PRETRAIN_CORPUS_H_
