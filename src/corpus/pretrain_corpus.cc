#include "corpus/pretrain_corpus.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "dataset/templates.h"

namespace codes {

namespace {

constexpr const char* kIdentifiers[] = {
    "total",  "index",  "buffer", "result", "count",  "value", "items",
    "record", "cursor", "offset", "length", "weight", "score", "cache"};
constexpr const char* kVerbs[] = {"compute", "update", "fetch", "merge",
                                  "filter",  "reduce", "scan",  "parse"};

std::string RandomIdent(Rng& rng) {
  return kIdentifiers[rng.Index(std::size(kIdentifiers))];
}

/// A pseudo-Python snippet.
std::string PythonDoc(Rng& rng) {
  std::string a = RandomIdent(rng);
  std::string b = RandomIdent(rng);
  std::string fn = std::string(kVerbs[rng.Index(std::size(kVerbs))]) + "_" + a;
  std::string out = "def " + fn + "(" + a + ", " + b + "):\n";
  out += "    if " + a + " > " + std::to_string(rng.UniformInt(0, 99)) + ":\n";
  out += "        return " + a + " + " + b + "\n";
  out += "    return [" + b + " for " + b + " in range(" +
         std::to_string(rng.UniformInt(1, 20)) + ")]\n";
  return out;
}

/// A pseudo-C snippet.
std::string CDoc(Rng& rng) {
  std::string a = RandomIdent(rng);
  std::string b = RandomIdent(rng);
  std::string out = "int " + std::string(kVerbs[rng.Index(std::size(kVerbs))]) +
                    "(int " + a + ", int " + b + ") {\n";
  out += "  int " + a + "_out = " + a + " * " +
         std::to_string(rng.UniformInt(2, 9)) + ";\n";
  out += "  for (int i = 0; i < " + b + "; i++) { " + a + "_out += i; }\n";
  out += "  return " + a + "_out;\n}\n";
  return out;
}

/// A pseudo-Java snippet.
std::string JavaDoc(Rng& rng) {
  std::string a = RandomIdent(rng);
  std::string out = "public class " + ToUpper(a.substr(0, 1)) + a.substr(1) +
                    " {\n";
  out += "  private int " + a + ";\n";
  out += "  public int get" + ToUpper(a.substr(0, 1)) + a.substr(1) +
         "() { return " + a + "; }\n}\n";
  return out;
}

/// Instruction-following dialog sentence (Alpaca/UltraChat stand-in).
std::string DialogDoc(Rng& rng) {
  static constexpr const char* kPrompts[] = {
      "Explain why the sky appears blue during the day.",
      "Summarize the main idea of the passage in one sentence.",
      "Give three tips for writing readable code.",
      "Translate the following sentence into French.",
      "What are the advantages of regular exercise?",
      "Describe the water cycle in simple terms.",
      "How do vaccines help the immune system?",
      "List the steps to bake a loaf of bread.",
  };
  static constexpr const char* kAnswers[] = {
      "Sure. The key points are clarity, consistency, and brevity.",
      "Of course, here is a short explanation that covers the question.",
      "There are three main steps you should follow carefully.",
      "In summary, the process repeats in a continuous cycle.",
  };
  std::string out = "User: ";
  out += kPrompts[rng.Index(std::size(kPrompts))];
  out += "\nAssistant: ";
  out += kAnswers[rng.Index(std::size(kAnswers))];
  return out;
}

/// One SQL query over a random domain database.
class SqlSampler {
 public:
  explicit SqlSampler(uint64_t seed) : rng_(seed) {
    DbProfile profile = DbProfile::Spider();
    profile.min_rows = 20;
    profile.max_rows = 40;
    for (const auto& domain : AllDomains()) {
      Rng db_rng = rng_.Fork();
      dbs_.push_back(GenerateDatabase(domain, profile, db_rng));
    }
  }

  std::string NextSql() {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& db = dbs_[rng_.Index(dbs_.size())];
      auto inst = GlobalTemplates().InstantiateRandom(db, rng_);
      if (inst.has_value()) return inst->sql_text + ";";
    }
    return "SELECT 1;";
  }

  std::string NextNlSqlPair() {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& db = dbs_[rng_.Index(dbs_.size())];
      auto inst = GlobalTemplates().InstantiateRandom(db, rng_);
      if (inst.has_value()) {
        return "-- " + inst->question + "\n" + inst->sql_text + ";";
      }
    }
    return "-- count rows\nSELECT COUNT(*) FROM t;";
  }

 private:
  Rng rng_;
  std::vector<sql::Database> dbs_;
};

}  // namespace

CorpusSlices BuildPretrainCorpus(int scale, uint64_t seed) {
  CorpusSlices slices;
  Rng rng(seed);
  SqlSampler sql_sampler(rng.Next());

  // 11 : 4.5 : 6 ratio at 2150 docs per unit scale.
  int sql_docs = 1100 * scale;
  int nl_docs = 450 * scale;
  int code_docs = 600 * scale;

  slices.sql_related.reserve(sql_docs);
  for (int i = 0; i < sql_docs; ++i) {
    slices.sql_related.push_back(sql_sampler.NextSql());
  }
  slices.nl_related.reserve(nl_docs);
  for (int i = 0; i < nl_docs; ++i) {
    slices.nl_related.push_back(DialogDoc(rng));
  }
  slices.nl_to_code.reserve(code_docs);
  for (int i = 0; i < code_docs; ++i) {
    // Half NL-SQL pairs (the paper's NL-SQL-458K), half NL-to-Python-ish
    // (CoNaLa / CodeAlpaca stand-ins).
    if (i % 2 == 0) {
      slices.nl_to_code.push_back(sql_sampler.NextNlSqlPair());
    } else {
      slices.nl_to_code.push_back("# " + std::string("helper function") +
                                  "\n" + PythonDoc(rng));
    }
  }
  return slices;
}

std::vector<std::string> BuildBaseCodeCorpus(int num_documents,
                                             uint64_t seed) {
  std::vector<std::string> docs;
  docs.reserve(num_documents);
  Rng rng(seed);
  SqlSampler sql_sampler(rng.Next());
  for (int i = 0; i < num_documents; ++i) {
    // "80+ languages" mixture: SQL is ~8% of the base corpus, matching the
    // bias the paper describes for general code models.
    double roll = rng.UniformDouble();
    if (roll < 0.08) {
      docs.push_back(sql_sampler.NextSql());
    } else if (roll < 0.40) {
      docs.push_back(PythonDoc(rng));
    } else if (roll < 0.70) {
      docs.push_back(CDoc(rng));
    } else if (roll < 0.92) {
      docs.push_back(JavaDoc(rng));
    } else {
      docs.push_back(DialogDoc(rng));
    }
  }
  return docs;
}

std::vector<std::string> BuildSqlEvalSet(int num_queries, uint64_t seed) {
  std::vector<std::string> out;
  out.reserve(num_queries);
  SqlSampler sampler(seed);
  for (int i = 0; i < num_queries; ++i) out.push_back(sampler.NextSql());
  return out;
}

}  // namespace codes
