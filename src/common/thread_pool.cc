#include "common/thread_pool.h"

#include <algorithm>
#include <iostream>

#include "common/metrics.h"

namespace codes {

namespace {

/// Pool metrics, registered once. Static references: registration
/// survives MetricsRegistry::Reset(), so these stay valid forever.
struct PoolMetrics {
  Gauge& queue_depth =
      MetricsRegistry::Global().GetGauge("pool.queue_depth");
  Histogram& task_wait_us =
      MetricsRegistry::Global().GetHistogram("pool.task_wait_us");
  Counter& submitted =
      MetricsRegistry::Global().GetCounter("pool.tasks_submitted");
  Counter& completed =
      MetricsRegistry::Global().GetCounter("pool.tasks_completed");
  Counter& exceptions =
      MetricsRegistry::Global().GetCounter("pool.task_exceptions");
  Counter& rejected =
      MetricsRegistry::Global().GetCounter("pool.tasks_rejected");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();  // never freed
  return *metrics;
}

}  // namespace

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  if (first_exception_ != nullptr) {
    // Never harvested by a Wait(); a destructor cannot rethrow.
    try {
      std::rethrow_exception(first_exception_);
    } catch (const std::exception& e) {
      std::cerr << "ThreadPool: task exception dropped at destruction: "
                << e.what() << "\n";
    } catch (...) {
      std::cerr << "ThreadPool: task exception dropped at destruction\n";
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  bool timed = MetricsRegistry::Enabled();
  QueuedTask queued{std::move(task),
                    timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{}};
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(queued));
    ++in_flight_;
  }
  Metrics().submitted.Increment();
  Metrics().queue_depth.Add(1);
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, size_t max_queue) {
  bool timed = MetricsRegistry::Enabled();
  QueuedTask queued{std::move(task),
                    timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{}};
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= max_queue) {
      Metrics().rejected.Increment();
      return false;
    }
    queue_.push_back(std::move(queued));
    ++in_flight_;
  }
  Metrics().submitted.Increment();
  Metrics().queue_depth.Add(1);
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    pending = std::move(first_exception_);
    first_exception_ = nullptr;
  }
  if (pending != nullptr) std::rethrow_exception(pending);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ set and no work left: workers drain the queue before
        // exiting, so the destructor doubles as Wait().
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Metrics().queue_depth.Add(-1);
    if (task.enqueued != std::chrono::steady_clock::time_point{} &&
        MetricsRegistry::Enabled()) {
      Metrics().task_wait_us.Observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count());
    }
    try {
      task.fn();
    } catch (...) {
      // A throwing task must not kill the worker or wedge Wait(): capture
      // the first exception for the next Wait() to rethrow, count the
      // rest, and keep serving the queue.
      Metrics().exceptions.Increment();
      std::unique_lock<std::mutex> lock(mu_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    Metrics().completed.Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t shards = std::min(n, static_cast<size_t>(size()));
  if (shards <= 1) {
    body(0, n);  // inline: identical to a serial loop, no handoff
    return;
  }
  size_t chunk = n / shards;
  size_t remainder = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t end = begin + chunk + (s < remainder ? 1 : 0);
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

}  // namespace codes
