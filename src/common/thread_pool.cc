#include "common/thread_pool.h"

#include <algorithm>

namespace codes {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ set and no work left: workers drain the queue before
        // exiting, so the destructor doubles as Wait().
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t shards = std::min(n, static_cast<size_t>(size()));
  if (shards <= 1) {
    body(0, n);  // inline: identical to a serial loop, no handoff
    return;
  }
  size_t chunk = n / shards;
  size_t remainder = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t end = begin + chunk + (s < remainder ? 1 : 0);
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

}  // namespace codes
