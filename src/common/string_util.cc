#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

namespace codes {

namespace {

// Case folding must be ASCII-only and locale-independent: these strings
// are UTF-8, and std::tolower/std::toupper consult the global C locale,
// where a byte >= 0x80 (half of every multi-byte code point) may be
// remapped as if it were a Latin-1 letter — silently corrupting the
// sequence and breaking the byte-exact LCS matching the value retriever
// relies on. Bytes >= 0x80 always pass through untouched.
inline char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

inline char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiLower(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiUpper(c);
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      break;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

namespace {

/// from_chars-style strict wrapper over strto*: `s` must be non-empty and
/// consumed in full. strtol/strtod are used (not std::from_chars<double>,
/// which libstdc++ gained late) with an explicit end-pointer check.
template <typename T, typename Fn>
bool ParseFull(std::string_view s, T* out, Fn&& convert) {
  if (s.empty()) return false;
  // strto* skips leading whitespace; a flag value with spaces is garbage.
  if (std::isspace(static_cast<unsigned char>(s.front()))) return false;
  std::string buf(s);  // strto* needs a NUL terminator
  char* end = nullptr;
  errno = 0;
  T value = convert(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt(std::string_view s, int* out) {
  long value = 0;
  if (!ParseFull<long>(s, &value,
                       [](const char* p, char** e) { return std::strtol(p, e, 10); })) {
    return false;
  }
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  // strtoull accepts "-1" by wrapping; reject any sign explicitly.
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) return false;
  unsigned long long value = 0;
  return ParseFull<unsigned long long>(
             s, &value,
             [](const char* p, char** e) { return std::strtoull(p, e, 10); }) &&
         (*out = value, true);
}

bool ParseSize(std::string_view s, size_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(s, &value)) return false;
  if (value > std::numeric_limits<size_t>::max()) return false;
  *out = static_cast<size_t>(value);
  return true;
}

bool ParseFiniteDouble(std::string_view s, double* out) {
  double value = 0.0;
  if (!ParseFull<double>(s, &value, [](const char* p, char** e) {
        return std::strtod(p, e);
      })) {
    return false;
  }
  if (!std::isfinite(value)) return false;  // rejects "inf", "nan"
  *out = value;
  return true;
}

namespace {

/// Length (1-4) of the well-formed UTF-8 sequence starting at `s[i]`, or
/// 0 when the bytes there are ill-formed: a stray continuation byte, a
/// 0xC0/0xC1/0xF5+ lead byte, a truncated tail, an overlong encoding, a
/// UTF-16 surrogate, or a code point past U+10FFFF.
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  unsigned char b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  size_t len;
  uint32_t cp;
  if (b0 >= 0xC2 && b0 <= 0xDF) {
    len = 2;
    cp = b0 & 0x1Fu;
  } else if (b0 >= 0xE0 && b0 <= 0xEF) {
    len = 3;
    cp = b0 & 0x0Fu;
  } else if (b0 >= 0xF0 && b0 <= 0xF4) {
    len = 4;
    cp = b0 & 0x07u;
  } else {
    return 0;  // continuation byte or invalid lead (0xC0/0xC1 are overlong)
  }
  if (i + len > s.size()) return 0;  // truncated at end of input
  for (size_t k = 1; k < len; ++k) {
    unsigned char b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xC0) != 0x80) return 0;  // truncated mid-sequence
    cp = (cp << 6) | (b & 0x3Fu);
  }
  if (len == 3 && cp < 0x800) return 0;    // overlong 3-byte form
  if (len == 4 && cp < 0x10000) return 0;  // overlong 4-byte form
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // UTF-16 surrogate half
  if (cp > 0x10FFFF) return 0;
  return len;
}

}  // namespace

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    size_t len = Utf8SequenceLength(s, i);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

std::string RepairUtf8(std::string_view s) {
  if (IsValidUtf8(s)) return std::string(s);
  static constexpr char kReplacement[] = "\xEF\xBF\xBD";  // U+FFFD
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      out += kReplacement;
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  return out;
}

std::string IdentifierToPhrase(std::string_view identifier) {
  std::string out;
  for (size_t i = 0; i < identifier.size(); ++i) {
    char c = identifier[i];
    if (c == '_' || c == '-' || c == '.') {
      if (!out.empty() && out.back() != ' ') out += ' ';
      continue;
    }
    // ASCII-only camelCase boundary: multi-byte UTF-8 identifiers keep
    // their bytes intact and never split mid-code-point.
    if (c >= 'A' && c <= 'Z' && i > 0 && identifier[i - 1] >= 'a' &&
        identifier[i - 1] <= 'z') {
      out += ' ';
    }
    out += AsciiLower(c);
  }
  return Trim(out);
}

}  // namespace codes
