#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace codes {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      break;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string IdentifierToPhrase(std::string_view identifier) {
  std::string out;
  for (size_t i = 0; i < identifier.size(); ++i) {
    char c = identifier[i];
    if (c == '_' || c == '-' || c == '.') {
      if (!out.empty() && out.back() != ' ') out += ' ';
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && i > 0 &&
        std::islower(static_cast<unsigned char>(identifier[i - 1]))) {
      out += ' ';
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return Trim(out);
}

}  // namespace codes
