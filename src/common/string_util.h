#ifndef CODES_COMMON_STRING_UTIL_H_
#define CODES_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace codes {

/// Returns `s` with ASCII letters lowercased. Locale-independent: bytes
/// >= 0x80 pass through untouched, so UTF-8 text stays byte-exact (the
/// value retriever's LCS matching depends on this).
std::string ToLower(std::string_view s);

/// Returns `s` with ASCII letters uppercased (locale-independent; bytes
/// >= 0x80 untouched).
std::string ToUpper(std::string_view s);

/// Returns `s` without leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Splits `s` on the single character `sep`. Empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace. Empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Strict numeric parsing for flag/spec values: the whole string must be a
/// single number (no trailing junk, no empty input) that fits the output
/// type, otherwise the function returns false and leaves `*out` untouched.
/// Unlike std::atoi/atof these never silently map garbage to 0, which is
/// how a mistyped --queries flag once ran a 0-query campaign "green".
bool ParseInt(std::string_view s, int* out);
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseSize(std::string_view s, size_t* out);
/// Finite decimal doubles only ("0.25", "1e-3"); rejects inf/nan.
bool ParseFiniteDouble(std::string_view s, double* out);

/// True when `s` is well-formed UTF-8. Strict: truncated sequences,
/// stray continuation bytes, overlong encodings, UTF-16 surrogates, and
/// code points above U+10FFFF all fail. ASCII is trivially valid.
bool IsValidUtf8(std::string_view s);

/// Returns `s` with every ill-formed byte replaced by U+FFFD (the
/// replacement character), deterministically: one U+FFFD per bad byte, so
/// the same input always repairs to the same output and a truncated
/// 3-byte sequence yields exactly as many replacements as it has bytes.
/// Well-formed input comes back byte-identical. This is the ingest gate
/// in front of the ASCII-only case folds above: those pass bytes >= 0x80
/// through untouched, which is only safe once the sequence structure has
/// been validated here.
std::string RepairUtf8(std::string_view s);

/// Turns an identifier like "stu_id" or "StudentName" into a lowercase
/// word sequence: "stu id", "student name". Used to render schema names as
/// natural-language phrases.
std::string IdentifierToPhrase(std::string_view identifier);

}  // namespace codes

#endif  // CODES_COMMON_STRING_UTIL_H_
