#include "common/status.h"

namespace codes {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace codes
