#include "common/status.h"

namespace codes {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace codes
