#ifndef CODES_COMMON_TIMER_H_
#define CODES_COMMON_TIMER_H_

#include <chrono>

namespace codes {

/// Monotonic wall-clock stopwatch used by latency benchmarks and the VES
/// metric. Starts on construction; `Restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace codes

#endif  // CODES_COMMON_TIMER_H_
