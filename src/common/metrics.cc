#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace codes {

namespace internal {

uint32_t ThreadShard() {
  // A process-wide ticket handed out once per thread spreads threads
  // evenly over the shards (hashing std::thread::id clumps badly on
  // glibc, where ids are pthread_t addresses sharing alignment bits).
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Bucket index for a value in integer microseconds: the smallest k with
/// us < 2^k, i.e. bit_width(us), clamped to the overflow bucket.
int BucketIndex(uint64_t us) {
  int width = 0;
  while (us > 0) {
    us >>= 1;
    ++width;
  }
  return std::min(width, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Observe(double value_us) {
  uint64_t us = value_us <= 0.0 ? 0 : static_cast<uint64_t>(value_us);
  uint32_t shard = internal::ThreadShard();
  counts_[shard][BucketIndex(us)].value.fetch_add(1,
                                                  std::memory_order_relaxed);
  sum_us_[shard].value.fetch_add(us, std::memory_order_relaxed);
  uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& shard : counts_) {
    for (const auto& bucket : shard) {
      total += bucket.value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t Histogram::SumUs() const {
  uint64_t total = 0;
  for (const auto& shard : sum_us_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::MaxUs() const {
  return max_us_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets, 0);
  for (const auto& shard : counts_) {
    for (int k = 0; k < kNumBuckets; ++k) {
      out[static_cast<size_t>(k)] +=
          shard[k].value.load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::BucketUpperBoundUs(int k) {
  if (k >= kNumBuckets - 1) k = kNumBuckets - 1;
  if (k < 0) k = 0;
  return uint64_t{1} << k;
}

double Histogram::PercentileUs(double p) const {
  auto buckets = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the p-quantile observation, 1-based, ceiling — matches the
  // nearest-rank definition so p=1.0 lands in the last non-empty bucket.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    seen += buckets[static_cast<size_t>(k)];
    if (seen >= rank) return static_cast<double>(BucketUpperBoundUs(k));
  }
  return static_cast<double>(BucketUpperBoundUs(kNumBuckets - 1));
}

void Histogram::Reset() {
  for (auto& shard : counts_) {
    for (auto& bucket : shard) {
      bucket.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& shard : sum_us_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
  max_us_.store(0, std::memory_order_relaxed);
}

std::atomic<bool> MetricsRegistry::enabled_{true};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

namespace {

/// Shared-lock lookup, exclusive insert on miss. The returned reference
/// is stable: values are heap-allocated and never erased.
template <typename Map>
typename Map::mapped_type::element_type& GetOrCreate(std::shared_mutex& mu,
                                                     Map& map,
                                                     std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu);
  auto [it, inserted] = map.try_emplace(
      std::string(name),
      std::make_unique<typename Map::mapped_type::element_type>());
  return *it->second;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// %g with enough digits for microsecond figures; avoids locale commas.
std::string JsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    auto buckets = hist->BucketCounts();
    for (int k = 0; k < Histogram::kNumBuckets; ++k) {
      uint64_t c = buckets[static_cast<size_t>(k)];
      if (c == 0) continue;
      data.count += c;
      data.buckets.emplace_back(Histogram::BucketUpperBoundUs(k), c);
    }
    data.sum_us = hist->SumUs();
    data.max_us = hist->MaxUs();
    data.p50_us = hist->PercentileUs(0.50);
    data.p95_us = hist->PercentileUs(0.95);
    data.p99_us = hist->PercentileUs(0.99);
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum_us\": " + std::to_string(h.sum_us);
    out += ", \"max_us\": " + std::to_string(h.max_us);
    out += ", \"p50_us\": " + JsonNumber(h.p50_us);
    out += ", \"p95_us\": " + JsonNumber(h.p95_us);
    out += ", \"p99_us\": " + JsonNumber(h.p99_us);
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[" + std::to_string(h.buckets[i].first) + ", " +
             std::to_string(h.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  return Snapshot().ToJson() + "\n";
}

void MetricsRegistry::Reset() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace codes
