#ifndef CODES_COMMON_CRC32_H_
#define CODES_COMMON_CRC32_H_

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
// Used by the storage layer to detect torn page writes and bit rot: the
// checksum of every page and WAL record is verified on read, so corrupt
// bytes surface as a typed kDataLoss status instead of garbage rows. A
// plain table-driven implementation is plenty — checksumming an 8 KiB
// page costs ~2 us, far below the I/O it guards.

#include <cstddef>
#include <cstdint>

namespace codes {

namespace internal {

/// The 256-entry CRC table, built once at first use (constant thereafter;
/// safe under concurrent initialization per C++11 static semantics).
inline const uint32_t* Crc32Table() {
  static const auto table = [] {
    struct T {
      uint32_t e[256];
    } t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.e[i] = c;
    }
    return t;
  }();
  return table.e;
}

}  // namespace internal

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental computation:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b), na + nb).
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const uint32_t* table = internal::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace codes

#endif  // CODES_COMMON_CRC32_H_
