#include "common/trace.h"

namespace codes {

namespace {

using Clock = std::chrono::steady_clock;

thread_local TraceRecorder* tls_recorder = nullptr;
thread_local int tls_depth = 0;

uint64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

TraceRecorder::TraceRecorder()
    : prev_(tls_recorder), origin_(Clock::now()) {
  tls_recorder = this;
}

TraceRecorder::~TraceRecorder() { tls_recorder = prev_; }

std::string TraceRecorder::ToString() const {
  std::string out;
  for (const auto& event : events_) {
    out.append(static_cast<size_t>(event.depth) * 2, ' ');
    out += event.name;
    out += "  ";
    out += std::to_string(event.duration_us);
    out += " us\n";
  }
  return out;
}

std::string TraceRecorder::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& event = events_[i];
    out += "{\"name\": \"";
    out += event.name;  // span names are identifier-like literals
    out += "\", \"depth\": " + std::to_string(event.depth);
    out += ", \"start_us\": " + std::to_string(event.start_us);
    out += ", \"duration_us\": " + std::to_string(event.duration_us) + "}";
  }
  out += "]";
  return out;
}

TraceSpan::TraceSpan(const char* name, Histogram* histogram)
    : name_(name), histogram_(histogram), recorder_(tls_recorder) {
  armed_ = recorder_ != nullptr || MetricsRegistry::Enabled();
  if (!armed_) return;
  start_ = Clock::now();
  if (recorder_ != nullptr) {
    // Reserve the event slot now so the tree is stored pre-order; the
    // duration lands in the destructor.
    event_index_ = static_cast<int>(recorder_->events_.size());
    recorder_->events_.push_back(TraceEvent{
        name_, tls_depth, MicrosBetween(recorder_->origin_, start_), 0});
  }
  ++tls_depth;
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  --tls_depth;
  uint64_t duration_us = MicrosBetween(start_, Clock::now());
  if (recorder_ != nullptr && event_index_ >= 0) {
    recorder_->events_[static_cast<size_t>(event_index_)].duration_us =
        duration_us;
  }
  if (histogram_ != nullptr && MetricsRegistry::Enabled()) {
    histogram_->Observe(static_cast<double>(duration_us));
  }
}

}  // namespace codes
