#ifndef CODES_COMMON_TRACE_H_
#define CODES_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace codes {

/// Lightweight request tracing: RAII TraceSpans nest into a per-request
/// tree on the current thread, timed with the steady clock.
///
/// Two consumers, independently optional:
///  * A Histogram (usually cached via CODES_TRACE_SPAN) receives every
///    span duration — this is how per-stage latency breakdowns accumulate
///    in the MetricsRegistry with no recorder installed.
///  * A TraceRecorder, when one is active on the thread, additionally
///    receives the (name, depth, start, duration) event so the full tree
///    of one request can be rendered or exported.
///
/// Cost model: an armed span is two steady-clock reads plus one relaxed
/// histogram update; with MetricsRegistry::SetEnabled(false) and no
/// recorder, constructor and destructor are a couple of branches
/// (bench_latency enforces the <= 2% end-to-end budget). Spans are
/// strictly thread-local: a request's tree lives on the thread serving
/// it, which is exactly the share-nothing model of the parallel
/// evaluator.

/// One finished span, in pre-order (a parent precedes its children).
struct TraceEvent {
  const char* name;  ///< the span site's string literal; never owned
  int depth = 0;     ///< 0 for a root span
  uint64_t start_us = 0;  ///< offset from TraceRecorder construction
  uint64_t duration_us = 0;
};

/// Collects the span tree(s) opened on the current thread while alive.
/// Recorders nest (the innermost wins); the destructor restores the
/// outer one. Install around a single request to capture its tree.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Finished events, pre-order. Spans still open have duration 0.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Indented tree rendering, one "name  <dur> us" line per span.
  std::string ToString() const;
  /// JSON array of {"name","depth","start_us","duration_us"} objects.
  std::string ToJson() const;

 private:
  friend class TraceSpan;

  TraceRecorder* prev_;
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceEvent> events_;
};

/// RAII span: opens on construction, closes (and records) on
/// destruction. `histogram`, when given, receives the duration in us —
/// use CODES_TRACE_SPAN to resolve it once per call site.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* histogram = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  TraceRecorder* recorder_;  ///< recorder this span reports to (may be null)
  int event_index_ = -1;     ///< slot in recorder_->events_
  bool armed_ = false;       ///< false => destructor is a no-op
};

/// Declares a span named `name` (a string literal) whose duration feeds
/// the global histogram "span.<name>"; the histogram reference resolves
/// once per call site.
#define CODES_TRACE_SPAN(var, name)                                   \
  static ::codes::Histogram& var##_histogram =                        \
      ::codes::MetricsRegistry::Global().GetHistogram("span." name);  \
  ::codes::TraceSpan var((name), &var##_histogram)

}  // namespace codes

#endif  // CODES_COMMON_TRACE_H_
