#ifndef CODES_COMMON_METRICS_H_
#define CODES_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace codes {

/// Process-wide observability metrics: named counters, gauges, and
/// fixed-bucket latency histograms, collected in a global MetricsRegistry
/// and exported as a deterministic JSON snapshot.
///
/// Design constraints (these are serving-path objects):
///  * Hot-path updates never take a lock. Counters and histogram buckets
///    are sharded across cache lines and bumped with relaxed atomics, so
///    the 8-thread eval path does not serialize on a shared counter word.
///  * Registration (name -> object) happens once per site; instrument
///    sites cache the returned reference in a function-local static, so
///    the string lookup is off the steady-state path entirely.
///  * Objects live for the process lifetime and are never evicted;
///    Reset() zeroes values but keeps registrations, which is what lets
///    cached references survive between benchmark sections and tests.
///  * Reads (Value/Snapshot) are racy-but-atomic: they sum the shards
///    without stopping writers. Quiesce writers first when an exact
///    figure matters (every test and exporter in this repo does).

/// Number of cache-line-padded shards per counter/histogram. A power of
/// two so the shard pick compiles to a mask.
inline constexpr uint32_t kMetricShards = 16;

namespace internal {
/// One cache line per shard: concurrent increments from different threads
/// touch different lines instead of bouncing one.
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> value{0};
};
/// Stable per-thread shard index in [0, kMetricShards).
uint32_t ThreadShard();
}  // namespace internal

/// A monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Sum over shards (racy-but-atomic snapshot).
  uint64_t Value() const;
  void Reset();

 private:
  internal::PaddedAtomic shards_[kMetricShards];
};

/// A last-write-wins signed value with relative adjustment (queue depths,
/// pool sizes). Unsharded: gauges are updated rarely compared to counters
/// and a reader needs one coherent value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over microseconds. Bucket k counts
/// observations with value < 2^k us (k in [0, kNumBuckets)); the last
/// bucket is the overflow. Exponential bounds keep the bucket pick at one
/// bit-scan and cover 1 us .. ~134 s, which spans every stage this
/// library times. Percentiles are bucket upper bounds — coarse by design
/// (a 2x-resolution latency figure), but order-independent and exactly
/// reproducible across thread counts, which the observability tests pin.
class Histogram {
 public:
  /// 2^27 us ~ 134 s before overflow.
  static constexpr int kNumBuckets = 28;

  /// Records one observation (values < 1 us clamp to the first bucket,
  /// negatives to 0).
  void Observe(double value_us);

  uint64_t TotalCount() const;
  /// Sum of observed values in integer microseconds.
  uint64_t SumUs() const;
  /// Upper bound (us) of the bucket containing the p-quantile
  /// (p in [0, 1]); 0 when empty.
  double PercentileUs(double p) const;
  /// Largest value observed, in us (0 when empty). Exact, not bucketed.
  uint64_t MaxUs() const;
  /// Per-bucket counts, summed over shards; size kNumBuckets.
  std::vector<uint64_t> BucketCounts() const;
  /// Upper bound of bucket `k` in us (the overflow bucket reports the
  /// largest finite bound).
  static uint64_t BucketUpperBoundUs(int k);

  void Reset();

 private:
  /// [shard][bucket] counts; shard-major so one thread's increments stay
  /// on its own lines.
  internal::PaddedAtomic counts_[kMetricShards][kNumBuckets];
  internal::PaddedAtomic sum_us_[kMetricShards];
  std::atomic<uint64_t> max_us_{0};
};

/// A point-in-time copy of every registered metric, in registration-name
/// order (std::map), so two snapshots of identical state render
/// identically.
struct MetricsSnapshot {
  struct HistogramData {
    uint64_t count = 0;
    uint64_t sum_us = 0;
    uint64_t max_us = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    /// (upper_bound_us, count) for non-empty buckets only.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Deterministic JSON rendering (the --metrics-out format; schema in
  /// DESIGN.md).
  std::string ToJson() const;
};

/// The process-wide metric registry. Get* registers on first use and
/// returns the same object forever after; references are stable across
/// Reset().
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Snapshot().ToJson() plus trailing newline.
  std::string SnapshotJson() const;

  /// Zeroes every value; registrations (and outstanding references)
  /// survive. Not safe concurrently with writers — quiesce first.
  void Reset();

  /// Global instrumentation switch (default on). When off, TraceSpans
  /// skip their clock reads and histogram writes; counter sites keep
  /// working (an increment is ~1 ns and gating it would cost as much).
  /// bench_latency measures the on-vs-off delta as the instrumentation
  /// overhead and enforces the <= 2% budget.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> enabled_;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace codes

#endif  // CODES_COMMON_METRICS_H_
