#ifndef CODES_COMMON_SERIAL_H_
#define CODES_COMMON_SERIAL_H_

// Minimal binary (de)serialization substrate for persisted serving
// artifacts (fleet tenant snapshots: BM25 value indexes, classifier
// weights, demonstration pools).
//
// Format philosophy: fixed-width little-endian-as-stored integers and
// bit-cast doubles appended to a std::string. Snapshots are a cache, not
// an interchange format — they are written and read by the same build on
// the same machine, and a reader that finds anything unexpected returns
// kDataLoss so the caller falls back to rebuilding the artifact from its
// source of truth (the database). That contract is what keeps the readers
// simple: every Read* is bounds-checked, nothing is ever trusted.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace codes {
namespace serial {

inline void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bit-cast: the reader restores the exact bit pattern, so round-tripped
/// doubles compare bitwise-equal (the fleet equivalence tests rely on it).
inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader over a serialized buffer. Every
/// accessor returns false once the buffer is exhausted or malformed;
/// callers surface that as kDataLoss and rebuild from source.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t size;
    if (!ReadU64(&size)) return false;
    if (size > data_.size() - pos_) return false;
    s->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool ReadStringView(std::string_view* s) {
    uint64_t size;
    if (!ReadU64(&size)) return false;
    if (size > data_.size() - pos_) return false;
    *s = data_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (n > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Shared helper for snapshot headers: a 4-byte magic plus a version word.
inline void PutMagic(std::string* out, uint32_t magic, uint32_t version) {
  PutU32(out, magic);
  PutU32(out, version);
}

inline bool ReadMagic(Reader* reader, uint32_t magic, uint32_t version) {
  uint32_t m = 0, v = 0;
  return reader->ReadU32(&m) && reader->ReadU32(&v) && m == magic &&
         v == version;
}

}  // namespace serial
}  // namespace codes

#endif  // CODES_COMMON_SERIAL_H_
