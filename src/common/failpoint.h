#ifndef CODES_COMMON_FAILPOINT_H_
#define CODES_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace codes {

/// Named fault-injection sites. Each corresponds to one operation of the
/// serving path that production hardening must assume can fail:
///
///   classifier.score             schema item classifier scoring
///   value_retriever.build_index  per-database value index construction
///   bm25.lookup                  coarse BM25 candidate lookup
///   executor.step                SQL executor row production
///   lm.decode                    LM decoding of one beam candidate
///   storage.page_read            disk page read into the buffer pool
///   storage.evict                dirty-page write-back during eviction
///   storage.split                B+ tree node split
///   storage.sync                 data-file durability barrier (fdatasync)
///   storage.wal.sync             WAL group-flush durability barrier
///   storage.torn_write           page write persists only a prefix (the
///                                write itself reports success; the tear
///                                surfaces later as a checksum kDataLoss)
///
/// Sites are compiled in unconditionally; when no failpoint is configured
/// the per-site check is one relaxed atomic load.
enum class FailpointSite : int {
  kClassifierScore = 0,
  kValueRetrieverBuildIndex,
  kBm25Lookup,
  kExecutorStep,
  kLmDecode,
  kStoragePageRead,
  kStorageEvict,
  kStorageSplit,
  kStorageSync,
  kStorageWalSync,
  kStorageTornWrite,
  kNumSites,  // sentinel
};

inline constexpr int kNumFailpointSites =
    static_cast<int>(FailpointSite::kNumSites);

/// Dotted site name ("classifier.score"). Inverse of FailpointSiteByName.
const char* FailpointSiteName(FailpointSite site);

/// Parses a dotted site name; returns kNumSites when unknown.
FailpointSite FailpointSiteByName(std::string_view name);

/// How an armed site decides to fire. All triggers are evaluated inside
/// the current deterministic scope (see FailpointScope): the decision is a
/// pure function of (campaign seed, site, scope slot, per-scope evaluation
/// counter), never of wall clock, thread identity, or global evaluation
/// order — which is what makes chaos campaigns byte-identical at any
/// thread count (the same slot-based determinism contract the parallel
/// evaluator and fuzzer follow).
struct FailpointSpec {
  enum class Trigger {
    kOff,          ///< never fires
    kProbability,  ///< fires pseudo-randomly with `probability`
    kEveryNth,     ///< fires on every `nth` evaluation within a scope
    kOneShot,      ///< fires on the first evaluation within each scope
  };
  Trigger trigger = Trigger::kOff;
  double probability = 0.0;
  uint64_t nth = 0;
};

/// Process-wide failpoint registry.
///
/// Configuration model: configure-then-run. Configure/Clear must not race
/// with ShouldFail from other threads (same setup/inference phase contract
/// as CodesPipeline); ShouldFail itself is safe to call from any number of
/// threads concurrently.
class Failpoints {
 public:
  /// True when at least one site is armed (one relaxed atomic load).
  static bool Enabled();

  /// Parses and installs a campaign spec. Grammar (';'-separated):
  ///   <site>=prob:<p>     fire with probability p in [0,1]
  ///   <site>=nth:<n>      fire on every n-th in-scope evaluation
  ///   <site>=oneshot      fire on the first in-scope evaluation
  ///   *=<trigger>         arm every registered site
  /// Example: "classifier.score=prob:0.01;executor.step=nth:3".
  /// `seed` drives every probabilistic decision; rerunning with the same
  /// spec and seed reproduces the exact fault pattern.
  static Status Configure(const std::string& spec, uint64_t seed);

  /// Arms one site programmatically.
  static void Arm(FailpointSite site, const FailpointSpec& spec,
                  uint64_t seed);

  /// Disarms everything and zeroes statistics.
  static void Clear();

  /// Evaluates the site's trigger in the current scope. False whenever the
  /// registry is disabled or the site is off.
  static bool ShouldFail(FailpointSite site);

  /// The canonical error a fired site reports.
  static Status FailStatus(FailpointSite site);

  /// Number of times `site` fired since the last Clear()/Configure().
  static uint64_t FiredCount(FailpointSite site);

  /// Reads CODES_FAILPOINTS (spec string) and CODES_FAILPOINT_SEED
  /// (decimal, default 0) from the environment; no-op when unset. Returns
  /// the parse status so tools can surface typos.
  static Status ConfigureFromEnv();
};

/// Establishes the deterministic decision scope for one unit of work (one
/// serving request, one chaos query) on the current thread. The slot seed
/// should identify the work unit independently of scheduling — e.g. the
/// per-sample generation seed — so that re-running a campaign at a
/// different thread count replays identical faults. Scopes nest; the
/// destructor restores the outer scope. Per-site evaluation counters reset
/// on scope entry.
class FailpointScope {
 public:
  explicit FailpointScope(uint64_t slot_seed);
  ~FailpointScope();

  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

 private:
  void* prev_;  ///< opaque ScopeState*
};

}  // namespace codes

#endif  // CODES_COMMON_FAILPOINT_H_
