#ifndef CODES_COMMON_FLAT_HASH_H_
#define CODES_COMMON_FLAT_HASH_H_

// Open-addressing hash primitives for the hot-path speed campaign.
//
// The serving hot paths (BM25 scoring, n-gram LM probing) were originally
// built on nested std::unordered_map<std::string, ...>: every probe paid a
// heap-allocated key build, a string hash, and a cache-hostile bucket chain
// walk. The two classes here are the shared replacement substrate:
//
//  * FlatHash64<V>  — uint64 keys (callers pack IDs into the key) to a
//    trivially copyable value, linear probing over a power-of-two table.
//  * StringInterner — string -> dense uint32 id with all key bytes stored
//    in one contiguous arena, so lookups compare against cache-resident
//    memory and ids index plain vectors afterwards.
//
// Both are deliberately minimal: no erase, value types are trivially
// copyable, and iteration order is never part of any observable contract
// (the equivalence tests in tests/speed_equivalence_test.cc pin that the
// rewritten components built on these produce byte-identical results to
// the pinned map-based references).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace codes {

/// SplitMix64 finalizer: a full-avalanche 64->64 mixer.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over the bytes, finished with HashMix64 so short keys still
/// spread across the whole table.
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return HashMix64(h);
}

/// Open-addressing (linear probe) hash map from uint64 keys to a small
/// trivially copyable value. The all-ones key is reserved as the empty
/// slot marker; callers pack dense IDs into keys, so it is unreachable.
template <typename V>
class FlatHash64 {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  FlatHash64() = default;

  size_t size() const { return size_; }

  /// Pointer to the value for `key`, or nullptr when absent.
  const V* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    size_t idx = HashMix64(key) & mask_;
    while (true) {
      const Slot& slot = slots_[idx];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      idx = (idx + 1) & mask_;
    }
  }
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatHash64*>(this)->Find(key));
  }

  /// Returns the value slot for `key`, inserting `init` first when absent.
  /// `inserted`, when non-null, reports whether an insert happened.
  V& FindOrInsert(uint64_t key, V init, bool* inserted = nullptr) {
    CODES_CHECK(key != kEmptyKey);
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) Grow();
    size_t idx = HashMix64(key) & mask_;
    while (true) {
      Slot& slot = slots_[idx];
      if (slot.key == key) {
        if (inserted != nullptr) *inserted = false;
        return slot.value;
      }
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.value = init;
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return slot.value;
      }
      idx = (idx + 1) & mask_;
    }
  }

  /// Pre-sizes the table for `n` keys (amortizes Grow during bulk loads).
  void Reserve(size_t n) {
    size_t needed = 16;
    while (n * 10 > needed * 7) needed <<= 1;
    if (needed > slots_.size()) Rehash(needed);
  }

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    V value{};
  };

  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      size_t idx = HashMix64(slot.key) & mask_;
      while (slots_[idx].key != kEmptyKey) idx = (idx + 1) & mask_;
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Interns strings into dense uint32 ids. Key bytes live in a single
/// growable arena (no per-key heap node), and the id space is dense from
/// 0, so callers attach per-key payloads as plain vectors indexed by id.
class StringInterner {
 public:
  /// Returned by Find for absent keys; never a valid id.
  static constexpr uint32_t kNpos = ~0U;

  /// Id of `s`, interning it first when new.
  uint32_t Intern(std::string_view s) {
    if (slots_.empty() || (spans_.size() + 1) * 10 > slots_.size() * 7) Grow();
    uint64_t hash = HashBytes(s);
    size_t idx = hash & mask_;
    while (true) {
      uint32_t id = slots_[idx];
      if (id == kNpos) break;
      if (hashes_[id] == hash && View(id) == s) return id;
      idx = (idx + 1) & mask_;
    }
    uint32_t id = static_cast<uint32_t>(spans_.size());
    spans_.push_back(Span{arena_.size(), static_cast<uint32_t>(s.size())});
    hashes_.push_back(hash);
    arena_.append(s.data(), s.size());
    slots_[idx] = id;
    return id;
  }

  /// Id of `s`, or kNpos when it was never interned. Never mutates, so the
  /// const scoring paths can probe with query tokens safely.
  uint32_t Find(std::string_view s) const {
    if (slots_.empty()) return kNpos;
    uint64_t hash = HashBytes(s);
    size_t idx = hash & mask_;
    while (true) {
      uint32_t id = slots_[idx];
      if (id == kNpos) return kNpos;
      if (hashes_[id] == hash && View(id) == s) return id;
      idx = (idx + 1) & mask_;
    }
  }

  /// The interned bytes of `id` (valid while the interner lives).
  std::string_view View(uint32_t id) const {
    const Span& span = spans_[id];
    return std::string_view(arena_.data() + span.offset, span.length);
  }

  /// Number of distinct interned strings (== the smallest unused id).
  size_t size() const { return spans_.size(); }

  /// Resident cost in bytes (arena plus tables) — the figure the fleet
  /// manager charges against its memory budget.
  size_t ApproxBytes() const {
    return arena_.size() + spans_.size() * sizeof(Span) +
           hashes_.size() * sizeof(uint64_t) +
           slots_.size() * sizeof(uint32_t);
  }

  /// Serializes the interner (arena + spans; hashes and the probe table
  /// are derived on load). Ids are preserved exactly — callers index
  /// parallel vectors by id, so the mapping must survive a round trip.
  void SaveTo(std::string* out) const {
    serial::PutString(out, arena_);
    serial::PutU64(out, spans_.size());
    for (const Span& span : spans_) {
      serial::PutU64(out, span.offset);
      serial::PutU32(out, span.length);
    }
  }

  /// Restores from SaveTo bytes. On any malformation the interner is left
  /// empty and false is returned.
  bool LoadFrom(serial::Reader* reader) {
    *this = StringInterner();
    if (!reader->ReadString(&arena_)) return false;
    uint64_t n = 0;
    if (!reader->ReadU64(&n)) return false;
    spans_.reserve(n);
    hashes_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t offset = 0;
      uint32_t length = 0;
      if (!reader->ReadU64(&offset) || !reader->ReadU32(&length) ||
          offset > arena_.size() || length > arena_.size() - offset) {
        *this = StringInterner();
        return false;
      }
      spans_.push_back(Span{static_cast<size_t>(offset), length});
      hashes_.push_back(HashBytes(
          std::string_view(arena_.data() + offset, length)));
    }
    // Rebuild the probe table at the same growth thresholds Intern uses.
    if (!spans_.empty()) {
      size_t capacity = 16;
      while (spans_.size() * 10 > capacity * 7) capacity <<= 1;
      slots_.assign(capacity, kNpos);
      mask_ = capacity - 1;
      for (uint32_t id = 0; id < spans_.size(); ++id) {
        size_t idx = hashes_[id] & mask_;
        while (slots_[idx] != kNpos) idx = (idx + 1) & mask_;
        slots_[idx] = id;
      }
    }
    return true;
  }

 private:
  struct Span {
    size_t offset;
    uint32_t length;
  };

  void Grow() {
    size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(capacity, kNpos);
    mask_ = capacity - 1;
    for (uint32_t id = 0; id < spans_.size(); ++id) {
      size_t idx = hashes_[id] & mask_;
      while (slots_[idx] != kNpos) idx = (idx + 1) & mask_;
      slots_[idx] = id;
    }
  }

  std::string arena_;
  std::vector<Span> spans_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

}  // namespace codes

#endif  // CODES_COMMON_FLAT_HASH_H_
