#ifndef CODES_COMMON_RNG_H_
#define CODES_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace codes {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component in the library takes an explicit `Rng` so
/// that datasets, training runs, and benchmarks are reproducible from a
/// seed. The generator is intentionally simple and fast; statistical
/// quality is more than sufficient for data synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Uniformly chosen index into a container of `size` elements (size > 0).
  size_t Index(size_t size);

  /// Uniformly chosen element reference.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    CODES_CHECK(!v.empty());
    return v[Index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index according to non-negative `weights` (not all zero).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; streams do not interfere.
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace codes

#endif  // CODES_COMMON_RNG_H_
