#include "common/exec_guard.h"

#include <string>

#include "common/metrics.h"

namespace codes {

namespace {

/// Guard consumption and trip counters; registered once, stable across
/// MetricsRegistry::Reset().
struct GuardMetrics {
  Counter& rows_charged =
      MetricsRegistry::Global().GetCounter("guard.rows_charged");
  Counter& bytes_charged =
      MetricsRegistry::Global().GetCounter("guard.bytes_charged");
  Counter& timeout_trips =
      MetricsRegistry::Global().GetCounter("guard.trips.timeout");
  Counter& cancelled_trips =
      MetricsRegistry::Global().GetCounter("guard.trips.cancelled");
  Counter& budget_trips =
      MetricsRegistry::Global().GetCounter("guard.trips.resource_exhausted");
};

GuardMetrics& Metrics() {
  static GuardMetrics* metrics = new GuardMetrics();  // never freed
  return *metrics;
}

}  // namespace

ExecGuard::ExecGuard(const ExecLimits& limits, const CancelToken* cancel)
    : limits_(limits), cancel_(cancel) {
  active_ = cancel_ != nullptr || limits_.deadline_seconds > 0.0 ||
            limits_.max_rows > 0 || limits_.max_bytes > 0 ||
            limits_.max_depth > 0;
  if (limits_.deadline_seconds > 0.0) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       limits_.deadline_seconds));
  }
}

ExecGuard::~ExecGuard() { FlushUsage(); }

void ExecGuard::FlushUsage() {
  if (rows_ == 0 && bytes_ == 0) return;
  Metrics().rows_charged.Increment(rows_);
  Metrics().bytes_charged.Increment(bytes_);
}

Status ExecGuard::DeadlineStatus() const {
  Metrics().timeout_trips.Increment();
  return Status::Timeout("deadline of " +
                         std::to_string(limits_.deadline_seconds) +
                         "s exceeded");
}

Status ExecGuard::Check() {
  if (!active_) return Status::Ok();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Metrics().cancelled_trips.Increment();
    return Status::Cancelled("operation cancelled");
  }
  if (limits_.deadline_seconds > 0.0 && Clock::now() > deadline_) {
    return DeadlineStatus();
  }
  return Status::Ok();
}

Status ExecGuard::BudgetStatus() const {
  Metrics().budget_trips.Increment();
  if (limits_.max_rows > 0 && rows_ > limits_.max_rows) {
    return Status::ResourceExhausted(
        "row budget of " + std::to_string(limits_.max_rows) +
        " rows exceeded");
  }
  return Status::ResourceExhausted(
      "byte budget of " + std::to_string(limits_.max_bytes) +
      " bytes exceeded");
}

Status ExecGuard::EnterNested() {
  // On failure the scope is NOT entered (depth unchanged) so callers can
  // uniformly skip LeaveNested on a failed enter without leaking depth
  // into later candidate executions that reuse this guard.
  CODES_RETURN_IF_ERROR(Check());
  if (limits_.max_depth > 0 && depth_ + 1 > limits_.max_depth) {
    return Status::ResourceExhausted(
        "nesting depth budget of " + std::to_string(limits_.max_depth) +
        " exceeded");
  }
  ++depth_;
  return Status::Ok();
}

void ExecGuard::LeaveNested() {
  if (depth_ > 0) --depth_;
}

void ExecGuard::ResetUsage(bool rearm_deadline) {
  FlushUsage();
  rows_ = 0;
  bytes_ = 0;
  ticks_ = 0;
  if (rearm_deadline && limits_.deadline_seconds > 0.0) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       limits_.deadline_seconds));
  }
}

}  // namespace codes
