#ifndef CODES_COMMON_STATUS_H_
#define CODES_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace codes {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes the library can produce; `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,      ///< SQL text could not be parsed.
  kBindError,       ///< SQL parsed but references unknown schema objects.
  kExecutionError,  ///< SQL bound but failed while executing.
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
/// The library does not throw exceptions across module boundaries; fallible
/// functions return `Status` or `Result<T>` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Code: message" for logs and error reports.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, modeled after absl::StatusOr<T>.
/// Accessing `value()` on an error result aborts the process; callers must
/// check `ok()` first (or use `value_or`).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return my_value;` / `return Status::ParseError(...)`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result accessed without value: " << status().ToString()
                << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

/// CHECK-style invariant macro: aborts with a message when `cond` is false.
/// Used for programmer errors, never for data-dependent failures.
#define CODES_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"       \
                << __LINE__ << "\n";                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace codes

#endif  // CODES_COMMON_STATUS_H_
