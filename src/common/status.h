#ifndef CODES_COMMON_STATUS_H_
#define CODES_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace codes {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes the library can produce; `kOk` means success.
///
/// The first block is the data-dependent taxonomy (bad input, bad SQL).
/// The second block — kTimeout / kCancelled / kResourceExhausted — is the
/// *guard* taxonomy introduced with ExecGuard (common/exec_guard.h): these
/// mean the operation itself may have been fine but a serving-side budget
/// ended it early. Degradation logic treats the two blocks differently:
/// a kParseError prediction is wrong, a kTimeout prediction is merely
/// unverified.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,      ///< SQL text could not be parsed.
  kBindError,       ///< SQL parsed but references unknown schema objects.
  kExecutionError,  ///< SQL bound but failed while executing.
  kInternal,
  kTimeout,            ///< a wall-clock deadline expired mid-operation.
  kCancelled,          ///< a CancelToken was triggered (possibly remotely).
  kResourceExhausted,  ///< a row/byte/depth budget was exceeded.
  kDataLoss,           ///< persisted bytes failed verification (torn write,
                       ///< bit rot, checksum mismatch). Unlike kInternal,
                       ///< retrying cannot help: the medium lied.
};

/// Returns a short human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
/// The library does not throw exceptions across module boundaries; fallible
/// functions return `Status` or `Result<T>` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Code: message" for logs and error reports.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, modeled after absl::StatusOr<T>.
/// Accessing `value()` on an error result aborts the process; callers must
/// check `ok()` first (or use `value_or`).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return my_value;` / `return Status::ParseError(...)`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result accessed without value: " << status().ToString()
                << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status out of the enclosing function (which must
/// return Status or Result<T>). Replaces hand-rolled
/// `Status s = Op(); if (!s.ok()) return s;` chains.
#define CODES_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::codes::Status codes_status_tmp_ = (expr);    \
    if (!codes_status_tmp_.ok()) {                 \
      return codes_status_tmp_;                    \
    }                                              \
  } while (0)

#define CODES_MACRO_CONCAT_INNER_(x, y) x##y
#define CODES_MACRO_CONCAT_(x, y) CODES_MACRO_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status out of the
/// enclosing function, otherwise move-assigns the value into `lhs`. `lhs`
/// may declare a new variable (`CODES_ASSIGN_OR_RETURN(auto v, Op())`) or
/// name an existing lvalue. At most one use per source line.
#define CODES_ASSIGN_OR_RETURN(lhs, rexpr) \
  CODES_ASSIGN_OR_RETURN_IMPL_(            \
      CODES_MACRO_CONCAT_(codes_result_tmp_, __LINE__), lhs, rexpr)

#define CODES_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) {                                    \
    return result.status();                              \
  }                                                      \
  lhs = std::move(result).value()

/// CHECK-style invariant macro: aborts with a message when `cond` is false.
/// Used for programmer errors, never for data-dependent failures.
#define CODES_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"       \
                << __LINE__ << "\n";                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace codes

#endif  // CODES_COMMON_STATUS_H_
