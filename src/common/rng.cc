#include "common/rng.h"

#include <cmath>

namespace codes {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CODES_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  // Box-Muller; avoids log(0) by nudging u1 away from zero.
  double u1 = UniformDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Index(size_t size) {
  CODES_CHECK(size > 0);
  return static_cast<size_t>(Next() % size);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CODES_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  CODES_CHECK(total > 0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace codes
