#ifndef CODES_COMMON_EXEC_GUARD_H_
#define CODES_COMMON_EXEC_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace codes {

/// Cooperative cancellation flag. One thread (typically a supervisor or a
/// client disconnect handler) calls Cancel(); the worker executing under an
/// ExecGuard observes it at its next guard check and unwinds with
/// StatusCode::kCancelled. The token is safe to share across threads and
/// may be reused after Reset().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource budgets for one guarded operation. Zero means "unlimited" for
/// every field, so a default-constructed ExecLimits guards nothing and the
/// guarded code path is behaviourally identical to the unguarded one.
struct ExecLimits {
  /// Wall-clock budget in seconds, measured from ExecGuard construction
  /// (or the last ResetUsage with `rearm_deadline`).
  double deadline_seconds = 0.0;
  /// Maximum rows materialized (intermediate join/filter products and
  /// output rows both count — the budget is about memory, not semantics).
  size_t max_rows = 0;
  /// Maximum approximate bytes materialized. Accounting is
  /// sizeof(Value)-per-cell plus text payload sizes; an estimate, not an
  /// allocator-accurate figure.
  size_t max_bytes = 0;
  /// Maximum nesting depth of guarded sub-operations (subquery execution,
  /// set-operation arms).
  int max_depth = 0;
};

/// A per-request execution guard: wall-clock deadline, row/byte budgets,
/// nesting-depth budget, and cooperative cancellation, checked from the
/// hot loops of the SQL executor (and anywhere else a stage wants to honor
/// serving budgets).
///
/// The guard is intentionally cheap when idle: a default ExecGuard (no
/// limits, no token) short-circuits every check on one boolean, and
/// deadline clock reads are throttled to one in kTimeCheckStride row
/// charges, so guard-enabled execution stays within the ≤2% overhead
/// budget of bench_latency.
///
/// Thread model: one ExecGuard belongs to one request/worker thread; only
/// the CancelToken may be touched from other threads. Usage counters are
/// plain (non-atomic) members.
class ExecGuard {
 public:
  /// No limits, no cancellation: all checks succeed.
  ExecGuard() = default;

  /// Guard with `limits`; `cancel` (optional) must outlive the guard.
  explicit ExecGuard(const ExecLimits& limits,
                     const CancelToken* cancel = nullptr);

  /// Flushes accumulated row/byte consumption into the global
  /// MetricsRegistry (`guard.rows_charged` / `guard.bytes_charged`) — one
  /// branch for an idle guard, two counter bumps for an active one.
  ~ExecGuard();

  /// Cancellation + deadline check, unthrottled. Call at operation
  /// boundaries (start of a statement, start of a stage).
  Status Check();

  /// Charges one materialized row of ~`approx_bytes` bytes. Row/byte
  /// budgets are enforced exactly; cancellation and the deadline are
  /// observed within kTimeCheckStride charges (checking them per row costs
  /// more than the row processing it guards). This is the one call
  /// executors need per produced row, so the fast path is inline: one
  /// branch when the guard is idle, increments and compares otherwise.
  Status ChargeRow(size_t approx_bytes) {
    if (!active_) return Status::Ok();
    ++rows_;
    bytes_ += approx_bytes;
    if (limits_.max_rows > 0 && rows_ > limits_.max_rows) {
      return BudgetStatus();
    }
    if (limits_.max_bytes > 0 && bytes_ > limits_.max_bytes) {
      return BudgetStatus();
    }
    if (++ticks_ >= kTimeCheckStride) {
      ticks_ = 0;
      return Check();
    }
    return Status::Ok();
  }

  /// Enters / leaves a nested guarded scope (subquery, set-op arm). A
  /// failed EnterNested does not enter the scope: call LeaveNested only
  /// after a successful enter.
  Status EnterNested();
  void LeaveNested();

  /// Clears row/byte usage (depth is scoped, not cleared) so one guard can
  /// budget several candidate executions of a single request. The deadline
  /// keeps running unless `rearm_deadline` is true. Usage cleared here is
  /// first flushed to the consumption counters, so per-candidate resets
  /// never lose accounting.
  void ResetUsage(bool rearm_deadline = false);

  /// True when any budget or a cancel token is configured; false for a
  /// default guard (used by callers to skip byte-estimation work).
  bool active() const { return active_; }
  /// True when max_bytes is set (callers skip byte estimation otherwise).
  bool tracks_bytes() const { return limits_.max_bytes > 0; }

  size_t rows_charged() const { return rows_; }
  size_t bytes_charged() const { return bytes_; }
  const ExecLimits& limits() const { return limits_; }

  /// Clock reads happen once per this many ChargeRow calls.
  static constexpr uint32_t kTimeCheckStride = 64;

 private:
  Status DeadlineStatus() const;
  /// Out-of-line: names whichever row/byte budget was exceeded.
  Status BudgetStatus() const;
  /// Adds current rows_/bytes_ to the global consumption counters.
  void FlushUsage();

  using Clock = std::chrono::steady_clock;

  ExecLimits limits_;
  const CancelToken* cancel_ = nullptr;
  bool active_ = false;
  Clock::time_point deadline_{};  ///< valid iff deadline_seconds > 0
  size_t rows_ = 0;
  size_t bytes_ = 0;
  int depth_ = 0;
  uint32_t ticks_ = 0;  ///< ChargeRow calls since last clock read
};

}  // namespace codes

#endif  // CODES_COMMON_EXEC_GUARD_H_
