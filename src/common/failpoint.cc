#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/string_util.h"

namespace codes {

namespace {

constexpr const char* kSiteNames[kNumFailpointSites] = {
    "classifier.score", "value_retriever.build_index", "bm25.lookup",
    "executor.step",    "lm.decode",                   "storage.page_read",
    "storage.evict",    "storage.split",               "storage.sync",
    "storage.wal.sync", "storage.torn_write",
};

/// Registry state. Specs are written only during configure-then-run setup;
/// `enabled` is the atomic gate inference threads read.
struct Registry {
  std::atomic<bool> enabled{false};
  uint64_t seed = 0;
  FailpointSpec specs[kNumFailpointSites];
  std::atomic<uint64_t> fired[kNumFailpointSites];
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

/// Per-thread decision scope: the active work unit's slot seed and the
/// per-site evaluation counters within it.
struct ScopeState {
  uint64_t slot = 0;
  uint64_t counters[kNumFailpointSites] = {};
};

/// Fallback scope for code running outside any FailpointScope (tools,
/// setup code): slot 0, counters never reset. Deterministic per thread.
thread_local ScopeState tls_default_scope;
thread_local ScopeState* tls_scope = nullptr;

ScopeState& CurrentScope() {
  return tls_scope != nullptr ? *tls_scope : tls_default_scope;
}

/// SplitMix64 finalizer: decision = pure hash of (seed, site, slot,
/// counter), the whole determinism story in one function.
uint64_t MixDecision(uint64_t seed, int site, uint64_t slot,
                     uint64_t counter) {
  uint64_t z = seed;
  z ^= 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(site) + 1);
  z ^= slot + 0xBF58476D1CE4E5B9ULL;
  z ^= counter * 0x94D049BB133111EBULL + 0x2545F4914F6CDD1DULL;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

Status ParseOneSpec(std::string_view entry, FailpointSpec* spec) {
  size_t colon = entry.find(':');
  std::string_view kind = entry.substr(0, colon);
  if (kind == "oneshot") {
    if (colon != std::string_view::npos) {
      return Status::InvalidArgument("oneshot takes no argument");
    }
    spec->trigger = FailpointSpec::Trigger::kOneShot;
    return Status::Ok();
  }
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("failpoint trigger '" +
                                   std::string(entry) +
                                   "' needs an argument (prob:<p>, nth:<n>)");
  }
  std::string arg(entry.substr(colon + 1));
  if (kind == "prob") {
    // ParseFiniteDouble, not strtod: "prob:nan" fails both range
    // comparisons below (NaN compares false to everything) and used to
    // slip through as a never-firing armed site.
    double p = 0.0;
    if (!ParseFiniteDouble(arg, &p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability '" + arg + "'");
    }
    spec->trigger = FailpointSpec::Trigger::kProbability;
    spec->probability = p;
    return Status::Ok();
  }
  if (kind == "nth") {
    uint64_t n = 0;
    if (!ParseUint64(arg, &n) || n == 0) {
      return Status::InvalidArgument("bad nth '" + arg + "'");
    }
    spec->trigger = FailpointSpec::Trigger::kEveryNth;
    spec->nth = n;
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown failpoint trigger '" +
                                 std::string(kind) + "'");
}

}  // namespace

const char* FailpointSiteName(FailpointSite site) {
  int idx = static_cast<int>(site);
  if (idx < 0 || idx >= kNumFailpointSites) return "unknown";
  return kSiteNames[idx];
}

FailpointSite FailpointSiteByName(std::string_view name) {
  for (int i = 0; i < kNumFailpointSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<FailpointSite>(i);
  }
  return FailpointSite::kNumSites;
}

bool Failpoints::Enabled() {
  return GetRegistry().enabled.load(std::memory_order_relaxed);
}

void Failpoints::Arm(FailpointSite site, const FailpointSpec& spec,
                     uint64_t seed) {
  Registry& r = GetRegistry();
  int idx = static_cast<int>(site);
  if (idx < 0 || idx >= kNumFailpointSites) return;
  r.seed = seed;
  r.specs[idx] = spec;
  r.fired[idx].store(0, std::memory_order_relaxed);
  r.enabled.store(true, std::memory_order_release);
}

namespace {

/// Parses `spec` into a full per-site table without touching the live
/// registry, so a malformed spec can never leave partial state behind.
/// (The old in-place parse wrote each entry into the registry as it went:
/// an error midway returned with earlier specs still installed, disabled
/// but waiting for the next Arm() to silently re-enable them.)
Status ParseCampaignSpec(const std::string& spec,
                         FailpointSpec (*out)[kNumFailpointSites],
                         bool* any) {
  std::vector<std::string> pieces = Split(spec, ';');
  // Allow one trailing ';' ("a=oneshot;") — a common shell artifact — but
  // reject interior empty segments, which are invariably a typo'd spec
  // that used to arm half a campaign without a word of complaint.
  if (pieces.size() > 1 && Trim(pieces.back()).empty()) pieces.pop_back();
  for (const std::string& piece : pieces) {
    std::string entry = Trim(piece);
    if (entry.empty()) {
      if (pieces.size() == 1) return Status::Ok();  // whole spec blank: no-op
      return Status::InvalidArgument(
          "empty failpoint segment (doubled or leading ';') in '" + spec +
          "'");
    }
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' has no '='");
    }
    std::string name = entry.substr(0, eq);
    FailpointSpec parsed;
    CODES_RETURN_IF_ERROR(
        ParseOneSpec(std::string_view(entry).substr(eq + 1), &parsed));
    if (name == "*") {
      for (int i = 0; i < kNumFailpointSites; ++i) (*out)[i] = parsed;
      *any = true;
      continue;
    }
    FailpointSite site = FailpointSiteByName(name);
    if (site == FailpointSite::kNumSites) {
      return Status::InvalidArgument("unknown failpoint site '" + name +
                                     "'");
    }
    (*out)[static_cast<int>(site)] = parsed;
    *any = true;
  }
  return Status::Ok();
}

}  // namespace

Status Failpoints::Configure(const std::string& spec, uint64_t seed) {
  FailpointSpec parsed[kNumFailpointSites];
  bool any = false;
  CODES_RETURN_IF_ERROR(ParseCampaignSpec(spec, &parsed, &any));
  Clear();
  Registry& r = GetRegistry();
  r.seed = seed;
  for (int i = 0; i < kNumFailpointSites; ++i) r.specs[i] = parsed[i];
  if (any) r.enabled.store(true, std::memory_order_release);
  return Status::Ok();
}

void Failpoints::Clear() {
  Registry& r = GetRegistry();
  r.enabled.store(false, std::memory_order_release);
  r.seed = 0;
  for (int i = 0; i < kNumFailpointSites; ++i) {
    r.specs[i] = FailpointSpec();
    r.fired[i].store(0, std::memory_order_relaxed);
  }
}

bool Failpoints::ShouldFail(FailpointSite site) {
  Registry& r = GetRegistry();
  if (!r.enabled.load(std::memory_order_relaxed)) return false;
  int idx = static_cast<int>(site);
  if (idx < 0 || idx >= kNumFailpointSites) return false;
  const FailpointSpec& spec = r.specs[idx];
  if (spec.trigger == FailpointSpec::Trigger::kOff) return false;

  ScopeState& scope = CurrentScope();
  uint64_t counter = scope.counters[idx]++;
  bool fire = false;
  switch (spec.trigger) {
    case FailpointSpec::Trigger::kOff:
      break;
    case FailpointSpec::Trigger::kProbability: {
      uint64_t h = MixDecision(r.seed, idx, scope.slot, counter);
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      fire = u < spec.probability;
      break;
    }
    case FailpointSpec::Trigger::kEveryNth:
      fire = (counter + 1) % spec.nth == 0;
      break;
    case FailpointSpec::Trigger::kOneShot:
      fire = counter == 0;
      break;
  }
  if (fire) r.fired[idx].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

Status Failpoints::FailStatus(FailpointSite site) {
  return Status::Internal(std::string("failpoint ") +
                          FailpointSiteName(site) + " fired");
}

uint64_t Failpoints::FiredCount(FailpointSite site) {
  int idx = static_cast<int>(site);
  if (idx < 0 || idx >= kNumFailpointSites) return 0;
  return GetRegistry().fired[idx].load(std::memory_order_relaxed);
}

Status Failpoints::ConfigureFromEnv() {
  const char* spec = std::getenv("CODES_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  uint64_t seed = 0;
  if (const char* s = std::getenv("CODES_FAILPOINT_SEED")) {
    if (!ParseUint64(s, &seed)) {
      return Status::InvalidArgument(
          std::string("CODES_FAILPOINT_SEED is not a decimal uint64: '") +
          s + "'");
    }
  }
  return Configure(spec, seed);
}

FailpointScope::FailpointScope(uint64_t slot_seed) {
  auto* state = new ScopeState();
  state->slot = slot_seed;
  prev_ = tls_scope;
  tls_scope = state;
}

FailpointScope::~FailpointScope() {
  delete tls_scope;
  tls_scope = static_cast<ScopeState*>(prev_);
}

}  // namespace codes
