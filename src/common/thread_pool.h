#ifndef CODES_COMMON_THREAD_POOL_H_
#define CODES_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace codes {

/// A fixed-size thread pool with one shared FIFO task queue (no work
/// stealing: every worker pops from the same queue under one mutex, which
/// is plenty for the coarse-grained shards this library runs).
///
/// The pool exists to parallelize embarrassingly parallel evaluation work
/// (eval/parallel_eval.h) while keeping results deterministic: callers
/// write each task's output to a pre-assigned slot, so the merge order
/// never depends on thread interleaving.
///
/// Contract:
///  * A task that throws does NOT take down or wedge its worker: the
///    first escaping exception is captured and rethrown from the next
///    Wait() (or ParallelFor(), which waits); later ones are counted and
///    dropped. After the rethrow the pool is clean and reusable. An
///    exception still pending at destruction is reported to stderr and
///    swallowed (destructors must not throw).
///  * Submit/Wait may be called from any thread, but Wait() only waits for
///    tasks submitted before it is entered.
///  * The destructor drains the queue (it behaves like Wait() + join).
///
/// Observability: the pool feeds the global MetricsRegistry —
/// `pool.queue_depth` (gauge), `pool.task_wait_us` (histogram of
/// enqueue-to-start latency), `pool.tasks_submitted` /
/// `pool.tasks_completed` / `pool.task_exceptions` (counters).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values <= 0 are resolved via
  /// ResolveThreadCount). A 1-thread pool still spawns its worker; use
  /// ParallelFor for an inline serial fast path.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Bounded enqueue: refuses (returns false, task untouched beyond the
  /// move into the parameter) when `max_queue` tasks are already waiting
  /// in the queue — running tasks do not count, so `max_queue` bounds the
  /// backlog, not the concurrency. This is the mechanism the serving
  /// front end uses to shed load instead of building an unbounded queue;
  /// a refused submit bumps `pool.tasks_rejected`.
  bool TrySubmit(std::function<void()> task, size_t max_queue);

  /// Blocks until every previously submitted task has finished. If any
  /// task threw since the last Wait, rethrows the first captured
  /// exception (after the queue has drained, so the pool stays
  /// consistent).
  void Wait();

  /// Splits [0, n) into `size()` contiguous shards and runs
  /// `body(begin, end)` for each; blocks until all shards finish. With one
  /// worker (or n <= 1) the body runs inline on the calling thread, so a
  /// single-threaded ParallelFor is bit-for-bit a plain serial loop.
  /// Propagates the first exception a shard threw, like Wait().
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& body);

  /// Maps a `num_threads` knob to an actual worker count: values >= 1 pass
  /// through; 0 and negatives mean "one per hardware thread" (at least 1).
  static int ResolveThreadCount(int requested);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Valid only when metrics were enabled at submit time (a
    /// time_point-epoch sentinel otherwise); feeds pool.task_wait_us.
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals waiters: pool drained
  size_t in_flight_ = 0;             // queued + currently running tasks
  bool stop_ = false;
  /// First exception to escape a task since the last harvest (guarded by
  /// mu_); Wait() moves it out and rethrows.
  std::exception_ptr first_exception_;
};

}  // namespace codes

#endif  // CODES_COMMON_THREAD_POOL_H_
