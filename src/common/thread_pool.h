#ifndef CODES_COMMON_THREAD_POOL_H_
#define CODES_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace codes {

/// A fixed-size thread pool with one shared FIFO task queue (no work
/// stealing: every worker pops from the same queue under one mutex, which
/// is plenty for the coarse-grained shards this library runs).
///
/// The pool exists to parallelize embarrassingly parallel evaluation work
/// (eval/parallel_eval.h) while keeping results deterministic: callers
/// write each task's output to a pre-assigned slot, so the merge order
/// never depends on thread interleaving.
///
/// Contract:
///  * Tasks must not throw; an escaping exception terminates the process.
///  * Submit/Wait may be called from any thread, but Wait() only waits for
///    tasks submitted before it is entered.
///  * The destructor drains the queue (it behaves like Wait() + join).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values <= 0 are resolved via
  /// ResolveThreadCount). A 1-thread pool still spawns its worker; use
  /// ParallelFor for an inline serial fast path.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every previously submitted task has finished.
  void Wait();

  /// Splits [0, n) into `size()` contiguous shards and runs
  /// `body(begin, end)` for each; blocks until all shards finish. With one
  /// worker (or n <= 1) the body runs inline on the calling thread, so a
  /// single-threaded ParallelFor is bit-for-bit a plain serial loop.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& body);

  /// Maps a `num_threads` knob to an actual worker count: values >= 1 pass
  /// through; 0 and negatives mean "one per hardware thread" (at least 1).
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals waiters: pool drained
  size_t in_flight_ = 0;             // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace codes

#endif  // CODES_COMMON_THREAD_POOL_H_
