#include "dataset/db_generator.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace codes {

namespace {

/// Filler column kinds cycle deterministically so that contents can be
/// regenerated from the schema alone (needed by RegenerateContents).
constexpr ValueKind kFillerKinds[] = {
    ValueKind::kSmallInt, ValueKind::kWord,  ValueKind::kMoney,
    ValueKind::kCode,     ValueKind::kDate,  ValueKind::kRate,
    ValueKind::kBigInt,   ValueKind::kYesNo,
};
constexpr const char* kFillerNames[] = {
    "audit_metric",  "internal_tag",   "adjustment_value", "reference_code",
    "record_stamp",  "weight_factor",  "sequence_number",  "verified_flag",
};

ValueKind FillerKind(int filler_index) {
  return kFillerKinds[filler_index % 8];
}
std::string FillerName(int filler_index) {
  std::string base = kFillerNames[filler_index % 8];
  if (filler_index >= 8) base += "_" + std::to_string(filler_index / 8 + 1);
  return base;
}

std::string MangleText(const std::string& text, Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return ToUpper(text);
    case 1:
      return ToLower(text);
    default:
      return " " + text;  // stray leading whitespace, a classic dirty value
  }
}

/// Kinds for every column of every table, in schema order, recomputed from
/// the domain spec + profile (concept kinds then cycled filler kinds).
std::vector<std::vector<ValueKind>> ColumnKinds(const DomainSpec& domain,
                                                const DbProfile& profile) {
  std::vector<std::vector<ValueKind>> kinds;
  for (const auto& table : domain.tables) {
    std::vector<ValueKind> table_kinds;
    for (const auto& col : table.columns) table_kinds.push_back(col.kind);
    for (int f = 0; f < profile.filler_columns; ++f) {
      table_kinds.push_back(FillerKind(f));
    }
    kinds.push_back(std::move(table_kinds));
  }
  return kinds;
}

/// Fills `db` with rows. FK columns (identified via the schema's FK list)
/// receive valid parent ids; other columns draw from their value kind.
void Populate(sql::Database& db, const DomainSpec& domain,
              const DbProfile& profile, Rng& rng) {
  auto kinds = ColumnKinds(domain, profile);
  const auto& schema = db.schema();

  // Row counts per table, parents first (spec order has parents first).
  std::vector<int> row_counts;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    row_counts.push_back(
        static_cast<int>(rng.UniformInt(profile.min_rows, profile.max_rows)));
  }

  // FK map: (table_idx, col_idx) -> parent table_idx.
  std::unordered_map<int64_t, int> fk_parent;
  for (const auto& fk : schema.foreign_keys) {
    auto t = schema.FindTable(fk.table);
    auto rt = schema.FindTable(fk.ref_table);
    if (!t || !rt) continue;
    auto c = schema.tables[*t].FindColumn(fk.column);
    if (!c) continue;
    fk_parent[(static_cast<int64_t>(*t) << 32) | *c] = *rt;
  }

  for (size_t t = 0; t < schema.tables.size(); ++t) {
    const auto& table_def = schema.tables[t];
    for (int r = 0; r < row_counts[t]; ++r) {
      std::vector<sql::Value> row;
      row.reserve(table_def.columns.size());
      for (size_t c = 0; c < table_def.columns.size(); ++c) {
        ValueKind kind = kinds[t][c];
        auto fk_it = fk_parent.find((static_cast<int64_t>(t) << 32) |
                                    static_cast<int64_t>(c));
        if (fk_it != fk_parent.end()) {
          row.push_back(
              sql::Value(rng.UniformInt(1, row_counts[fk_it->second])));
          continue;
        }
        if (kind == ValueKind::kSequentialId) {
          row.push_back(sql::Value(static_cast<int64_t>(r + 1)));
          continue;
        }
        if (!table_def.columns[c].is_primary_key &&
            rng.Bernoulli(profile.null_probability)) {
          row.push_back(sql::Value());
          continue;
        }
        sql::Value v = DrawValue(kind, r, rng);
        if (v.is_text() && rng.Bernoulli(profile.dirty_probability)) {
          v = sql::Value(MangleText(v.AsText(), rng));
        }
        row.push_back(std::move(v));
      }
      CODES_CHECK(db.Insert(table_def.name, std::move(row)).ok());
    }
  }
}

}  // namespace

DbProfile DbProfile::Spider() {
  DbProfile p;
  p.abbreviate_names = false;
  p.filler_columns = 0;
  p.min_rows = 40;
  p.max_rows = 120;
  p.null_probability = 0.03;
  p.dirty_probability = 0.0;
  return p;
}

DbProfile DbProfile::Bird() {
  DbProfile p;
  p.abbreviate_names = true;
  p.filler_columns = 8;
  p.min_rows = 150;
  p.max_rows = 400;
  p.null_probability = 0.06;
  p.dirty_probability = 0.12;
  p.hidden_comment_probability = 0.45;
  return p;
}

std::string AbbreviateIdentifier(const std::string& name) {
  auto words = Split(name, '_');
  std::string out;
  if (words.size() >= 2) {
    for (const auto& w : words) {
      if (!w.empty()) out += w[0];
    }
  } else {
    out = name.substr(0, 4);
  }
  return ToLower(out);
}

std::string ColumnPhrase(const sql::ColumnDef& col) {
  if (!col.comment.empty()) return col.comment;
  return IdentifierToPhrase(col.name);
}

std::string TablePhrase(const sql::TableDef& table) {
  return IdentifierToPhrase(table.name);
}

sql::Database GenerateDatabase(const DomainSpec& domain,
                               const DbProfile& profile, Rng& rng,
                               const std::string& instance_salt) {
  sql::DatabaseSchema schema;
  schema.name = domain.name + (instance_salt.empty() ? "" : "_" + instance_salt);

  // Old->new column-name maps per table for FK rewriting.
  std::unordered_map<std::string, std::unordered_map<std::string, std::string>>
      renames;

  for (const auto& table_concept : domain.tables) {
    sql::TableDef table;
    table.name = table_concept.name;
    table.comment = table_concept.comment;
    std::unordered_set<std::string> used_names;
    auto& table_renames = renames[table_concept.name];
    for (size_t c = 0; c < table_concept.columns.size(); ++c) {
      const auto& col_concept = table_concept.columns[c];
      sql::ColumnDef col;
      col.type = TypeOfKind(col_concept.kind);
      col.is_primary_key = (c == 0);
      if (profile.abbreviate_names && !col.is_primary_key) {
        col.name = AbbreviateIdentifier(col_concept.name);
        // Ensure uniqueness within the table.
        std::string base = col.name;
        int suffix = 2;
        while (used_names.count(col.name)) {
          col.name = base + std::to_string(suffix++);
        }
        col.comment = col_concept.comment.empty()
                          ? IdentifierToPhrase(col_concept.name)
                          : col_concept.comment;
      } else {
        col.name = col_concept.name;
        col.comment = col_concept.comment;
      }
      used_names.insert(col.name);
      table_renames[col_concept.name] = col.name;
      table.columns.push_back(std::move(col));
    }
    for (int f = 0; f < profile.filler_columns; ++f) {
      sql::ColumnDef col;
      std::string full = FillerName(f);
      col.type = TypeOfKind(FillerKind(f));
      if (profile.abbreviate_names) {
        col.name = AbbreviateIdentifier(full);
        std::string base = col.name;
        int suffix = 2;
        while (used_names.count(col.name)) {
          col.name = base + std::to_string(suffix++);
        }
        col.comment = IdentifierToPhrase(full);
      } else {
        col.name = full;
      }
      used_names.insert(col.name);
      table.columns.push_back(std::move(col));
    }
    schema.tables.push_back(std::move(table));
  }

  for (const auto& fk : domain.fks) {
    sql::ForeignKey out;
    out.table = fk.table;
    out.column = renames[fk.table].count(fk.column)
                     ? renames[fk.table][fk.column]
                     : fk.column;
    out.ref_table = fk.ref_table;
    out.ref_column = renames[fk.ref_table].count(fk.ref_column)
                         ? renames[fk.ref_table][fk.ref_column]
                         : fk.ref_column;
    schema.foreign_keys.push_back(std::move(out));
  }

  sql::Database db(std::move(schema));
  Populate(db, domain, profile, rng);
  return db;
}

sql::Database RegenerateContents(const sql::Database& db,
                                 const DomainSpec& domain,
                                 const DbProfile& profile, Rng& rng) {
  sql::Database fresh(db.schema());
  Populate(fresh, domain, profile, rng);
  return fresh;
}

}  // namespace codes
