#include "dataset/templates.h"
#include "dataset/templates_internal.h"

namespace codes {

using namespace codes::template_internal;

namespace {

/// Adds `JOIN child/parent ON child.fk = parent.pk` to a statement whose
/// FROM table is the edge's child, or vice versa.
void AddJoin(SelectStatement& stmt, const Database& db, const JoinEdge& edge,
             bool from_is_child) {
  sql::JoinClause join;
  join.table.table =
      from_is_child ? TName(db, edge.parent_t) : TName(db, edge.child_t);
  join.condition = Expr::MakeBinary(
      BinaryOp::kEq, ColRef(db, edge.child_t, edge.child_c, true),
      ColRef(db, edge.parent_t, edge.parent_c, true));
  stmt.joins.push_back(std::move(join));
}

void AddJoinKeysUsed(TemplateInstance& inst, const Database& db,
                     const JoinEdge& edge) {
  AddUsed(inst, db, edge.child_t, {edge.child_c});
  AddUsed(inst, db, edge.parent_t, {edge.parent_c});
}

}  // namespace

void TemplateLibrary::RegisterJoinTemplates() {
  // 57. child text column filtered by parent category value.
  Register(
      "join_select_text",
      "Show the {COLUMN1} of {TABLE1} whose {TABLE2} has {COLUMN2} {VALUE}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto sel_cands = TextColumns(db, edge->child_t);
        auto filt_cands = CategoryColumns(db, edge->parent_t);
        if (filt_cands.empty()) filt_cands = TextColumns(db, edge->parent_t);
        auto sel = PickSelectColumn(ctx, edge->child_t, sel_cands);
        auto filt = PickFilterColumn(ctx, edge->parent_t, filt_cands);
        if (!sel || !filt) return std::nullopt;
        auto v = SampleCell(ctx, edge->parent_t, *filt);
        if (!v) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->child_t, *sel, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->where = Expr::MakeBinary(
            BinaryOp::kEq, ColRef(db, edge->parent_t, *filt, true),
            Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(
                     ctx, {"Show the {C1} of the {T1} whose {T2} has {C2} "
                           "{V}.",
                           "List the {C1} of every {T1} belonging to the "
                           "{T2} with {C2} {V}."}),
                 {{"C1", PhraseC(db, edge->child_t, *sel)},
                  {"T1", PhraseT(db, edge->child_t)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"C2", PhraseC(db, edge->parent_t, *filt)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, edge->child_t, {*sel});
        AddUsed(inst, db, edge->parent_t, {*filt});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  // 58. parent text column filtered by child numeric comparison.
  Register(
      "join_select_cmp",
      "Show the {COLUMN1} of {TABLE1} that have a {TABLE2} with {COLUMN2} "
      "above {VALUE}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto sel = PickSelectColumn(ctx, edge->parent_t,
                                    TextColumns(db, edge->parent_t));
        auto filt = PickFilterColumn(ctx, edge->child_t,
                                     NumericColumns(db, edge->child_t));
        if (!sel || !filt) return std::nullopt;
        auto v = PickThreshold(ctx, edge->child_t, *filt);
        if (!v) return std::nullopt;
        auto stmt = From(db, edge->parent_t);
        AddSelect(*stmt, ColRef(db, edge->parent_t, *sel, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/false);
        stmt->where = Expr::MakeBinary(
            BinaryOp::kGt, ColRef(db, edge->child_t, *filt, true),
            Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("Show the {C1} of the {T1} that have a {T2} with {C2} "
                 "greater than {V}.",
                 {{"C1", PhraseC(db, edge->parent_t, *sel)},
                  {"T1", PhraseT(db, edge->parent_t)},
                  {"T2", PhraseT(db, edge->child_t)},
                  {"C2", PhraseC(db, edge->child_t, *filt)},
                  {"V", v->ToString()}}));
        AddUsed(inst, db, edge->parent_t, {*sel});
        AddUsed(inst, db, edge->child_t, {*filt});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  // 59. one column from each side.
  Register(
      "join_two_cols",
      "Show the {COLUMN1} of {TABLE1} together with the {COLUMN2} of its "
      "{TABLE2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto c1 = PickSelectColumn(ctx, edge->child_t,
                                   TextColumns(db, edge->child_t));
        auto c2 = PickSelectColumn(ctx, edge->parent_t,
                                   TextColumns(db, edge->parent_t));
        if (!c1 || !c2) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->child_t, *c1, true));
        AddSelect(*stmt, ColRef(db, edge->parent_t, *c2, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        auto inst = Finish(
            std::move(stmt),
            Fill("For each {T1}, show its {C1} and the {C2} of its {T2}.",
                 {{"T1", PhraseT(db, edge->child_t)},
                  {"C1", PhraseC(db, edge->child_t, *c1)},
                  {"C2", PhraseC(db, edge->parent_t, *c2)},
                  {"T2", PhraseT(db, edge->parent_t)}}));
        AddUsed(inst, db, edge->child_t, {*c1});
        AddUsed(inst, db, edge->parent_t, {*c2});
        AddJoinKeysUsed(inst, db, *edge);
        return inst;
      });

  // 60. count children of a given parent.
  Register(
      "join_count",
      "How many {TABLE1} belong to the {TABLE2} whose {COLUMN} is {VALUE}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto filt_cands = TextColumns(db, edge->parent_t);
        auto filt = PickFilterColumn(ctx, edge->parent_t, filt_cands);
        if (!filt) return std::nullopt;
        auto v = SampleCell(ctx, edge->parent_t, *filt);
        if (!v) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, CountStar());
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->where = Expr::MakeBinary(
            BinaryOp::kEq, ColRef(db, edge->parent_t, *filt, true),
            Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx,
                            {"How many {T1} belong to the {T2} whose {C} is "
                             "{V}?",
                             "Count the {T1} of the {T2} with {C} {V}."}),
                 {{"T1", PhraseT(db, edge->child_t)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"C", PhraseC(db, edge->parent_t, *filt)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, edge->parent_t, {*filt});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  // 61. per-parent child counts.
  Register(
      "join_group_count",
      "For each {TABLE2} {COLUMN}, count its {TABLE1}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto label = PickSelectColumn(ctx, edge->parent_t,
                                      TextColumns(db, edge->parent_t));
        if (!label) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->parent_t, *label, true));
        AddSelect(*stmt, CountStar());
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->group_by.push_back(ColRef(db, edge->parent_t, *label, true));
        auto inst = Finish(
            std::move(stmt),
            Fill("For each {T2}, show its {C} and how many {T1} it has.",
                 {{"T2", PhraseT(db, edge->parent_t)},
                  {"C", PhraseC(db, edge->parent_t, *label)},
                  {"T1", PhraseT(db, edge->child_t)}}));
        AddUsed(inst, db, edge->parent_t, {*label});
        AddJoinKeysUsed(inst, db, *edge);
        return inst;
      });

  // 62. parent with the most children.
  Register(
      "join_group_count_limit1",
      "Which {TABLE2} has the most {TABLE1}? Show its {COLUMN}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto label = PickSelectColumn(ctx, edge->parent_t,
                                      TextColumns(db, edge->parent_t));
        if (!label) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->parent_t, *label, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->group_by.push_back(ColRef(db, edge->parent_t, *label, true));
        OrderItem oi;
        oi.expr = CountStar();
        oi.ascending = false;
        stmt->order_by.push_back(std::move(oi));
        stmt->limit = 1;
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx,
                            {"Which {T2} has the most {T1}? Show its {C}.",
                             "Return the {C} of the {T2} with the largest "
                             "number of {T1}."}),
                 {{"T2", PhraseT(db, edge->parent_t)},
                  {"T1", PhraseT(db, edge->child_t)},
                  {"C", PhraseC(db, edge->parent_t, *label)}}));
        AddUsed(inst, db, edge->parent_t, {*label});
        AddJoinKeysUsed(inst, db, *edge);
        return inst;
      });

  // 63/64. aggregate of child numeric for a named parent.
  auto register_join_agg = [this](std::string name, AggSpec agg) {
    Register(
        std::move(name),
        std::string("What is the ") + agg.phrase +
            " {COLUMN1} of the {TABLE1} of the {TABLE2} whose {COLUMN2} is "
            "{VALUE}?",
        [agg](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto edge = PickJoinEdge(ctx);
          if (!edge) return std::nullopt;
          auto num = PickSelectColumn(ctx, edge->child_t,
                                      NumericColumns(db, edge->child_t));
          auto filt = PickFilterColumn(ctx, edge->parent_t,
                                       TextColumns(db, edge->parent_t));
          if (!num || !filt) return std::nullopt;
          auto v = SampleCell(ctx, edge->parent_t, *filt);
          if (!v) return std::nullopt;
          auto stmt = From(db, edge->child_t);
          AddSelect(*stmt, Agg(agg.fn, ColRef(db, edge->child_t, *num, true)));
          AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
          stmt->where = Expr::MakeBinary(
              BinaryOp::kEq, ColRef(db, edge->parent_t, *filt, true),
              Expr::MakeLiteral(*v));
          auto inst = Finish(
              std::move(stmt),
              Fill(std::string("What is the ") + agg.phrase +
                       " {C1} of {T1} for the {T2} whose {C2} is {V}?",
                   {{"C1", PhraseC(db, edge->child_t, *num)},
                    {"T1", PhraseT(db, edge->child_t)},
                    {"T2", PhraseT(db, edge->parent_t)},
                    {"C2", PhraseC(db, edge->parent_t, *filt)},
                    {"V", QuoteVal(*v)}}));
          AddUsed(inst, db, edge->child_t, {*num});
          AddUsed(inst, db, edge->parent_t, {*filt});
          AddJoinKeysUsed(inst, db, *edge);
          inst.value_strings.push_back(v->ToString());
          return inst;
        });
  };
  register_join_agg("join_agg_avg", kAvg);
  register_join_agg("join_agg_sum", kSum);

  // 65. parents with at least k children.
  Register(
      "join_group_having",
      "Which {TABLE2} have at least {VALUE} {TABLE1}? Show the {COLUMN}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto label = PickSelectColumn(ctx, edge->parent_t,
                                      TextColumns(db, edge->parent_t));
        if (!label) return std::nullopt;
        int64_t k = PickSmallCount(ctx);
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->parent_t, *label, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->group_by.push_back(ColRef(db, edge->parent_t, *label, true));
        stmt->having = Expr::MakeBinary(BinaryOp::kGe, CountStar(),
                                        Expr::MakeLiteral(Value(k)));
        auto inst = Finish(
            std::move(stmt),
            Fill("Show the {C} of the {T2} that have at least {K} {T1}.",
                 {{"C", PhraseC(db, edge->parent_t, *label)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"K", std::to_string(k)},
                  {"T1", PhraseT(db, edge->child_t)}}));
        AddUsed(inst, db, edge->parent_t, {*label});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(std::to_string(k));
        return inst;
      });

  // 66. parent label of the child with extreme numeric value.
  Register(
      "join_order_limit1",
      "Return the {COLUMN1} of the {TABLE2} whose {TABLE1} has the highest "
      "{COLUMN2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto label = PickSelectColumn(ctx, edge->parent_t,
                                      TextColumns(db, edge->parent_t));
        auto num = PickFilterColumn(ctx, edge->child_t,
                                    NumericColumns(db, edge->child_t));
        if (!label || !num) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->parent_t, *label, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        OrderItem oi;
        oi.expr = ColRef(db, edge->child_t, *num, true);
        oi.ascending = false;
        stmt->order_by.push_back(std::move(oi));
        stmt->limit = 1;
        auto inst = Finish(
            std::move(stmt),
            Fill("What is the {C1} of the {T2} whose {T1} has the highest "
                 "{C2}?",
                 {{"C1", PhraseC(db, edge->parent_t, *label)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"T1", PhraseT(db, edge->child_t)},
                  {"C2", PhraseC(db, edge->child_t, *num)}}));
        AddUsed(inst, db, edge->parent_t, {*label});
        AddUsed(inst, db, edge->child_t, {*num});
        AddJoinKeysUsed(inst, db, *edge);
        return inst;
      });

  // 67. join plus two-sided predicate.
  Register(
      "join_where_and",
      "Show the {COLUMN1} of {TABLE1} whose {TABLE2} has {COLUMN2} {VALUE1} "
      "and whose {COLUMN3} is above {VALUE2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto sel = PickSelectColumn(ctx, edge->child_t,
                                    TextColumns(db, edge->child_t));
        auto cat = PickFilterColumn(ctx, edge->parent_t,
                                    TextColumns(db, edge->parent_t));
        auto num = PickFilterColumn(ctx, edge->child_t,
                                    NumericColumns(db, edge->child_t));
        if (!sel || !cat || !num) return std::nullopt;
        auto v1 = SampleCell(ctx, edge->parent_t, *cat);
        auto v2 = PickThreshold(ctx, edge->child_t, *num);
        if (!v1 || !v2) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt, ColRef(db, edge->child_t, *sel, true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->where = Expr::MakeBinary(
            BinaryOp::kAnd,
            Expr::MakeBinary(BinaryOp::kEq,
                             ColRef(db, edge->parent_t, *cat, true),
                             Expr::MakeLiteral(*v1)),
            Expr::MakeBinary(BinaryOp::kGt,
                             ColRef(db, edge->child_t, *num, true),
                             Expr::MakeLiteral(*v2)));
        auto inst = Finish(
            std::move(stmt),
            Fill("List the {C1} of {T1} whose {T2} has {C2} {V1} and whose "
                 "{C3} exceeds {V2}.",
                 {{"C1", PhraseC(db, edge->child_t, *sel)},
                  {"T1", PhraseT(db, edge->child_t)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"C2", PhraseC(db, edge->parent_t, *cat)},
                  {"V1", QuoteVal(*v1)},
                  {"C3", PhraseC(db, edge->child_t, *num)},
                  {"V2", v2->ToString()}}));
        AddUsed(inst, db, edge->child_t, {*sel, *num});
        AddUsed(inst, db, edge->parent_t, {*cat});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(v1->ToString());
        inst.value_strings.push_back(v2->ToString());
        return inst;
      });

  // 68. distinct child categories per named parent.
  Register(
      "join_count_distinct",
      "How many different {COLUMN1} do the {TABLE1} of the {TABLE2} with "
      "{COLUMN2} {VALUE} have?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto edge = PickJoinEdge(ctx);
        if (!edge) return std::nullopt;
        auto cat_cands = CategoryColumns(db, edge->child_t);
        if (cat_cands.empty()) cat_cands = TextColumns(db, edge->child_t);
        auto cat = PickSelectColumn(ctx, edge->child_t, cat_cands);
        auto filt = PickFilterColumn(ctx, edge->parent_t,
                                     TextColumns(db, edge->parent_t));
        if (!cat || !filt) return std::nullopt;
        auto v = SampleCell(ctx, edge->parent_t, *filt);
        if (!v) return std::nullopt;
        auto stmt = From(db, edge->child_t);
        AddSelect(*stmt,
                  Agg("COUNT", ColRef(db, edge->child_t, *cat, true), true));
        AddJoin(*stmt, db, *edge, /*from_is_child=*/true);
        stmt->where = Expr::MakeBinary(
            BinaryOp::kEq, ColRef(db, edge->parent_t, *filt, true),
            Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("How many distinct {C1} do the {T1} of the {T2} with {C2} "
                 "{V} have?",
                 {{"C1", PhraseC(db, edge->child_t, *cat)},
                  {"T1", PhraseT(db, edge->child_t)},
                  {"T2", PhraseT(db, edge->parent_t)},
                  {"C2", PhraseC(db, edge->parent_t, *filt)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, edge->child_t, {*cat});
        AddUsed(inst, db, edge->parent_t, {*filt});
        AddJoinKeysUsed(inst, db, *edge);
        inst.value_strings.push_back(v->ToString());
        return inst;
      });
}

}  // namespace codes
