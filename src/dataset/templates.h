#ifndef CODES_DATASET_TEMPLATES_H_
#define CODES_DATASET_TEMPLATES_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dataset/sample.h"
#include "sqlengine/database.h"
#include "sqlengine/value.h"

namespace codes {

/// One instantiated (question, SQL) pair plus generator metadata.
struct TemplateInstance {
  std::string sql_text;
  std::string question;
  int template_id = -1;
  std::vector<UsedSchemaItem> used_items;
  /// Literal predicate values appearing in the SQL (and usually in the
  /// question); used to build EK hints and to evaluate value retrieval.
  std::vector<std::string> value_strings;
};

/// Optional guidance that biases slot filling when a template is
/// re-instantiated by the *generator* (rather than sampled randomly by the
/// benchmark builder). All scores are "higher is better"; when a callback
/// is absent the corresponding choice falls back to uniform random.
///
/// This is how grammar-guided decoding works in the CodeS substitute: the
/// model's schema-linking and value-retrieval signals flow into the same
/// template instantiation code that defined the data distribution.
struct SlotGuidance {
  std::function<double(int table)> table_score;
  std::function<double(int table, int column)> select_column_score;
  std::function<double(int table, int column)> filter_column_score;
  /// Returns a concrete predicate value for (table, column) — typically a
  /// retrieved database value matched to the question — or nullopt.
  std::function<std::optional<sql::Value>(int table, int column)> filter_value;
  /// Fallback value source when nothing matched the question: a
  /// representative value of the column as shown in the prompt (Section
  /// 6.3), or nullopt when the prompt omits representative values. In
  /// guided mode templates never sample raw database cells — the model can
  /// only use what its prompt exposes.
  std::function<std::optional<sql::Value>(int table, int column)>
      representative_value;
  /// Whether the FK edge (child table, parent table) is visible to the
  /// model; absent PK/FK metadata in the prompt hides all edges, which is
  /// why that ablation mostly breaks JOIN queries.
  std::function<bool(int child_table, int parent_table)> join_visible;
  /// Normalized first-mention position (0=start, 1=absent) of a column in
  /// the question; used to order multi-column select lists the way the
  /// question lists them.
  std::function<double(int table, int column)> mention_position;
  /// Numeric literals mentioned in the question, in order of appearance.
  std::vector<double> numbers;
  /// Zero-mean noise added to slot scores; the capacity knob of small
  /// model profiles.
  double noise = 0.0;
};

/// The (question, SQL) template grammar.
///
/// This single library plays three roles from the paper:
///  * benchmark construction (Spider/BIRD-like train & dev sets),
///  * SQL-to-question data augmentation (the "75 common SQL templates" of
///    Section 7 — this library registers exactly 75 template ids),
///  * the generator's sketch space: the CodeS substitute model proposes
///    candidate SQL by re-instantiating templates against the prompt's
///    schema under SlotGuidance (see src/generator).
///
/// Every template id maps to a unique SQL structural fingerprint
/// (sqlengine/fingerprint.h), so gold SQL can be mapped back to its
/// template with IdentifyTemplate().
class TemplateLibrary {
 public:
  TemplateLibrary();

  /// Number of registered templates (75).
  int size() const { return static_cast<int>(defs_.size()); }

  /// Short template name, e.g. "group_count" or "agg_avg_where".
  const std::string& name(int template_id) const;

  /// Instantiates template `template_id` against `db`; returns nullopt
  /// when the database lacks the required slot types (e.g. no FK edge for
  /// a join template). `guidance` biases slot choices when present.
  std::optional<TemplateInstance> Instantiate(
      int template_id, const sql::Database& db, Rng& rng,
      const SlotGuidance* guidance = nullptr) const;

  /// Instantiates a uniformly random template (skipping ones that do not
  /// fit `db`). Returns nullopt only if nothing fits.
  std::optional<TemplateInstance> InstantiateRandom(const sql::Database& db,
                                                    Rng& rng) const;

  /// Maps SQL text back to a template id via its structural fingerprint;
  /// -1 when the shape is not in the library.
  int IdentifyTemplate(const std::string& sql_text) const;

  /// The templated-question skeleton for a template ("Return the lowest
  /// {COLUMN} of {TABLE}" style); used by SQL-to-question augmentation.
  const std::string& QuestionSkeleton(int template_id) const;

 private:
  struct TemplateDef {
    std::string name;
    std::string question_skeleton;
    std::function<std::optional<TemplateInstance>(
        const sql::Database&, Rng&, const SlotGuidance*)>
        build;
  };

  void Register(std::string name, std::string skeleton,
                std::function<std::optional<TemplateInstance>(
                    const sql::Database&, Rng&, const SlotGuidance*)>
                    build);
  // Registration is split across translation units to keep files small.
  void RegisterJoinTemplates();        // templates_join.cc
  void RegisterSubqueryAndSetTemplates();  // templates_nested.cc
  void BuildFingerprintMap();

  std::vector<TemplateDef> defs_;
  std::unordered_map<std::string, int> fingerprint_to_id_;
};

/// Singleton accessor; the library is immutable and thread-compatible.
const TemplateLibrary& GlobalTemplates();

}  // namespace codes

#endif  // CODES_DATASET_TEMPLATES_H_
