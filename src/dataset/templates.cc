#include "dataset/templates.h"

#include "dataset/templates_internal.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/parser.h"

namespace codes {

using namespace codes::template_internal;

// ===========================================================================
// Template registration
// ===========================================================================

void TemplateLibrary::Register(
    std::string name, std::string skeleton,
    std::function<std::optional<TemplateInstance>(const sql::Database&, Rng&,
                                                  const SlotGuidance*)>
        build) {
  TemplateDef def;
  def.name = std::move(name);
  def.question_skeleton = std::move(skeleton);
  def.build = std::move(build);
  defs_.push_back(std::move(def));
}

TemplateLibrary::TemplateLibrary() {
  // ---------------------------------------------------------------- A. basic
  Register("select_col", "Show the {COLUMN} of all {TABLE}.",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !TextColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto c = PickSelectColumn(ctx, *t, TextColumns(db, *t));
             if (!c) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, ColRef(db, *t, *c, false));
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(ctx, {"List the {C} of every {T}.",
                                       "Show the {C} of all {T}.",
                                       "What are the {C} of the {T}?"}),
                      {{"C", PhraseC(db, *t, *c)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*c});
             return inst;
           });

  Register("select_two_cols", "Show the {COLUMN1} and {COLUMN2} of {TABLE}.",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return TextColumns(db, t).size() + NumericColumns(db, t).size() >=
                      2;
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto cols = TextColumns(db, *t);
             for (int n : NumericColumns(db, *t)) cols.push_back(n);
             auto c1 = PickSelectColumn(ctx, *t, cols);
             if (!c1) return std::nullopt;
             cols.erase(std::remove(cols.begin(), cols.end(), *c1), cols.end());
             auto c2 = PickSelectColumn(ctx, *t, cols);
             if (!c2) return std::nullopt;
             std::vector<int> chosen{*c1, *c2};
             OrderByMention(ctx, *t, chosen);
             auto stmt = From(db, *t);
             AddSelect(*stmt, ColRef(db, *t, chosen[0], false));
             AddSelect(*stmt, ColRef(db, *t, chosen[1], false));
             *c1 = chosen[0];
             *c2 = chosen[1];
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(
                          ctx,
                          {"List the {C1} and {C2} of each {T}.",
                           "Show the {C1} and {C2} for all {T}.",
                           "What are the {C1} and {C2} of the {T}?"}),
                      {{"C1", PhraseC(db, *t, *c1)},
                       {"C2", PhraseC(db, *t, *c2)},
                       {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*c1, *c2});
             return inst;
           });

  Register("select_three_cols",
           "Show the {COLUMN1}, {COLUMN2} and {COLUMN3} of {TABLE}.",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return TextColumns(db, t).size() + NumericColumns(db, t).size() >=
                      3;
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto cols = TextColumns(db, *t);
             for (int n : NumericColumns(db, *t)) cols.push_back(n);
             std::vector<int> chosen;
             for (int i = 0; i < 3; ++i) {
               auto c = PickSelectColumn(ctx, *t, cols);
               if (!c) return std::nullopt;
               chosen.push_back(*c);
               cols.erase(std::remove(cols.begin(), cols.end(), *c),
                          cols.end());
             }
             OrderByMention(ctx, *t, chosen);
             auto stmt = From(db, *t);
             for (int c : chosen) AddSelect(*stmt, ColRef(db, *t, c, false));
             auto inst = Finish(
                 std::move(stmt),
                 Fill("List the {C1}, {C2} and {C3} of every {T}.",
                      {{"C1", PhraseC(db, *t, chosen[0])},
                       {"C2", PhraseC(db, *t, chosen[1])},
                       {"C3", PhraseC(db, *t, chosen[2])},
                       {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {chosen[0], chosen[1], chosen[2]});
             return inst;
           });

  Register("select_distinct_col", "Show the distinct {COLUMN} of {TABLE}.",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !CategoryColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto c = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
             if (!c) return std::nullopt;
             auto stmt = From(db, *t);
             stmt->distinct = true;
             AddSelect(*stmt, ColRef(db, *t, *c, false));
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(ctx,
                                 {"What are the different {C} of the {T}?",
                                  "List the distinct {C} among all {T}.",
                                  "Show all unique {C} for the {T}."}),
                      {{"C", PhraseC(db, *t, *c)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*c});
             return inst;
           });

  Register("select_star_where_eq",
           "Show all information of {TABLE} whose {COLUMN} is {VALUE}.",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !CategoryColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto c = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
             if (!c) return std::nullopt;
             auto v = SampleCell(ctx, *t, *c);
             if (!v) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, Expr::MakeStar());
             stmt->where = Expr::MakeBinary(
                 BinaryOp::kEq, ColRef(db, *t, *c, false),
                 Expr::MakeLiteral(*v));
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(
                          ctx,
                          {"Show all information about the {T} whose {C} is "
                           "{V}.",
                           "Give every detail of {T} with {C} {V}."}),
                      {{"T", PhraseT(db, *t)},
                       {"C", PhraseC(db, *t, *c)},
                       {"V", QuoteVal(*v)}}));
             AddUsed(inst, db, *t, {*c});
             inst.value_strings.push_back(v->ToString());
             return inst;
           });

  // ------------------------------------------------------------ B. filters
  auto register_where_eq = [this](std::string name, bool numeric,
                                  BinaryOp op, std::string op_phrase) {
    Register(
        std::move(name),
        "Show the {COLUMN1} of {TABLE} whose {COLUMN2} " + op_phrase +
            " {VALUE}.",
        [numeric, op, op_phrase](
            const Database& db, Rng& rng,
            const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db, numeric](int t) {
            if (TextColumns(db, t).empty()) return false;
            return numeric ? !NumericColumns(db, t).empty()
                           : !CategoryColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          if (!sel) return std::nullopt;
          auto filt = PickFilterColumn(
              ctx, *t, numeric ? NumericColumns(db, *t)
                               : CategoryColumns(db, *t));
          if (!filt || *filt == *sel) {
            if (!filt) return std::nullopt;
          }
          auto v = SampleCell(ctx, *t, *filt);
          if (!v) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *sel, false));
          stmt->where = Expr::MakeBinary(op, ColRef(db, *t, *filt, false),
                                         Expr::MakeLiteral(*v));
          auto inst = Finish(
              std::move(stmt),
              Fill(PickPhrase(
                       ctx, {"What is the {C1} of the {T} whose {C2} " +
                                 op_phrase + " {V}?",
                             "Show the {C1} for {T} with {C2} " + op_phrase +
                                 " {V}.",
                             "Find the {C1} of {T} where the {C2} " +
                                 op_phrase + " {V}."}),
                   {{"C1", PhraseC(db, *t, *sel)},
                    {"T", PhraseT(db, *t)},
                    {"C2", PhraseC(db, *t, *filt)},
                    {"V", QuoteVal(*v)}}));
          AddUsed(inst, db, *t, {*sel, *filt});
          inst.value_strings.push_back(v->ToString());
          return inst;
        });
  };
  register_where_eq("where_eq_text", /*numeric=*/false, BinaryOp::kEq, "is");
  register_where_eq("where_eq_num", /*numeric=*/true, BinaryOp::kEq,
                    "equals");
  register_where_eq("where_ne_text", /*numeric=*/false, BinaryOp::kNe,
                    "is not");

  auto register_where_cmp = [this](std::string name, CmpSpec cmp) {
    Register(
        std::move(name),
        std::string("Show the {COLUMN1} of {TABLE} whose {COLUMN2} is ") +
            cmp.phrase + " {VALUE}.",
        [cmp](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !TextColumns(db, t).empty() &&
                   !NumericColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          auto filt = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
          if (!sel || !filt) return std::nullopt;
          auto v = PickThreshold(ctx, *t, *filt);
          if (!v) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *sel, false));
          stmt->where = Expr::MakeBinary(cmp.op, ColRef(db, *t, *filt, false),
                                         Expr::MakeLiteral(*v));
          auto inst = Finish(
              std::move(stmt),
              Fill(PickPhrase(
                       ctx,
                       {std::string("Which {T} have a {C2} ") + cmp.phrase +
                            " {V}? Show their {C1}.",
                        std::string("List the {C1} of {T} whose {C2} is ") +
                            cmp.phrase + " {V}.",
                        std::string("Find the {C1} of every {T} with {C2} ") +
                            cmp.short_phrase + " {V}."}),
                   {{"C1", PhraseC(db, *t, *sel)},
                    {"T", PhraseT(db, *t)},
                    {"C2", PhraseC(db, *t, *filt)},
                    {"V", v->ToString()}}));
          AddUsed(inst, db, *t, {*sel, *filt});
          inst.value_strings.push_back(v->ToString());
          return inst;
        });
  };
  register_where_cmp("where_gt", kGt);
  register_where_cmp("where_lt", kLt);
  register_where_cmp("where_ge", kGe);
  register_where_cmp("where_le", kLe);

  Register(
      "where_and",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is {VALUE1} and whose "
      "{COLUMN3} is greater than {VALUE2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() &&
                 !CategoryColumns(db, t).empty() &&
                 !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!sel || !cat || !num) return std::nullopt;
        auto v1 = SampleCell(ctx, *t, *cat);
        auto v2 = PickThreshold(ctx, *t, *num);
        if (!v1 || !v2) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        stmt->where = Expr::MakeBinary(
            BinaryOp::kAnd,
            Expr::MakeBinary(BinaryOp::kEq, ColRef(db, *t, *cat, false),
                             Expr::MakeLiteral(*v1)),
            Expr::MakeBinary(BinaryOp::kGt, ColRef(db, *t, *num, false),
                             Expr::MakeLiteral(*v2)));
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx,
                            {"Show the {C1} of {T} whose {C2} is {V1} and "
                             "whose {C3} is greater than {V2}.",
                             "Which {T} have {C2} {V1} and {C3} above {V2}? "
                             "List their {C1}."}),
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *cat)},
                  {"V1", QuoteVal(*v1)},
                  {"C3", PhraseC(db, *t, *num)},
                  {"V2", v2->ToString()}}));
        AddUsed(inst, db, *t, {*sel, *cat, *num});
        inst.value_strings.push_back(v1->ToString());
        inst.value_strings.push_back(v2->ToString());
        return inst;
      });

  Register(
      "where_or",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is {VALUE1} or {VALUE2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() &&
                 !CategoryColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        if (!sel || !cat) return std::nullopt;
        auto v1 = SampleCell(ctx, *t, *cat);
        auto v2 = SampleCell(ctx, *t, *cat);
        if (!v1 || !v2) return std::nullopt;
        if (v1->ToString() == v2->ToString()) {
          // Try to draw a different second value from the column data.
          for (int i = 0; i < 8 && v1->ToString() == v2->ToString(); ++i) {
            auto retry = SampleCell(ctx, *t, *cat);
            if (retry) v2 = retry;
          }
        }
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        stmt->where = Expr::MakeBinary(
            BinaryOp::kOr,
            Expr::MakeBinary(BinaryOp::kEq, ColRef(db, *t, *cat, false),
                             Expr::MakeLiteral(*v1)),
            Expr::MakeBinary(BinaryOp::kEq, ColRef(db, *t, *cat, false),
                             Expr::MakeLiteral(*v2)));
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx,
                            {"Show the {C1} of {T} whose {C2} is {V1} or "
                             "{V2}.",
                             "List the {C1} of every {T} with {C2} either "
                             "{V1} or {V2}."}),
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *cat)},
                  {"V1", QuoteVal(*v1)},
                  {"V2", QuoteVal(*v2)}}));
        AddUsed(inst, db, *t, {*sel, *cat});
        inst.value_strings.push_back(v1->ToString());
        inst.value_strings.push_back(v2->ToString());
        return inst;
      });

  Register(
      "where_between",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is between {VALUE1} and "
      "{VALUE2}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() && !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!sel || !num) return std::nullopt;
        // Bounds: two question numbers when guided, else data quartiles.
        Value lo, hi;
        if (ctx.guide != nullptr && ctx.guide->numbers.size() < 2) {
          return std::nullopt;  // the model cannot invent range bounds
        }
        if (ctx.guide != nullptr && ctx.guide->numbers.size() >= 2) {
          double a = ctx.guide->numbers[0];
          double b = ctx.guide->numbers[1];
          if (a > b) std::swap(a, b);
          lo = (a == std::floor(a)) ? Value(static_cast<int64_t>(a)) : Value(a);
          hi = (b == std::floor(b)) ? Value(static_cast<int64_t>(b)) : Value(b);
        } else {
          std::vector<double> values;
          for (const auto& row : db.TableAt(*t).rows) {
            if (!row[*num].is_null()) values.push_back(row[*num].ToNumeric());
          }
          if (values.size() < 4) return std::nullopt;
          std::sort(values.begin(), values.end());
          double a = values[values.size() / 4];
          double b = values[(values.size() * 3) / 4];
          bool is_int = db.schema().tables[*t].columns[*num].type ==
                        DataType::kInteger;
          lo = is_int ? Value(static_cast<int64_t>(a)) : Value(a);
          hi = is_int ? Value(static_cast<int64_t>(b)) : Value(b);
        }
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        auto between = std::make_unique<Expr>();
        between->kind = ExprKind::kBetween;
        between->children.push_back(ColRef(db, *t, *num, false));
        between->children.push_back(Expr::MakeLiteral(lo));
        between->children.push_back(Expr::MakeLiteral(hi));
        stmt->where = std::move(between);
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx,
                            {"Show the {C1} of {T} whose {C2} is between "
                             "{V1} and {V2}.",
                             "Which {T} have a {C2} between {V1} and {V2}? "
                             "List their {C1}."}),
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *num)},
                  {"V1", lo.ToString()},
                  {"V2", hi.ToString()}}));
        AddUsed(inst, db, *t, {*sel, *num});
        inst.value_strings.push_back(lo.ToString());
        inst.value_strings.push_back(hi.ToString());
        return inst;
      });

  auto register_like = [this](std::string name, bool substring) {
    Register(
        std::move(name),
        substring
            ? "Show the {COLUMN} of {TABLE} containing '{VALUE}'."
            : "Show the {COLUMN} of {TABLE} starting with '{VALUE}'.",
        [substring](const Database& db, Rng& rng,
                    const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !TextColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto c = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          if (!c) return std::nullopt;
          auto v = SampleCell(ctx, *t, *c);
          if (!v || !v->is_text() || v->AsText().size() < 3) {
            return std::nullopt;
          }
          // In guided (model) mode the question's quoted span *is* the
          // fragment; data-generation mode derives one from a cell value.
          std::string fragment;
          if (ctx.guide != nullptr) {
            fragment = v->AsText();
          } else {
            fragment = substring ? v->AsText().substr(1, 4)
                                 : v->AsText().substr(0, 3);
          }
          fragment = Trim(fragment);
          if (fragment.empty()) return std::nullopt;
          std::string pattern =
              substring ? "%" + fragment + "%" : fragment + "%";
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *c, false));
          stmt->where =
              Expr::MakeBinary(BinaryOp::kLike, ColRef(db, *t, *c, false),
                               Expr::MakeLiteral(Value(pattern)));
          auto inst = Finish(
              std::move(stmt),
              Fill(substring
                       ? std::string(
                             "Which {C} of the {T} contain '{V}'?")
                       : std::string(
                             "Which {C} of the {T} start with '{V}'?"),
                   {{"C", PhraseC(db, *t, *c)},
                    {"T", PhraseT(db, *t)},
                    {"V", fragment}}));
          AddUsed(inst, db, *t, {*c});
          inst.value_strings.push_back(fragment);
          return inst;
        });
  };
  register_like("like_prefix", /*substring=*/false);
  register_like("like_contains", /*substring=*/true);

  auto register_null = [this](std::string name, bool is_null) {
    Register(
        std::move(name),
        is_null ? "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is missing."
                : "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is recorded.",
        [is_null](const Database& db, Rng& rng,
                  const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return TextColumns(db, t).size() >= 1 &&
                   TextColumns(db, t).size() + NumericColumns(db, t).size() >=
                       2;
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          if (!sel) return std::nullopt;
          auto cands = TextColumns(db, *t);
          for (int n : NumericColumns(db, *t)) cands.push_back(n);
          cands.erase(std::remove(cands.begin(), cands.end(), *sel),
                      cands.end());
          auto filt = PickFilterColumn(ctx, *t, cands);
          if (!filt) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *sel, false));
          stmt->where = Expr::MakeUnary(
              is_null ? UnaryOp::kIsNull : UnaryOp::kIsNotNull,
              ColRef(db, *t, *filt, false));
          auto inst = Finish(
              std::move(stmt),
              Fill(is_null ? std::string("List the {C1} of {T} whose {C2} is "
                                         "missing.")
                           : std::string("List the {C1} of {T} that have a "
                                         "recorded {C2}."),
                   {{"C1", PhraseC(db, *t, *sel)},
                    {"T", PhraseT(db, *t)},
                    {"C2", PhraseC(db, *t, *filt)}}));
          AddUsed(inst, db, *t, {*sel, *filt});
          return inst;
        });
  };
  register_null("is_null", true);
  register_null("is_not_null", false);

  Register(
      "in_list",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is one of {VALUES}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() &&
                 !CategoryColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        if (!sel || !cat) return std::nullopt;
        std::vector<Value> values;
        for (int i = 0; i < 3; ++i) {
          auto v = SampleCell(ctx, *t, *cat);
          if (!v) break;
          bool dup = false;
          for (const auto& existing : values) {
            if (existing.ToString() == v->ToString()) dup = true;
          }
          if (!dup) values.push_back(*v);
        }
        if (values.size() < 2) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        auto in = std::make_unique<Expr>();
        in->kind = ExprKind::kInList;
        in->children.push_back(ColRef(db, *t, *cat, false));
        in->in_list = values;
        stmt->where = std::move(in);
        std::string value_list;
        for (size_t i = 0; i < values.size(); ++i) {
          if (i > 0) value_list += (i + 1 == values.size()) ? " or " : ", ";
          value_list += QuoteVal(values[i]);
        }
        auto inst = Finish(
            std::move(stmt),
            Fill("Show the {C1} of {T} whose {C2} is {V}.",
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *cat)},
                  {"V", value_list}}));
        AddUsed(inst, db, *t, {*sel, *cat});
        for (const auto& v : values) inst.value_strings.push_back(v.ToString());
        return inst;
      });

  Register(
      "where_two_col_cmp",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} exceeds its {COLUMN3}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() &&
                 NumericColumns(db, t).size() >= 2;
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto nums = NumericColumns(db, *t);
        auto n1 = PickFilterColumn(ctx, *t, nums);
        if (!sel || !n1) return std::nullopt;
        nums.erase(std::remove(nums.begin(), nums.end(), *n1), nums.end());
        auto n2 = PickFilterColumn(ctx, *t, nums);
        if (!n2) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        stmt->where = Expr::MakeBinary(BinaryOp::kGt,
                                       ColRef(db, *t, *n1, false),
                                       ColRef(db, *t, *n2, false));
        auto inst = Finish(
            std::move(stmt),
            Fill("Which {T} have a {C2} greater than their {C3}? Show the "
                 "{C1}.",
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *n1)},
                  {"C3", PhraseC(db, *t, *n2)}}));
        AddUsed(inst, db, *t, {*sel, *n1, *n2});
        return inst;
      });

  Register(
      "substr_date_eq",
      "Show the {COLUMN1} of {TABLE} whose {COLUMN2} falls in year {VALUE}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() && !DateColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto date = PickFilterColumn(ctx, *t, DateColumns(db, *t));
        if (!sel || !date || *sel == *date) return std::nullopt;
        std::string year;
        if (ctx.guide != nullptr) {
          if (ctx.guide->numbers.empty()) return std::nullopt;
          year = std::to_string(
              static_cast<int64_t>(ctx.guide->numbers[0]));
        } else {
          auto v = SampleCell(ctx, *t, *date);
          if (!v || !v->is_text() || v->AsText().size() < 4) {
            return std::nullopt;
          }
          year = v->AsText().substr(0, 4);
        }
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        std::vector<std::unique_ptr<Expr>> args;
        args.push_back(ColRef(db, *t, *date, false));
        args.push_back(Expr::MakeLiteral(Value(int64_t{1})));
        args.push_back(Expr::MakeLiteral(Value(int64_t{4})));
        stmt->where = Expr::MakeBinary(
            BinaryOp::kEq, Expr::MakeFunction("SUBSTR", std::move(args)),
            Expr::MakeLiteral(Value(year)));
        auto inst = Finish(
            std::move(stmt),
            Fill("List the {C1} of {T} whose {C2} is in the year {V}.",
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *date)},
                  {"V", year}}));
        AddUsed(inst, db, *t, {*sel, *date});
        inst.value_strings.push_back(year);
        return inst;
      });

  Register(
      "select_two_cols_where_eq",
      "Show the {COLUMN1} and {COLUMN2} of {TABLE} whose {COLUMN3} is "
      "{VALUE}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return TextColumns(db, t).size() + NumericColumns(db, t).size() >=
                     2 &&
                 !CategoryColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cols = TextColumns(db, *t);
        for (int n : NumericColumns(db, *t)) cols.push_back(n);
        auto c1 = PickSelectColumn(ctx, *t, cols);
        if (!c1) return std::nullopt;
        cols.erase(std::remove(cols.begin(), cols.end(), *c1), cols.end());
        auto c2 = PickSelectColumn(ctx, *t, cols);
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        if (!c2 || !cat) return std::nullopt;
        auto v = SampleCell(ctx, *t, *cat);
        if (!v) return std::nullopt;
        std::vector<int> chosen{*c1, *c2};
        OrderByMention(ctx, *t, chosen);
        *c1 = chosen[0];
        *c2 = chosen[1];
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *c1, false));
        AddSelect(*stmt, ColRef(db, *t, *c2, false));
        stmt->where = Expr::MakeBinary(BinaryOp::kEq,
                                       ColRef(db, *t, *cat, false),
                                       Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("What are the {C1} and {C2} of the {T} whose {C3} is {V}?",
                 {{"C1", PhraseC(db, *t, *c1)},
                  {"C2", PhraseC(db, *t, *c2)},
                  {"T", PhraseT(db, *t)},
                  {"C3", PhraseC(db, *t, *cat)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, *t, {*c1, *c2, *cat});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  // ----------------------------------------------------------- C. counting
  Register("count_all", "How many {TABLE} are there?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [](int) { return true; });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, CountStar());
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(ctx, {"How many {T} are there?",
                                       "Count the number of {T}.",
                                       "What is the total number of {T}?"}),
                      {{"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {});
             return inst;
           });

  Register(
      "count_where_eq_text",
      "How many {TABLE} have {COLUMN} {VALUE}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !CategoryColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        if (!cat) return std::nullopt;
        auto v = SampleCell(ctx, *t, *cat);
        if (!v) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, CountStar());
        stmt->where = Expr::MakeBinary(BinaryOp::kEq,
                                       ColRef(db, *t, *cat, false),
                                       Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill(PickPhrase(ctx, {"How many {T} have a {C} of {V}?",
                                  "Count the {T} whose {C} is {V}.",
                                  "What is the number of {T} with {C} {V}?"}),
                 {{"T", PhraseT(db, *t)},
                  {"C", PhraseC(db, *t, *cat)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, *t, {*cat});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  Register(
      "count_where_cmp",
      "How many {TABLE} have {COLUMN} greater than {VALUE}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!num) return std::nullopt;
        auto v = PickThreshold(ctx, *t, *num);
        if (!v) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, CountStar());
        stmt->where = Expr::MakeBinary(BinaryOp::kGt,
                                       ColRef(db, *t, *num, false),
                                       Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("How many {T} have a {C} greater than {V}?",
                 {{"T", PhraseT(db, *t)},
                  {"C", PhraseC(db, *t, *num)},
                  {"V", v->ToString()}}));
        AddUsed(inst, db, *t, {*num});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  Register("count_distinct", "How many different {COLUMN} do the {TABLE} have?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !CategoryColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto c = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
             if (!c) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt,
                       Agg("COUNT", ColRef(db, *t, *c, false), true));
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(
                          ctx, {"How many different {C} are there among the "
                                "{T}?",
                                "Count the distinct {C} of the {T}."}),
                      {{"C", PhraseC(db, *t, *c)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*c});
             return inst;
           });

  Register(
      "count_where_and",
      "How many {TABLE} have {COLUMN1} {VALUE1} and {COLUMN2} above {VALUE2}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !CategoryColumns(db, t).empty() &&
                 !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
        auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!cat || !num) return std::nullopt;
        auto v1 = SampleCell(ctx, *t, *cat);
        auto v2 = PickThreshold(ctx, *t, *num);
        if (!v1 || !v2) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, CountStar());
        stmt->where = Expr::MakeBinary(
            BinaryOp::kAnd,
            Expr::MakeBinary(BinaryOp::kEq, ColRef(db, *t, *cat, false),
                             Expr::MakeLiteral(*v1)),
            Expr::MakeBinary(BinaryOp::kGt, ColRef(db, *t, *num, false),
                             Expr::MakeLiteral(*v2)));
        auto inst = Finish(
            std::move(stmt),
            Fill("How many {T} have {C1} {V1} and {C2} greater than {V2}?",
                 {{"T", PhraseT(db, *t)},
                  {"C1", PhraseC(db, *t, *cat)},
                  {"V1", QuoteVal(*v1)},
                  {"C2", PhraseC(db, *t, *num)},
                  {"V2", v2->ToString()}}));
        AddUsed(inst, db, *t, {*cat, *num});
        inst.value_strings.push_back(v1->ToString());
        inst.value_strings.push_back(v2->ToString());
        return inst;
      });

  // ---------------------------------------------------------- D. aggregates
  auto register_agg = [this](std::string name, AggSpec agg, bool with_where) {
    Register(
        std::move(name),
        with_where
            ? std::string("What is the ") + agg.phrase +
                  " {COLUMN1} of {TABLE} whose {COLUMN2} is {VALUE}?"
            : std::string("What is the ") + agg.phrase +
                  " {COLUMN} of all {TABLE}?",
        [agg, with_where](
            const Database& db, Rng& rng,
            const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db, with_where](int t) {
            if (NumericColumns(db, t).empty()) return false;
            return !with_where || !CategoryColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
          if (!num) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, Agg(agg.fn, ColRef(db, *t, *num, false)));
          TemplateInstance inst;
          if (with_where) {
            auto cat = PickFilterColumn(ctx, *t, CategoryColumns(db, *t));
            if (!cat) return std::nullopt;
            auto v = SampleCell(ctx, *t, *cat);
            if (!v) return std::nullopt;
            stmt->where = Expr::MakeBinary(BinaryOp::kEq,
                                           ColRef(db, *t, *cat, false),
                                           Expr::MakeLiteral(*v));
            inst = Finish(
                std::move(stmt),
                Fill(std::string("What is the ") + agg.phrase +
                         " {C1} of {T} whose {C2} is {V}?",
                     {{"C1", PhraseC(db, *t, *num)},
                      {"T", PhraseT(db, *t)},
                      {"C2", PhraseC(db, *t, *cat)},
                      {"V", QuoteVal(*v)}}));
            AddUsed(inst, db, *t, {*num, *cat});
            inst.value_strings.push_back(v->ToString());
          } else {
            inst = Finish(
                std::move(stmt),
                Fill(PickPhrase(
                         ctx,
                         {std::string("What is the ") + agg.phrase +
                              " {C} of all {T}?",
                          std::string("Find the ") + agg.phrase +
                              " {C} across the {T}.",
                          std::string("Give the ") + agg.phrase +
                              " {C} of the {T}."}),
                     {{"C", PhraseC(db, *t, *num)}, {"T", PhraseT(db, *t)}}));
            AddUsed(inst, db, *t, {*num});
          }
          return inst;
        });
  };
  register_agg("agg_sum", kSum, false);
  register_agg("agg_avg", kAvg, false);
  register_agg("agg_min", kMin, false);
  register_agg("agg_max", kMax, false);
  register_agg("agg_sum_where", kSum, true);
  register_agg("agg_avg_where", kAvg, true);
  register_agg("agg_min_where", kMin, true);
  register_agg("agg_max_where", kMax, true);

  Register("min_max_pair",
           "What are the minimum and maximum {COLUMN} of {TABLE}?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !NumericColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
             if (!num) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, Agg("MIN", ColRef(db, *t, *num, false)));
             AddSelect(*stmt, Agg("MAX", ColRef(db, *t, *num, false)));
             auto inst = Finish(
                 std::move(stmt),
                 Fill("What are the minimum and maximum {C} of the {T}?",
                      {{"C", PhraseC(db, *t, *num)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*num});
             return inst;
           });

  Register("max_minus_min",
           "What is the range between highest and lowest {COLUMN} of {TABLE}?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !NumericColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
             if (!num) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, Expr::MakeBinary(
                                  BinaryOp::kSub,
                                  Agg("MAX", ColRef(db, *t, *num, false)),
                                  Agg("MIN", ColRef(db, *t, *num, false))));
             auto inst = Finish(
                 std::move(stmt),
                 Fill("What is the difference between the highest and lowest "
                      "{C} of the {T}?",
                      {{"C", PhraseC(db, *t, *num)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*num});
             return inst;
           });

  Register("avg_round",
           "What is the average {COLUMN} of {TABLE}, rounded to 2 decimals?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !NumericColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
             if (!num) return std::nullopt;
             auto stmt = From(db, *t);
             std::vector<std::unique_ptr<Expr>> args;
             args.push_back(Agg("AVG", ColRef(db, *t, *num, false)));
             args.push_back(Expr::MakeLiteral(Value(int64_t{2})));
             AddSelect(*stmt, Expr::MakeFunction("ROUND", std::move(args)));
             auto inst = Finish(
                 std::move(stmt),
                 Fill("What is the average {C} of the {T}, rounded to two "
                      "decimal places?",
                      {{"C", PhraseC(db, *t, *num)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*num});
             return inst;
           });

  // ------------------------------------------------------------ E. ordering
  auto register_order = [this](std::string name, bool asc, int limit_kind) {
    // limit_kind: 0 none, 1 LIMIT 1, 2 LIMIT k.
    std::string skeleton;
    if (limit_kind == 0) {
      skeleton = asc ? "List the {COLUMN1} of {TABLE} ordered by {COLUMN2} "
                       "ascending."
                     : "List the {COLUMN1} of {TABLE} ordered by {COLUMN2} "
                       "descending.";
    } else if (limit_kind == 1) {
      skeleton = asc ? "Return the {COLUMN1} of the {TABLE} with the lowest "
                       "{COLUMN2}."
                     : "Return the {COLUMN1} of the {TABLE} with the highest "
                       "{COLUMN2}.";
    } else {
      skeleton = asc ? "Return the {COLUMN1} of the {K} {TABLE} with the "
                       "lowest {COLUMN2}."
                     : "Return the {COLUMN1} of the top {K} {TABLE} by "
                       "{COLUMN2}.";
    }
    Register(
        std::move(name), std::move(skeleton),
        [asc, limit_kind](
            const Database& db, Rng& rng,
            const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !TextColumns(db, t).empty() &&
                   !NumericColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          auto key = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
          if (!sel || !key) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *sel, false));
          OrderItem oi;
          oi.expr = ColRef(db, *t, *key, false);
          oi.ascending = asc;
          stmt->order_by.push_back(std::move(oi));
          int64_t k = 0;
          if (limit_kind == 1) {
            stmt->limit = 1;
          } else if (limit_kind == 2) {
            k = PickSmallCount(ctx);
            if (k <= 1) k = 3;
            stmt->limit = k;
          }
          std::string question;
          if (limit_kind == 0) {
            question = Fill(
                asc ? std::string("List the {C1} of all {T} sorted by {C2} "
                                  "from low to high.")
                    : std::string("List the {C1} of all {T} sorted by {C2} "
                                  "in descending order."),
                {{"C1", PhraseC(db, *t, *sel)},
                 {"T", PhraseT(db, *t)},
                 {"C2", PhraseC(db, *t, *key)}});
          } else if (limit_kind == 1) {
            question = Fill(
                PickPhrase(
                    ctx,
                    {asc ? std::string("What is the {C1} of the {T} with the "
                                       "lowest {C2}?")
                         : std::string("What is the {C1} of the {T} with the "
                                       "highest {C2}?"),
                     asc ? std::string("Return the {C1} of the {T} having "
                                       "the smallest {C2}.")
                         : std::string("Return the {C1} of the {T} having "
                                       "the largest {C2}.")}),
                {{"C1", PhraseC(db, *t, *sel)},
                 {"T", PhraseT(db, *t)},
                 {"C2", PhraseC(db, *t, *key)}});
          } else {
            question = Fill(
                asc ? std::string("Show the {C1} of the {K} {T} with the "
                                  "lowest {C2}.")
                    : std::string("Show the {C1} of the top {K} {T} by "
                                  "{C2}."),
                {{"C1", PhraseC(db, *t, *sel)},
                 {"T", PhraseT(db, *t)},
                 {"C2", PhraseC(db, *t, *key)},
                 {"K", std::to_string(k)}});
          }
          auto inst = Finish(std::move(stmt), std::move(question));
          AddUsed(inst, db, *t, {*sel, *key});
          if (limit_kind == 2) inst.value_strings.push_back(std::to_string(k));
          return inst;
        });
  };
  register_order("order_asc", true, 0);
  register_order("order_desc", false, 0);
  register_order("top1_desc", false, 1);
  register_order("bottom1_asc", true, 1);
  register_order("topk_desc", false, 2);
  register_order("bottomk_asc", true, 2);

  Register(
      "order_two_select",
      "Show the {COLUMN1} and {COLUMN2} of {TABLE} ordered by {COLUMN2} "
      "descending.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() && !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
        auto key = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!sel || !key) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        AddSelect(*stmt, ColRef(db, *t, *key, false));
        OrderItem oi;
        oi.expr = ColRef(db, *t, *key, false);
        oi.ascending = false;
        stmt->order_by.push_back(std::move(oi));
        auto inst = Finish(
            std::move(stmt),
            Fill("Show the {C1} and {C2} of every {T}, ordered by {C2} from "
                 "high to low.",
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"C2", PhraseC(db, *t, *key)},
                  {"T", PhraseT(db, *t)}}));
        AddUsed(inst, db, *t, {*sel, *key});
        return inst;
      });

  // ------------------------------------------------------------ F. grouping
  Register("group_count",
           "For each {COLUMN} of {TABLE}, how many rows are there?",
           [](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
             Ctx ctx{db, rng, g};
             auto tables = TablesWhere(db, [&db](int t) {
               return !CategoryColumns(db, t).empty();
             });
             auto t = PickTable(ctx, tables);
             if (!t) return std::nullopt;
             auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
             if (!cat) return std::nullopt;
             auto stmt = From(db, *t);
             AddSelect(*stmt, ColRef(db, *t, *cat, false));
             AddSelect(*stmt, CountStar());
             stmt->group_by.push_back(ColRef(db, *t, *cat, false));
             auto inst = Finish(
                 std::move(stmt),
                 Fill(PickPhrase(
                          ctx,
                          {"For each {C}, how many {T} are there?",
                           "Show each {C} and the number of {T} with it.",
                           "Count the {T} in each {C}."}),
                      {{"C", PhraseC(db, *t, *cat)}, {"T", PhraseT(db, *t)}}));
             AddUsed(inst, db, *t, {*cat});
             return inst;
           });

  auto register_group_extreme = [this](std::string name, bool most) {
    Register(
        std::move(name),
        most ? "Return the most common {COLUMN} of {TABLE}."
             : "Return the least common {COLUMN} of {TABLE}.",
        [most](const Database& db, Rng& rng,
               const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !CategoryColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
          if (!cat) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *cat, false));
          stmt->group_by.push_back(ColRef(db, *t, *cat, false));
          OrderItem oi;
          oi.expr = CountStar();
          oi.ascending = !most;
          stmt->order_by.push_back(std::move(oi));
          stmt->limit = 1;
          auto inst = Finish(
              std::move(stmt),
              Fill(most ? std::string("What is the most common {C} among the "
                                      "{T}?")
                        : std::string("What is the least common {C} among "
                                      "the {T}?"),
                   {{"C", PhraseC(db, *t, *cat)}, {"T", PhraseT(db, *t)}}));
          AddUsed(inst, db, *t, {*cat});
          return inst;
        });
  };
  register_group_extreme("group_count_desc_limit1", true);
  register_group_extreme("group_count_asc_limit1", false);

  auto register_group_agg = [this](std::string name, AggSpec agg) {
    Register(
        std::move(name),
        std::string("For each {COLUMN1} of {TABLE}, what is the ") +
            agg.phrase + " {COLUMN2}?",
        [agg](const Database& db, Rng& rng,
              const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !CategoryColumns(db, t).empty() &&
                   !NumericColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
          auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
          if (!cat || !num) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *cat, false));
          AddSelect(*stmt, Agg(agg.fn, ColRef(db, *t, *num, false)));
          stmt->group_by.push_back(ColRef(db, *t, *cat, false));
          auto inst = Finish(
              std::move(stmt),
              Fill(std::string("For each {C1}, what is the ") + agg.phrase +
                       " {C2} of the {T}?",
                   {{"C1", PhraseC(db, *t, *cat)},
                    {"C2", PhraseC(db, *t, *num)},
                    {"T", PhraseT(db, *t)}}));
          AddUsed(inst, db, *t, {*cat, *num});
          return inst;
        });
  };
  register_group_agg("group_avg", kAvg);
  register_group_agg("group_sum", kSum);
  register_group_agg("group_max", kMax);
  register_group_agg("group_min", kMin);

  Register(
      "group_having_count",
      "Which {COLUMN} of {TABLE} appear at least {VALUE} times?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !CategoryColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
        if (!cat) return std::nullopt;
        int64_t k = PickSmallCount(ctx);
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *cat, false));
        stmt->group_by.push_back(ColRef(db, *t, *cat, false));
        stmt->having = Expr::MakeBinary(
            BinaryOp::kGe, CountStar(),
            Expr::MakeLiteral(Value(k)));
        auto inst = Finish(
            std::move(stmt),
            Fill("Which {C} appear in at least {K} of the {T}?",
                 {{"C", PhraseC(db, *t, *cat)},
                  {"T", PhraseT(db, *t)},
                  {"K", std::to_string(k)}}));
        AddUsed(inst, db, *t, {*cat});
        inst.value_strings.push_back(std::to_string(k));
        return inst;
      });

  Register(
      "group_having_avg",
      "Which {COLUMN1} of {TABLE} have an average {COLUMN2} above {VALUE}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !CategoryColumns(db, t).empty() &&
                 !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
        auto num = PickSelectColumn(ctx, *t, NumericColumns(db, *t));
        if (!cat || !num) return std::nullopt;
        auto v = PickThreshold(ctx, *t, *num);
        if (!v) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *cat, false));
        stmt->group_by.push_back(ColRef(db, *t, *cat, false));
        stmt->having = Expr::MakeBinary(
            BinaryOp::kGt, Agg("AVG", ColRef(db, *t, *num, false)),
            Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("Which {C1} have an average {C2} above {V} among the {T}?",
                 {{"C1", PhraseC(db, *t, *cat)},
                  {"C2", PhraseC(db, *t, *num)},
                  {"V", v->ToString()},
                  {"T", PhraseT(db, *t)}}));
        AddUsed(inst, db, *t, {*cat, *num});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  Register(
      "group_count_where",
      "For each {COLUMN1} of {TABLE} with {COLUMN2} above {VALUE}, how many "
      "rows are there?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !CategoryColumns(db, t).empty() &&
                 !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cat = PickSelectColumn(ctx, *t, CategoryColumns(db, *t));
        auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
        if (!cat || !num) return std::nullopt;
        auto v = PickThreshold(ctx, *t, *num);
        if (!v) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, ColRef(db, *t, *cat, false));
        AddSelect(*stmt, CountStar());
        stmt->where = Expr::MakeBinary(BinaryOp::kGt,
                                       ColRef(db, *t, *num, false),
                                       Expr::MakeLiteral(*v));
        stmt->group_by.push_back(ColRef(db, *t, *cat, false));
        auto inst = Finish(
            std::move(stmt),
            Fill("Among {T} with {C2} greater than {V}, count them for each "
                 "{C1}.",
                 {{"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *num)},
                  {"V", v->ToString()},
                  {"C1", PhraseC(db, *t, *cat)}}));
        AddUsed(inst, db, *t, {*cat, *num});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  RegisterJoinTemplates();
  RegisterSubqueryAndSetTemplates();

  BuildFingerprintMap();
}

// Continued in templates_join.cc (join templates) and
// templates_nested.cc (subquery and set-operation templates).

const std::string& TemplateLibrary::name(int template_id) const {
  CODES_CHECK(template_id >= 0 &&
              template_id < static_cast<int>(defs_.size()));
  return defs_[template_id].name;
}

const std::string& TemplateLibrary::QuestionSkeleton(int template_id) const {
  CODES_CHECK(template_id >= 0 &&
              template_id < static_cast<int>(defs_.size()));
  return defs_[template_id].question_skeleton;
}

std::optional<TemplateInstance> TemplateLibrary::Instantiate(
    int template_id, const sql::Database& db, Rng& rng,
    const SlotGuidance* guidance) const {
  CODES_CHECK(template_id >= 0 &&
              template_id < static_cast<int>(defs_.size()));
  auto inst = defs_[template_id].build(db, rng, guidance);
  if (inst.has_value()) inst->template_id = template_id;
  return inst;
}

std::optional<TemplateInstance> TemplateLibrary::InstantiateRandom(
    const sql::Database& db, Rng& rng) const {
  std::vector<int> order(defs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(order);
  for (int id : order) {
    auto inst = Instantiate(id, db, rng);
    if (inst.has_value()) return inst;
  }
  return std::nullopt;
}

int TemplateLibrary::IdentifyTemplate(const std::string& sql_text) const {
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return -1;
  std::string key = sql::FingerprintOf(**stmt).ToKey();
  auto it = fingerprint_to_id_.find(key);
  if (it == fingerprint_to_id_.end()) return -1;
  return it->second;
}

namespace {

/// A reference domain that satisfies every template's slot needs: two
/// category columns, two numeric columns, a date column, and an FK edge.
/// Used only to compute template fingerprints at library construction.
DomainSpec FingerprintReferenceDomain() {
  using VK = ValueKind;
  DomainSpec d;
  d.name = "fingerprint_reference";
  TableConcept band;
  band.name = "band";
  band.comment = "reference parent table";
  band.columns = {
      ColumnConcept{"band_id", VK::kSequentialId, ""},
      ColumnConcept{"band_name", VK::kWord, ""},
      ColumnConcept{"genre", VK::kWord, ""},
      ColumnConcept{"city", VK::kCity, ""},
      ColumnConcept{"rating", VK::kRate, ""},
      ColumnConcept{"founded_year", VK::kYear, ""},
      ColumnConcept{"formed_date", VK::kDate, ""},
  };
  TableConcept album;
  album.name = "album";
  album.comment = "reference child table";
  album.columns = {
      ColumnConcept{"album_id", VK::kSequentialId, ""},
      ColumnConcept{"album_title", VK::kTitleWords, ""},
      ColumnConcept{"band_id", VK::kSmallInt, "recording band"},
      ColumnConcept{"sales", VK::kBigInt, ""},
      ColumnConcept{"price", VK::kMoney, ""},
      ColumnConcept{"release_date", VK::kDate, ""},
      ColumnConcept{"label", VK::kWord, ""},
  };
  d.tables = {band, album};
  d.fks = {FkConcept{"album", "band_id", "band", "band_id"}};
  return d;
}

}  // namespace

void TemplateLibrary::BuildFingerprintMap() {
  // Instantiate each template against a reference database and record its
  // structural fingerprint. The reference database must satisfy every
  // template's slot needs.
  Rng rng(0xC0DE5);
  DbProfile profile = DbProfile::Spider();
  profile.min_rows = 80;
  profile.max_rows = 120;
  sql::Database reference =
      GenerateDatabase(FingerprintReferenceDomain(), profile, rng, "ref");
  for (size_t id = 0; id < defs_.size(); ++id) {
    std::optional<TemplateInstance> inst;
    for (int attempt = 0; attempt < 40 && !inst.has_value(); ++attempt) {
      inst = defs_[id].build(reference, rng, nullptr);
    }
    CODES_CHECK(inst.has_value());
    auto stmt = sql::ParseSql(inst->sql_text);
    CODES_CHECK(stmt.ok());
    std::string key = sql::FingerprintOf(**stmt).ToKey();
    auto [it, inserted] =
        fingerprint_to_id_.emplace(key, static_cast<int>(id));
    if (!inserted) {
      std::fprintf(stderr,
                   "fingerprint collision: template %zu (%s) vs %d (%s): %s\n",
                   id, defs_[id].name.c_str(), it->second,
                   defs_[it->second].name.c_str(), key.c_str());
      std::abort();
    }
  }
}

const TemplateLibrary& GlobalTemplates() {
  static const TemplateLibrary* const kLibrary = new TemplateLibrary();
  return *kLibrary;
}

}  // namespace codes
