#include "dataset/perturb.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/parser.h"

namespace codes {

namespace {

using sql::Database;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

// ------------------------------------------------------------- dictionaries

const std::vector<std::pair<std::string, std::string>>& KeywordSynonyms() {
  return KeywordSynonymTable();
}



/// Domain-knowledge paraphrases (Spider-DK style): understanding them
/// requires knowledge beyond lexical overlap with the schema.
const std::vector<std::pair<std::string, std::string>>& KnowledgeParaphrases() {
  static const auto* const kMap =
      new std::vector<std::pair<std::string, std::string>>{
          {"age", "years since birth"},
          {"salary", "annual compensation"},
          {"country", "homeland"},
          {"city", "place of residence"},
          {"attendance", "crowd size"},
          {"price", "amount charged"},
          {"budget", "allocated funds"},
          {"capacity", "maximum load"},
          {"rating", "review score"},
          {"genre", "style of music"},
          {"population", "resident headcount"},
          {"votes", "ballots received"},
          {"goals", "times scored"},
          {"credits", "credit hours"},
          {"premium", "recurring payment"},
          {"nights", "length of stay"},
          {"distance", "length of the route"},
          {"sales", "units sold"},
      };
  return *kMap;
}

std::string ApplyFirstCharLower(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::tolower(s[0]));
  return s;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& SynonymTable() {
  static const auto* const kMap =
      new std::vector<std::pair<std::string, std::string>>{
          {"singer", "vocalist"},   {"concert", "show"},
          {"student", "pupil"},     {"course", "class"},
          {"city", "town"},         {"country", "nation"},
          {"name", "designation"},  {"title", "heading"},
          {"employee", "worker"},   {"department", "division"},
          {"team", "club"},         {"player", "athlete"},
          {"book", "publication"},  {"author", "writer"},
          {"movie", "film"},        {"director", "filmmaker"},
          {"hotel", "lodge"},       {"customer", "client"},
          {"salary", "pay"},        {"price", "cost"},
          {"year", "calendar year"},{"age", "age in years"},
          {"doctor", "physician"},  {"patient", "case subject"},
          {"shop", "store"},        {"product", "item"},
          {"sale", "transaction"},  {"airport", "airfield"},
          {"airline", "carrier"},   {"flight", "trip"},
          {"member", "participant"},{"gym", "fitness studio"},
          {"farm", "homestead"},    {"crop", "harvest plant"},
          {"warehouse", "depot"},   {"shipment", "delivery"},
          {"policy", "coverage plan"}, {"claim", "reimbursement request"},
          {"candidate", "nominee"}, {"district", "precinct"},
          {"artist", "performer"},  {"album", "record"},
          {"track", "song"},        {"museum", "gallery"},
          {"exhibit", "display piece"}, {"restaurant", "eatery"},
          {"dish", "menu item"},    {"professor", "faculty member"},
          {"university", "college"},{"booking", "reservation"},
          {"branch", "office"},     {"loan", "credit line"},
          {"venue", "publication outlet"}, {"paper", "article"},
          {"researcher", "scholar"},{"affiliation", "institution"},
      };
  return *kMap;
}

const std::vector<std::pair<std::string, std::string>>& KeywordSynonymTable() {
  static const auto* const kMap =
      new std::vector<std::pair<std::string, std::string>>{
          {"how many", "count of"},
          {"show", "display"},
          {"list", "give"},
          {"what is", "tell me"},
          {"what are", "tell me"},
          {"average", "mean"},
          {"highest", "largest"},
          {"lowest", "smallest"},
          {"greater than", "more than"},
          {"less than", "under"},
          {"at least", "no fewer than"},
          {"number of", "amount of"},
          {"find", "retrieve"},
          {"return", "fetch"},
      };
  return *kMap;
}

std::string ReplaceWordOutsideQuotes(const std::string& text,
                                     const std::string& word,
                                     const std::string& replacement) {
  std::string lower_text = ToLower(text);
  std::string lower_word = ToLower(word);
  std::string out;
  size_t i = 0;
  bool in_quote = false;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\'') {
      in_quote = !in_quote;
      out += c;
      ++i;
      continue;
    }
    if (!in_quote && lower_text.compare(i, lower_word.size(), lower_word) == 0) {
      bool left_ok = (i == 0) || !IsWordChar(text[i - 1]);
      size_t end = i + lower_word.size();
      bool right_ok = (end >= text.size()) || !IsWordChar(text[end]);
      if (left_ok && right_ok) {
        out += replacement;
        i = end;
        continue;
      }
    }
    out += c;
    ++i;
  }
  return out;
}

std::vector<std::string> ExpandWithSynonyms(
    const std::vector<std::string>& tokens) {
  // Bidirectional word-level map, built once.
  static const auto* const kWordMap = [] {
    auto* map = new std::unordered_map<std::string, std::vector<std::string>>();
    auto link = [map](const std::string& a, const std::string& b) {
      (*map)[a].push_back(b);
    };
    for (const auto& [from, to] : SynonymTable()) {
      for (const auto& w : SplitWhitespace(to)) {
        link(w, from);
        link(from, w);
      }
    }
    return map;
  }();
  std::vector<std::string> out = tokens;
  for (const auto& token : tokens) {
    auto it = kWordMap->find(token);
    if (it == kWordMap->end()) continue;
    for (const auto& alt : it->second) out.push_back(alt);
  }
  return out;
}

std::string VowelStripAbbreviate(const std::string& word) {
  if (word.size() <= 3) return word;
  std::string out;
  out += word[0];
  for (size_t i = 1; i < word.size() && out.size() < 4; ++i) {
    char c = word[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') continue;
    out += c;
  }
  if (out.size() < 2) out = word.substr(0, 3);
  return out;
}

const char* QuestionMutationName(QuestionMutation kind) {
  switch (kind) {
    case QuestionMutation::kSynonym:
      return "synonym";
    case QuestionMutation::kTypo:
      return "typo";
    case QuestionMutation::kParaphrase:
      return "paraphrase";
    case QuestionMutation::kValueSwap:
      return "value-swap";
    case QuestionMutation::kSchemaNoise:
      return "schema-noise";
    case QuestionMutation::kNumMutations:
      break;
  }
  return "unknown";
}

namespace {

/// Byte positions of ASCII letters outside single-quoted spans —
/// the only characters the typo mutation is allowed to touch (quoted
/// values carry exact-match semantics).
std::vector<size_t> LetterPositionsOutsideQuotes(const std::string& s) {
  std::vector<size_t> positions;
  bool in_quote = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\'') {
      in_quote = !in_quote;
    } else if (!in_quote && std::isalpha(static_cast<unsigned char>(c))) {
      positions.push_back(i);
    }
  }
  return positions;
}

/// Dictionary-driven mutation: every pair flips a coin; heads replaces
/// forward (from -> to), tails backward — so a question already phrased
/// with the "to" side still mutates.
std::string ApplyDictionaryMutation(
    const std::string& question,
    const std::vector<std::pair<std::string, std::string>>& table,
    double forward_p, Rng* rng) {
  std::string out = question;
  for (const auto& [from, to] : table) {
    if (rng->Bernoulli(forward_p)) {
      out = ReplaceWordOutsideQuotes(out, from, to);
    } else {
      out = ReplaceWordOutsideQuotes(out, to, from);
    }
  }
  return out;
}

}  // namespace

std::string MutateQuestion(const std::string& question, QuestionMutation kind,
                           uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case QuestionMutation::kSynonym:
      return ApplyDictionaryMutation(question, SynonymTable(), 0.75, &rng);
    case QuestionMutation::kParaphrase:
      return ApplyDictionaryMutation(question, KeywordSynonymTable(), 0.85,
                                     &rng);
    case QuestionMutation::kTypo: {
      std::string out = question;
      size_t edits = 1 + question.size() / 24;
      for (size_t e = 0; e < edits; ++e) {
        std::vector<size_t> positions = LetterPositionsOutsideQuotes(out);
        if (positions.empty()) break;
        size_t pos = positions[rng.Index(positions.size())];
        switch (rng.UniformInt(0, 2)) {
          case 0:  // swap with the next character when it is also a letter
            if (pos + 1 < out.size() &&
                std::isalpha(static_cast<unsigned char>(out[pos + 1]))) {
              std::swap(out[pos], out[pos + 1]);
            }
            break;
          case 1:  // drop
            out.erase(pos, 1);
            break;
          default:  // double
            out.insert(pos, 1, out[pos]);
            break;
        }
      }
      return out;
    }
    case QuestionMutation::kValueSwap: {
      // Case-flip inside quoted values: the database keeps the original
      // casing, so exact value match breaks while fuzzy match survives.
      std::string out = question;
      bool in_quote = false;
      for (char& c : out) {
        if (c == '\'') {
          in_quote = !in_quote;
        } else if (in_quote &&
                   std::isalpha(static_cast<unsigned char>(c)) &&
                   rng.Bernoulli(0.5)) {
          c = std::isupper(static_cast<unsigned char>(c))
                  ? static_cast<char>(std::tolower(c))
                  : static_cast<char>(std::toupper(c));
        }
      }
      return out;
    }
    case QuestionMutation::kSchemaNoise: {
      // Unicode smuggling: NBSP for spaces, fullwidth homoglyphs for
      // letters, zero-width insertions. Serve-side canonicalization folds
      // every one of these back to the original ASCII.
      static const char* const kZeroWidth[] = {
          "\xE2\x80\x8B",  // ZWSP
          "\xE2\x80\x8C",  // ZWNJ
          "\xE2\x80\x8D",  // ZWJ
          "\xEF\xBB\xBF",  // BOM-as-ZWNBSP
      };
      std::string out;
      out.reserve(question.size() + 8);
      for (char c : question) {
        if (c == ' ' && rng.Bernoulli(0.4)) {
          out += "\xC2\xA0";  // NBSP
        } else if (std::isalpha(static_cast<unsigned char>(c)) &&
                   rng.Bernoulli(0.08)) {
          // Fullwidth form: U+FF01..U+FF5E = ASCII 0x21..0x7E + 0xFEE0.
          uint32_t cp = static_cast<uint32_t>(
                            static_cast<unsigned char>(c)) +
                        0xFEE0;
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += c;
        }
        if (rng.Bernoulli(0.06)) {
          out += kZeroWidth[rng.Index(4)];
        }
      }
      return out;
    }
    case QuestionMutation::kNumMutations:
      break;
  }
  return question;
}

namespace {

// ----------------------------------------------------- schema rename tools

using RenameFn = std::string (*)(const std::string&);

std::string SynonymRename(const std::string& identifier) {
  auto words = Split(identifier, '_');
  for (auto& w : words) {
    for (const auto& [from, to] : SynonymTable()) {
      if (w == from) {
        w = ReplaceAll(to, " ", "_");
        break;
      }
    }
  }
  return Join(words, "_");
}

std::string AbbrevRename(const std::string& identifier) {
  auto words = Split(identifier, '_');
  for (auto& w : words) {
    if (w == "id") continue;  // keep the id suffix recognizable
    w = VowelStripAbbreviate(w);
  }
  return Join(words, "_");
}

/// Applies `rename` to every table and column name of `db` (keeping
/// uniqueness), producing a renamed database plus the rename maps needed
/// to rewrite gold SQL. Comments are dropped: Dr.Spider's perturbed
/// databases give the model no side-channel help.
struct RenamedDatabase {
  Database db;
  std::unordered_map<std::string, std::string> table_map;  // lower(old)->new
  // lower(old_table) -> (lower(old_col) -> new_col)
  std::unordered_map<std::string, std::unordered_map<std::string, std::string>>
      column_maps;
};

RenamedDatabase RenameSchema(const Database& source, RenameFn rename) {
  RenamedDatabase out;
  sql::DatabaseSchema schema = source.schema();
  std::unordered_set<std::string> used_tables;
  for (auto& table : schema.tables) {
    std::string old_table = ToLower(table.name);
    std::string new_name = rename(table.name);
    while (used_tables.count(ToLower(new_name))) new_name += "x";
    used_tables.insert(ToLower(new_name));
    out.table_map[old_table] = new_name;
    auto& col_map = out.column_maps[old_table];
    std::unordered_set<std::string> used_cols;
    for (auto& col : table.columns) {
      std::string new_col = rename(col.name);
      while (used_cols.count(ToLower(new_col))) new_col += "x";
      used_cols.insert(ToLower(new_col));
      col_map[ToLower(col.name)] = new_col;
      col.name = new_col;
      col.comment.clear();
    }
    table.name = new_name;
    table.comment.clear();
  }
  for (auto& fk : schema.foreign_keys) {
    std::string t = ToLower(fk.table);
    std::string rt = ToLower(fk.ref_table);
    fk.column = out.column_maps[t][ToLower(fk.column)];
    fk.ref_column = out.column_maps[rt][ToLower(fk.ref_column)];
    fk.table = out.table_map[t];
    fk.ref_table = out.table_map[rt];
  }
  Database renamed(std::move(schema));
  for (size_t t = 0; t < source.schema().tables.size(); ++t) {
    for (const auto& row : source.TableAt(static_cast<int>(t)).rows) {
      CODES_CHECK(renamed
                      .Insert(renamed.schema().tables[t].name,
                              std::vector<sql::Value>(row))
                      .ok());
    }
  }
  out.db = std::move(renamed);
  return out;
}

/// Rewrites identifiers in a statement per the rename maps. Unqualified
/// column refs are resolved against the statement's own FROM tables.
void RenameInStatement(SelectStatement& stmt, const Database& old_db,
                       const RenamedDatabase& renamed);

void RenameInExpr(Expr& e, const std::vector<std::string>& scope_tables,
                  const Database& old_db, const RenamedDatabase& renamed) {
  if (e.kind == ExprKind::kColumnRef) {
    std::string owner = ToLower(e.table);
    if (owner.empty()) {
      for (const auto& table : scope_tables) {
        auto t = old_db.schema().FindTable(table);
        if (t && old_db.schema().tables[*t].FindColumn(e.column)) {
          owner = ToLower(table);
          break;
        }
      }
    } else {
      e.table = renamed.table_map.at(owner);
    }
    if (!owner.empty()) {
      auto map_it = renamed.column_maps.find(owner);
      if (map_it != renamed.column_maps.end()) {
        auto col_it = map_it->second.find(ToLower(e.column));
        if (col_it != map_it->second.end()) e.column = col_it->second;
      }
    }
    return;
  }
  for (auto& child : e.children) {
    RenameInExpr(*child, scope_tables, old_db, renamed);
  }
  if (e.subquery) RenameInStatement(*e.subquery, old_db, renamed);
}

void RenameInStatement(SelectStatement& stmt, const Database& old_db,
                       const RenamedDatabase& renamed) {
  std::vector<std::string> scope_tables;
  scope_tables.push_back(stmt.from.table);
  for (const auto& join : stmt.joins) scope_tables.push_back(join.table.table);

  auto visit = [&](std::unique_ptr<Expr>& e) {
    if (e) RenameInExpr(*e, scope_tables, old_db, renamed);
  };
  for (auto& item : stmt.select_list) visit(item.expr);
  for (auto& join : stmt.joins) visit(join.condition);
  visit(stmt.where);
  for (auto& gexpr : stmt.group_by) visit(gexpr);
  visit(stmt.having);
  for (auto& o : stmt.order_by) visit(o.expr);

  stmt.from.table = renamed.table_map.at(ToLower(stmt.from.table));
  for (auto& join : stmt.joins) {
    join.table.table = renamed.table_map.at(ToLower(join.table.table));
  }
  if (stmt.set_rhs) RenameInStatement(*stmt.set_rhs, old_db, renamed);
}

std::string RewriteSql(const std::string& sql_text, const Database& old_db,
                       const RenamedDatabase& renamed) {
  auto stmt = sql::ParseSql(sql_text);
  CODES_CHECK(stmt.ok());
  RenameInStatement(**stmt, old_db, renamed);
  return (*stmt)->ToSql();
}

/// Builds a DB-perturbed test set: renames every dev database and rewrites
/// every dev sample's gold SQL + used_items.
PerturbedTestSet MakeDbPerturbation(const Text2SqlBenchmark& spider,
                                    const std::string& name, RenameFn rename) {
  PerturbedTestSet set;
  set.name = name;
  set.category = "DB";
  set.bench.name = spider.name + "/" + name;

  std::unordered_map<int, int> db_remap;
  std::vector<RenamedDatabase> renamed_dbs;
  for (const auto& sample : spider.dev) {
    if (db_remap.count(sample.db_index)) continue;
    RenamedDatabase renamed =
        RenameSchema(spider.databases[sample.db_index], rename);
    db_remap[sample.db_index] = static_cast<int>(set.bench.databases.size());
    set.bench.databases.push_back(renamed.db);
    renamed_dbs.push_back(std::move(renamed));
  }
  for (const auto& sample : spider.dev) {
    const Database& old_db = spider.databases[sample.db_index];
    int new_index = db_remap[sample.db_index];
    const RenamedDatabase& renamed = renamed_dbs[new_index];
    Text2SqlSample out = sample;
    out.db_index = new_index;
    out.sql = RewriteSql(sample.sql, old_db, renamed);
    for (auto& item : out.used_items) {
      std::string old_table = ToLower(item.table);
      if (!item.column.empty()) {
        item.column = renamed.column_maps.at(old_table).at(ToLower(item.column));
      }
      item.table = renamed.table_map.at(old_table);
    }
    set.bench.dev.push_back(std::move(out));
  }
  return set;
}

/// DBcontent-equivalence: text values change representation (uppercased)
/// while questions keep the original form; gold SQL literals follow the
/// database.
PerturbedTestSet MakeContentPerturbation(const Text2SqlBenchmark& spider) {
  PerturbedTestSet set;
  set.name = "DBcontent-equivalence";
  set.category = "DB";
  set.bench.name = spider.name + "/DBcontent-equivalence";

  std::unordered_map<int, int> db_remap;
  for (const auto& sample : spider.dev) {
    if (db_remap.count(sample.db_index)) continue;
    const Database& old_db = spider.databases[sample.db_index];
    Database mangled(old_db.schema());
    for (size_t t = 0; t < old_db.schema().tables.size(); ++t) {
      for (const auto& row : old_db.TableAt(static_cast<int>(t)).rows) {
        std::vector<sql::Value> new_row;
        new_row.reserve(row.size());
        for (const auto& v : row) {
          new_row.push_back(v.is_text() ? sql::Value(ToUpper(v.AsText())) : v);
        }
        CODES_CHECK(mangled
                        .Insert(old_db.schema().tables[t].name,
                                std::move(new_row))
                        .ok());
      }
    }
    db_remap[sample.db_index] = static_cast<int>(set.bench.databases.size());
    set.bench.databases.push_back(std::move(mangled));
  }

  for (const auto& sample : spider.dev) {
    Text2SqlSample out = sample;
    out.db_index = db_remap[sample.db_index];
    // Uppercase text literals in the gold SQL to follow the database.
    auto stmt = sql::ParseSql(sample.sql);
    CODES_CHECK(stmt.ok());
    std::function<void(Expr&)> mangle = [&mangle](Expr& e) {
      if (e.kind == ExprKind::kLiteral && e.literal.is_text()) {
        e.literal = sql::Value(ToUpper(e.literal.AsText()));
      }
      for (auto& v : e.in_list) {
        if (v.is_text()) v = sql::Value(ToUpper(v.AsText()));
      }
      for (auto& child : e.children) mangle(*child);
    };
    std::function<void(SelectStatement&)> walk =
        [&mangle, &walk](SelectStatement& s) {
          for (auto& item : s.select_list) mangle(*item.expr);
          if (s.where) mangle(*s.where);
          if (s.having) mangle(*s.having);
          for (auto& join : s.joins) {
            if (join.condition) mangle(*join.condition);
          }
          if (s.set_rhs) walk(*s.set_rhs);
          for (auto& item : s.select_list) {
            if (item.expr->subquery) walk(*item.expr->subquery);
          }
          std::function<void(Expr&)> sub = [&walk, &sub](Expr& e) {
            if (e.subquery) walk(*e.subquery);
            for (auto& c : e.children) sub(*c);
          };
          for (auto& item : s.select_list) sub(*item.expr);
          if (s.where) sub(*s.where);
          if (s.having) sub(*s.having);
        };
    walk(**stmt);
    out.sql = (*stmt)->ToSql();
    set.bench.dev.push_back(std::move(out));
  }
  return set;
}

// -------------------------------------------------------- NLQ perturbation

/// Copies the benchmark's dev-referenced databases and applies `fn` to
/// each dev question.
template <typename Fn>
Text2SqlBenchmark MapQuestions(const Text2SqlBenchmark& spider, Fn&& fn,
                               const std::string& name) {
  Text2SqlBenchmark out;
  out.name = name;
  out.databases = spider.databases;
  out.domain_names = spider.domain_names;
  for (const auto& sample : spider.dev) {
    Text2SqlSample copy = sample;
    copy.question = fn(sample);
    out.dev.push_back(std::move(copy));
  }
  return out;
}

/// Column phrases used by a sample (from its used_items), longest first so
/// multi-word phrases are replaced before their sub-words.
std::vector<std::string> UsedColumnPhrases(const Text2SqlBenchmark& bench,
                                           const Text2SqlSample& sample) {
  std::vector<std::string> phrases;
  const Database& db = bench.DbOf(sample);
  for (const auto& item : sample.used_items) {
    if (item.column.empty()) continue;
    auto t = db.schema().FindTable(item.table);
    if (!t) continue;
    auto c = db.schema().tables[*t].FindColumn(item.column);
    if (!c) continue;
    phrases.push_back(ColumnPhrase(db.schema().tables[*t].columns[*c]));
  }
  std::sort(phrases.begin(), phrases.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() > b.size();
            });
  return phrases;
}

std::string ApplySynonyms(
    const std::string& question,
    const std::vector<std::pair<std::string, std::string>>& table) {
  std::string out = question;
  for (const auto& [from, to] : table) {
    out = ReplaceWordOutsideQuotes(out, from, to);
  }
  return out;
}

}  // namespace

Text2SqlBenchmark BuildSpiderSyn(const Text2SqlBenchmark& spider,
                                 uint64_t seed) {
  (void)seed;
  return MapQuestions(
      spider,
      [](const Text2SqlSample& sample) {
        return ApplySynonyms(sample.question, SynonymTable());
      },
      spider.name + "/syn");
}

Text2SqlBenchmark BuildSpiderRealistic(const Text2SqlBenchmark& spider,
                                       uint64_t seed) {
  (void)seed;
  // Remove explicit column mentions where a value keeps intent clear:
  // "whose country is 'USA'" -> "with 'USA'".
  Text2SqlBenchmark out;
  out.name = spider.name + "/realistic";
  out.databases = spider.databases;
  out.domain_names = spider.domain_names;
  for (const auto& sample : spider.dev) {
    Text2SqlSample copy = sample;
    for (const auto& phrase : UsedColumnPhrases(spider, sample)) {
      copy.question = ReplaceWordOutsideQuotes(
          copy.question, "whose " + phrase + " is", "with");
      copy.question = ReplaceWordOutsideQuotes(
          copy.question, "with " + phrase + " ", "with ");
      copy.question = ReplaceWordOutsideQuotes(
          copy.question, phrase + " is ", "");
    }
    out.dev.push_back(std::move(copy));
  }
  return out;
}

Text2SqlBenchmark BuildSpiderDk(const Text2SqlBenchmark& spider,
                                uint64_t seed) {
  (void)seed;
  return MapQuestions(
      spider,
      [](const Text2SqlSample& sample) {
        return ApplySynonyms(sample.question, KnowledgeParaphrases());
      },
      spider.name + "/dk");
}

std::vector<PerturbedTestSet> BuildDrSpiderSuite(
    const Text2SqlBenchmark& spider, uint64_t seed) {
  std::vector<PerturbedTestSet> suite;
  Rng rng(seed);

  // ---- DB perturbations (3)
  suite.push_back(MakeDbPerturbation(spider, "schema-synonym", SynonymRename));
  suite.push_back(
      MakeDbPerturbation(spider, "schema-abbreviation", AbbrevRename));
  suite.push_back(MakeContentPerturbation(spider));

  auto add_nlq = [&suite, &spider](const std::string& name,
                                   Text2SqlBenchmark bench) {
    PerturbedTestSet set;
    set.name = name;
    set.category = "NLQ";
    set.bench = std::move(bench);
    set.bench.name = spider.name + "/" + name;
    suite.push_back(std::move(set));
  };

  // ---- NLQ perturbations (9)
  add_nlq("keyword-synonym",
          MapQuestions(
              spider,
              [](const Text2SqlSample& s) {
                return ApplySynonyms(s.question, KeywordSynonyms());
              },
              "keyword-synonym"));
  add_nlq("keyword-carrier",
          MapQuestions(
              spider,
              [](const Text2SqlSample& s) {
                return "Could you tell me " + ApplyFirstCharLower(s.question);
              },
              "keyword-carrier"));
  add_nlq("column-synonym",
          MapQuestions(
              spider,
              [&spider](const Text2SqlSample& s) {
                std::string q = s.question;
                for (const auto& phrase : UsedColumnPhrases(spider, s)) {
                  q = ReplaceWordOutsideQuotes(
                      q, phrase, ApplySynonyms(phrase, SynonymTable()));
                }
                return q;
              },
              "column-synonym"));
  add_nlq("column-carrier",
          MapQuestions(
              spider,
              [&spider](const Text2SqlSample& s) {
                std::string q = s.question;
                for (const auto& phrase : UsedColumnPhrases(spider, s)) {
                  q = ReplaceWordOutsideQuotes(q, phrase, phrase + " value");
                }
                return q;
              },
              "column-carrier"));
  add_nlq("column-attribute",
          MapQuestions(
              spider,
              [&spider](const Text2SqlSample& s) {
                std::string q = s.question;
                for (const auto& phrase : UsedColumnPhrases(spider, s)) {
                  q = ReplaceWordOutsideQuotes(
                      q, phrase, ApplySynonyms(phrase, KnowledgeParaphrases()));
                }
                return q;
              },
              "column-attribute"));
  add_nlq("column-value",
          MapQuestions(
              spider,
              [&spider](const Text2SqlSample& s) {
                std::string q = s.question;
                for (const auto& phrase : UsedColumnPhrases(spider, s)) {
                  q = ReplaceWordOutsideQuotes(q, "whose " + phrase + " is",
                                               "with");
                }
                return q;
              },
              "column-value"));
  add_nlq("value-synonym",
          MapQuestions(
              spider,
              [](const Text2SqlSample& s) {
                // Lowercase quoted values: the database keeps the original
                // casing, so exact value match fails but fuzzy match works.
                std::string q = s.question;
                bool in_quote = false;
                for (char& c : q) {
                  if (c == '\'') in_quote = !in_quote;
                  else if (in_quote) {
                    c = static_cast<char>(
                        std::tolower(static_cast<unsigned char>(c)));
                  }
                }
                return q;
              },
              "value-synonym"));
  add_nlq("multitype",
          MapQuestions(
              spider,
              [&spider](const Text2SqlSample& s) {
                std::string q =
                    ApplySynonyms(s.question, KeywordSynonyms());
                for (const auto& phrase : UsedColumnPhrases(spider, s)) {
                  q = ReplaceWordOutsideQuotes(
                      q, phrase, ApplySynonyms(phrase, SynonymTable()));
                }
                return q;
              },
              "multitype"));
  add_nlq("others",
          MapQuestions(
              spider,
              [](const Text2SqlSample& s) {
                return "Please " + ApplyFirstCharLower(s.question) +
                       " Thanks!";
              },
              "others"));

  // ---- SQL-side test sets (5): bucket dev samples by gold SQL shape and
  // apply a mild paraphrase, mirroring Dr.Spider's SQL perturbations.
  struct SqlBucket {
    const char* name;
    bool (*pred)(const sql::SqlFingerprint&);
  };
  static const SqlBucket kBuckets[] = {
      {"comparison",
       [](const sql::SqlFingerprint& fp) {
         return fp.where_ops.find("gt") != std::string::npos ||
                fp.where_ops.find("lt") != std::string::npos ||
                fp.where_ops.find("ge") != std::string::npos ||
                fp.where_ops.find("le") != std::string::npos ||
                !fp.having_aggregate.empty();
       }},
      {"sort-order",
       [](const sql::SqlFingerprint& fp) { return !fp.order.empty(); }},
      {"nonDB-number",
       [](const sql::SqlFingerprint& fp) { return fp.limit_kind != 0; }},
      {"DB-text",
       [](const sql::SqlFingerprint& fp) {
         return fp.where_ops.find(":t") != std::string::npos;
       }},
      {"DB-number",
       [](const sql::SqlFingerprint& fp) {
         return fp.where_ops.find(":n") != std::string::npos;
       }},
  };
  for (const auto& bucket : kBuckets) {
    PerturbedTestSet set;
    set.name = bucket.name;
    set.category = "SQL";
    set.bench.name = spider.name + "/" + bucket.name;
    set.bench.databases = spider.databases;
    set.bench.domain_names = spider.domain_names;
    for (const auto& sample : spider.dev) {
      auto stmt = sql::ParseSql(sample.sql);
      if (!stmt.ok()) continue;
      if (!bucket.pred(sql::FingerprintOf(**stmt))) continue;
      Text2SqlSample copy = sample;
      copy.question = ApplySynonyms(copy.question, KeywordSynonyms());
      set.bench.dev.push_back(std::move(copy));
    }
    suite.push_back(std::move(set));
  }
  return suite;
}

}  // namespace codes
