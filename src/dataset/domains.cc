#include "dataset/domains.h"

namespace codes {

namespace {

using VK = ValueKind;

ColumnConcept Col(std::string name, VK kind, std::string comment = "") {
  return ColumnConcept{std::move(name), kind, std::move(comment)};
}

TableConcept Table(std::string name, std::string comment,
                   std::vector<ColumnConcept> columns) {
  return TableConcept{std::move(name), std::move(comment),
                      std::move(columns)};
}

FkConcept Fk(std::string table, std::string column, std::string ref_table,
             std::string ref_column) {
  return FkConcept{std::move(table), std::move(column), std::move(ref_table),
                   std::move(ref_column)};
}

std::vector<DomainSpec> BuildDomains() {
  std::vector<DomainSpec> domains;

  domains.push_back(DomainSpec{
      "concerts",
      {Table("singer", "performing artists",
             {Col("singer_id", VK::kSequentialId), Col("name", VK::kPersonName),
              Col("age", VK::kSmallInt), Col("country", VK::kCountry),
              Col("genre", VK::kWord)}),
       Table("concert", "scheduled concerts",
             {Col("concert_id", VK::kSequentialId),
              Col("concert_title", VK::kTitleWords),
              Col("singer_id", VK::kSmallInt, "performing singer"),
              Col("city", VK::kCity), Col("year", VK::kYear),
              Col("attendance", VK::kBigInt)})},
      {Fk("concert", "singer_id", "singer", "singer_id")}});

  domains.push_back(DomainSpec{
      "schools",
      {Table("student", "enrolled students",
             {Col("student_id", VK::kSequentialId),
              Col("student_name", VK::kPersonName), Col("age", VK::kSmallInt),
              Col("major", VK::kWord), Col("home_city", VK::kCity),
              Col("grade_point", VK::kRate, "grade point average")}),
       Table("course", "offered courses",
             {Col("course_id", VK::kSequentialId),
              Col("course_title", VK::kTitleWords),
              Col("credits", VK::kSmallInt), Col("department", VK::kWord)}),
       Table("enrollment", "student course registrations",
             {Col("enrollment_id", VK::kSequentialId),
              Col("student_id", VK::kSmallInt, "enrolled student"),
              Col("course_id", VK::kSmallInt, "registered course"),
              Col("score", VK::kSmallInt, "final score")})},
      {Fk("enrollment", "student_id", "student", "student_id"),
       Fk("enrollment", "course_id", "course", "course_id")}});

  domains.push_back(DomainSpec{
      "flights",
      {Table("airline", "airline companies",
             {Col("airline_id", VK::kSequentialId),
              Col("airline_name", VK::kCompany), Col("country", VK::kCountry),
              Col("fleet_size", VK::kSmallInt)}),
       Table("airport", "airports served",
             {Col("airport_id", VK::kSequentialId),
              Col("airport_name", VK::kTitleWords), Col("city", VK::kCity),
              Col("passenger_count", VK::kBigInt, "passengers per year")}),
       Table("flight", "scheduled flights",
             {Col("flight_id", VK::kSequentialId),
              Col("flight_code", VK::kCode),
              Col("airline_id", VK::kSmallInt, "operating airline"),
              Col("airport_id", VK::kSmallInt, "departure airport"),
              Col("distance", VK::kBigInt, "distance in km"),
              Col("price", VK::kMoney, "ticket price")})},
      {Fk("flight", "airline_id", "airline", "airline_id"),
       Fk("flight", "airport_id", "airport", "airport_id")}});

  domains.push_back(DomainSpec{
      "employees",
      {Table("department", "company departments",
             {Col("department_id", VK::kSequentialId),
              Col("department_name", VK::kWord), Col("budget", VK::kMoney),
              Col("city", VK::kCity)}),
       Table("employee", "company staff",
             {Col("employee_id", VK::kSequentialId),
              Col("employee_name", VK::kPersonName),
              Col("department_id", VK::kSmallInt, "assigned department"),
              Col("salary", VK::kMoney, "annual salary"),
              Col("hire_date", VK::kDate, "date of hiring"),
              Col("gender", VK::kGender, "employee gender")})},
      {Fk("employee", "department_id", "department", "department_id")}});

  domains.push_back(DomainSpec{
      "shops",
      {Table("shop", "retail locations",
             {Col("shop_id", VK::kSequentialId),
              Col("shop_name", VK::kCompany), Col("city", VK::kCity),
              Col("open_year", VK::kYear)}),
       Table("product", "catalog items",
             {Col("product_id", VK::kSequentialId),
              Col("product_name", VK::kTitleWords),
              Col("category", VK::kWord), Col("price", VK::kMoney)}),
       Table("sale", "sales transactions",
             {Col("sale_id", VK::kSequentialId),
              Col("shop_id", VK::kSmallInt, "selling shop"),
              Col("product_id", VK::kSmallInt, "sold product"),
              Col("quantity", VK::kSmallInt),
              Col("sale_date", VK::kDate, "date of sale")})},
      {Fk("sale", "shop_id", "shop", "shop_id"),
       Fk("sale", "product_id", "product", "product_id")}});

  domains.push_back(DomainSpec{
      "hospital",
      {Table("doctor", "medical staff",
             {Col("doctor_id", VK::kSequentialId),
              Col("doctor_name", VK::kPersonName),
              Col("specialty", VK::kWord), Col("experience_years", VK::kSmallInt)}),
       Table("patient", "registered patients",
             {Col("patient_id", VK::kSequentialId),
              Col("patient_name", VK::kPersonName), Col("age", VK::kSmallInt),
              Col("city", VK::kCity), Col("gender", VK::kGender)}),
       Table("appointment", "scheduled visits",
             {Col("appointment_id", VK::kSequentialId),
              Col("doctor_id", VK::kSmallInt, "attending doctor"),
              Col("patient_id", VK::kSmallInt, "visiting patient"),
              Col("visit_date", VK::kDate), Col("fee", VK::kMoney)})},
      {Fk("appointment", "doctor_id", "doctor", "doctor_id"),
       Fk("appointment", "patient_id", "patient", "patient_id")}});

  domains.push_back(DomainSpec{
      "library",
      {Table("author", "book authors",
             {Col("author_id", VK::kSequentialId),
              Col("author_name", VK::kPersonName),
              Col("country", VK::kCountry), Col("birth_year", VK::kYear)}),
       Table("book", "catalogued books",
             {Col("book_id", VK::kSequentialId),
              Col("title", VK::kTitleWords),
              Col("author_id", VK::kSmallInt, "writer of the book"),
              Col("publish_year", VK::kYear), Col("page_count", VK::kBigInt),
              Col("language", VK::kWord)})},
      {Fk("book", "author_id", "author", "author_id")}});

  domains.push_back(DomainSpec{
      "sports",
      {Table("team", "league teams",
             {Col("team_id", VK::kSequentialId), Col("team_name", VK::kCompany),
              Col("home_city", VK::kCity), Col("founded_year", VK::kYear)}),
       Table("player", "rostered players",
             {Col("player_id", VK::kSequentialId),
              Col("player_name", VK::kPersonName),
              Col("team_id", VK::kSmallInt, "current team"),
              Col("position", VK::kWord), Col("goals", VK::kSmallInt),
              Col("salary", VK::kMoney)})},
      {Fk("player", "team_id", "team", "team_id")}});

  domains.push_back(DomainSpec{
      "restaurants",
      {Table("restaurant", "dining establishments",
             {Col("restaurant_id", VK::kSequentialId),
              Col("restaurant_name", VK::kCompany), Col("city", VK::kCity),
              Col("cuisine", VK::kWord), Col("rating", VK::kRate)}),
       Table("dish", "menu items",
             {Col("dish_id", VK::kSequentialId),
              Col("dish_name", VK::kTitleWords),
              Col("restaurant_id", VK::kSmallInt, "serving restaurant"),
              Col("price", VK::kMoney), Col("calories", VK::kBigInt)})},
      {Fk("dish", "restaurant_id", "restaurant", "restaurant_id")}});

  domains.push_back(DomainSpec{
      "movies",
      {Table("director", "film directors",
             {Col("director_id", VK::kSequentialId),
              Col("director_name", VK::kPersonName),
              Col("country", VK::kCountry)}),
       Table("movie", "released films",
             {Col("movie_id", VK::kSequentialId),
              Col("movie_title", VK::kTitleWords),
              Col("director_id", VK::kSmallInt, "film director"),
              Col("release_year", VK::kYear), Col("box_office", VK::kMoney),
              Col("genre", VK::kWord)})},
      {Fk("movie", "director_id", "director", "director_id")}});

  domains.push_back(DomainSpec{
      "cars",
      {Table("maker", "car manufacturers",
             {Col("maker_id", VK::kSequentialId), Col("maker_name", VK::kCompany),
              Col("country", VK::kCountry), Col("founded_year", VK::kYear)}),
       Table("model", "car models",
             {Col("model_id", VK::kSequentialId),
              Col("model_name", VK::kTitleWords),
              Col("maker_id", VK::kSmallInt, "manufacturer"),
              Col("horsepower", VK::kSmallInt), Col("price", VK::kMoney),
              Col("body_style", VK::kWord)})},
      {Fk("model", "maker_id", "maker", "maker_id")}});

  domains.push_back(DomainSpec{
      "real_estate",
      {Table("agent", "real estate agents",
             {Col("agent_id", VK::kSequentialId),
              Col("agent_name", VK::kPersonName), Col("phone", VK::kPhone),
              Col("commission_rate", VK::kRate)}),
       Table("property", "listed properties",
             {Col("property_id", VK::kSequentialId),
              Col("address", VK::kTitleWords),
              Col("agent_id", VK::kSmallInt, "listing agent"),
              Col("city", VK::kCity), Col("asking_price", VK::kMoney),
              Col("bedrooms", VK::kSmallInt)})},
      {Fk("property", "agent_id", "agent", "agent_id")}});

  domains.push_back(DomainSpec{
      "museums",
      {Table("museum", "public museums",
             {Col("museum_id", VK::kSequentialId),
              Col("museum_name", VK::kTitleWords), Col("city", VK::kCity),
              Col("annual_visitors", VK::kBigInt)}),
       Table("exhibit", "museum exhibits",
             {Col("exhibit_id", VK::kSequentialId),
              Col("exhibit_title", VK::kTitleWords),
              Col("museum_id", VK::kSmallInt, "hosting museum"),
              Col("theme", VK::kWord), Col("start_year", VK::kYear)})},
      {Fk("exhibit", "museum_id", "museum", "museum_id")}});

  domains.push_back(DomainSpec{
      "hotels",
      {Table("hotel", "hotels",
             {Col("hotel_id", VK::kSequentialId), Col("hotel_name", VK::kCompany),
              Col("city", VK::kCity), Col("star_rating", VK::kSmallInt)}),
       Table("booking", "room bookings",
             {Col("booking_id", VK::kSequentialId),
              Col("hotel_id", VK::kSmallInt, "booked hotel"),
              Col("guest_name", VK::kPersonName),
              Col("check_in", VK::kDate, "check in date"),
              Col("nights", VK::kSmallInt), Col("total_cost", VK::kMoney)})},
      {Fk("booking", "hotel_id", "hotel", "hotel_id")}});

  domains.push_back(DomainSpec{
      "elections",
      {Table("district", "voting districts",
             {Col("district_id", VK::kSequentialId),
              Col("district_name", VK::kCity),
              Col("population", VK::kBigInt)}),
       Table("candidate", "election candidates",
             {Col("candidate_id", VK::kSequentialId),
              Col("candidate_name", VK::kPersonName),
              Col("district_id", VK::kSmallInt, "home district"),
              Col("party", VK::kWord), Col("votes", VK::kBigInt)})},
      {Fk("candidate", "district_id", "district", "district_id")}});

  domains.push_back(DomainSpec{
      "music_streaming",
      {Table("artist", "recording artists",
             {Col("artist_id", VK::kSequentialId),
              Col("artist_name", VK::kPersonName),
              Col("country", VK::kCountry), Col("debut_year", VK::kYear)}),
       Table("album", "released albums",
             {Col("album_id", VK::kSequentialId),
              Col("album_title", VK::kTitleWords),
              Col("artist_id", VK::kSmallInt, "recording artist"),
              Col("release_year", VK::kYear)}),
       Table("track", "album tracks",
             {Col("track_id", VK::kSequentialId),
              Col("track_title", VK::kTitleWords),
              Col("album_id", VK::kSmallInt, "parent album"),
              Col("duration_seconds", VK::kBigInt),
              Col("play_count", VK::kBigInt)})},
      {Fk("album", "artist_id", "artist", "artist_id"),
       Fk("track", "album_id", "album", "album_id")}});

  domains.push_back(DomainSpec{
      "insurance",
      {Table("customer", "policy holders",
             {Col("customer_id", VK::kSequentialId),
              Col("customer_name", VK::kPersonName), Col("city", VK::kCity),
              Col("age", VK::kSmallInt)}),
       Table("policy", "insurance policies",
             {Col("policy_id", VK::kSequentialId),
              Col("customer_id", VK::kSmallInt, "policy holder"),
              Col("policy_type", VK::kWord), Col("premium", VK::kMoney),
              Col("start_date", VK::kDate)}),
       Table("claim", "filed claims",
             {Col("claim_id", VK::kSequentialId),
              Col("policy_id", VK::kSmallInt, "claimed policy"),
              Col("claim_amount", VK::kMoney),
              Col("claim_date", VK::kDate),
              Col("approved", VK::kYesNo, "whether the claim was approved")})},
      {Fk("policy", "customer_id", "customer", "customer_id"),
       Fk("claim", "policy_id", "policy", "policy_id")}});

  domains.push_back(DomainSpec{
      "logistics",
      {Table("warehouse", "storage facilities",
             {Col("warehouse_id", VK::kSequentialId),
              Col("warehouse_name", VK::kCompany), Col("city", VK::kCity),
              Col("capacity", VK::kBigInt, "capacity in pallets")}),
       Table("shipment", "outbound shipments",
             {Col("shipment_id", VK::kSequentialId),
              Col("warehouse_id", VK::kSmallInt, "origin warehouse"),
              Col("destination_city", VK::kCity),
              Col("weight_kg", VK::kBigInt, "weight in kilograms"),
              Col("ship_date", VK::kDate), Col("freight_cost", VK::kMoney)})},
      {Fk("shipment", "warehouse_id", "warehouse", "warehouse_id")}});

  domains.push_back(DomainSpec{
      "gyms",
      {Table("gym", "fitness centers",
             {Col("gym_id", VK::kSequentialId), Col("gym_name", VK::kCompany),
              Col("city", VK::kCity), Col("monthly_fee", VK::kMoney)}),
       Table("member", "gym members",
             {Col("member_id", VK::kSequentialId),
              Col("member_name", VK::kPersonName),
              Col("gym_id", VK::kSmallInt, "home gym"),
              Col("join_year", VK::kYear), Col("age", VK::kSmallInt),
              Col("membership_level", VK::kWord)})},
      {Fk("member", "gym_id", "gym", "gym_id")}});

  domains.push_back(DomainSpec{
      "farms",
      {Table("farm", "agricultural farms",
             {Col("farm_id", VK::kSequentialId), Col("owner_name", VK::kPersonName),
              Col("region", VK::kCity), Col("total_hectares", VK::kBigInt)}),
       Table("crop", "planted crops",
             {Col("crop_id", VK::kSequentialId), Col("crop_name", VK::kWord),
              Col("farm_id", VK::kSmallInt, "growing farm"),
              Col("harvest_year", VK::kYear),
              Col("crop_yield", VK::kBigInt, "yield in tons"),
              Col("market_price", VK::kMoney)})},
      {Fk("crop", "farm_id", "farm", "farm_id")}});

  domains.push_back(DomainSpec{
      "universities",
      {Table("university", "higher education institutions",
             {Col("university_id", VK::kSequentialId),
              Col("university_name", VK::kTitleWords), Col("city", VK::kCity),
              Col("founded_year", VK::kYear),
              Col("endowment", VK::kMoney, "endowment in millions")}),
       Table("professor", "faculty members",
             {Col("professor_id", VK::kSequentialId),
              Col("professor_name", VK::kPersonName),
              Col("university_id", VK::kSmallInt, "employing university"),
              Col("field", VK::kWord), Col("publication_count", VK::kSmallInt),
              Col("salary", VK::kMoney)})},
      {Fk("professor", "university_id", "university", "university_id")}});

  return domains;
}

DomainSpec BuildBankFinancials() {
  // Mirrors the paper's Bank-Financials: few tables, one very wide table
  // with abbreviated/ambiguous column names (Figure 2 shows 65 columns on
  // the largest table; we model the same shape at reduced width).
  DomainSpec d;
  d.name = "bank_financials";
  TableConcept company =
      Table("listed_company", "companies listed on the exchange",
            {Col("company_id", VK::kSequentialId),
             Col("company_name", VK::kCompany),
             Col("industry", VK::kWord), Col("city", VK::kCity),
             Col("list_year", VK::kYear)});
  TableConcept report =
      Table("financial_report", "quarterly financial disclosures",
            {Col("report_id", VK::kSequentialId),
             Col("company_id", VK::kSmallInt, "reporting company")});
  // A wide block of abbreviated financial metrics.
  const struct {
    const char* abbr;
    const char* phrase;
    VK kind;
  } kMetrics[] = {
      {"tor", "total operating revenue", VK::kMoney},
      {"np", "net profit", VK::kMoney},
      {"npgr", "net profit growth rate", VK::kRate},
      {"roe", "return on equity", VK::kRate},
      {"roa", "return on assets", VK::kRate},
      {"eps", "earnings per share", VK::kRate},
      {"bps", "book value per share", VK::kMoney},
      {"ta", "total assets", VK::kMoney},
      {"tl", "total liabilities", VK::kMoney},
      {"dar", "debt to asset ratio", VK::kRate},
      {"cr", "current ratio", VK::kRate},
      {"qr", "quick ratio", VK::kRate},
      {"gpm", "gross profit margin", VK::kRate},
      {"npm", "net profit margin", VK::kRate},
      {"itr", "inventory turnover ratio", VK::kRate},
      {"rtr", "receivables turnover ratio", VK::kRate},
      {"ocf", "operating cash flow", VK::kMoney},
      {"icf", "investing cash flow", VK::kMoney},
      {"fcf", "financing cash flow", VK::kMoney},
      {"rnd", "research and development expense", VK::kMoney},
  };
  for (const auto& m : kMetrics) {
    report.columns.push_back(Col(m.abbr, m.kind, m.phrase));
  }
  report.columns.push_back(Col("report_year", VK::kYear, "fiscal year"));
  TableConcept branch =
      Table("bank_branch", "bank branch registry",
            {Col("branch_id", VK::kSequentialId),
             Col("branch_name", VK::kCompany), Col("city", VK::kCity),
             Col("deposit_total", VK::kMoney, "total deposits held")});
  TableConcept loan =
      Table("corporate_loan", "loans issued to listed companies",
            {Col("loan_id", VK::kSequentialId),
             Col("company_id", VK::kSmallInt, "borrowing company"),
             Col("branch_id", VK::kSmallInt, "issuing branch"),
             Col("loan_amount", VK::kMoney), Col("interest_rate", VK::kRate),
             Col("issue_date", VK::kDate)});
  d.tables = {company, report, branch, loan};
  d.fks = {Fk("financial_report", "company_id", "listed_company", "company_id"),
           Fk("corporate_loan", "company_id", "listed_company", "company_id"),
           Fk("corporate_loan", "branch_id", "bank_branch", "branch_id")};
  return d;
}

DomainSpec BuildAminerSimplified() {
  // Mirrors the paper's Aminer-Simplified academic graph: entities with
  // complex join relationships (author - paper - venue - affiliation).
  DomainSpec d;
  d.name = "aminer_simplified";
  d.tables = {
      Table("researcher", "academic authors",
            {Col("researcher_id", VK::kSequentialId),
             Col("researcher_name", VK::kPersonName),
             Col("h_index", VK::kSmallInt, "Hirsch index"),
             Col("affiliation_id", VK::kSmallInt, "home institution"),
             Col("research_interest", VK::kWord)}),
      Table("affiliation", "research institutions",
            {Col("affiliation_id", VK::kSequentialId),
             Col("affiliation_name", VK::kTitleWords),
             Col("country", VK::kCountry)}),
      Table("paper", "published papers",
            {Col("paper_id", VK::kSequentialId),
             Col("title", VK::kTitleWords),
             Col("venue_id", VK::kSmallInt, "publication venue"),
             Col("publish_year", VK::kYear),
             Col("citation_count", VK::kBigInt),
             Col("abstract", VK::kTitleWords, "paper abstract")}),
      Table("venue", "conferences and journals",
            {Col("venue_id", VK::kSequentialId),
             Col("venue_name", VK::kTitleWords),
             Col("field", VK::kWord), Col("impact_factor", VK::kRate)}),
      Table("authorship", "author-paper links",
            {Col("authorship_id", VK::kSequentialId),
             Col("researcher_id", VK::kSmallInt, "author"),
             Col("paper_id", VK::kSmallInt, "authored paper"),
             Col("author_rank", VK::kSmallInt, "position in author list")})};
  d.fks = {
      Fk("researcher", "affiliation_id", "affiliation", "affiliation_id"),
      Fk("paper", "venue_id", "venue", "venue_id"),
      Fk("authorship", "researcher_id", "researcher", "researcher_id"),
      Fk("authorship", "paper_id", "paper", "paper_id")};
  return d;
}

}  // namespace

const std::vector<DomainSpec>& AllDomains() {
  static const std::vector<DomainSpec>* const kDomains =
      new std::vector<DomainSpec>(BuildDomains());
  return *kDomains;
}

const DomainSpec* FindDomain(const std::string& name) {
  for (const auto& domain : AllDomains()) {
    if (domain.name == name) return &domain;
  }
  if (name == BankFinancialsDomain().name) return &BankFinancialsDomain();
  if (name == AminerSimplifiedDomain().name) return &AminerSimplifiedDomain();
  return nullptr;
}

const DomainSpec& BankFinancialsDomain() {
  static const DomainSpec* const kSpec = new DomainSpec(BuildBankFinancials());
  return *kSpec;
}

const DomainSpec& AminerSimplifiedDomain() {
  static const DomainSpec* const kSpec =
      new DomainSpec(BuildAminerSimplified());
  return *kSpec;
}

}  // namespace codes
