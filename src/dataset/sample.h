#ifndef CODES_DATASET_SAMPLE_H_
#define CODES_DATASET_SAMPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "sqlengine/database.h"

namespace codes {

/// Identifies one schema item used by a sample's gold SQL — the label the
/// schema item classifier trains on.
struct UsedSchemaItem {
  std::string table;
  std::string column;  ///< empty when the whole table is referenced
};

/// One text-to-SQL example: the triplet (database, question, SQL) of
/// Section 8, plus generator metadata.
struct Text2SqlSample {
  int db_index = 0;             ///< index into the benchmark's databases
  std::string question;
  std::string sql;              ///< gold SQL text
  int template_id = -1;         ///< which grammar template produced it
  std::string external_knowledge;  ///< BIRD-style EK hint; may be empty
  std::vector<UsedSchemaItem> used_items;  ///< schema items in the gold SQL
};

/// A full benchmark: databases plus train/dev splits. Dev samples refer to
/// databases disjoint from the train databases (cross-domain setting).
struct Text2SqlBenchmark {
  std::string name;
  std::vector<sql::Database> databases;
  std::vector<Text2SqlSample> train;
  std::vector<Text2SqlSample> dev;
  /// Domain name each database was generated from (parallel to
  /// `databases`); empty for hand-built databases. Used by the test-suite
  /// metric to regenerate database contents.
  std::vector<std::string> domain_names;
  /// Profile the databases were generated with (needed to regenerate
  /// contents for the test-suite metric).
  DbProfile profile;

  const sql::Database& DbOf(const Text2SqlSample& sample) const {
    return databases[static_cast<size_t>(sample.db_index)];
  }
};

}  // namespace codes

#endif  // CODES_DATASET_SAMPLE_H_
