#ifndef CODES_DATASET_VALUE_POOL_H_
#define CODES_DATASET_VALUE_POOL_H_

#include <string>

#include "common/rng.h"
#include "sqlengine/value.h"

namespace codes {

/// Kinds of synthetic cell values the populator can produce. Each column
/// concept in a domain spec declares its kind; the populator draws from
/// the corresponding pool.
enum class ValueKind {
  kPersonName,  ///< "Sarah Martinez"
  kGivenName,   ///< "Sarah"
  kCity,        ///< "Jesenik"
  kCountry,     ///< "Canada"
  kCompany,     ///< "Northwind Capital"
  kTitleWords,  ///< 1-3 capitalized words: song/paper/product titles
  kWord,        ///< single lowercase word (categories, genres)
  kYear,        ///< 1950..2023
  kSmallInt,    ///< 0..100
  kBigInt,      ///< 0..1e6
  kMoney,       ///< 10.00..99999.99
  kRate,        ///< 0.0..1.0
  kCode,        ///< "AB-1234"
  kDate,        ///< "YYYY-MM-DD" text
  kGender,      ///< 'M' / 'F'
  kYesNo,       ///< 'yes' / 'no'
  kEmail,       ///< derived from a name
  kPhone,       ///< digits
  kSequentialId,  ///< handled by the populator, not the pool
};

/// True when the kind produces TEXT values (vs numeric).
bool IsTextKind(ValueKind kind);

/// SQL storage type for a kind.
sql::DataType TypeOfKind(ValueKind kind);

/// Draws one value of the given kind. `row` is the row index, used by
/// kSequentialId and to decorrelate value streams.
sql::Value DrawValue(ValueKind kind, int row, Rng& rng);

}  // namespace codes

#endif  // CODES_DATASET_VALUE_POOL_H_
