#ifndef CODES_DATASET_DB_GENERATOR_H_
#define CODES_DATASET_DB_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "dataset/domains.h"
#include "sqlengine/database.h"

namespace codes {

/// Controls the character of a generated database. Two built-in profiles
/// model the paper's benchmarks:
///  * Spider(): clean full-word schema names, small tables.
///  * Bird(): abbreviated/ambiguous column names whose full meaning lives
///    in comments, wide tables (filler columns), larger and dirtier data.
struct DbProfile {
  bool abbreviate_names = false;
  int filler_columns = 0;       ///< extra distractor columns per table
  int min_rows = 40;
  int max_rows = 120;
  double null_probability = 0.03;
  double dirty_probability = 0.0;  ///< text-value case/space mangling
  /// Fraction of abbreviated columns whose comment is *hidden* from the
  /// schema after question generation: the question still uses the full
  /// concept phrase, but only the sample's external-knowledge hint maps
  /// the phrase to the column — BIRD's evidence mechanism.
  double hidden_comment_probability = 0.0;

  static DbProfile Spider();
  static DbProfile Bird();
};

/// Abbreviates a snake_case identifier: multi-word names collapse to their
/// initials ("road_overtime_losses" -> "rotl"); single words truncate to
/// four characters. Mirrors BIRD's ambiguous column naming (Table 2).
std::string AbbreviateIdentifier(const std::string& name);

/// Human phrase a question should use for a column: its comment when
/// present, else the identifier rendered as words.
std::string ColumnPhrase(const sql::ColumnDef& col);

/// Human phrase for a table.
std::string TablePhrase(const sql::TableDef& table);

/// Materializes `domain` into a populated database according to `profile`.
/// `instance_salt` perturbs naming so several databases can share a domain;
/// rows, value draws, and row counts come from `rng`. Foreign-key columns
/// are filled with valid parent ids.
sql::Database GenerateDatabase(const DomainSpec& domain,
                               const DbProfile& profile, Rng& rng,
                               const std::string& instance_salt = "");

/// Regenerates the *contents* of `db` (same schema, fresh rows) — the
/// database-augmentation step behind test-suite accuracy (Section 9.1.2).
sql::Database RegenerateContents(const sql::Database& db,
                                 const DomainSpec& domain,
                                 const DbProfile& profile, Rng& rng);

}  // namespace codes

#endif  // CODES_DATASET_DB_GENERATOR_H_
