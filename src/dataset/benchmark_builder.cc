#include "dataset/benchmark_builder.h"

#include <set>
#include <unordered_set>

#include "common/status.h"
#include "common/string_util.h"
#include "dataset/domains.h"
#include "dataset/templates.h"
#include "sqlengine/executor.h"

namespace codes {

namespace {

/// Columns whose comment will be hidden from the schema after sample
/// generation (BIRD's "only the evidence explains this column" setting).
using HiddenColumnSet = std::set<std::pair<int, int>>;

HiddenColumnSet PickHiddenColumns(const sql::Database& db,
                                  double probability, Rng& rng) {
  HiddenColumnSet hidden;
  if (probability <= 0) return hidden;
  const auto& schema = db.schema();
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    for (size_t c = 0; c < schema.tables[t].columns.size(); ++c) {
      const auto& col = schema.tables[t].columns[c];
      if (col.comment.empty() || col.is_primary_key) continue;
      if (rng.Bernoulli(probability)) {
        hidden.emplace(static_cast<int>(t), static_cast<int>(c));
      }
    }
  }
  return hidden;
}

/// Builds the BIRD-style external-knowledge string for a sample: it maps
/// ambiguous column names to their meaning ("net profit growth rate refers
/// to financial_report.npgr"), the same shape of evidence BIRD provides.
/// Hidden columns always get a hint — after hiding, the EK is the *only*
/// source of that mapping.
std::string BuildExternalKnowledge(const sql::Database& db,
                                   const TemplateInstance& inst,
                                   const HiddenColumnSet& hidden) {
  std::string ek;
  int hints = 0;
  for (const auto& item : inst.used_items) {
    if (item.column.empty()) continue;
    auto t = db.schema().FindTable(item.table);
    if (!t) continue;
    auto c = db.schema().tables[*t].FindColumn(item.column);
    if (!c) continue;
    const auto& col = db.schema().tables[*t].columns[*c];
    if (col.comment.empty()) continue;
    bool is_hidden = hidden.count({*t, *c}) > 0;
    // Non-hidden columns only need evidence when their name is ambiguous
    // (the question never spells it out) and we still have hint budget.
    if (!is_hidden) {
      if (hints >= 2) continue;
      if (ContainsIgnoreCase(inst.question, col.name)) continue;
    }
    if (!ek.empty()) ek += " ; ";
    ek += col.comment + " refers to " + item.table + "." + col.name;
    ++hints;
  }
  return ek;
}

void SampleInto(std::vector<Text2SqlSample>& out, int db_index,
                const sql::Database& db, int count, bool with_ek,
                const HiddenColumnSet& hidden, Rng& rng) {
  const TemplateLibrary& lib = GlobalTemplates();
  int produced = 0;
  int failures = 0;
  while (produced < count && failures < count * 10) {
    auto inst = lib.InstantiateRandom(db, rng);
    if (!inst.has_value()) break;
    // Keep only executable SQL (it always should be; belt and braces).
    if (!sql::IsExecutable(db, inst->sql_text)) {
      ++failures;
      continue;
    }
    Text2SqlSample sample;
    sample.db_index = db_index;
    sample.question = inst->question;
    sample.sql = inst->sql_text;
    sample.template_id = inst->template_id;
    sample.used_items = inst->used_items;
    if (with_ek) {
      sample.external_knowledge = BuildExternalKnowledge(db, *inst, hidden);
    }
    out.push_back(std::move(sample));
    ++produced;
  }
}

/// Clears the comments of hidden columns; from here on only EK hints can
/// explain them.
void HideComments(sql::Database& db, const HiddenColumnSet& hidden) {
  for (const auto& [t, c] : hidden) {
    db.mutable_schema().tables[static_cast<size_t>(t)]
        .columns[static_cast<size_t>(c)]
        .comment.clear();
  }
}

}  // namespace

Text2SqlBenchmark BuildBenchmark(const BenchmarkConfig& config) {
  CODES_CHECK(config.train_domains + config.dev_domains <=
              static_cast<int>(AllDomains().size()));
  Text2SqlBenchmark bench;
  bench.name = config.name;
  bench.profile = config.profile;
  Rng rng(config.seed);

  // Shuffle domain order deterministically, then split.
  std::vector<int> domain_order(AllDomains().size());
  for (size_t i = 0; i < domain_order.size(); ++i) {
    domain_order[i] = static_cast<int>(i);
  }
  rng.Shuffle(domain_order);

  auto add_db = [&bench, &config, &rng](int domain_idx,
                                        const std::string& salt) {
    Rng db_rng = rng.Fork();
    bench.databases.push_back(GenerateDatabase(AllDomains()[domain_idx],
                                               config.profile, db_rng, salt));
    bench.domain_names.push_back(AllDomains()[domain_idx].name);
    return static_cast<int>(bench.databases.size()) - 1;
  };

  for (int i = 0; i < config.train_domains; ++i) {
    int db_index = add_db(domain_order[i], "");
    Rng hide_rng = rng.Fork();
    HiddenColumnSet hidden = PickHiddenColumns(
        bench.databases[db_index], config.profile.hidden_comment_probability,
        hide_rng);
    Rng sample_rng = rng.Fork();
    SampleInto(bench.train, db_index, bench.databases[db_index],
               config.train_samples_per_db, config.with_external_knowledge,
               hidden, sample_rng);
    HideComments(bench.databases[db_index], hidden);
  }
  for (int i = 0; i < config.dev_domains; ++i) {
    int domain_idx = domain_order[config.train_domains + i];
    int db_index = add_db(domain_idx, "");
    Rng hide_rng = rng.Fork();
    HiddenColumnSet hidden = PickHiddenColumns(
        bench.databases[db_index], config.profile.hidden_comment_probability,
        hide_rng);
    Rng sample_rng = rng.Fork();
    SampleInto(bench.dev, db_index, bench.databases[db_index],
               config.dev_samples_per_db, config.with_external_knowledge,
               hidden, sample_rng);
    HideComments(bench.databases[db_index], hidden);
  }
  return bench;
}

Text2SqlBenchmark BuildSpiderLike(uint64_t seed) {
  BenchmarkConfig config;
  config.name = "spider_like";
  config.profile = DbProfile::Spider();
  config.train_domains = 14;
  config.dev_domains = 6;
  config.train_samples_per_db = 60;
  config.dev_samples_per_db = 25;
  config.with_external_knowledge = false;
  config.seed = seed;
  return BuildBenchmark(config);
}

Text2SqlBenchmark BuildBirdLike(uint64_t seed) {
  BenchmarkConfig config;
  config.name = "bird_like";
  config.profile = DbProfile::Bird();
  config.train_domains = 14;
  config.dev_domains = 6;
  config.train_samples_per_db = 60;
  config.dev_samples_per_db = 25;
  config.with_external_knowledge = true;
  config.seed = seed;
  return BuildBenchmark(config);
}

Text2SqlBenchmark BuildTinySpiderLike(uint64_t seed) {
  BenchmarkConfig config;
  config.name = "tiny_spider_like";
  config.profile = DbProfile::Spider();
  config.train_domains = 4;
  config.dev_domains = 2;
  config.train_samples_per_db = 20;
  config.dev_samples_per_db = 10;
  config.with_external_knowledge = false;
  config.seed = seed;
  return BuildBenchmark(config);
}

}  // namespace codes
