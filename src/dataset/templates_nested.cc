#include "dataset/templates.h"
#include "dataset/templates_internal.h"

namespace codes {

using namespace codes::template_internal;

void TemplateLibrary::RegisterSubqueryAndSetTemplates() {
  // 69/70. membership via subquery over the FK column.
  auto register_in_subquery = [this](std::string name, bool negated) {
    Register(
        std::move(name),
        negated ? "Show the {COLUMN} of {TABLE2} that have no {TABLE1}."
                : "Show the {COLUMN} of {TABLE2} that have some {TABLE1}.",
        [negated](const Database& db, Rng& rng,
                  const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto edge = PickJoinEdge(ctx);
          if (!edge) return std::nullopt;
          auto label = PickSelectColumn(ctx, edge->parent_t,
                                        TextColumns(db, edge->parent_t));
          if (!label) return std::nullopt;
          auto stmt = From(db, edge->parent_t);
          AddSelect(*stmt, ColRef(db, edge->parent_t, *label, false));
          auto sub = From(db, edge->child_t);
          AddSelect(*sub, ColRef(db, edge->child_t, edge->child_c, false));
          auto in = std::make_unique<Expr>();
          in->kind = ExprKind::kInSubquery;
          in->negated = negated;
          in->children.push_back(
              ColRef(db, edge->parent_t, edge->parent_c, false));
          in->subquery = std::move(sub);
          stmt->where = std::move(in);
          auto inst = Finish(
              std::move(stmt),
              Fill(negated
                       ? std::string(
                             "Which {T2} do not have any {T1}? Show the {C}.")
                       : std::string(
                             "Which {T2} have at least one {T1}? Show the "
                             "{C}."),
                   {{"T2", PhraseT(db, edge->parent_t)},
                    {"T1", PhraseT(db, edge->child_t)},
                    {"C", PhraseC(db, edge->parent_t, *label)}}));
          AddUsed(inst, db, edge->parent_t, {*label, edge->parent_c});
          AddUsed(inst, db, edge->child_t, {edge->child_c});
          return inst;
        });
  };
  register_in_subquery("in_subquery", false);
  register_in_subquery("not_in_subquery", true);

  // 71/72. compare against the table-wide average.
  auto register_scalar_avg = [this](std::string name, bool above) {
    Register(
        std::move(name),
        above ? "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is above "
                "average."
              : "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is below "
                "average.",
        [above](const Database& db, Rng& rng,
                const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !TextColumns(db, t).empty() &&
                   !NumericColumns(db, t).empty();
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          auto num = PickFilterColumn(ctx, *t, NumericColumns(db, *t));
          if (!sel || !num) return std::nullopt;
          auto stmt = From(db, *t);
          AddSelect(*stmt, ColRef(db, *t, *sel, false));
          auto sub = From(db, *t);
          AddSelect(*sub, Agg("AVG", ColRef(db, *t, *num, false)));
          auto scalar = std::make_unique<Expr>();
          scalar->kind = ExprKind::kScalarSubquery;
          scalar->subquery = std::move(sub);
          stmt->where = Expr::MakeBinary(
              above ? BinaryOp::kGt : BinaryOp::kLt,
              ColRef(db, *t, *num, false), std::move(scalar));
          auto inst = Finish(
              std::move(stmt),
              Fill(above ? std::string("Which {T} have a {C2} higher than "
                                       "the average? Show the {C1}.")
                         : std::string("Which {T} have a {C2} lower than the "
                                       "average? Show the {C1}."),
                   {{"T", PhraseT(db, *t)},
                    {"C2", PhraseC(db, *t, *num)},
                    {"C1", PhraseC(db, *t, *sel)}}));
          AddUsed(inst, db, *t, {*sel, *num});
          return inst;
        });
  };
  register_scalar_avg("scalar_gt_avg", true);
  register_scalar_avg("scalar_lt_avg", false);

  // 73/74/75. set operations over two category filters.
  auto register_set_op = [this](std::string name, SetOp op,
                                std::string connective) {
    Register(
        std::move(name),
        "Show the {COLUMN1} of {TABLE} whose {COLUMN2} is {VALUE1} " +
            connective + " whose {COLUMN3} is {VALUE2}.",
        [op](const Database& db, Rng& rng,
             const SlotGuidance* g) -> std::optional<TemplateInstance> {
          Ctx ctx{db, rng, g};
          auto tables = TablesWhere(db, [&db](int t) {
            return !TextColumns(db, t).empty() &&
                   CategoryColumns(db, t).size() >= 2;
          });
          auto t = PickTable(ctx, tables);
          if (!t) return std::nullopt;
          auto sel = PickSelectColumn(ctx, *t, TextColumns(db, *t));
          auto cats = CategoryColumns(db, *t);
          auto c1 = PickFilterColumn(ctx, *t, cats);
          if (!sel || !c1) return std::nullopt;
          cats.erase(std::remove(cats.begin(), cats.end(), *c1), cats.end());
          auto c2 = PickFilterColumn(ctx, *t, cats);
          if (!c2) return std::nullopt;
          auto v1 = SampleCell(ctx, *t, *c1);
          auto v2 = SampleCell(ctx, *t, *c2);
          if (!v1 || !v2) return std::nullopt;

          auto lhs = From(db, *t);
          AddSelect(*lhs, ColRef(db, *t, *sel, false));
          lhs->where = Expr::MakeBinary(BinaryOp::kEq,
                                        ColRef(db, *t, *c1, false),
                                        Expr::MakeLiteral(*v1));
          auto rhs = From(db, *t);
          AddSelect(*rhs, ColRef(db, *t, *sel, false));
          rhs->where = Expr::MakeBinary(BinaryOp::kEq,
                                        ColRef(db, *t, *c2, false),
                                        Expr::MakeLiteral(*v2));
          lhs->set_op = op;
          lhs->set_rhs = std::move(rhs);

          std::string pattern;
          switch (op) {
            case SetOp::kUnion:
              pattern = "Show the {C1} of {T} whose {C2} is {V1} together "
                        "with those whose {C3} is {V2}.";
              break;
            case SetOp::kIntersect:
              pattern = "Show the {C1} of {T} that both have {C2} {V1} and "
                        "have {C3} {V2}.";
              break;
            default:
              pattern = "Show the {C1} of {T} whose {C2} is {V1} but whose "
                        "{C3} is not {V2}.";
              break;
          }
          auto inst = Finish(
              std::move(lhs),
              Fill(pattern, {{"C1", PhraseC(db, *t, *sel)},
                             {"T", PhraseT(db, *t)},
                             {"C2", PhraseC(db, *t, *c1)},
                             {"V1", QuoteVal(*v1)},
                             {"C3", PhraseC(db, *t, *c2)},
                             {"V2", QuoteVal(*v2)}}));
          AddUsed(inst, db, *t, {*sel, *c1, *c2});
          inst.value_strings.push_back(v1->ToString());
          inst.value_strings.push_back(v2->ToString());
          return inst;
        });
  };
  register_set_op("union_two", SetOp::kUnion, "or");
  register_set_op("intersect_two", SetOp::kIntersect, "and");
  register_set_op("except_two", SetOp::kExcept, "but not");

  // 76th/77th shapes (74/75 after zero-indexing): distinct projection with
  // a filter, and counting rows with a missing value.
  Register(
      "distinct_where",
      "Show the different {COLUMN1} of {TABLE} whose {COLUMN2} is {VALUE}.",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return CategoryColumns(db, t).size() >= 2;
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cats = CategoryColumns(db, *t);
        auto sel = PickSelectColumn(ctx, *t, cats);
        if (!sel) return std::nullopt;
        cats.erase(std::remove(cats.begin(), cats.end(), *sel), cats.end());
        auto filt = PickFilterColumn(ctx, *t, cats);
        if (!filt) return std::nullopt;
        auto v = SampleCell(ctx, *t, *filt);
        if (!v) return std::nullopt;
        auto stmt = From(db, *t);
        stmt->distinct = true;
        AddSelect(*stmt, ColRef(db, *t, *sel, false));
        stmt->where = Expr::MakeBinary(BinaryOp::kEq,
                                       ColRef(db, *t, *filt, false),
                                       Expr::MakeLiteral(*v));
        auto inst = Finish(
            std::move(stmt),
            Fill("What are the different {C1} of the {T} whose {C2} is {V}?",
                 {{"C1", PhraseC(db, *t, *sel)},
                  {"T", PhraseT(db, *t)},
                  {"C2", PhraseC(db, *t, *filt)},
                  {"V", QuoteVal(*v)}}));
        AddUsed(inst, db, *t, {*sel, *filt});
        inst.value_strings.push_back(v->ToString());
        return inst;
      });

  Register(
      "count_is_null",
      "How many {TABLE} have no recorded {COLUMN}?",
      [](const Database& db, Rng& rng,
         const SlotGuidance* g) -> std::optional<TemplateInstance> {
        Ctx ctx{db, rng, g};
        auto tables = TablesWhere(db, [&db](int t) {
          return !TextColumns(db, t).empty() || !NumericColumns(db, t).empty();
        });
        auto t = PickTable(ctx, tables);
        if (!t) return std::nullopt;
        auto cands = TextColumns(db, *t);
        for (int n : NumericColumns(db, *t)) cands.push_back(n);
        auto c = PickFilterColumn(ctx, *t, cands);
        if (!c) return std::nullopt;
        auto stmt = From(db, *t);
        AddSelect(*stmt, CountStar());
        stmt->where = Expr::MakeUnary(UnaryOp::kIsNull,
                                      ColRef(db, *t, *c, false));
        auto inst = Finish(
            std::move(stmt),
            Fill("How many {T} are missing a {C}?",
                 {{"T", PhraseT(db, *t)}, {"C", PhraseC(db, *t, *c)}}));
        AddUsed(inst, db, *t, {*c});
        return inst;
      });
}

}  // namespace codes
