#ifndef CODES_DATASET_DOMAINS_H_
#define CODES_DATASET_DOMAINS_H_

#include <string>
#include <vector>

#include "dataset/value_pool.h"

namespace codes {

/// A column concept: logical name (full snake_case words), the value
/// distribution it draws from, and an optional NL comment.
struct ColumnConcept {
  std::string name;
  ValueKind kind = ValueKind::kWord;
  std::string comment;
};

/// A table concept: name, comment, and columns. The first column is the
/// primary key by convention (kSequentialId).
struct TableConcept {
  std::string name;
  std::string comment;
  std::vector<ColumnConcept> columns;
};

/// A foreign-key concept between two tables of the same domain.
struct FkConcept {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// A database domain: the unit of cross-domain generalization. Train and
/// dev benchmarks draw from disjoint domain subsets, mirroring Spider's
/// unseen-database evaluation.
struct DomainSpec {
  std::string name;
  std::vector<TableConcept> tables;
  std::vector<FkConcept> fks;
};

/// The built-in domain catalog (20 domains). Deterministic order.
const std::vector<DomainSpec>& AllDomains();

/// Looks up a domain by name across AllDomains() and the special
/// new-domain specs; nullptr when unknown.
const DomainSpec* FindDomain(const std::string& name);

/// Special new-domain specs used by the Section 9.6 experiments; these are
/// NOT in AllDomains() so no benchmark ever trains on them.
const DomainSpec& BankFinancialsDomain();
const DomainSpec& AminerSimplifiedDomain();

}  // namespace codes

#endif  // CODES_DATASET_DOMAINS_H_
