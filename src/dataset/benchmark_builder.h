#ifndef CODES_DATASET_BENCHMARK_BUILDER_H_
#define CODES_DATASET_BENCHMARK_BUILDER_H_

#include <cstdint>
#include <string>

#include "dataset/db_generator.h"
#include "dataset/sample.h"

namespace codes {

/// Parameters of a generated text-to-SQL benchmark.
struct BenchmarkConfig {
  std::string name = "benchmark";
  DbProfile profile = DbProfile::Spider();
  /// Number of domains used for training databases; the remaining domains
  /// become dev databases — dev schemas are never seen in training
  /// (Spider's cross-domain protocol).
  int train_domains = 14;
  int dev_domains = 6;
  int train_samples_per_db = 60;
  int dev_samples_per_db = 25;
  /// Attach BIRD-style external-knowledge hints to samples whose schema
  /// uses ambiguous (abbreviated) column names.
  bool with_external_knowledge = false;
  uint64_t seed = 20240601;
};

/// Builds a benchmark: generates databases per domain, splits domains into
/// train/dev, and samples (question, SQL) pairs from the template grammar.
/// Every sample's SQL is validated to execute on its database.
Text2SqlBenchmark BuildBenchmark(const BenchmarkConfig& config);

/// Preset mirroring Spider: clean schemas, compact tables.
Text2SqlBenchmark BuildSpiderLike(uint64_t seed = 20240601);

/// Preset mirroring BIRD: ambiguous abbreviated schemas with comments,
/// wide tables, larger and dirtier contents, EK hints available.
Text2SqlBenchmark BuildBirdLike(uint64_t seed = 20240602);

/// Scaled-down presets for unit tests and quick benches.
Text2SqlBenchmark BuildTinySpiderLike(uint64_t seed = 7);

}  // namespace codes

#endif  // CODES_DATASET_BENCHMARK_BUILDER_H_
