#ifndef CODES_DATASET_TEMPLATES_INTERNAL_H_
#define CODES_DATASET_TEMPLATES_INTERNAL_H_

// Internal slot-filling helpers shared by the template builder translation
// units (templates.cc, templates_join.cc, templates_nested.cc). Not part
// of the public API.

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "dataset/db_generator.h"
#include "dataset/templates.h"
#include "sqlengine/ast.h"
#include "sqlengine/database.h"

namespace codes::template_internal {

using sql::BinaryOp;
using sql::Database;
using sql::DataType;
using sql::Expr;
using sql::ExprKind;
using sql::OrderItem;
using sql::SelectItem;
using sql::SelectStatement;
using sql::SetOp;
using sql::UnaryOp;
using sql::Value;

/// Per-instantiation context: database, RNG, optional guidance.
struct Ctx {
  const Database& db;
  Rng& rng;
  const SlotGuidance* guide;

  double Noise() {
    if (guide == nullptr || guide->noise <= 0) return 0.0;
    return rng.Gaussian() * guide->noise;
  }
};

inline bool IsForeignKeyColumn(const sql::DatabaseSchema& schema, int t,
                               int c) {
  const std::string& table = schema.tables[t].name;
  const std::string& column = schema.tables[t].columns[c].name;
  for (const auto& fk : schema.foreign_keys) {
    if (ToLower(fk.table) == ToLower(table) &&
        ToLower(fk.column) == ToLower(column)) {
      return true;
    }
  }
  return false;
}

inline bool IsIdLike(const sql::DatabaseSchema& schema, int t, int c) {
  const auto& col = schema.tables[t].columns[c];
  if (col.is_primary_key) return true;
  if (EndsWith(ToLower(col.name), "_id")) return true;
  return IsForeignKeyColumn(schema, t, c);
}

inline std::vector<int> TextColumns(const Database& db, int t) {
  std::vector<int> out;
  const auto& table = db.schema().tables[t];
  for (size_t c = 0; c < table.columns.size(); ++c) {
    if (table.columns[c].type == DataType::kText &&
        !IsIdLike(db.schema(), t, static_cast<int>(c))) {
      out.push_back(static_cast<int>(c));
    }
  }
  return out;
}

inline std::vector<int> NumericColumns(const Database& db, int t) {
  std::vector<int> out;
  const auto& table = db.schema().tables[t];
  for (size_t c = 0; c < table.columns.size(); ++c) {
    DataType type = table.columns[c].type;
    if ((type == DataType::kInteger || type == DataType::kReal) &&
        !IsIdLike(db.schema(), t, static_cast<int>(c))) {
      out.push_back(static_cast<int>(c));
    }
  }
  return out;
}

/// Text columns with repeated values — good GROUP BY / equality keys.
inline std::vector<int> CategoryColumns(const Database& db, int t) {
  std::vector<int> out;
  const auto& rows = db.TableAt(t).rows;
  if (rows.empty()) return out;
  for (int c : TextColumns(db, t)) {
    std::vector<std::string> seen;
    int non_null = 0;
    for (const auto& row : rows) {
      if (row[c].is_null()) continue;
      ++non_null;
      const std::string& s = row[c].AsText();
      if (std::find(seen.begin(), seen.end(), s) == seen.end()) {
        seen.push_back(s);
      }
    }
    if (non_null >= 4 && seen.size() * 2 <= static_cast<size_t>(non_null)) {
      out.push_back(c);
    }
  }
  return out;
}

/// Text columns holding YYYY-MM-DD values.
inline std::vector<int> DateColumns(const Database& db, int t) {
  std::vector<int> out;
  const auto& rows = db.TableAt(t).rows;
  for (int c : TextColumns(db, t)) {
    for (const auto& row : rows) {
      if (row[c].is_null()) continue;
      const std::string& s = row[c].AsText();
      bool is_date = s.size() == 10 && s[4] == '-' && s[7] == '-';
      if (is_date) out.push_back(c);
      break;  // judge by first non-null value
    }
  }
  return out;
}

/// Picks from `candidates` with guidance scoring (or uniformly).
template <typename ScoreFn>
std::optional<int> PickScored(Ctx& ctx, const std::vector<int>& candidates,
                              ScoreFn&& score) {
  if (candidates.empty()) return std::nullopt;
  if (ctx.guide == nullptr) return candidates[ctx.rng.Index(candidates.size())];
  double best = -1e300;
  int best_idx = candidates[0];
  for (int cand : candidates) {
    double s = score(cand) + ctx.Noise();
    if (s > best) {
      best = s;
      best_idx = cand;
    }
  }
  // Scores at -1e9 mark items the prompt never exposed; the model cannot
  // reference what it cannot see.
  if (best < -1e8) return std::nullopt;
  return best_idx;
}

inline std::optional<int> PickTable(Ctx& ctx,
                                    const std::vector<int>& candidates) {
  return PickScored(ctx, candidates, [&ctx](int t) {
    return (ctx.guide && ctx.guide->table_score) ? ctx.guide->table_score(t)
                                                 : 0.0;
  });
}

inline std::optional<int> PickSelectColumn(Ctx& ctx, int t,
                                           const std::vector<int>& candidates) {
  return PickScored(ctx, candidates, [&ctx, t](int c) {
    return (ctx.guide && ctx.guide->select_column_score)
               ? ctx.guide->select_column_score(t, c)
               : 0.0;
  });
}

inline std::optional<int> PickFilterColumn(Ctx& ctx, int t,
                                           const std::vector<int>& candidates) {
  return PickScored(ctx, candidates, [&ctx, t](int c) {
    return (ctx.guide && ctx.guide->filter_column_score)
               ? ctx.guide->filter_column_score(t, c)
               : 0.0;
  });
}

/// All tables satisfying `pred`.
template <typename Pred>
std::vector<int> TablesWhere(const Database& db, Pred&& pred) {
  std::vector<int> out;
  for (size_t t = 0; t < db.schema().tables.size(); ++t) {
    if (pred(static_cast<int>(t))) out.push_back(static_cast<int>(t));
  }
  return out;
}

/// Predicate value for a column. Unguided (data-generation) mode samples a
/// random non-null cell. Guided (model) mode never reads raw cells: it
/// uses question-matched values, then prompt representative values, and
/// otherwise fails the slot — the model cannot know values its prompt
/// never showed it.
inline std::optional<Value> SampleCell(Ctx& ctx, int t, int c) {
  if (ctx.guide != nullptr) {
    if (ctx.guide->filter_value) {
      auto guided = ctx.guide->filter_value(t, c);
      if (guided.has_value()) return guided;
    }
    if (ctx.guide->representative_value) {
      auto rep = ctx.guide->representative_value(t, c);
      if (rep.has_value()) return rep;
    }
    return std::nullopt;
  }
  const auto& rows = ctx.db.TableAt(t).rows;
  if (rows.empty()) return std::nullopt;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const auto& row = rows[ctx.rng.Index(rows.size())];
    if (!row[c].is_null()) return row[c];
  }
  return std::nullopt;
}

/// A numeric threshold for comparisons: guided by question numbers, else a
/// mid-range value from the column's data (keeps predicates selective).
inline std::optional<Value> PickThreshold(Ctx& ctx, int t, int c) {
  if (ctx.guide != nullptr) {
    if (ctx.guide->numbers.empty()) return std::nullopt;
    double n = ctx.guide->numbers[0];
    if (n == std::floor(n)) return Value(static_cast<int64_t>(n));
    return Value(n);
  }
  std::vector<double> values;
  for (const auto& row : ctx.db.TableAt(t).rows) {
    if (!row[c].is_null()) values.push_back(row[c].ToNumeric());
  }
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  double v = values[values.size() / 2];
  if (ctx.db.schema().tables[t].columns[c].type == DataType::kInteger) {
    return Value(static_cast<int64_t>(v));
  }
  return Value(std::round(v * 100.0) / 100.0);
}

/// Small count (2..5) for LIMIT k / HAVING thresholds.
inline int64_t PickSmallCount(Ctx& ctx) {
  if (ctx.guide != nullptr && !ctx.guide->numbers.empty()) {
    double n = ctx.guide->numbers[0];
    if (n >= 2 && n <= 10 && n == std::floor(n)) {
      return static_cast<int64_t>(n);
    }
  }
  return ctx.rng.UniformInt(2, 5);
}

/// Orders `columns` of table `t` by their first mention in the question
/// (guided mode only); data-generation order is left untouched.
inline void OrderByMention(Ctx& ctx, int t, std::vector<int>& columns) {
  if (ctx.guide == nullptr || !ctx.guide->mention_position) return;
  std::stable_sort(columns.begin(), columns.end(), [&ctx, t](int a, int b) {
    return ctx.guide->mention_position(t, a) <
           ctx.guide->mention_position(t, b);
  });
}

// ------------------------------------------------------------ FK edges

struct JoinEdge {
  int child_t, child_c;    // FK side
  int parent_t, parent_c;  // PK side
};

inline std::vector<JoinEdge> JoinEdges(const Database& db) {
  std::vector<JoinEdge> out;
  const auto& schema = db.schema();
  for (const auto& fk : schema.foreign_keys) {
    auto ct = schema.FindTable(fk.table);
    auto pt = schema.FindTable(fk.ref_table);
    if (!ct || !pt) continue;
    auto cc = schema.tables[*ct].FindColumn(fk.column);
    auto pc = schema.tables[*pt].FindColumn(fk.ref_column);
    if (!cc || !pc) continue;
    out.push_back(JoinEdge{*ct, *cc, *pt, *pc});
  }
  return out;
}

inline std::optional<JoinEdge> PickJoinEdge(Ctx& ctx) {
  auto edges = JoinEdges(ctx.db);
  if (ctx.guide != nullptr && ctx.guide->join_visible) {
    std::vector<JoinEdge> visible;
    for (const auto& e : edges) {
      if (ctx.guide->join_visible(e.child_t, e.parent_t)) visible.push_back(e);
    }
    edges = std::move(visible);
  }
  if (edges.empty()) return std::nullopt;
  if (ctx.guide == nullptr) return edges[ctx.rng.Index(edges.size())];
  double best = -1e300;
  JoinEdge best_edge = edges[0];
  for (const auto& e : edges) {
    double s = ctx.Noise();
    if (ctx.guide->table_score) {
      s += ctx.guide->table_score(e.child_t) +
           ctx.guide->table_score(e.parent_t);
    }
    if (s > best) {
      best = s;
      best_edge = e;
    }
  }
  return best_edge;
}

// ----------------------------------------------------------- AST helpers

inline std::string TName(const Database& db, int t) {
  return db.schema().tables[t].name;
}
inline std::string ColName(const Database& db, int t, int c) {
  return db.schema().tables[t].columns[c].name;
}

inline std::unique_ptr<Expr> ColRef(const Database& db, int t, int c,
                                    bool qualified) {
  return Expr::MakeColumn(qualified ? TName(db, t) : "", ColName(db, t, c));
}

inline std::unique_ptr<SelectStatement> From(const Database& db, int t) {
  auto stmt = std::make_unique<SelectStatement>();
  stmt->from.table = TName(db, t);
  return stmt;
}

inline void AddSelect(SelectStatement& stmt, std::unique_ptr<Expr> e) {
  SelectItem item;
  item.expr = std::move(e);
  stmt.select_list.push_back(std::move(item));
}

inline std::unique_ptr<Expr> Agg(const std::string& fn,
                                 std::unique_ptr<Expr> arg,
                                 bool distinct = false) {
  std::vector<std::unique_ptr<Expr>> args;
  args.push_back(std::move(arg));
  return Expr::MakeFunction(fn, std::move(args), distinct);
}

inline std::unique_ptr<Expr> CountStar() {
  std::vector<std::unique_ptr<Expr>> args;
  args.push_back(Expr::MakeStar());
  return Expr::MakeFunction("COUNT", std::move(args));
}

// ------------------------------------------------------- question helpers

inline std::string PhraseT(const Database& db, int t) {
  return TablePhrase(db.schema().tables[t]);
}
inline std::string PhraseC(const Database& db, int t, int c) {
  return ColumnPhrase(db.schema().tables[t].columns[c]);
}

inline std::string QuoteVal(const Value& v) {
  if (v.is_text()) return "'" + v.AsText() + "'";
  return v.ToString();
}

/// Fills "{X}" placeholders in a pattern.
inline std::string Fill(
    std::string pattern,
    std::initializer_list<std::pair<const char*, std::string>> substitutions) {
  for (const auto& [key, value] : substitutions) {
    pattern = ReplaceAll(pattern, std::string("{") + key + "}", value);
  }
  return pattern;
}

inline std::string PickPhrase(Ctx& ctx, std::vector<std::string> variants) {
  return variants[ctx.rng.Index(variants.size())];
}

// --------------------------------------------------------- instance build

inline void AddUsed(TemplateInstance& inst, const Database& db, int t,
                    std::initializer_list<int> cols) {
  bool table_seen = false;
  for (const auto& item : inst.used_items) {
    if (item.column.empty() && item.table == TName(db, t)) table_seen = true;
  }
  if (!table_seen) {
    inst.used_items.push_back(UsedSchemaItem{TName(db, t), ""});
  }
  for (int c : cols) {
    std::string col = ColName(db, t, c);
    bool seen = false;
    for (const auto& item : inst.used_items) {
      if (item.table == TName(db, t) && item.column == col) seen = true;
    }
    if (!seen) inst.used_items.push_back(UsedSchemaItem{TName(db, t), col});
  }
}

inline TemplateInstance Finish(std::unique_ptr<SelectStatement> stmt,
                               std::string question) {
  TemplateInstance inst;
  inst.sql_text = stmt->ToSql();
  inst.question = std::move(question);
  return inst;
}

/// A comparison operator bundle used by parameterized registrations.
struct CmpSpec {
  BinaryOp op;
  const char* sql_name;
  const char* phrase;        // "greater than"
  const char* short_phrase;  // "above"
};

inline constexpr CmpSpec kGt{BinaryOp::kGt, ">", "greater than", "above"};
inline constexpr CmpSpec kLt{BinaryOp::kLt, "<", "less than", "below"};
inline constexpr CmpSpec kGe{BinaryOp::kGe, ">=", "at least", "no less than"};
inline constexpr CmpSpec kLe{BinaryOp::kLe, "<=", "at most", "no more than"};

struct AggSpec {
  const char* fn;
  const char* phrase;  // "average"
};
inline constexpr AggSpec kSum{"SUM", "total"};
inline constexpr AggSpec kAvg{"AVG", "average"};
inline constexpr AggSpec kMin{"MIN", "minimum"};
inline constexpr AggSpec kMax{"MAX", "maximum"};

}  // namespace codes::template_internal

#endif  // CODES_DATASET_TEMPLATES_INTERNAL_H_
