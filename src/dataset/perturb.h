#ifndef CODES_DATASET_PERTURB_H_
#define CODES_DATASET_PERTURB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/sample.h"

namespace codes {

/// A perturbed evaluation set derived from a clean benchmark's dev split.
/// `bench.train` is left empty: robustness evaluation trains on the clean
/// benchmark and tests here (Section 9.4 protocol).
struct PerturbedTestSet {
  std::string name;      ///< e.g. "schema-synonym"
  std::string category;  ///< "DB", "NLQ", or "SQL"
  Text2SqlBenchmark bench;
};

/// Spider-Syn: schema-related words in dev questions are replaced with
/// synonyms, so naive string matching between question and schema fails.
Text2SqlBenchmark BuildSpiderSyn(const Text2SqlBenchmark& spider,
                                 uint64_t seed);

/// Spider-Realistic: explicit column mentions are removed from questions
/// when a predicate value still identifies the intent.
Text2SqlBenchmark BuildSpiderRealistic(const Text2SqlBenchmark& spider,
                                       uint64_t seed);

/// Spider-DK: column mentions are replaced with domain-knowledge
/// paraphrases ("age" -> "years since birth").
Text2SqlBenchmark BuildSpiderDk(const Text2SqlBenchmark& spider,
                                uint64_t seed);

/// Dr.Spider: the full diagnostic suite — 3 database perturbations, 9
/// natural-language-question perturbations, and 5 SQL-side test sets.
/// Returns 17 named sets.
std::vector<PerturbedTestSet> BuildDrSpiderSuite(
    const Text2SqlBenchmark& spider, uint64_t seed);

// ----- exposed for tests -----

/// Replaces whole-word occurrences of `word` outside single-quoted spans.
std::string ReplaceWordOutsideQuotes(const std::string& text,
                                     const std::string& word,
                                     const std::string& replacement);

/// The schema/question synonym dictionary used by the Syn perturbations.
const std::vector<std::pair<std::string, std::string>>& SynonymTable();

/// Question-keyword paraphrases ("how many" -> "count of", ...), used by
/// the keyword perturbations and by the augmentation refiner.
const std::vector<std::pair<std::string, std::string>>& KeywordSynonymTable();

/// Expands `tokens` (stemmed or raw) with the other side of every synonym
/// pair whose word appears among them — "vocalist" adds "singer" and vice
/// versa. This emulates the lexical knowledge a pre-trained LM brings to
/// robustness perturbations; the *model* and the schema classifier use it,
/// evaluation never does.
std::vector<std::string> ExpandWithSynonyms(
    const std::vector<std::string>& tokens);

/// Vowel-stripping abbreviation ("fleet" -> "flt") used by Dr.Spider's
/// schema-abbreviation perturbation; distinct from the initials-based
/// AbbreviateIdentifier used by the BIRD profile.
std::string VowelStripAbbreviate(const std::string& word);

/// Online adversarial question mutations, used by `codes_load --adv` to
/// mix perturbed traffic into a serving campaign. The first four stay
/// structurally clean ASCII (they stress the pipeline's language
/// robustness); kSchemaNoise injects zero-width characters, NBSP, and
/// fullwidth homoglyphs — precisely what the serve-side hardening detects
/// and its canonical retry folds back out.
enum class QuestionMutation : int {
  kSynonym = 0,    ///< schema-word synonym swaps (Spider-Syn style)
  kTypo,           ///< keyboard slips: swap / drop / double a letter
  kParaphrase,     ///< question-keyword paraphrases ("how many" -> ...)
  kValueSwap,      ///< case-flip inside quoted values
  kSchemaNoise,    ///< zero-width + homoglyph injection (hardening bait)
  kNumMutations,   ///< sentinel
};

inline constexpr int kNumQuestionMutations =
    static_cast<int>(QuestionMutation::kNumMutations);

const char* QuestionMutationName(QuestionMutation kind);

/// Applies one mutation to `question`. A pure function of
/// (question, kind, seed) — same inputs give byte-identical output on any
/// thread count, which is what lets the DES load generator pre-derive all
/// mutations on the driver thread and keep campaign digests invariant.
std::string MutateQuestion(const std::string& question, QuestionMutation kind,
                           uint64_t seed);

}  // namespace codes

#endif  // CODES_DATASET_PERTURB_H_
