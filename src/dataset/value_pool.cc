#include "dataset/value_pool.h"

#include <array>
#include <cstdio>

#include "common/string_util.h"

namespace codes {

namespace {

constexpr std::array kGivenNames = {
    "Sarah",  "James",  "Maria",   "David",   "Elena",  "Tomas",
    "Aiko",   "Carlos", "Ingrid",  "Noah",    "Priya",  "Liam",
    "Sofia",  "Mateo",  "Hannah",  "Omar",    "Lucia",  "Ethan",
    "Amara",  "Victor", "Nadia",   "Oscar",   "Freya",  "Hugo",
    "Isabel", "Jonas",  "Keiko",   "Leon",    "Mira",   "Pavel",
    "Rosa",   "Stefan", "Tara",    "Umar",    "Vera",   "Walter",
    "Xenia",  "Yusuf",  "Zoe",     "Anders",  "Bianca", "Cedric",
    "Daria",  "Emil",   "Farah",   "Gustav",  "Helga",  "Igor"};

constexpr std::array kSurnames = {
    "Martinez", "Johnson",  "Novak",    "Silva",    "Kowalski", "Tanaka",
    "Petrov",   "Andersen", "Okafor",   "Rossi",    "Dubois",   "Schmidt",
    "Larsen",   "Moreau",   "Vargas",   "Keller",   "Lindgren", "Barros",
    "Castillo", "Dimitrov", "Eriksson", "Fischer",  "Gomez",    "Horvat",
    "Ivanova",  "Janssen",  "Kaur",     "Lombardi", "Mbeki",    "Nielsen",
    "Ortega",   "Popescu",  "Quinn",    "Ramirez",  "Sato",     "Toth",
    "Ueda",     "Villanueva", "Weber",  "Xu",       "Yamada",   "Zhang"};

constexpr std::array kCities = {
    "Jesenik",   "Porto",     "Kyoto",     "Bergen",   "Valencia",
    "Gdansk",    "Salzburg",  "Cork",      "Tampere",  "Ghent",
    "Lausanne",  "Brno",      "Aarhus",    "Bilbao",   "Cluj",
    "Dresden",   "Eindhoven", "Florence",  "Graz",     "Haarlem",
    "Innsbruck", "Jena",      "Kaunas",    "Leipzig",  "Malmo",
    "Nantes",    "Ostrava",   "Pilsen",    "Quimper",  "Riga",
    "Seville",   "Turku",     "Utrecht",   "Verona",   "Wroclaw",
    "York",      "Zagreb",    "Antwerp",   "Bologna",  "Cadiz"};

constexpr std::array kCountries = {
    "USA",       "Canada",  "France",  "Germany", "Japan",   "Brazil",
    "Spain",     "Italy",   "Poland",  "Norway",  "Sweden",  "Denmark",
    "Portugal",  "Austria", "Ireland", "Finland", "Belgium", "Netherlands",
    "Czechia",   "Croatia", "Latvia",  "Greece",  "Mexico",  "Chile",
    "Argentina", "India",   "Kenya",   "Egypt",   "Vietnam", "Korea"};

constexpr std::array kCompanyHeads = {
    "Northwind", "Redwood", "Bluepeak",  "Ironclad", "Silverline",
    "Granite",   "Harbor",  "Summit",    "Beacon",   "Cobalt",
    "Falcon",    "Juniper", "Larkspur",  "Meridian", "Nimbus",
    "Orchard",   "Pinnacle", "Quartz",   "Riverton", "Sable"};

constexpr std::array kCompanyTails = {
    "Capital", "Holdings", "Industries", "Partners", "Systems",
    "Logistics", "Bank",   "Insurance",  "Ventures", "Group"};

constexpr std::array kTitleWords = {
    "Sunrise", "Moonlight", "Harbor",   "Echoes",   "Horizon", "Ember",
    "Cascade", "Drift",     "Lantern",  "Meadow",   "Nocturne", "Orbit",
    "Prism",   "Quarry",    "Rapture",  "Solstice", "Tides",    "Umbra",
    "Voyage",  "Wander",    "Zephyr",   "Aurora",   "Breeze",   "Crystal",
    "Dawn",    "Evergreen", "Firefly",  "Glacier",  "Harvest",  "Island"};

constexpr std::array kWords = {
    "rock",    "jazz",    "pop",      "folk",     "classical", "metal",
    "economy", "premium", "standard", "deluxe",   "basic",     "advanced",
    "red",     "blue",    "green",    "yellow",   "black",     "white",
    "north",   "south",   "east",     "west",     "central",   "coastal",
    "annual",  "monthly", "weekly",   "daily",    "active",    "closed"};

}  // namespace

bool IsTextKind(ValueKind kind) {
  switch (kind) {
    case ValueKind::kYear:
    case ValueKind::kSmallInt:
    case ValueKind::kBigInt:
    case ValueKind::kSequentialId:
      return false;
    case ValueKind::kMoney:
    case ValueKind::kRate:
      return false;
    default:
      return true;
  }
}

sql::DataType TypeOfKind(ValueKind kind) {
  switch (kind) {
    case ValueKind::kYear:
    case ValueKind::kSmallInt:
    case ValueKind::kBigInt:
    case ValueKind::kSequentialId:
      return sql::DataType::kInteger;
    case ValueKind::kMoney:
    case ValueKind::kRate:
      return sql::DataType::kReal;
    default:
      return sql::DataType::kText;
  }
}

sql::Value DrawValue(ValueKind kind, int row, Rng& rng) {
  switch (kind) {
    case ValueKind::kPersonName: {
      std::string name = std::string(rng.Pick(std::vector<std::string>(
                             kGivenNames.begin(), kGivenNames.end()))) +
                         " " +
                         std::string(rng.Pick(std::vector<std::string>(
                             kSurnames.begin(), kSurnames.end())));
      return sql::Value(std::move(name));
    }
    case ValueKind::kGivenName:
      return sql::Value(std::string(
          kGivenNames[rng.Index(kGivenNames.size())]));
    case ValueKind::kCity:
      return sql::Value(std::string(kCities[rng.Index(kCities.size())]));
    case ValueKind::kCountry:
      return sql::Value(std::string(kCountries[rng.Index(kCountries.size())]));
    case ValueKind::kCompany: {
      std::string name =
          std::string(kCompanyHeads[rng.Index(kCompanyHeads.size())]) + " " +
          std::string(kCompanyTails[rng.Index(kCompanyTails.size())]);
      return sql::Value(std::move(name));
    }
    case ValueKind::kTitleWords: {
      int words = static_cast<int>(rng.UniformInt(1, 3));
      std::string title;
      for (int i = 0; i < words; ++i) {
        if (i > 0) title += " ";
        title += kTitleWords[rng.Index(kTitleWords.size())];
      }
      return sql::Value(std::move(title));
    }
    case ValueKind::kWord:
      return sql::Value(std::string(kWords[rng.Index(kWords.size())]));
    case ValueKind::kYear:
      return sql::Value(rng.UniformInt(1950, 2023));
    case ValueKind::kSmallInt:
      return sql::Value(rng.UniformInt(0, 100));
    case ValueKind::kBigInt:
      return sql::Value(rng.UniformInt(0, 1000000));
    case ValueKind::kMoney: {
      double cents = static_cast<double>(rng.UniformInt(1000, 9999999));
      return sql::Value(cents / 100.0);
    }
    case ValueKind::kRate:
      return sql::Value(rng.UniformDouble());
    case ValueKind::kCode: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%c%c-%04d",
                    static_cast<char>('A' + rng.UniformInt(0, 25)),
                    static_cast<char>('A' + rng.UniformInt(0, 25)),
                    static_cast<int>(rng.UniformInt(0, 9999)));
      return sql::Value(std::string(buf));
    }
    case ValueKind::kDate: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                    static_cast<int>(rng.UniformInt(1990, 2023)),
                    static_cast<int>(rng.UniformInt(1, 12)),
                    static_cast<int>(rng.UniformInt(1, 28)));
      return sql::Value(std::string(buf));
    }
    case ValueKind::kGender:
      return sql::Value(std::string(rng.Bernoulli(0.5) ? "F" : "M"));
    case ValueKind::kYesNo:
      return sql::Value(std::string(rng.Bernoulli(0.5) ? "yes" : "no"));
    case ValueKind::kEmail: {
      std::string user = ToLower(
          std::string(kGivenNames[rng.Index(kGivenNames.size())]));
      return sql::Value(user + std::to_string(rng.UniformInt(1, 99)) +
                        "@example.com");
    }
    case ValueKind::kPhone: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "555-%04d",
                    static_cast<int>(rng.UniformInt(0, 9999)));
      return sql::Value(std::string(buf));
    }
    case ValueKind::kSequentialId:
      return sql::Value(static_cast<int64_t>(row + 1));
  }
  return sql::Value();
}

}  // namespace codes
