#include "fleet/fleet_manager.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "common/metrics.h"
#include "common/serial.h"
#include "common/status.h"

namespace codes {
namespace fleet {

namespace {

/// Fleet residency counters and gauges. Attach counters count *cold*
/// attaches (evicted/never-built -> resident transitions), split by how
/// the bundle was obtained; a lease against an already-resident bundle
/// bumps nothing. Gauges mirror the fleet's current occupancy.
struct FleetMetrics {
  Counter& attach = MetricsRegistry::Global().GetCounter("fleet.attach");
  Counter& attach_build =
      MetricsRegistry::Global().GetCounter("fleet.attach.build");
  Counter& attach_snapshot =
      MetricsRegistry::Global().GetCounter("fleet.attach.snapshot");
  Counter& evict = MetricsRegistry::Global().GetCounter("fleet.evict");
  Gauge& resident_bytes =
      MetricsRegistry::Global().GetGauge("fleet.resident_bytes");
  Gauge& resident_tenants =
      MetricsRegistry::Global().GetGauge("fleet.resident_tenants");
  Gauge& resident_bytes_peak =
      MetricsRegistry::Global().GetGauge("fleet.resident_bytes_peak");
};

FleetMetrics& Metrics() {
  static FleetMetrics* metrics = new FleetMetrics();  // never freed
  return *metrics;
}

constexpr uint32_t kTenantMagic = 0x544E4E54;  // "TNNT"
constexpr uint32_t kTenantVersion = 1;

size_t SampleBytes(const Text2SqlSample& sample) {
  size_t bytes = sizeof(sample) + sample.question.size() +
                 sample.sql.size() + sample.external_knowledge.size();
  for (const UsedSchemaItem& item : sample.used_items) {
    bytes += sizeof(item) + item.table.size() + item.column.size();
  }
  return bytes;
}

void SaveSample(std::string* out, const Text2SqlSample& sample) {
  serial::PutI32(out, sample.db_index);
  serial::PutString(out, sample.question);
  serial::PutString(out, sample.sql);
  serial::PutI32(out, sample.template_id);
  serial::PutString(out, sample.external_knowledge);
  serial::PutU64(out, sample.used_items.size());
  for (const UsedSchemaItem& item : sample.used_items) {
    serial::PutString(out, item.table);
    serial::PutString(out, item.column);
  }
}

bool LoadSample(serial::Reader* reader, Text2SqlSample* sample) {
  uint64_t n_items = 0;
  if (!reader->ReadI32(&sample->db_index) ||
      !reader->ReadString(&sample->question) ||
      !reader->ReadString(&sample->sql) ||
      !reader->ReadI32(&sample->template_id) ||
      !reader->ReadString(&sample->external_knowledge) ||
      !reader->ReadU64(&n_items) || n_items > reader->remaining()) {
    return false;
  }
  sample->used_items.resize(n_items);
  for (UsedSchemaItem& item : sample->used_items) {
    if (!reader->ReadString(&item.table) ||
        !reader->ReadString(&item.column)) {
      return false;
    }
  }
  return true;
}

/// Sums the bundle's byte cost from its parts.
size_t BundleBytes(const TenantArtifacts& artifacts) {
  size_t bytes = sizeof(artifacts);
  if (artifacts.retriever != nullptr) bytes += artifacts.retriever->ApproxBytes();
  if (artifacts.classifier != nullptr) {
    bytes += artifacts.classifier->ApproxBytes();
  }
  if (artifacts.demos != nullptr) bytes += artifacts.demos->ApproxBytes();
  for (const Text2SqlSample& sample : artifacts.demo_pool) {
    bytes += SampleBytes(sample);
  }
  return bytes;
}

}  // namespace

FleetManager::FleetManager(const Options& options) : options_(options) {
  if (!options_.snapshot_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.snapshot_dir, ec);
    // A failed mkdir degrades to "no persistence": every attach rebuilds.
    if (ec) options_.snapshot_dir.clear();
  }
}

int FleetManager::AddTenant(TenantDesc desc) {
  std::lock_guard<std::mutex> lock(mu_);
  CODES_CHECK(desc.db != nullptr && "fleet tenant needs a database");
  CODES_CHECK(tenant_ids_.find(desc.name) == tenant_ids_.end() &&
              "duplicate fleet tenant name");
  int id = static_cast<int>(tenants_.size());
  tenant_ids_.emplace(desc.name, id);
  tenants_.push_back(TenantState{std::move(desc), nullptr, 0});
  return id;
}

std::string FleetManager::SnapshotPath(int tenant) const {
  if (options_.snapshot_dir.empty()) return "";
  return options_.snapshot_dir + "/" +
         tenants_[static_cast<size_t>(tenant)].desc.name + ".tenant";
}

std::shared_ptr<const TenantArtifacts> FleetManager::BuildFromSource(
    const TenantState& state) const {
  auto artifacts = std::make_shared<TenantArtifacts>();
  auto retriever = std::make_shared<ValueRetriever>();
  retriever->BuildIndex(*state.desc.db);
  artifacts->retriever = std::move(retriever);
  if (state.desc.classifier_source != nullptr) {
    auto classifier = std::make_shared<SchemaItemClassifier>();
    SchemaItemClassifier::TrainOptions train;
    train.seed = options_.classifier_seed;
    classifier->Train(*state.desc.classifier_source, train);
    artifacts->classifier = std::move(classifier);
  }
  artifacts->demo_pool = state.desc.demo_pool;
  if (!artifacts->demo_pool.empty()) {
    DemonstrationRetriever::Options demo_options;
    demo_options.embedding_dim = options_.demo_embedding_dim;
    artifacts->demos = std::make_shared<DemonstrationRetriever>(
        artifacts->demo_pool, demo_options);
  }
  artifacts->bytes = BundleBytes(*artifacts);
  return artifacts;
}

std::shared_ptr<const TenantArtifacts> FleetManager::LoadSnapshot(
    const TenantState& state) const {
  if (options_.snapshot_dir.empty()) return nullptr;
  std::string path = options_.snapshot_dir + "/" + state.desc.name + ".tenant";
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  serial::Reader reader(data);
  if (!serial::ReadMagic(&reader, kTenantMagic, kTenantVersion)) {
    return nullptr;
  }
  auto artifacts = std::make_shared<TenantArtifacts>();
  uint32_t has_retriever = 0, has_classifier = 0;
  if (!reader.ReadU32(&has_retriever)) return nullptr;
  if (has_retriever != 0) {
    auto retriever = std::make_shared<ValueRetriever>();
    if (!retriever->LoadFrom(&reader).ok()) return nullptr;
    artifacts->retriever = std::move(retriever);
  }
  if (!reader.ReadU32(&has_classifier)) return nullptr;
  if (has_classifier != 0) {
    auto classifier = std::make_shared<SchemaItemClassifier>();
    if (!classifier->LoadFrom(&reader).ok()) return nullptr;
    artifacts->classifier = std::move(classifier);
  }
  uint64_t n_demos = 0;
  if (!reader.ReadU64(&n_demos) || n_demos > reader.remaining()) {
    return nullptr;
  }
  artifacts->demo_pool.resize(n_demos);
  for (Text2SqlSample& sample : artifacts->demo_pool) {
    if (!LoadSample(&reader, &sample)) return nullptr;
  }
  // Trailing bytes mean the file is not what SaveTo wrote — treat like
  // any other malformation and rebuild from source.
  if (!reader.Done()) return nullptr;
  if (!artifacts->demo_pool.empty()) {
    // The demonstration retriever is derived deterministically from the
    // pool; rebuilding it from the reloaded samples is byte-identical to
    // the one built from source.
    DemonstrationRetriever::Options demo_options;
    demo_options.embedding_dim = options_.demo_embedding_dim;
    artifacts->demos = std::make_shared<DemonstrationRetriever>(
        artifacts->demo_pool, demo_options);
  }
  artifacts->bytes = BundleBytes(*artifacts);
  return artifacts;
}

void FleetManager::PersistSnapshot(const TenantState& state,
                                   const TenantArtifacts& artifacts) const {
  if (options_.snapshot_dir.empty()) return;
  std::string data;
  serial::PutMagic(&data, kTenantMagic, kTenantVersion);
  serial::PutU32(&data, artifacts.retriever != nullptr ? 1 : 0);
  if (artifacts.retriever != nullptr) artifacts.retriever->SaveTo(&data);
  serial::PutU32(&data, artifacts.classifier != nullptr ? 1 : 0);
  if (artifacts.classifier != nullptr) artifacts.classifier->SaveTo(&data);
  serial::PutU64(&data, artifacts.demo_pool.size());
  for (const Text2SqlSample& sample : artifacts.demo_pool) {
    SaveSample(&data, sample);
  }
  // Write-then-rename so a crash mid-write leaves either the old snapshot
  // or none — a torn file would just be rebuilt, but never half-trusted.
  std::string path = options_.snapshot_dir + "/" + state.desc.name + ".tenant";
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

void FleetManager::UpdateResidencyGaugesLocked() {
  FleetMetrics& m = Metrics();
  m.resident_bytes.Set(static_cast<int64_t>(resident_bytes_));
  size_t resident = 0;
  for (const TenantState& state : tenants_) {
    if (state.resident != nullptr) ++resident;
  }
  m.resident_tenants.Set(static_cast<int64_t>(resident));
  if (resident_bytes_ > peak_resident_bytes_) {
    peak_resident_bytes_ = resident_bytes_;
    m.resident_bytes_peak.Set(static_cast<int64_t>(peak_resident_bytes_));
  }
}

void FleetManager::EvictOverBudgetLocked(int keep) {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    int victim = -1;
    uint64_t oldest = ~0ULL;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (static_cast<int>(i) == keep) continue;
      if (tenants_[i].resident == nullptr) continue;
      if (tenants_[i].last_use < oldest) {
        oldest = tenants_[i].last_use;
        victim = static_cast<int>(i);
      }
    }
    if (victim < 0) return;  // only `keep` is resident: keep serving it
    TenantState& state = tenants_[static_cast<size_t>(victim)];
    resident_bytes_ -= state.resident->bytes;
    state.resident = nullptr;  // outstanding leases stay alive
    Metrics().evict.Increment();
  }
}

std::shared_ptr<const TenantArtifacts> FleetManager::Attach(int tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant < 0 || static_cast<size_t>(tenant) >= tenants_.size()) {
    return nullptr;
  }
  TenantState& state = tenants_[static_cast<size_t>(tenant)];
  state.last_use = ++use_clock_;
  if (state.resident != nullptr) return state.resident;

  FleetMetrics& m = Metrics();
  std::shared_ptr<const TenantArtifacts> artifacts = LoadSnapshot(state);
  if (artifacts != nullptr) {
    m.attach_snapshot.Increment();
  } else {
    artifacts = BuildFromSource(state);
    PersistSnapshot(state, *artifacts);
    m.attach_build.Increment();
  }
  m.attach.Increment();
  state.resident = artifacts;
  resident_bytes_ += artifacts->bytes;
  EvictOverBudgetLocked(tenant);
  UpdateResidencyGaugesLocked();
  return artifacts;
}

void FleetManager::WarmAll() {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    (void)Attach(static_cast<int>(i));
  }
  EvictAll();
}

void FleetManager::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TenantState& state : tenants_) {
    if (state.resident == nullptr) continue;
    resident_bytes_ -= state.resident->bytes;
    state.resident = nullptr;
    Metrics().evict.Increment();
  }
  UpdateResidencyGaugesLocked();
}

size_t FleetManager::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

size_t FleetManager::NumResident() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t resident = 0;
  for (const TenantState& state : tenants_) {
    if (state.resident != nullptr) ++resident;
  }
  return resident;
}

size_t FleetManager::PeakResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_resident_bytes_;
}

std::vector<serve::WeightedFairLimiter::TenantSpec>
FleetManager::AdmissionSpecs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<serve::WeightedFairLimiter::TenantSpec> specs;
  specs.reserve(tenants_.size());
  for (const TenantState& state : tenants_) {
    specs.push_back(serve::WeightedFairLimiter::TenantSpec{
        state.desc.admission_weight, state.desc.admission_burst});
  }
  return specs;
}

std::vector<std::string> FleetManager::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const TenantState& state : tenants_) {
    names.push_back(state.desc.name);
  }
  return names;
}

}  // namespace fleet
}  // namespace codes
