#ifndef CODES_FLEET_FLEET_MANAGER_H_
#define CODES_FLEET_FLEET_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/sample.h"
#include "linker/schema_classifier.h"
#include "retrieval/demonstration_retriever.h"
#include "retrieval/value_retriever.h"
#include "serve/admission.h"
#include "sqlengine/database.h"

namespace codes {
namespace fleet {

/// The resident artifact bundle of one attached tenant: everything the
/// serving path needs that is derived from the tenant's database and
/// training data, priced in bytes so the fleet can hold N tenants under
/// one global memory budget.
///
/// Bundles are immutable once built and handed out as shared_ptr leases:
/// eviction drops the fleet's reference, but an in-flight request keeps
/// its lease alive until it finishes — there is never a dangling artifact
/// pointer, only a briefly over-budget process.
struct TenantArtifacts {
  /// BM25 value index over the tenant database (Section 6.2 coarse stage).
  std::shared_ptr<const ValueRetriever> retriever;
  /// Schema item classifier state; null when the tenant registered no
  /// training source (the serving pipeline's shared classifier is used).
  std::shared_ptr<const SchemaItemClassifier> classifier;
  /// Demonstration pool and its pattern-aware retriever; retriever is
  /// null when the pool is empty.
  std::vector<Text2SqlSample> demo_pool;
  std::shared_ptr<const DemonstrationRetriever> demos;
  /// Total resident cost (sum of the artifact ApproxBytes figures plus
  /// the pool samples).
  size_t bytes = 0;
};

/// A database fleet manager: owns N tenants in one process, attaching
/// per-tenant artifacts lazily, persisting them so a cold re-attach skips
/// the expensive build (tokenization, classifier training), and evicting
/// least-recently-used bundles once the configured global memory budget
/// is exceeded. This is ROADMAP item 1 — the step from "a pipeline" to
/// "a service": per-database prompt state becomes a cacheable, evictable,
/// reloadable serving asset (CodeS SIGMOD'24 §6).
///
/// Metrics: fleet.attach / fleet.attach.build / fleet.attach.snapshot /
/// fleet.evict counters, fleet.resident_bytes / fleet.resident_tenants /
/// fleet.resident_bytes_peak gauges.
///
/// Thread-safety: all public methods are serialized by an internal mutex.
/// Attach builds under the lock — the determinism campaigns drive the
/// fleet from a single DES thread, and live serving amortizes builds via
/// snapshots, so a coarse lock is the simple correct choice. Leases
/// returned by Attach are immutable and safe to use from any thread.
class FleetManager {
 public:
  struct Options {
    /// Global budget over the sum of resident bundle bytes; 0 = no limit.
    /// At least one bundle stays resident even when a single bundle
    /// exceeds the budget (a fleet that can hold nothing serves nothing).
    size_t memory_budget_bytes = 0;
    /// Directory for per-tenant snapshot files ("<name>.tenant"). Empty
    /// disables persistence: every cold attach rebuilds from source.
    std::string snapshot_dir;
    /// Embedding width of per-tenant demonstration retrievers.
    int demo_embedding_dim = 192;
    /// Seed for per-tenant classifier training.
    uint64_t classifier_seed = 11;
  };

  /// Registration-time description of a tenant. Pointers are borrowed and
  /// must outlive the fleet; they are the rebuild source of truth when no
  /// snapshot exists (or a snapshot fails verification).
  struct TenantDesc {
    std::string name;                 ///< unique; used in metrics + files
    const sql::Database* db = nullptr;  ///< value-index source (required)
    /// Training source for a per-tenant classifier; null = no classifier.
    const Text2SqlBenchmark* classifier_source = nullptr;
    /// Few-shot demonstration pool (copied); may be empty.
    std::vector<Text2SqlSample> demo_pool;
    /// Relative weight for weighted-fair admission.
    double admission_weight = 1.0;
    /// Per-tenant admission burst (tokens).
    double admission_burst = 8.0;
  };

  explicit FleetManager(const Options& options);

  /// Registers a tenant; no artifacts are built yet. Returns the tenant
  /// id used by Attach and the admission layer. Names must be unique.
  int AddTenant(TenantDesc desc);

  int NumTenants() const { return static_cast<int>(tenants_.size()); }
  const std::string& TenantName(int tenant) const {
    return tenants_[static_cast<size_t>(tenant)].desc.name;
  }

  /// The tenant's artifact bundle, building (or reloading from snapshot)
  /// on first use and touching its LRU stamp. Never returns null for a
  /// valid id; returns null for an out-of-range id. The lease keeps the
  /// bundle alive across eviction.
  std::shared_ptr<const TenantArtifacts> Attach(int tenant);

  /// Builds (and persists, when a snapshot_dir is configured) every
  /// tenant's bundle once, then evicts them all. After a warm-up, every
  /// Attach in a campaign is a snapshot load — the same work on every
  /// replay, which is what keeps fleet metric counts run-invariant.
  void WarmAll();

  /// Drops every resident bundle (outstanding leases stay valid).
  /// Counts as evictions in the metrics.
  void EvictAll();

  /// Sum of resident bundle bytes / number of resident bundles.
  size_t ResidentBytes() const;
  size_t NumResident() const;
  /// High-water mark of ResidentBytes over the fleet's lifetime.
  size_t PeakResidentBytes() const;

  /// Per-tenant weighted-fair admission specs, in tenant-id order —
  /// plug into AdmissionController::Options::tenants.
  std::vector<serve::WeightedFairLimiter::TenantSpec> AdmissionSpecs() const;
  /// Tenant names in tenant-id order — plug into
  /// FrontEndOptions::tenant_names.
  std::vector<std::string> TenantNames() const;

  /// Path of `tenant`'s snapshot file ("" when persistence is disabled).
  std::string SnapshotPath(int tenant) const;

 private:
  struct TenantState {
    TenantDesc desc;
    std::shared_ptr<const TenantArtifacts> resident;  ///< null = evicted
    uint64_t last_use = 0;
  };

  /// Builds the bundle from source (db scan, classifier training, demo
  /// encoding). Expensive; the path a snapshot load avoids.
  std::shared_ptr<const TenantArtifacts> BuildFromSource(
      const TenantState& state) const;
  /// Attempts a snapshot load; null when missing or malformed (the
  /// caller falls back to BuildFromSource — snapshots are a cache).
  std::shared_ptr<const TenantArtifacts> LoadSnapshot(
      const TenantState& state) const;
  /// Serializes + atomically writes the bundle's snapshot file.
  void PersistSnapshot(const TenantState& state,
                       const TenantArtifacts& artifacts) const;
  /// Evicts LRU bundles until the budget holds; `keep` is exempt.
  void EvictOverBudgetLocked(int keep);
  void UpdateResidencyGaugesLocked();

  Options options_;
  mutable std::mutex mu_;
  std::vector<TenantState> tenants_;
  std::unordered_map<std::string, int> tenant_ids_;
  size_t resident_bytes_ = 0;
  size_t peak_resident_bytes_ = 0;
  uint64_t use_clock_ = 0;
};

}  // namespace fleet
}  // namespace codes

#endif  // CODES_FLEET_FLEET_MANAGER_H_
