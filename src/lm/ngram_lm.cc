#include "lm/ngram_lm.h"

#include <cmath>

#include "common/status.h"
#include "common/string_util.h"
#include "text/tokenize.h"

namespace codes {

namespace {

constexpr char kBos[] = "<s>";

/// Interpolation weight of order k (higher orders get more mass).
double OrderWeight(int k, int max_order) {
  // Weights 1, 2, 4, ... normalized later; the highest order dominates
  // once it has evidence.
  return std::pow(2.0, k - 1) / (std::pow(2.0, max_order) - 1.0);
}

}  // namespace

NgramLm::NgramLm(int order) : order_(order), ctx_total_(1, 0) {
  CODES_CHECK(order >= 1);
}

void NgramLm::Train(const std::vector<std::string>& documents, int epochs) {
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& doc : documents) {
      std::vector<std::string> tokens = CodeTokens(doc);
      if (tokens.empty()) continue;
      // Prepend BOS markers so initial tokens have context, then map the
      // whole padded sequence to interned ids once.
      std::vector<uint32_t> padded;
      padded.reserve(tokens.size() + static_cast<size_t>(order_ - 1));
      for (int i = 0; i < order_ - 1; ++i) {
        padded.push_back(vocab_.Intern(kBos));
      }
      for (const auto& t : tokens) {
        padded.push_back(vocab_.Intern(t));
      }
      // One slot per interned id (BOS included, though it is only ever a
      // context and its count stays 0).
      unigram_count_.resize(vocab_.size(), 0);

      for (size_t i = static_cast<size_t>(order_ - 1); i < padded.size();
           ++i) {
        const uint32_t next = padded[i];
        uint64_t& unigrams = unigram_count_[next];
        // CodeTokens never emits the literal "<s>", so `next` is a real
        // token and first sight of it grows the vocabulary.
        if (unigrams == 0) ++distinct_unigrams_;
        unigrams += 1;
        ++unigram_total_;
        ++total_tokens_;
        // Contexts of length 1 .. order-1, each reached by prepending the
        // next-older token: one trie probe per level, no string joins.
        uint32_t ctx = 0;
        for (int len = 1; len < order_; ++len) {
          const uint32_t tok = padded[i - static_cast<size_t>(len)];
          bool inserted = false;
          ctx = ctx_ids_.FindOrInsert(
              PackKey(ctx, tok), static_cast<uint32_t>(ctx_total_.size()),
              &inserted);
          if (inserted) ctx_total_.push_back(0);
          counts_.FindOrInsert(PackKey(ctx, next), 0) += 1;
          ctx_total_[ctx] += 1;
        }
      }
    }
  }
}

double NgramLm::TokenLogProb(const std::vector<uint32_t>& ids,
                             size_t i) const {
  const uint32_t next = ids[i];
  // Uniform floor over an (open) vocabulary.
  double vocab = static_cast<double>(distinct_unigrams_) + 1000.0;
  double p = 0.05 / vocab;

  double remaining = 0.95;
  // Unigram share.
  double unigram_weight = remaining * OrderWeight(1, order_);
  if (unigram_total_ > 0) {
    double count = (next == StringInterner::kNpos)
                       ? 0.0
                       : static_cast<double>(unigram_count_[next]);
    p += unigram_weight * count / static_cast<double>(unigram_total_);
  }
  // Higher-order shares. A context containing an untrained token cannot
  // exist, and context presence is suffix-monotone (a trained length-L+1
  // context implies its trained length-L suffix), so the first failed
  // probe ends the walk — the reference implementation reaches the same
  // probability by failing every longer lookup individually.
  uint32_t ctx = 0;
  for (int len = 1; len < order_; ++len) {
    const uint32_t tok = ids[i - static_cast<size_t>(len)];
    if (tok == StringInterner::kNpos) break;
    const uint32_t* ctx_it = ctx_ids_.Find(PackKey(ctx, tok));
    if (ctx_it == nullptr) break;
    ctx = *ctx_it;
    double total = static_cast<double>(ctx_total_[ctx]);
    double count = 0.0;
    if (next != StringInterner::kNpos) {
      const uint32_t* c = counts_.Find(PackKey(ctx, next));
      if (c != nullptr) count = static_cast<double>(*c);
    }
    p += remaining * OrderWeight(len + 1, order_) * count / total;
  }
  return std::log(p);
}

double NgramLm::AvgLogProb(std::string_view text) const {
  std::vector<std::string> tokens = CodeTokens(text);
  if (tokens.empty()) return 0.0;
  // Lookup-only id mapping: scoring must never intern (it runs concurrently
  // and unseen tokens must stay out of the vocabulary).
  std::vector<uint32_t> padded;
  padded.reserve(tokens.size() + static_cast<size_t>(order_ - 1));
  const uint32_t bos = vocab_.Find(kBos);
  for (int i = 0; i < order_ - 1; ++i) padded.push_back(bos);
  for (const auto& t : tokens) padded.push_back(vocab_.Find(t));

  double total = 0;
  size_t n = 0;
  for (size_t i = static_cast<size_t>(order_ - 1); i < padded.size(); ++i) {
    total += TokenLogProb(padded, i);
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double NgramLm::Perplexity(const std::vector<std::string>& documents) const {
  double total_log_prob = 0;
  uint64_t total_tokens = 0;
  for (const auto& doc : documents) {
    std::vector<std::string> tokens = CodeTokens(doc);
    if (tokens.empty()) continue;
    total_log_prob += AvgLogProb(doc) * static_cast<double>(tokens.size());
    total_tokens += tokens.size();
  }
  if (total_tokens == 0) return 1.0;
  return std::exp(-total_log_prob / static_cast<double>(total_tokens));
}

}  // namespace codes
