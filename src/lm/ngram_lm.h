#ifndef CODES_LM_NGRAM_LM_H_
#define CODES_LM_NGRAM_LM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"

namespace codes {

/// An interpolated n-gram language model over code tokens.
///
/// This is the repo's stand-in for the StarCoder/CodeS transformer: it is
/// trainable, supports *incremental pre-training* (continue accumulating
/// counts on a second corpus, optionally for several epochs), measures
/// perplexity, and scores candidate SQL strings during generation. The
/// n-gram `order` is one of the model-size capacity knobs (larger CodeS
/// profiles use higher orders).
///
/// Probabilities interpolate all orders (Jelinek-Mercer style) with a
/// uniform-vocabulary floor, so unseen tokens never zero out a sequence.
///
/// Hot-path layout (the speed-campaign rewrite; DESIGN.md section 13).
/// The original stored nested string-keyed maps — every probe joined
/// context tokens into a heap string, hashed it, then hashed the next
/// token in an inner map. Now:
///  * tokens intern to dense uint32 ids in an arena-backed dictionary;
///  * a context is a node id in a trie keyed by the packed 64-bit pair
///    (parent context id << 32 | prepended token id), so extending a
///    context while scoring is one flat-hash probe, no string build;
///  * all (context, next) counts live in one open-addressing flat hash
///    keyed by (context id << 32 | next token id), with per-context
///    totals stored at train time instead of being re-summed per probe.
/// Probabilities are byte-identical to the pinned ReferenceNgramLm
/// (tests/speed_equivalence_test.cc): counts are exact integers, and the
/// interpolation arithmetic runs in the same order as before.
///
/// Thread-safety: Train must not race with scoring; concurrent AvgLogProb/
/// Perplexity calls on a trained model are safe (scoring never mutates —
/// unseen query tokens are looked up, not interned).
class NgramLm {
 public:
  explicit NgramLm(int order);

  int order() const { return order_; }

  /// Accumulates counts from `documents`, `epochs` times. Calling Train
  /// again with a different corpus performs incremental (continued)
  /// pre-training: new counts add to the old ones, shifting the model
  /// toward the new distribution — the Section 5 mechanism.
  void Train(const std::vector<std::string>& documents, int epochs = 1);

  /// Average per-token natural-log probability of `text` (tokenized with
  /// CodeTokens). Empty text scores 0.
  double AvgLogProb(std::string_view text) const;

  /// exp(-mean log prob) over all documents.
  double Perplexity(const std::vector<std::string>& documents) const;

  /// Number of distinct unigrams seen.
  size_t VocabSize() const { return distinct_unigrams_; }

  /// Total tokens consumed by Train (across epochs).
  uint64_t TokensTrained() const { return total_tokens_; }

 private:
  /// Log probability of token `i` of the padded, id-mapped sequence.
  /// `ids[j] == StringInterner::kNpos` marks a token outside the trained
  /// vocabulary.
  double TokenLogProb(const std::vector<uint32_t>& ids, size_t i) const;

  /// Packs a trie/count key from a context id and a token id.
  static uint64_t PackKey(uint32_t ctx, uint32_t token) {
    return (static_cast<uint64_t>(ctx) << 32) | token;
  }

  int order_;
  uint64_t total_tokens_ = 0;
  StringInterner vocab_;
  /// Per token id. BOS appears only in context positions, so its entry
  /// stays 0 and distinct_unigrams_ (not vocab_.size()) is the vocabulary.
  std::vector<uint64_t> unigram_count_;
  size_t distinct_unigrams_ = 0;
  uint64_t unigram_total_ = 0;
  /// Context trie: (parent ctx, prepended token) -> ctx id. Id 0 is the
  /// empty root; real contexts start at 1.
  FlatHash64<uint32_t> ctx_ids_;
  /// Per context id: sum of all next-token counts (the denominator the
  /// reference implementation re-summed on every probe).
  std::vector<uint64_t> ctx_total_;
  /// (ctx id, next token id) -> count.
  FlatHash64<uint32_t> counts_;
};

}  // namespace codes

#endif  // CODES_LM_NGRAM_LM_H_
