#ifndef CODES_LM_NGRAM_LM_H_
#define CODES_LM_NGRAM_LM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace codes {

/// An interpolated n-gram language model over code tokens.
///
/// This is the repo's stand-in for the StarCoder/CodeS transformer: it is
/// trainable, supports *incremental pre-training* (continue accumulating
/// counts on a second corpus, optionally for several epochs), measures
/// perplexity, and scores candidate SQL strings during generation. The
/// n-gram `order` is one of the model-size capacity knobs (larger CodeS
/// profiles use higher orders).
///
/// Probabilities interpolate all orders (Jelinek-Mercer style) with a
/// uniform-vocabulary floor, so unseen tokens never zero out a sequence.
class NgramLm {
 public:
  explicit NgramLm(int order);

  int order() const { return order_; }

  /// Accumulates counts from `documents`, `epochs` times. Calling Train
  /// again with a different corpus performs incremental (continued)
  /// pre-training: new counts add to the old ones, shifting the model
  /// toward the new distribution — the Section 5 mechanism.
  void Train(const std::vector<std::string>& documents, int epochs = 1);

  /// Average per-token natural-log probability of `text` (tokenized with
  /// CodeTokens). Empty text scores 0.
  double AvgLogProb(std::string_view text) const;

  /// exp(-mean log prob) over all documents.
  double Perplexity(const std::vector<std::string>& documents) const;

  /// Number of distinct unigrams seen.
  size_t VocabSize() const { return unigram_counts_.size(); }

  /// Total tokens consumed by Train (across epochs).
  uint64_t TokensTrained() const { return total_tokens_; }

 private:
  double TokenLogProb(const std::vector<std::string>& tokens, size_t i) const;

  int order_;
  uint64_t total_tokens_ = 0;
  // context ("a b") -> (next token -> count); contexts of every length
  // from 1..order-1 tokens are stored, keyed by joined text.
  std::unordered_map<std::string, std::unordered_map<std::string, uint32_t>>
      context_counts_;
  std::unordered_map<std::string, uint32_t> unigram_counts_;
  uint64_t unigram_total_ = 0;
};

}  // namespace codes

#endif  // CODES_LM_NGRAM_LM_H_
