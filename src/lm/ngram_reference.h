#ifndef CODES_LM_NGRAM_REFERENCE_H_
#define CODES_LM_NGRAM_REFERENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace codes {

/// The pre-speed-campaign NgramLm implementation, pinned: nested
/// string-keyed maps (context text -> next token -> count) with per-probe
/// context string joins and denominator re-summation. It exists for two
/// callers only:
///
///  * tests/speed_equivalence_test.cc proves NgramLm returns byte-identical
///    probabilities (AvgLogProb/Perplexity doubles) after identical
///    training, including incremental continued pre-training;
///  * bench_latency's hot-path section reports the before/after n-gram
///    probing speedup that BENCH_latency.json commits.
///
/// Not for serving use: every scored token joins up to order-1 context
/// strings on the heap and walks two hash maps per interpolation level.
class ReferenceNgramLm {
 public:
  explicit ReferenceNgramLm(int order);

  int order() const { return order_; }
  void Train(const std::vector<std::string>& documents, int epochs = 1);
  double AvgLogProb(std::string_view text) const;
  double Perplexity(const std::vector<std::string>& documents) const;
  size_t VocabSize() const { return unigram_counts_.size(); }
  uint64_t TokensTrained() const { return total_tokens_; }

 private:
  double TokenLogProb(const std::vector<std::string>& tokens, size_t i) const;

  int order_;
  uint64_t total_tokens_ = 0;
  // context ("a b") -> (next token -> count); contexts of every length
  // from 1..order-1 tokens are stored, keyed by joined text.
  std::unordered_map<std::string, std::unordered_map<std::string, uint32_t>>
      context_counts_;
  std::unordered_map<std::string, uint32_t> unigram_counts_;
  uint64_t unigram_total_ = 0;
};

}  // namespace codes

#endif  // CODES_LM_NGRAM_REFERENCE_H_
