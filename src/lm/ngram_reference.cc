#include "lm/ngram_reference.h"

#include <cmath>

#include "common/status.h"
#include "text/tokenize.h"

namespace codes {

namespace {

constexpr char kBos[] = "<s>";

/// Interpolation weight of order k — must stay identical to the production
/// NgramLm's weight for the equivalence suite to pin anything meaningful.
double OrderWeight(int k, int max_order) {
  return std::pow(2.0, k - 1) / (std::pow(2.0, max_order) - 1.0);
}

}  // namespace

ReferenceNgramLm::ReferenceNgramLm(int order) : order_(order) {
  CODES_CHECK(order >= 1);
}

void ReferenceNgramLm::Train(const std::vector<std::string>& documents,
                             int epochs) {
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& doc : documents) {
      std::vector<std::string> tokens = CodeTokens(doc);
      if (tokens.empty()) continue;
      std::vector<std::string> padded;
      padded.reserve(tokens.size() + order_ - 1);
      for (int i = 0; i < order_ - 1; ++i) padded.push_back(kBos);
      for (auto& t : tokens) padded.push_back(std::move(t));

      for (size_t i = static_cast<size_t>(order_ - 1); i < padded.size();
           ++i) {
        const std::string& next = padded[i];
        unigram_counts_[next] += 1;
        ++unigram_total_;
        ++total_tokens_;
        std::string context;
        for (int len = 1; len < order_; ++len) {
          const std::string& tok = padded[i - static_cast<size_t>(len)];
          if (len == 1) {
            context = tok;
          } else {
            context = tok + " " + context;
          }
          context_counts_[context][next] += 1;
        }
      }
    }
  }
}

double ReferenceNgramLm::TokenLogProb(const std::vector<std::string>& tokens,
                                      size_t i) const {
  const std::string& next = tokens[i];
  double vocab = static_cast<double>(unigram_counts_.size()) + 1000.0;
  double p = 0.05 / vocab;

  double remaining = 0.95;
  double unigram_weight = remaining * OrderWeight(1, order_);
  if (unigram_total_ > 0) {
    auto it = unigram_counts_.find(next);
    double count = (it == unigram_counts_.end())
                       ? 0.0
                       : static_cast<double>(it->second);
    p += unigram_weight * count / static_cast<double>(unigram_total_);
  }
  std::string context;
  for (int len = 1; len < order_; ++len) {
    const std::string& tok = tokens[i - static_cast<size_t>(len)];
    if (len == 1) {
      context = tok;
    } else {
      context = tok + " " + context;
    }
    auto ctx_it = context_counts_.find(context);
    if (ctx_it == context_counts_.end()) continue;
    double total = 0;
    for (const auto& [_, c] : ctx_it->second) total += c;
    auto next_it = ctx_it->second.find(next);
    double count = (next_it == ctx_it->second.end())
                       ? 0.0
                       : static_cast<double>(next_it->second);
    p += remaining * OrderWeight(len + 1, order_) * count / total;
  }
  return std::log(p);
}

double ReferenceNgramLm::AvgLogProb(std::string_view text) const {
  std::vector<std::string> tokens = CodeTokens(text);
  if (tokens.empty()) return 0.0;
  std::vector<std::string> padded;
  padded.reserve(tokens.size() + order_ - 1);
  for (int i = 0; i < order_ - 1; ++i) padded.emplace_back(kBos);
  for (auto& t : tokens) padded.push_back(std::move(t));

  double total = 0;
  size_t n = 0;
  for (size_t i = static_cast<size_t>(order_ - 1); i < padded.size(); ++i) {
    total += TokenLogProb(padded, i);
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double ReferenceNgramLm::Perplexity(
    const std::vector<std::string>& documents) const {
  double total_log_prob = 0;
  uint64_t total_tokens = 0;
  for (const auto& doc : documents) {
    std::vector<std::string> tokens = CodeTokens(doc);
    if (tokens.empty()) continue;
    total_log_prob += AvgLogProb(doc) * static_cast<double>(tokens.size());
    total_tokens += tokens.size();
  }
  if (total_tokens == 0) return 1.0;
  return std::exp(-total_log_prob / static_cast<double>(total_tokens));
}

}  // namespace codes
