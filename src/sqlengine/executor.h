#ifndef CODES_SQLENGINE_EXECUTOR_H_
#define CODES_SQLENGINE_EXECUTOR_H_

#include <memory>
#include <string_view>

#include "common/exec_guard.h"
#include "common/status.h"
#include "sqlengine/ast.h"
#include "sqlengine/database.h"
#include "sqlengine/exec_source.h"
#include "sqlengine/result_table.h"

namespace codes::sql {

/// Query executor over any ExecSource backend — the in-memory Database or
/// the disk-backed storage engine. The same AST produces byte-identical
/// results over either (the two-backend equivalence contract, DESIGN.md
/// section 14).
///
/// Supported plan shapes: scans, inner equi-/theta-joins (hash join is used
/// automatically for equality ON conditions), WHERE filters, grouped and
/// global aggregation with HAVING, DISTINCT, ORDER BY (expressions, select
/// aliases, or 1-based positions), LIMIT, set operations, uncorrelated IN /
/// scalar subqueries, and the scalar functions ABS, ROUND, LENGTH, UPPER,
/// LOWER, SUBSTR, CAST.
///
/// Access paths: the first FROM table is read through a pluggable access
/// path. Backends exposing indexes get an index scan when the WHERE clause
/// has a sargable conjunct (`col op literal`, `col BETWEEN lit AND lit`)
/// whose estimated selectivity passes a simple cost rule; everything else
/// is a sequential scan. Path choice never changes results — an index scan
/// is a pure prefilter and the full WHERE clause is still applied.
///
/// Guarded execution: when a non-null ExecGuard is passed, row production
/// charges its row/byte budgets, deadline/cancellation are polled from
/// every materializing loop, and subquery / set-operation arms count
/// against the guard's nesting-depth budget. Guard violations surface as
/// StatusCode::{kTimeout, kCancelled, kResourceExhausted}. A null guard
/// (the default) is the historical unguarded behaviour.
class Executor {
 public:
  explicit Executor(const ExecSource& source) : source_(source) {}

  /// Executes `stmt` and returns the result table. `guard`, when non-null,
  /// must outlive the call; it is shared by nested subquery execution.
  Result<ResultTable> Execute(const SelectStatement& stmt,
                              ExecGuard* guard = nullptr) const;

 private:
  const ExecSource& source_;
};

/// Parses and executes `sql` against `source` in one step, honoring `guard`
/// during execution (parsing enforces its own fixed nesting-depth cap).
Result<ResultTable> ExecuteSql(const ExecSource& source, std::string_view sql,
                               ExecGuard* guard = nullptr);

/// True if `sql` parses and executes without error ("is executable"), the
/// predicate the paper uses to pick among beam candidates.
bool IsExecutable(const ExecSource& source, std::string_view sql);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_EXECUTOR_H_
