#ifndef CODES_SQLENGINE_EXECUTOR_H_
#define CODES_SQLENGINE_EXECUTOR_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "sqlengine/ast.h"
#include "sqlengine/database.h"
#include "sqlengine/result_table.h"

namespace codes::sql {

/// Query executor over an in-memory Database.
///
/// Supported plan shapes: scans, inner equi-/theta-joins (hash join is used
/// automatically for equality ON conditions), WHERE filters, grouped and
/// global aggregation with HAVING, DISTINCT, ORDER BY (expressions, select
/// aliases, or 1-based positions), LIMIT, set operations, uncorrelated IN /
/// scalar subqueries, and the scalar functions ABS, ROUND, LENGTH, UPPER,
/// LOWER, SUBSTR, CAST.
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  /// Executes `stmt` and returns the result table.
  Result<ResultTable> Execute(const SelectStatement& stmt) const;

 private:
  const Database& db_;
};

/// Parses and executes `sql` against `db` in one step.
Result<ResultTable> ExecuteSql(const Database& db, std::string_view sql);

/// True if `sql` parses and executes without error ("is executable"), the
/// predicate the paper uses to pick among beam candidates.
bool IsExecutable(const Database& db, std::string_view sql);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_EXECUTOR_H_
