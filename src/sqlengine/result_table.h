#ifndef CODES_SQLENGINE_RESULT_TABLE_H_
#define CODES_SQLENGINE_RESULT_TABLE_H_

#include <string>
#include <vector>

#include "sqlengine/value.h"

namespace codes::sql {

/// Result of executing a SELECT: column headers plus rows of values.
struct ResultTable {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return column_names.size(); }

  /// Pretty text rendering for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;
};

/// Execution-accuracy comparison of two result tables, as used by the EX
/// metric: identical column count and, when `ordered` is true, identical
/// row sequences; otherwise identical row *multisets*. Column names are
/// ignored (benchmarks do not require matching aliases); numeric values
/// compare with a small relative tolerance.
bool ResultsEquivalent(const ResultTable& a, const ResultTable& b,
                       bool ordered);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_RESULT_TABLE_H_
